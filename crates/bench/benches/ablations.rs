//! Design-choice ablations called out in DESIGN.md §5:
//!
//! 1. **Smooth Gamma budget split** — Algorithm 2 fixes the dilation
//!    share at ε₂ = 5·ln(1+α), the minimum for finite smooth sensitivity.
//!    The ablation sweeps larger ε₂ and measures the resulting expected
//!    L1 error: the paper's choice must dominate.
//! 2. **Log-Laplace bias correction** — the optional post-processing
//!    divides out the 1/(1−λ²) multiplicative bias; the ablation compares
//!    empirical L1 error with and without.

use criterion::{criterion_group, criterion_main, Criterion};
use eree_core::mechanisms::LogLaplaceMechanism;
use eree_core::{CellQuery, CountMechanism};
use noise::{ContinuousDistribution, GammaPoly};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// Expected L1 error of a Smooth-Gamma-style mechanism with an arbitrary
/// (possibly suboptimal) dilation share `eps2 >= 5 ln(1+alpha)`.
fn gamma_l1_with_split(x_v: u32, alpha: f64, eps: f64, eps2: f64) -> Option<f64> {
    let eps1 = eps - eps2;
    if eps1 <= 0.0 || eps2 < 5.0 * (1.0 + alpha).ln() {
        return None;
    }
    let s_star = (x_v as f64 * alpha).max(1.0);
    let scale = s_star / (eps1 / 5.0);
    GammaPoly::new(scale).ok()?.mean_abs()
}

fn bench_budget_split_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_budget_split");
    let (x_v, alpha, eps) = (400u32, 0.1f64, 2.0f64);
    let optimal_eps2 = 5.0 * (1.0 + alpha).ln();

    group.bench_function("sweep_and_check_optimality", |b| {
        b.iter(|| {
            let baseline = gamma_l1_with_split(x_v, alpha, eps, optimal_eps2).unwrap();
            let mut worse = 0usize;
            for i in 1..=20 {
                let eps2 = optimal_eps2 + i as f64 * 0.05;
                if let Some(err) = gamma_l1_with_split(x_v, alpha, eps, eps2) {
                    assert!(
                        err >= baseline,
                        "larger dilation share must not reduce error"
                    );
                    worse += 1;
                }
            }
            black_box((baseline, worse))
        })
    });
    group.finish();
}

fn bench_bias_correction_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bias_correction");
    group.sample_size(10);
    let q = CellQuery {
        count: 1000,
        max_establishment: 1000,
    };
    // At eps = 0.67, lambda ≈ 0.28: noticeable bias.
    let plain = LogLaplaceMechanism::new(0.1, 0.67);
    let corrected = LogLaplaceMechanism::new(0.1, 0.67).with_bias_correction();

    group.bench_function("empirical_l1_plain_vs_corrected", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            let n = 20_000;
            let (mut e_plain, mut e_corr) = (0.0, 0.0);
            for _ in 0..n {
                e_plain += (plain.release(&q, &mut rng) - 1000.0).abs();
                e_corr += (corrected.release(&q, &mut rng) - 1000.0).abs();
            }
            black_box((e_plain / n as f64, e_corr / n as f64))
        })
    });
    group.finish();
}

fn bench_sampler_ablation(c: &mut Criterion) {
    // Rejection sampling vs numeric inverse-CDF for the gamma-poly noise:
    // both exact; rejection wins on speed (no bisection loop).
    let mut group = c.benchmark_group("ablation_gamma_sampler");
    let d = GammaPoly::standard();
    let mut rng = StdRng::seed_from_u64(4);
    group.bench_function("rejection", |b| b.iter(|| black_box(d.sample(&mut rng))));
    group.bench_function("inverse_cdf", |b| {
        b.iter(|| black_box(d.sample_inverse_cdf(&mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_budget_split_ablation,
    bench_bias_correction_ablation,
    bench_sampler_ablation
);
criterion_main!(benches);
