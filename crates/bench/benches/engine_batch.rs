//! Sequential vs parallel `ReleaseEngine::execute_all` on a
//! workload-sized batch: the engine's cross-request parallelism is the
//! production scaling lever, and the outputs are bit-identical at any
//! thread count, so this bench measures pure speedup. (On a single-core
//! machine the two series read as parity — the parallel path degrades to
//! sequential chunking, never worse.)

use bench::bench_context;
use criterion::{criterion_group, criterion_main, Criterion};
use eree_core::engine::{ReleaseEngine, ReleaseRequest};
use eree_core::{MechanismKind, PrivacyParams};
use std::hint::black_box;
use tabulate::{workload1, workload3};

/// A publication-season batch: both workloads × the three mechanisms,
/// several quarters' worth of seeds.
fn season_batch() -> Vec<ReleaseRequest> {
    let mut batch = Vec::new();
    for quarter in 0..4u64 {
        batch.push(
            ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 2.0))
                .seed(quarter),
        );
        batch.push(
            ReleaseRequest::marginal(workload3())
                .mechanism(MechanismKind::LogLaplace)
                .budget(PrivacyParams::pure(0.1, 8.0))
                .seed(100 + quarter),
        );
        batch.push(
            ReleaseRequest::shapes(workload3())
                .mechanism(MechanismKind::SmoothLaplace)
                .budget(PrivacyParams::approximate(0.1, 16.0, 0.05))
                .seed(200 + quarter),
        );
    }
    batch
}

fn session_budget() -> PrivacyParams {
    // 4 quarters x (2 + 8 + 16) with delta headroom.
    PrivacyParams::approximate(0.1, 104.0, 0.5)
}

fn bench_execute_all(c: &mut Criterion) {
    let ctx = bench_context();
    let batch = season_batch();
    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);
    group.bench_function("execute_all_sequential", |b| {
        b.iter(|| {
            let mut engine = ReleaseEngine::new(session_budget()).with_parallelism(1);
            black_box(engine.execute_all(&ctx.dataset, &batch))
        })
    });
    group.bench_function("execute_all_parallel", |b| {
        b.iter(|| {
            let mut engine = ReleaseEngine::new(session_budget());
            black_box(engine.execute_all(&ctx.dataset, &batch))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_execute_all);
criterion_main!(benches);
