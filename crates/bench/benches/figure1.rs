//! Benchmark for Figure 1 (Workload 1 L1 error ratio): the per-mechanism
//! release-and-score inner loop, plus the full small-scale experiment.

use bench::{bench_context, bench_trials};
use criterion::{criterion_group, criterion_main, Criterion};
use eree_core::{MechanismKind, PrivacyParams};
use eval::experiments::{figure1, release_cells};
use eval::metrics::l1_error;
use std::hint::black_box;

fn bench_figure1(c: &mut Criterion) {
    let ctx = bench_context();
    let truth = &ctx.sdl_w1.truth;

    let mut group = c.benchmark_group("figure1");
    // One release + score per mechanism at the paper's baseline point.
    for (name, kind, params) in [
        (
            "log_laplace_release_score",
            MechanismKind::LogLaplace,
            PrivacyParams::pure(0.1, 2.0),
        ),
        (
            "smooth_gamma_release_score",
            MechanismKind::SmoothGamma,
            PrivacyParams::pure(0.1, 2.0),
        ),
        (
            "smooth_laplace_release_score",
            MechanismKind::SmoothLaplace,
            PrivacyParams::approximate(0.1, 2.0, 0.05),
        ),
    ] {
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let published = release_cells(truth, kind, &params, seed).unwrap();
                black_box(l1_error(truth, &published))
            })
        });
    }

    // The full experiment at reduced trial count.
    group.sample_size(10);
    group.bench_function("full_experiment_small", |b| {
        let trials = bench_trials();
        b.iter(|| black_box(figure1::run(&ctx, &trials)))
    });
    group.finish();
}

criterion_group!(benches, bench_figure1);
criterion_main!(benches);
