//! Benchmark for Figure 2 (Ranking 1 Spearman correlation): the
//! release-and-rank inner loop and the Spearman computation itself.

use bench::{bench_context, bench_trials};
use criterion::{criterion_group, criterion_main, Criterion};
use eree_core::{MechanismKind, PrivacyParams};
use eval::experiments::{figure2, release_cells};
use eval::metrics::spearman;
use std::hint::black_box;

fn bench_figure2(c: &mut Criterion) {
    let ctx = bench_context();
    let truth = &ctx.sdl_w1.truth;
    let keys: Vec<_> = truth.iter().map(|(k, _)| k).collect();
    let sdl_counts: Vec<f64> = keys
        .iter()
        .map(|k| ctx.sdl_w1.published.get(k).copied().unwrap_or(0.0))
        .collect();

    let mut group = c.benchmark_group("figure2");
    group.bench_function("release_and_rank", |b| {
        let params = PrivacyParams::pure(0.1, 2.0);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let published =
                release_cells(truth, MechanismKind::SmoothGamma, &params, seed).unwrap();
            let ours: Vec<f64> = keys
                .iter()
                .map(|k| published.get(k).copied().unwrap_or(0.0))
                .collect();
            black_box(spearman(&sdl_counts, &ours))
        })
    });

    group.bench_function("spearman_only", |b| {
        let params = PrivacyParams::pure(0.1, 2.0);
        let published = release_cells(truth, MechanismKind::SmoothGamma, &params, 1).unwrap();
        let ours: Vec<f64> = keys
            .iter()
            .map(|k| published.get(k).copied().unwrap_or(0.0))
            .collect();
        b.iter(|| black_box(spearman(&sdl_counts, &ours)))
    });

    group.sample_size(10);
    group.bench_function("full_experiment_small", |b| {
        let trials = bench_trials();
        b.iter(|| black_box(figure2::run(&ctx, &trials)))
    });
    group.finish();
}

criterion_group!(benches, bench_figure2);
criterion_main!(benches);
