//! Benchmark for Figure 3 (single sex × education query L1 ratio): the
//! Workload 3 single-cell release path.

use bench::{bench_context, bench_trials};
use criterion::{criterion_group, criterion_main, Criterion};
use eree_core::{MechanismKind, PrivacyParams};
use eval::experiments::{figure3, release_cells};
use eval::metrics::l1_error;
use std::hint::black_box;

fn bench_figure3(c: &mut Criterion) {
    let ctx = bench_context();
    let truth = &ctx.sdl_w3.truth;

    let mut group = c.benchmark_group("figure3");
    group.bench_function("w3_single_query_release_score", |b| {
        let params = PrivacyParams::approximate(0.1, 2.0, 0.05);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let published =
                release_cells(truth, MechanismKind::SmoothLaplace, &params, seed).unwrap();
            black_box(l1_error(truth, &published))
        })
    });

    group.sample_size(10);
    group.bench_function("full_experiment_small", |b| {
        let trials = bench_trials();
        b.iter(|| black_box(figure3::run(&ctx, &trials)))
    });
    group.finish();
}

criterion_group!(benches, bench_figure3);
criterion_main!(benches);
