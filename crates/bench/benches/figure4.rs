//! Benchmark for Figure 4 (full sex × education marginal L1 ratio): the
//! weak-composition budget split plus the release inner loop.

use bench::{bench_context, bench_trials};
use criterion::{criterion_group, criterion_main, Criterion};
use eree_core::accountant::ReleaseCost;
use eree_core::neighbors::NeighborKind;
use eree_core::{MechanismKind, PrivacyParams};
use eval::experiments::{figure4, release_cells};
use eval::metrics::l1_error;
use std::hint::black_box;
use tabulate::workload3;

fn bench_figure4(c: &mut Criterion) {
    let ctx = bench_context();
    let truth = &ctx.sdl_w3.truth;
    let spec = workload3();

    let mut group = c.benchmark_group("figure4");
    group.bench_function("budget_split_and_release", |b| {
        let total = PrivacyParams::approximate(0.1, 16.0, 0.05);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let per_cell = ReleaseCost::per_cell_for_total(&spec, &total, NeighborKind::Weak);
            let published =
                release_cells(truth, MechanismKind::SmoothLaplace, &per_cell, seed).unwrap();
            black_box(l1_error(truth, &published))
        })
    });

    group.sample_size(10);
    group.bench_function("full_experiment_small", |b| {
        let trials = bench_trials();
        b.iter(|| black_box(figure4::run(&ctx, &trials)))
    });
    group.finish();
}

criterion_group!(benches, bench_figure4);
criterion_main!(benches);
