//! Benchmark for Figure 5 (Ranking 2 Spearman): the filtered-marginal
//! tabulation plus release-and-rank loop.

use bench::{bench_context, bench_trials};
use criterion::{criterion_group, criterion_main, Criterion};
use eree_core::{MechanismKind, PrivacyParams};
use eval::experiments::{figure5, release_cells};
use eval::metrics::spearman;
use std::hint::black_box;
use tabulate::{compute_marginal_filtered, ranking2_filter, workload1};

fn bench_figure5(c: &mut Criterion) {
    let ctx = bench_context();

    let mut group = c.benchmark_group("figure5");
    group.bench_function("filtered_tabulation", |b| {
        b.iter(|| {
            black_box(compute_marginal_filtered(
                &ctx.dataset,
                &workload1(),
                ranking2_filter,
            ))
        })
    });

    let truth = compute_marginal_filtered(&ctx.dataset, &workload1(), ranking2_filter);
    let keys: Vec<_> = truth.iter().map(|(k, _)| k).collect();
    let base: Vec<f64> = truth.iter().map(|(_, s)| s.count as f64).collect();
    group.bench_function("release_and_rank_filtered", |b| {
        let params = PrivacyParams::pure(0.1, 2.0);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let published =
                release_cells(&truth, MechanismKind::SmoothGamma, &params, seed).unwrap();
            let ours: Vec<f64> = keys
                .iter()
                .map(|k| published.get(k).copied().unwrap_or(0.0))
                .collect();
            black_box(spearman(&base, &ours))
        })
    });

    group.sample_size(10);
    group.bench_function("full_experiment_small", |b| {
        let trials = bench_trials();
        b.iter(|| black_box(figure5::run(&ctx, &trials)))
    });
    group.finish();
}

criterion_group!(benches, bench_figure5);
criterion_main!(benches);
