//! Mechanism microbenchmarks: per-release cost of each mechanism, the
//! noise samplers, and the SDL/graph-DP baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use eree_core::mechanisms::{LogLaplaceMechanism, SmoothGammaMechanism, SmoothLaplaceMechanism};
use eree_core::{CellQuery, CountMechanism};
use noise::{ContinuousDistribution, GammaPoly, Laplace, LogLaplace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_samplers(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    let mut rng = StdRng::seed_from_u64(1);

    let laplace = Laplace::new(1.0).unwrap();
    group.bench_function("laplace", |b| {
        b.iter(|| black_box(laplace.sample(&mut rng)))
    });

    let gamma_poly = GammaPoly::standard();
    group.bench_function("gamma_poly_rejection", |b| {
        b.iter(|| black_box(gamma_poly.sample(&mut rng)))
    });

    let log_laplace = LogLaplace::new(100.0, 0.3).unwrap();
    group.bench_function("log_laplace", |b| {
        b.iter(|| black_box(log_laplace.sample(&mut rng)))
    });
    group.finish();
}

fn bench_mechanism_release(c: &mut Criterion) {
    let mut group = c.benchmark_group("mechanism_release");
    let q = CellQuery {
        count: 1234,
        max_establishment: 400,
    };
    let mut rng = StdRng::seed_from_u64(2);

    let ll = LogLaplaceMechanism::new(0.1, 2.0);
    group.bench_function("log_laplace", |b| {
        b.iter(|| black_box(ll.release(&q, &mut rng)))
    });

    let llc = LogLaplaceMechanism::new(0.1, 2.0).with_bias_correction();
    group.bench_function("log_laplace_bias_corrected", |b| {
        b.iter(|| black_box(llc.release(&q, &mut rng)))
    });

    let sg = SmoothGammaMechanism::new(0.1, 2.0).unwrap();
    group.bench_function("smooth_gamma", |b| {
        b.iter(|| black_box(sg.release(&q, &mut rng)))
    });

    let sl = SmoothLaplaceMechanism::new(0.1, 2.0, 0.05).unwrap();
    group.bench_function("smooth_laplace", |b| {
        b.iter(|| black_box(sl.release(&q, &mut rng)))
    });
    group.finish();
}

fn bench_density_evaluation(c: &mut Criterion) {
    // The privacy-verification test suite scans densities; keep those fast.
    let mut group = c.benchmark_group("density_eval");
    let q = CellQuery {
        count: 1234,
        max_establishment: 400,
    };
    let sg = SmoothGammaMechanism::new(0.1, 2.0).unwrap();
    group.bench_function("smooth_gamma_pdf_scan_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                acc += sg.output_pdf(&q, 1000.0 + i as f64);
            }
            black_box(acc)
        })
    });
    let ll = LogLaplaceMechanism::new(0.1, 2.0);
    group.bench_function("log_laplace_pdf_scan_1k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                acc += ll.output_pdf(&q, 1000.0 + i as f64);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_samplers,
    bench_mechanism_release,
    bench_density_evaluation
);
criterion_main!(benches);
