//! Benchmark for Table 1: the requirement-satisfaction matrix rendering
//! and its numeric verification (Bayes-factor density scans).

use criterion::{criterion_group, criterion_main, Criterion};
use eval::experiments::table1;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.bench_function("matrix_render", |b| b.iter(|| black_box(table1::run())));
    group.sample_size(10);
    group.bench_function("numeric_verification", |b| {
        b.iter(|| {
            let results = table1::verify();
            assert!(results.iter().all(|(_, ok)| *ok));
            black_box(results)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
