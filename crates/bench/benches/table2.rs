//! Benchmark for Table 2: the minimum-ε computation and the validity
//! frontier scan across the (α, δ) grid.

use criterion::{criterion_group, criterion_main, Criterion};
use eree_core::definitions::{min_epsilon_smooth_gamma, min_epsilon_smooth_laplace};
use eree_core::mechanisms::SmoothLaplaceMechanism;
use eval::experiments::table2;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.bench_function("regenerate", |b| b.iter(|| black_box(table2::run())));
    group.bench_function("min_epsilon_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for alpha in [0.01, 0.05, 0.1, 0.15, 0.2] {
                for delta in [0.05, 1e-3, 5e-4, 1e-6] {
                    acc += min_epsilon_smooth_laplace(alpha, delta);
                }
                acc += min_epsilon_smooth_gamma(alpha);
            }
            black_box(acc)
        })
    });
    group.bench_function("validity_frontier_scan", |b| {
        b.iter(|| {
            let mut valid = 0usize;
            for i in 1..100 {
                let eps = i as f64 * 0.05;
                if SmoothLaplaceMechanism::new(0.1, eps, 5e-4).is_some() {
                    valid += 1;
                }
            }
            black_box(valid)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
