//! Tabulation-engine benchmarks: marginal computation across spec widths,
//! the SDL publication pipeline, and graph-DP baselines.

use bench::bench_context;
use criterion::{criterion_group, criterion_main, Criterion};
use graphdp::{EdgeLaplace, TruncatedLaplace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdl::{SdlConfig, SdlPublisher};
use std::hint::black_box;
use tabulate::{
    compute_marginal_legacy, workload1, workload3, MarginalSpec, TabulationIndex, WorkplaceAttr,
};

fn bench_engine(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("tabulate");
    group.sample_size(20);

    // Legacy per-worker hash-map engine (the retained reference path).
    group.bench_function("workload1_marginal_legacy", |b| {
        b.iter(|| black_box(compute_marginal_legacy(&ctx.dataset, &workload1())))
    });
    group.bench_function("workload3_marginal_legacy", |b| {
        b.iter(|| black_box(compute_marginal_legacy(&ctx.dataset, &workload3())))
    });

    // Columnar CSR index engine: one-time build, then indexed tabulation.
    group.bench_function("index_build", |b| {
        b.iter(|| black_box(TabulationIndex::build(&ctx.dataset)))
    });
    let index = TabulationIndex::build(&ctx.dataset);
    group.bench_function("workload1_marginal_indexed", |b| {
        b.iter(|| black_box(index.marginal(&workload1())))
    });
    group.bench_function("workload3_marginal_indexed", |b| {
        b.iter(|| black_box(index.marginal(&workload3())))
    });
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    group.bench_function("workload3_marginal_indexed_sharded", |b| {
        b.iter(|| black_box(index.marginal_sharded(&workload3(), threads)))
    });
    group.bench_function("naics_only_marginal_indexed", |b| {
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]);
        b.iter(|| black_box(index.marginal(&spec)))
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("baselines");
    group.sample_size(20);

    group.bench_function("sdl_publish_workload1", |b| {
        let publisher = SdlPublisher::new(&ctx.dataset, SdlConfig::default());
        b.iter(|| black_box(publisher.publish(&ctx.dataset, &workload1())))
    });
    group.bench_function("edge_laplace_workload1", |b| {
        let mech = EdgeLaplace::new(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(mech.release_marginal(&ctx.dataset, &workload1(), &mut rng)))
    });
    group.bench_function("truncated_laplace_workload1_theta50", |b| {
        let mech = TruncatedLaplace::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(mech.release_marginal(&ctx.dataset, &workload1(), &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_baselines);
criterion_main!(benches);
