//! Old-vs-new tabulation timing: the legacy per-worker hash-map engine
//! against the columnar CSR [`TabulationIndex`] engine, on the canonical
//! eval dataset.
//!
//! Writes `BENCH_tabulate.json` at the repo root (override with
//! `--out <path>`), recording per-spec wall times and speedups plus the
//! one-time index build cost. The spec list includes a `flows:` workload:
//! the quarter-pair flow tabulation over a two-quarter panel, legacy
//! `establishment_size` scan vs the CSR index pair. Exits nonzero
//! (panics) if the two engines ever disagree on a single cell, so CI can
//! run it as a correctness smoke as well as a perf probe.
//!
//! Usage: `cargo run --release -p bench --bin bench_tabulate --
//! [--iters N] [--out PATH] [--national JOBS]
//! [--check-against BASELINE [--max-regression F]]`.
//! Scale follows `EREE_SCALE` (`small`/`default`/`paper`);
//! `--national JOBS` additionally streams a ~`JOBS`-job
//! `GeneratorConfig::national` universe into a region-sharded index and
//! records the build cost, peak RSS, kernel A/B, and thread-scaling
//! curve in a `national` section.
//!
//! `--check-against` is the CI delta guard: after writing the fresh
//! results, the Workload 1 single-threaded speedup is compared against the
//! same field of the checked-in baseline file (which must come from the
//! same scale), and the run exits nonzero if it regressed by more than
//! `--max-regression` (default 0.20, i.e. >20%). Speedup is a *ratio* of
//! two timings from the same run, so it is far more stable across runner
//! hardware than absolute milliseconds.
//!
//! The output schema (field-by-field) and the 1-core dev-container
//! caveat are documented in the `bench` crate's rustdoc (`crates/bench`).

use eval::runner::EvalScale;
use lodes::{Dataset, DatasetPanel, Generator, GeneratorConfig, PanelConfig};
use std::time::Instant;
use tabulate::{
    compute_flows_legacy, compute_marginal_legacy, simd_available, workload1, workload3,
    FlowMarginal, Kernel, Marginal, MarginalSpec, RegionIndexBuilder, TabulationIndex, WorkerAttr,
    WorkplaceAttr,
};

/// Canonical eval data seed (same as `ExperimentContext::new`).
const CANONICAL_SEED: u64 = 0xEEE5_2017;

fn time_best<T>(iters: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..iters {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.expect("at least one iteration"))
}

fn assert_identical(name: &str, legacy: &Marginal, indexed: &Marginal) {
    assert_eq!(
        legacy.num_cells(),
        indexed.num_cells(),
        "{name}: cell count mismatch"
    );
    for ((lk, ls), (ik, is)) in legacy.iter().zip(indexed.iter()) {
        assert_eq!(lk, ik, "{name}: key order mismatch");
        assert_eq!(ls, is, "{name}: stats mismatch at key {lk:?}");
    }
}

fn assert_flows_identical(name: &str, legacy: &FlowMarginal, indexed: &FlowMarginal) {
    assert_eq!(
        legacy.num_cells(),
        indexed.num_cells(),
        "{name}: flow cell count mismatch"
    );
    for ((lk, ls), (ik, is)) in legacy.iter().zip(indexed.iter()) {
        assert_eq!(lk, ik, "{name}: flow key order mismatch");
        assert_eq!(ls, is, "{name}: flow stats mismatch at key {lk:?}");
    }
    assert_eq!(
        legacy.content_digest(),
        indexed.content_digest(),
        "{name}: flow content digest mismatch"
    );
}

struct SpecResult {
    name: String,
    cells: usize,
    legacy_ms: f64,
    scalar_1t_ms: f64,
    indexed_ms: f64,
    indexed_mt_ms: f64,
    speedup_1t: f64,
    speedup_mt: f64,
    simd_speedup_1t: f64,
}

fn bench_spec(
    dataset: &Dataset,
    index: &TabulationIndex,
    spec: &MarginalSpec,
    iters: usize,
    threads: usize,
) -> SpecResult {
    let (legacy_ms, legacy) = time_best(iters, || compute_marginal_legacy(dataset, spec));
    let (scalar_1t_ms, scalar) = time_best(iters, || {
        index.marginal_sharded_with_kernel(spec, 1, Kernel::Scalar)
    });
    let (indexed_ms, indexed) = time_best(iters, || index.marginal(spec));
    // MT rows go through the same shard-count heuristic the release
    // engine applies: when the dataset is too small (or the host too
    // narrow) to pay for sharding, the 1-thread measurement IS the
    // multi-thread result — recorded as such, so MT never loses to 1T
    // on noise alone.
    let eff = index.effective_shards(threads);
    let (indexed_mt_ms, indexed_mt) = if eff <= 1 {
        (indexed_ms, indexed.clone())
    } else {
        time_best(iters, || index.marginal_sharded(spec, eff))
    };
    assert_identical(&spec.name(), &legacy, &scalar);
    assert_identical(&spec.name(), &legacy, &indexed);
    assert_identical(&spec.name(), &legacy, &indexed_mt);
    SpecResult {
        name: spec.name(),
        cells: legacy.num_cells(),
        legacy_ms,
        scalar_1t_ms,
        indexed_ms,
        indexed_mt_ms,
        speedup_1t: legacy_ms / indexed_ms,
        speedup_mt: legacy_ms / indexed_mt_ms,
        simd_speedup_1t: scalar_1t_ms / indexed_ms,
    }
}

/// Old-vs-new timing for the flow (quarter-pair) tabulation: the legacy
/// per-establishment `establishment_size` scan against the CSR index pair,
/// on the workplace-only flow spec. Panics on any cell disagreement, so
/// the CI smoke covers the flow engine too.
fn bench_flows(
    panel: &DatasetPanel,
    spec: &MarginalSpec,
    iters: usize,
    threads: usize,
) -> SpecResult {
    let before = panel.quarter(0);
    let after = panel.quarter(1);
    let before_index = TabulationIndex::build(before);
    let after_index = TabulationIndex::build(after);
    let (legacy_ms, legacy) = time_best(iters, || compute_flows_legacy(before, after, spec));
    let (scalar_1t_ms, scalar) = time_best(iters, || {
        before_index.flows_sharded_with_kernel(&after_index, spec, 1, Kernel::Scalar)
    });
    let (indexed_ms, indexed) =
        time_best(iters, || before_index.flows_sharded(&after_index, spec, 1));
    let eff = before_index.effective_shards(threads);
    let (indexed_mt_ms, indexed_mt) = if eff <= 1 {
        (indexed_ms, indexed.clone())
    } else {
        time_best(iters, || {
            before_index.flows_sharded(&after_index, spec, eff)
        })
    };
    let name = format!("flows:{}", spec.name());
    assert_flows_identical(&name, &legacy, &scalar);
    assert_flows_identical(&name, &legacy, &indexed);
    assert_flows_identical(&name, &legacy, &indexed_mt);
    SpecResult {
        name,
        cells: legacy.num_cells(),
        legacy_ms,
        scalar_1t_ms,
        indexed_ms,
        indexed_mt_ms,
        speedup_1t: legacy_ms / indexed_ms,
        speedup_mt: legacy_ms / indexed_mt_ms,
        simd_speedup_1t: scalar_1t_ms / indexed_ms,
    }
}

/// Peak resident set size of this process so far, in MiB (`VmHWM` from
/// `/proc/self/status`); `0.0` where procfs is unavailable.
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<f64>()
                .ok()
        })
        .map(|kb| kb / 1024.0)
        .unwrap_or(0.0)
}

/// One spec's national-scale scaling curve.
struct NationalSpecResult {
    name: String,
    cells: usize,
    scalar_1t_ms: f64,
    simd_speedup_1t: f64,
    /// `(threads, best ms)` pairs, ascending in threads.
    threads_ms: Vec<(usize, f64)>,
}

/// The national streaming workload: stream-generate `target_jobs` jobs
/// straight into a region-sharded index (no flat `Dataset` is ever
/// materialized — peak RSS stays bounded by the index itself), then
/// record the 1..=N-thread scaling curve per spec. Returns the JSON
/// fragment for the `national` section.
fn bench_national(target_jobs: usize, iters: usize, threads: usize) -> String {
    let cfg = GeneratorConfig::national(CANONICAL_SEED, target_jobs);
    let generator = Generator::new(cfg);
    eprintln!("national: streaming ~{target_jobs} jobs into a region-sharded index ...");
    let build_start = Instant::now();
    let mut builder = RegionIndexBuilder::new(&generator.geography());
    generator.for_each_establishment(|wp, workers| builder.push_establishment(wp, workers));
    let index = builder.finish();
    let stream_build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    let rss = peak_rss_mb();
    eprintln!(
        "national: {} jobs, {} establishments, {} shards; stream build {:.0} ms; peak RSS {:.0} MiB",
        index.num_workers(),
        index.num_establishments(),
        index.num_shards(),
        stream_build_ms,
        rss
    );

    // Thread counts for the scaling curve: powers of two up to the
    // host's parallelism (always including 1). A 1-core container
    // records a single honest point; multi-core runners get the curve.
    let mut curve_threads = vec![1usize];
    let mut t = 2;
    while t <= threads {
        curve_threads.push(t);
        t *= 2;
    }

    let full_spec = MarginalSpec::new(
        vec![
            WorkplaceAttr::Place,
            WorkplaceAttr::Naics,
            WorkplaceAttr::Ownership,
        ],
        vec![
            WorkerAttr::Sex,
            WorkerAttr::Age,
            WorkerAttr::Race,
            WorkerAttr::Ethnicity,
            WorkerAttr::Education,
        ],
    );
    let mut results = Vec::new();
    for spec in [workload1(), full_spec] {
        let (scalar_1t_ms, scalar) = time_best(iters, || {
            index.marginal_sharded_with_kernel(&spec, 1, Kernel::Scalar)
        });
        let mut threads_ms = Vec::new();
        let mut auto_1t_ms = f64::INFINITY;
        for &t in &curve_threads {
            let (ms, m) = time_best(iters, || index.marginal_sharded(&spec, t));
            assert_eq!(
                m,
                scalar,
                "national {}: {t}-thread result diverged from scalar",
                spec.name()
            );
            if t == 1 {
                auto_1t_ms = ms;
            }
            threads_ms.push((t, ms));
        }
        let r = NationalSpecResult {
            name: spec.name(),
            cells: scalar.num_cells(),
            scalar_1t_ms,
            simd_speedup_1t: scalar_1t_ms / auto_1t_ms,
            threads_ms,
        };
        eprintln!(
            "national {:<45} scalar(1t) {:>9.1} ms | simd(1t) {:>9.1} ms ({:.2}x) | curve {:?}",
            r.name, r.scalar_1t_ms, auto_1t_ms, r.simd_speedup_1t, r.threads_ms
        );
        results.push(r);
    }

    let scaling: Vec<String> = results
        .iter()
        .map(|r| {
            let curve: Vec<String> = r
                .threads_ms
                .iter()
                .map(|(t, ms)| format!("{{\"threads\": {t}, \"ms\": {ms:.3}}}"))
                .collect();
            format!(
                "      {{\n        \"spec\": \"{}\",\n        \"cells\": {},\n        \"scalar_1t_ms\": {:.3},\n        \"simd_speedup_1t\": {:.3},\n        \"threads_ms\": [{}]\n      }}",
                r.name,
                r.cells,
                r.scalar_1t_ms,
                r.simd_speedup_1t,
                curve.join(", ")
            )
        })
        .collect();
    format!(
        "  \"national\": {{\n    \"jobs\": {},\n    \"establishments\": {},\n    \"shards\": {},\n    \"simd\": {},\n    \"stream_build_ms\": {:.3},\n    \"peak_rss_mb\": {:.1},\n    \"scaling\": [\n{}\n    ]\n  }}",
        index.num_workers(),
        index.num_establishments(),
        index.num_shards(),
        simd_available(),
        stream_build_ms,
        rss,
        scaling.join(",\n")
    )
}

/// Extract `national.scaling[spec == spec_name].simd_speedup_1t` from a
/// results file, `None` when the file has no `national` section (the
/// small-scale CI baseline deliberately omits it).
fn national_simd_speedup(json: &str, spec_name: &str) -> Option<f64> {
    let value: serde::Value = serde_json::from_str(json).ok()?;
    let scaling = match value.get("national")?.get("scaling") {
        Some(serde::Value::Seq(scaling)) => scaling,
        _ => return None,
    };
    for spec in scaling {
        if spec.get("spec") == Some(&serde::Value::Str(spec_name.to_string())) {
            return match spec.get("simd_speedup_1t") {
                Some(serde::Value::F64(x)) => Some(*x),
                Some(serde::Value::U64(n)) => Some(*n as f64),
                _ => None,
            };
        }
    }
    None
}

/// Extract the `scale` field from a results file.
fn result_scale(json: &str, path: &str) -> String {
    let value: serde::Value = serde_json::from_str(json)
        .unwrap_or_else(|e| panic!("unparseable results file {path}: {e}"));
    match value.get("scale") {
        Some(serde::Value::Str(scale)) => scale.clone(),
        _ => panic!("results file {path} has no `scale` field"),
    }
}

/// Extract `specs[name == spec_name].speedup_1t` from a results file.
fn speedup_1t(json: &str, spec_name: &str, path: &str) -> f64 {
    let value: serde::Value = serde_json::from_str(json)
        .unwrap_or_else(|e| panic!("unparseable results file {path}: {e}"));
    let specs = match value.get("specs") {
        Some(serde::Value::Seq(specs)) => specs,
        _ => panic!("results file {path} has no `specs` array"),
    };
    for spec in specs {
        if spec.get("spec") == Some(&serde::Value::Str(spec_name.to_string())) {
            return match spec.get("speedup_1t") {
                Some(serde::Value::F64(x)) => *x,
                Some(serde::Value::U64(n)) => *n as f64,
                _ => panic!("spec `{spec_name}` in {path} has no numeric `speedup_1t`"),
            };
        }
    }
    panic!("results file {path} has no spec named `{spec_name}`");
}

fn main() {
    let mut iters = 3usize;
    let mut out = format!("{}/../../BENCH_tabulate.json", env!("CARGO_MANIFEST_DIR"));
    let mut check_against: Option<String> = None;
    let mut max_regression = 0.20f64;
    let mut national_jobs: Option<usize> = None;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args[i + 1].parse().expect("--iters takes a number");
                i += 2;
            }
            "--out" => {
                out = args[i + 1].clone();
                i += 2;
            }
            "--check-against" => {
                check_against = Some(args[i + 1].clone());
                i += 2;
            }
            "--max-regression" => {
                max_regression = args[i + 1].parse().expect("--max-regression takes a float");
                i += 2;
            }
            "--national" => {
                national_jobs = Some(args[i + 1].parse().expect("--national takes a job count"));
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let scale = EvalScale::from_env();
    eprintln!("generating canonical eval dataset ({scale:?}) ...");
    let dataset = Generator::new(scale.generator_config(CANONICAL_SEED)).generate();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "dataset: {} jobs, {} establishments; {threads} hardware threads; best of {iters} iters",
        dataset.num_jobs(),
        dataset.num_workplaces()
    );

    let (build_ms, index) = time_best(iters, || TabulationIndex::build(&dataset));

    // The full-attribute (workload3-class) spec: all establishment
    // attributes crossed with every worker attribute.
    let full_spec = MarginalSpec::new(
        vec![
            WorkplaceAttr::Place,
            WorkplaceAttr::Naics,
            WorkplaceAttr::Ownership,
        ],
        vec![
            WorkerAttr::Sex,
            WorkerAttr::Age,
            WorkerAttr::Race,
            WorkerAttr::Ethnicity,
            WorkerAttr::Education,
        ],
    );
    let specs = [workload1(), workload3(), full_spec];
    let mut results = Vec::new();
    for spec in &specs {
        let r = bench_spec(&dataset, &index, spec, iters, threads);
        eprintln!(
            "{:<55} legacy {:>9.3} ms | indexed(1t) {:>9.3} ms ({:>5.2}x) | indexed({}t) {:>9.3} ms ({:>5.2}x) | {} cells",
            r.name, r.legacy_ms, r.indexed_ms, r.speedup_1t, threads, r.indexed_mt_ms, r.speedup_mt, r.cells
        );
        results.push(r);
    }

    // The flow workload: a two-quarter panel over the same canonical
    // establishment frame, tabulated with the workplace-only flow spec.
    eprintln!("generating two-quarter panel for the flow workload ...");
    let panel = DatasetPanel::generate(
        &scale.generator_config(CANONICAL_SEED),
        &PanelConfig {
            quarters: 2,
            growth_sigma: 0.08,
            death_rate: 0.02,
            seed: CANONICAL_SEED ^ 0x0F10,
        },
    );
    let flow_spec = MarginalSpec::new(
        vec![
            WorkplaceAttr::Place,
            WorkplaceAttr::Naics,
            WorkplaceAttr::Ownership,
        ],
        vec![],
    );
    let r = bench_flows(&panel, &flow_spec, iters, threads);
    eprintln!(
        "{:<55} legacy {:>9.3} ms | indexed(1t) {:>9.3} ms ({:>5.2}x) | indexed({}t) {:>9.3} ms ({:>5.2}x) | {} cells",
        r.name, r.legacy_ms, r.indexed_ms, r.speedup_1t, threads, r.indexed_mt_ms, r.speedup_mt, r.cells
    );
    results.push(r);

    let national_json = national_jobs.map(|jobs| bench_national(jobs, iters.min(3), threads));

    let spec_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"spec\": \"{}\",\n      \"cells\": {},\n      \"legacy_ms\": {:.3},\n      \"scalar_1t_ms\": {:.3},\n      \"indexed_1t_ms\": {:.3},\n      \"indexed_mt_ms\": {:.3},\n      \"speedup_1t\": {:.3},\n      \"speedup_mt\": {:.3},\n      \"simd_speedup_1t\": {:.3}\n    }}",
                r.name, r.cells, r.legacy_ms, r.scalar_1t_ms, r.indexed_ms, r.indexed_mt_ms,
                r.speedup_1t, r.speedup_mt, r.simd_speedup_1t
            )
        })
        .collect();
    let national_section = national_json.map(|n| format!(",\n{n}")).unwrap_or_default();
    let json = format!(
        "{{\n  \"bench\": \"tabulate_old_vs_new\",\n  \"scale\": \"{:?}\",\n  \"jobs\": {},\n  \"establishments\": {},\n  \"threads\": {},\n  \"iters\": {},\n  \"simd\": {},\n  \"index_build_ms\": {:.3},\n  \"specs\": [\n{}\n  ]{}\n}}\n",
        scale,
        dataset.num_jobs(),
        dataset.num_workplaces(),
        threads,
        iters,
        simd_available(),
        build_ms,
        spec_json.join(",\n"),
        national_section
    );
    std::fs::write(&out, &json).expect("write BENCH_tabulate.json");
    eprintln!("wrote {out}");

    // Delta guard: the Workload 1 single-threaded speedup must not have
    // regressed by more than `max_regression` relative to the baseline.
    if let Some(baseline_path) = check_against {
        let baseline_json =
            std::fs::read_to_string(&baseline_path).expect("read baseline results file");
        // Speedups are only comparable within one universe size: refuse a
        // baseline generated at a different EREE_SCALE outright instead
        // of passing (or failing) on an apples-to-oranges ratio.
        let baseline_scale = result_scale(&baseline_json, &baseline_path);
        let fresh_scale = result_scale(&json, &out);
        assert_eq!(
            baseline_scale, fresh_scale,
            "baseline {baseline_path} was generated at {baseline_scale:?} scale but this run \
             is {fresh_scale:?} — regenerate the baseline at the scale the guard runs at"
        );
        let spec_name = workload1().name();
        let baseline = speedup_1t(&baseline_json, &spec_name, &baseline_path);
        let fresh = speedup_1t(&json, &spec_name, &out);
        let floor = baseline * (1.0 - max_regression);
        eprintln!(
            "delta guard: workload1 speedup_1t fresh {fresh:.2}x vs baseline {baseline:.2}x \
             (floor {floor:.2}x at {:.0}% allowed regression)",
            max_regression * 100.0
        );
        assert!(
            fresh >= floor,
            "workload1 single-threaded speedup regressed more than {:.0}%: \
             {fresh:.2}x vs baseline {baseline:.2}x (floor {floor:.2}x; baseline {baseline_path})",
            max_regression * 100.0
        );

        // National guard: when both runs carried the streaming national
        // workload, its workload1 SIMD speedup (a within-run ratio, so
        // portable across runner hardware) must not regress either. A
        // small-scale CI baseline without a `national` section skips
        // this leg — the CI baseline stays cheap by design.
        if let (Some(base_n), Some(fresh_n)) = (
            national_simd_speedup(&baseline_json, &spec_name),
            national_simd_speedup(&json, &spec_name),
        ) {
            let floor = base_n * (1.0 - max_regression);
            eprintln!(
                "delta guard: national workload1 simd_speedup_1t fresh {fresh_n:.2}x vs \
                 baseline {base_n:.2}x (floor {floor:.2}x)"
            );
            assert!(
                fresh_n >= floor,
                "national workload1 SIMD speedup regressed more than {:.0}%: \
                 {fresh_n:.2}x vs baseline {base_n:.2}x (baseline {baseline_path})",
                max_regression * 100.0
            );
        }
    }
}
