//! Workspace member hosting the Criterion benchmark suite; see `benches/`.
//!
//! One bench target per paper exhibit (`figure1`..`figure5`, `table1`,
//! `table2`) plus mechanism microbenches and design-choice ablations.
//! Shared fixtures live here.
//!
//! # The tabulation perf probe and `BENCH_tabulate.json`
//!
//! Beyond the Criterion targets, `bin/bench_tabulate` times the legacy
//! per-worker tabulation engine against the columnar CSR
//! [`TabulationIndex`](tabulate::TabulationIndex) engine on the canonical
//! eval dataset, and **panics if the two ever disagree on a single
//! cell** — CI runs it at small scale as a correctness smoke as well as
//! a perf probe. Regenerate the checked-in file with:
//!
//! ```text
//! cargo run --release -p bench --bin bench_tabulate
//! ```
//!
//! (`--iters N` controls best-of-N timing, `--out PATH` overrides the
//! destination, and `EREE_SCALE` = `small` / `default` / `paper` selects
//! the universe; the checked-in `BENCH_tabulate.json` is Default scale,
//! ≈ 1.0 M jobs. The legacy engine it times lives behind tabulate's
//! `reference` feature, which this crate enables.)
//!
//! `BENCH_tabulate_ci.json` is a second checked-in baseline at **Small**
//! scale, consumed by the CI delta guard: passing
//! `--check-against <baseline>` makes the run exit nonzero when the
//! Workload 1 `speedup_1t` regressed by more than `--max-regression`
//! (default 0.20) relative to the baseline. The guard compares speedup
//! *ratios* (two timings from one run), not absolute milliseconds, so it
//! travels across runner hardware; regenerate the CI baseline with
//! `EREE_SCALE=small cargo run --release -p bench --bin bench_tabulate --
//! --out BENCH_tabulate_ci.json` whenever the engine legitimately
//! changes speed.
//!
//! The JSON written at the repo root has this schema:
//!
//! | field | meaning |
//! |---|---|
//! | `bench` | always `"tabulate_old_vs_new"` |
//! | `scale` | the `EREE_SCALE` the run used |
//! | `jobs`, `establishments` | size of the timed universe |
//! | `threads` | hardware threads used for the `_mt` rows |
//! | `iters` | best-of-N iteration count |
//! | `index_build_ms` | one-time [`TabulationIndex`](tabulate::TabulationIndex) build cost |
//! | `simd` | whether the AVX2 kernels were available at run time |
//! | `specs[].spec` | marginal spec name (`workload1`, `workload3`, full-attribute) |
//! | `specs[].cells` | nonzero cells tabulated |
//! | `specs[].legacy_ms` | legacy per-worker engine, single-threaded |
//! | `specs[].scalar_1t_ms` | CSR engine, single-threaded, `Kernel::Scalar` forced |
//! | `specs[].indexed_1t_ms` | CSR engine, single-threaded, `Kernel::Auto` (SIMD when available) |
//! | `specs[].indexed_mt_ms` | CSR engine, sharded across `effective_shards(threads)` (reuses the 1T time when sharding cannot pay, so MT never reads worse than 1T) |
//! | `specs[].speedup_1t` / `speedup_mt` | `legacy_ms` over the two indexed times |
//! | `specs[].simd_speedup_1t` | `scalar_1t_ms / indexed_1t_ms` — the kernel A/B on one index |
//!
//! Passing `--national JOBS` appends a `national` section: a
//! `GeneratorConfig::national` universe of roughly `JOBS` jobs is
//! **streamed** (`Generator::for_each_establishment`) into a
//! per-state `RegionIndexBuilder` without ever materializing the
//! dataset, and the section records the honest cost of that path:
//!
//! | field | meaning |
//! |---|---|
//! | `national.jobs`, `national.establishments`, `national.shards` | realized universe size and state-shard count |
//! | `national.simd` | AVX2 availability during the run |
//! | `national.stream_build_ms` | streaming generate-and-index wall time |
//! | `national.peak_rss_mb` | `VmHWM` after the build — the bounded-RSS claim, measured |
//! | `national.scaling[].spec` / `.cells` | workload tabulated against the sharded index |
//! | `national.scaling[].scalar_1t_ms` / `.simd_speedup_1t` | kernel A/B at national scale |
//! | `national.scaling[].threads_ms[]` | `{threads, ms}` curve, doubling thread counts up to the host |
//!
//! When both the fresh run and the `--check-against` baseline carry a
//! `national` section, the guard also fails on a >`--max-regression`
//! drop of the national Workload 1 `simd_speedup_1t` (the CI baseline is
//! Small scale without `--national`, so this extra guard only arms on
//! full regenerations).
//!
//! **Caveat (from ROADMAP):** the dev container is 1-core, so the
//! checked-in `indexed_mt_ms` ≈ `indexed_1t_ms`, the national scaling
//! curve has a single `threads = 1` point, and `engine_batch`'s
//! sequential-vs-parallel comparison reads as parity there; multi-core
//! CI runners show the real sharded speedup. Treat `speedup_1t` and
//! `simd_speedup_1t` as the portable numbers.

use eval::runner::{EvalScale, ExperimentContext, TrialSpec};

/// Small-scale context shared by the figure benches (benchmarks measure
/// per-iteration cost of the experiment inner loops, not paper-scale wall
/// time).
pub fn bench_context() -> ExperimentContext {
    ExperimentContext::with_seed(EvalScale::Small, 42)
}

/// Two-trial spec keeping bench iterations fast.
pub fn bench_trials() -> TrialSpec {
    TrialSpec {
        trials: 2,
        base_seed: 7,
    }
}
