//! Workspace member hosting the Criterion benchmark suite; see `benches/`.
//!
//! One bench target per paper exhibit (`figure1`..`figure5`, `table1`,
//! `table2`) plus mechanism microbenches and design-choice ablations.
//! Shared fixtures live here.

use eval::runner::{EvalScale, ExperimentContext, TrialSpec};

/// Small-scale context shared by the figure benches (benchmarks measure
/// per-iteration cost of the experiment inner loops, not paper-scale wall
/// time).
pub fn bench_context() -> ExperimentContext {
    ExperimentContext::with_seed(EvalScale::Small, 42)
}

/// Two-trial spec keeping bench iterations fast.
pub fn bench_trials() -> TrialSpec {
    TrialSpec {
        trials: 2,
        base_seed: 7,
    }
}
