//! Composition and budget accounting (Sec 7.3 of the paper).
//!
//! * **Sequential composition** (Thm 7.3): releasing (α,ε₁)- and
//!   (α,ε₂)-private outputs on the same data yields (α, ε₁+ε₂); δ values
//!   also add.
//! * **Parallel composition over establishments** (Thm 7.4): releases over
//!   record sets belonging to *distinct establishments* compose in
//!   parallel — total loss is the max, not the sum. Both strong and weak
//!   variants enjoy this. A workplace-only marginal partitions
//!   establishments across its cells, so the whole marginal costs ε.
//! * **Parallel composition over workers** (Thm 7.5): record sets that
//!   split workers *of the same establishments* (e.g. males vs females)
//!   compose in parallel under **strong** ER-EE privacy only. Under weak
//!   privacy, releasing a marginal with worker attributes costs
//!   `d·ε` where `d` is the worker-attribute domain size (Sec 8).
//!
//! # The accountant hierarchy
//!
//! Budget enforcement is layered, sharing one arithmetic core:
//!
//! * [`BudgetAccount`] — the compensated-summation budget arithmetic:
//!   a `(α, ε, δ)` cap, Neumaier-compensated spent totals, and the
//!   fail-closed admission rule (relative one-shot tolerance, NaN and
//!   negative charges refused outright).
//! * [`Ledger`] — a season-level account: every release charges it, every
//!   charge is recorded as a [`LedgerEntry`], and snapshots deserialize by
//!   *replaying* the entries through the same arithmetic.
//! * [`MetaLedger`] — the agency-level account above the seasons: a global
//!   privacy-loss cap (the social choice of Abowd & Schmutte, 2018) from
//!   which every season's *whole budget* is reserved up front. A season's
//!   ledger can never admit more than its budget, and the meta-ledger
//!   never reserves more than the cap, so the agency's lifetime loss is
//!   bounded by the cap however many seasons run, crash, or resume.
//!
//! [`Ledger`] enforces a total budget across a sequence of releases,
//! mirroring how a statistical agency would track cumulative privacy loss
//! across publications; [`MetaLedger`] is what `agency::AgencyStore`
//! persists to govern many seasons over one confidential snapshot.

use crate::definitions::PrivacyParams;
use crate::neighbors::NeighborKind;
use serde::{get_field, DeError, Deserialize, Serialize, Value};
use tabulate::MarginalSpec;

/// The privacy-loss cost of releasing one marginal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReleaseCost {
    /// Total ε charged.
    pub epsilon: f64,
    /// Total δ charged.
    pub delta: f64,
    /// The per-cell ε the mechanism must be instantiated with.
    pub per_cell_epsilon: f64,
    /// The sequential-composition multiplier that was applied
    /// (1 when parallel composition covers the whole marginal).
    pub multiplier: usize,
}

impl ReleaseCost {
    /// Cost of releasing every cell of `spec` with a per-cell
    /// `(α, ε, δ)`-mechanism under the given neighbor regime.
    ///
    /// * Workplace-only marginals: parallel composition over
    ///   establishments (Thm 7.4) → multiplier 1 under either regime.
    /// * Marginals with worker attributes:
    ///   * strong regime: cells with different worker values partition the
    ///     workers of each establishment → Thm 7.5 applies → multiplier 1;
    ///   * weak regime: Thm 7.5 fails; sequential composition over the
    ///     worker-attribute domain → multiplier `d`.
    pub fn for_marginal(
        spec: &MarginalSpec,
        per_cell: &PrivacyParams,
        regime: NeighborKind,
    ) -> Self {
        let multiplier = match (spec.has_worker_attrs(), regime) {
            (false, _) => 1,
            (true, NeighborKind::Strong) => 1,
            (true, NeighborKind::Weak) => spec.worker_domain_size(),
        };
        Self {
            epsilon: per_cell.epsilon * multiplier as f64,
            delta: per_cell.delta * multiplier as f64,
            per_cell_epsilon: per_cell.epsilon,
            multiplier,
        }
    }

    /// The number of sequentially-composed per-cell queries in a flow
    /// release: beginning employment `B`, job creation `JC`, and job
    /// destruction `JD` each get an independent noise draw per cell, while
    /// ending employment `E = B + JC − JD` is derived by post-processing
    /// and is free (Thm 7.3 composition; post-processing invariance).
    pub const FLOW_STATISTICS: usize = 3;

    /// Cost of releasing every cell of a *flow* marginal with a per-cell
    /// `(α, ε, δ)`-mechanism.
    ///
    /// Flow specs are workplace-only (the evaluator rejects worker
    /// attributes), so cells partition establishments and Thm 7.4 gives
    /// parallel composition across cells under either regime — per
    /// statistic. The three noised statistics (`B`, `JC`, `JD`) touch the
    /// same establishments and compose sequentially, so the multiplier is
    /// [`Self::FLOW_STATISTICS`] regardless of regime.
    pub fn for_flows(per_cell: &PrivacyParams) -> Self {
        let multiplier = Self::FLOW_STATISTICS;
        Self {
            epsilon: per_cell.epsilon * multiplier as f64,
            delta: per_cell.delta * multiplier as f64,
            per_cell_epsilon: per_cell.epsilon,
            multiplier,
        }
    }

    /// Invert [`Self::for_flows`]: per-cell-per-statistic parameters such
    /// that the whole flow release costs `total`.
    pub fn per_cell_for_flow_total(total: &PrivacyParams) -> PrivacyParams {
        let mut p = *total;
        p.epsilon = total.epsilon / Self::FLOW_STATISTICS as f64;
        p.delta = total.delta / Self::FLOW_STATISTICS as f64;
        p
    }

    /// Invert the accounting: per-cell parameters such that the *total*
    /// marginal release costs `total`, under the given regime.
    pub fn per_cell_for_total(
        spec: &MarginalSpec,
        total: &PrivacyParams,
        regime: NeighborKind,
    ) -> PrivacyParams {
        let multiplier = match (spec.has_worker_attrs(), regime) {
            (false, _) | (true, NeighborKind::Strong) => 1,
            (true, NeighborKind::Weak) => spec.worker_domain_size(),
        };
        let mut p = *total;
        p.epsilon = total.epsilon / multiplier as f64;
        p.delta = total.delta / multiplier as f64;
        p
    }
}

/// Errors from the budget ledger.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// The charge would exceed the remaining ε budget.
    EpsilonExhausted {
        /// Requested ε.
        requested: f64,
        /// Remaining ε.
        remaining: f64,
    },
    /// The charge would exceed the remaining δ budget.
    DeltaExhausted {
        /// Requested δ.
        requested: f64,
        /// Remaining δ.
        remaining: f64,
    },
    /// Charges must use the ledger's α (the guarantee is per-α).
    AlphaMismatch {
        /// The ledger's α.
        ledger: f64,
        /// The charge's α.
        charge: f64,
    },
    /// A charge whose ε or δ is negative (a budget *refund*) or non-finite
    /// (a NaN admitted into the spent totals would make every comparison
    /// against the budget false and disable enforcement forever).
    InvalidCharge {
        /// The offending ε.
        epsilon: f64,
        /// The offending δ.
        delta: f64,
    },
    /// A [`MetaLedger`] reservation re-using a season name. Every season
    /// holds exactly one reservation; reserving twice under one name would
    /// double-count (or worse, silently alias) a season's budget.
    DuplicateReservation {
        /// The already-reserved season name.
        name: String,
    },
    /// A closure event naming a season that holds no reservation — there
    /// is nothing to refund against.
    UnknownSeason {
        /// The unreserved season name.
        name: String,
    },
    /// A second closure of the same season. A season closes exactly once;
    /// a duplicate close-begin would refund the remainder twice.
    DuplicateClosure {
        /// The already-closing (or closed) season name.
        name: String,
    },
    /// A close-begin refund larger than the season's reservation. The
    /// refund is the *unspent remainder*, so it can never legitimately
    /// exceed what was reserved; a bigger refund would mint budget. The
    /// reported pair is the offending component (ε or δ).
    RefundExceedsReservation {
        /// The season being closed.
        name: String,
        /// The refund requested for the offending component.
        requested: f64,
        /// That component's reserved amount.
        reserved: f64,
    },
    /// A close-seal without a durably recorded close-begin for the season.
    /// Sealing is phase two of the two-phase refund; out of order it would
    /// credit an amount that was never frozen.
    NoPendingClosure {
        /// The season name.
        name: String,
    },
    /// A credit larger than the account's spent total. Crediting past zero
    /// would leave more budget available than the cap. The reported pair
    /// is the offending component (ε or δ).
    CreditExceedsSpent {
        /// The credit requested for the offending component.
        requested: f64,
        /// That component's spent total.
        spent: f64,
    },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::EpsilonExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "epsilon budget exhausted: requested {requested}, remaining {remaining}"
            ),
            LedgerError::DeltaExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "delta budget exhausted: requested {requested}, remaining {remaining}"
            ),
            LedgerError::AlphaMismatch { ledger, charge } => {
                write!(f, "alpha mismatch: ledger {ledger}, charge {charge}")
            }
            LedgerError::InvalidCharge { epsilon, delta } => {
                write!(
                    f,
                    "invalid charge refused (epsilon {epsilon}, delta {delta}): \
                     privacy loss must be finite and non-negative"
                )
            }
            LedgerError::DuplicateReservation { name } => {
                write!(f, "season `{name}` already holds a budget reservation")
            }
            LedgerError::UnknownSeason { name } => {
                write!(f, "season `{name}` holds no budget reservation")
            }
            LedgerError::DuplicateClosure { name } => {
                write!(f, "season `{name}` is already closing or closed")
            }
            LedgerError::RefundExceedsReservation {
                name,
                requested,
                reserved,
            } => write!(
                f,
                "refund for season `{name}` exceeds its reservation: \
                 requested {requested}, reserved {reserved}"
            ),
            LedgerError::NoPendingClosure { name } => {
                write!(f, "season `{name}` has no pending close-begin to seal")
            }
            LedgerError::CreditExceedsSpent { requested, spent } => write!(
                f,
                "credit exceeds the spent total: requested {requested}, spent {spent}"
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

/// One recorded charge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Free-form description of the release.
    pub description: String,
    /// ε charged.
    pub epsilon: f64,
    /// δ charged.
    pub delta: f64,
}

/// A running sum with Neumaier (improved Kahan) compensation.
///
/// A publication season is a long sequence of small charges; naive `+=`
/// accumulates rounding drift that either leaks budget (spend
/// under-counted) or strands it (over-counted). The compensated sum keeps
/// the error of the whole sequence at one ulp of the total, independent of
/// its length.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct CompensatedSum {
    sum: f64,
    compensation: f64,
}

impl CompensatedSum {
    fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
    }

    fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// Relative budget tolerance: the total spend may exceed the budget by at
/// most `LEDGER_REL_TOL × budget` — *cumulatively*, over the whole life of
/// the ledger, not per charge. (An absolute per-charge tolerance would
/// admit ε ≤ tol charges forever once the budget is exhausted: an
/// unbounded leak via repeated tiny releases.)
pub const LEDGER_REL_TOL: f64 = 1e-9;

/// The budget arithmetic core every accountant level shares: a
/// `(α, ε, δ)` cap with Neumaier-compensated spent totals and the
/// fail-closed admission rule.
///
/// [`Ledger`] (per-season release charges) and [`MetaLedger`]
/// (agency-level season reservations) are both thin record-keeping layers
/// over this account, so a charge admitted at either level obeys exactly
/// the same rules: finite, non-negative, and within one relative
/// [`LEDGER_REL_TOL`] of the cap over the account's whole lifetime — with
/// a NaN cap refusing everything rather than admitting everything.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetAccount {
    budget: PrivacyParams,
    spent_epsilon: CompensatedSum,
    spent_delta: CompensatedSum,
}

impl BudgetAccount {
    /// Open an account holding `budget`.
    pub fn new(budget: PrivacyParams) -> Self {
        Self {
            budget,
            spent_epsilon: CompensatedSum::default(),
            spent_delta: CompensatedSum::default(),
        }
    }

    /// The total budget.
    pub fn budget(&self) -> &PrivacyParams {
        &self.budget
    }

    /// Total ε admitted so far (compensated sum).
    pub fn spent_epsilon(&self) -> f64 {
        self.spent_epsilon.value()
    }

    /// Total δ admitted so far (compensated sum).
    pub fn spent_delta(&self) -> f64 {
        self.spent_delta.value()
    }

    /// Remaining ε.
    pub fn remaining_epsilon(&self) -> f64 {
        (self.budget.epsilon - self.spent_epsilon.value()).max(0.0)
    }

    /// Remaining δ.
    pub fn remaining_delta(&self) -> f64 {
        (self.budget.delta - self.spent_delta.value()).max(0.0)
    }

    /// Admit a charge, mutating the spent totals only when the projected
    /// totals stay within one relative tolerance of the budget.
    ///
    /// A NaN charge admitted into the spent totals would make every later
    /// budget comparison false and disable enforcement forever, so
    /// non-finite (and negative) charges are refused outright; and with
    /// finite non-negative charges the only possible NaN below is a NaN
    /// *budget*, which must refuse, not admit — the account fails closed.
    pub fn admit(&mut self, epsilon: f64, delta: f64) -> Result<(), LedgerError> {
        let invalid = |x: f64| !x.is_finite() || x < 0.0;
        if invalid(epsilon) || invalid(delta) {
            return Err(LedgerError::InvalidCharge { epsilon, delta });
        }
        let mut projected_epsilon = self.spent_epsilon;
        projected_epsilon.add(epsilon);
        let cap = self.budget.epsilon * (1.0 + LEDGER_REL_TOL);
        if cap.is_nan() || projected_epsilon.value() > cap {
            return Err(LedgerError::EpsilonExhausted {
                requested: epsilon,
                remaining: self.remaining_epsilon(),
            });
        }
        let mut projected_delta = self.spent_delta;
        projected_delta.add(delta);
        let cap = self.budget.delta * (1.0 + LEDGER_REL_TOL);
        if cap.is_nan() || projected_delta.value() > cap {
            return Err(LedgerError::DeltaExhausted {
                requested: delta,
                remaining: self.remaining_delta(),
            });
        }
        self.spent_epsilon = projected_epsilon;
        self.spent_delta = projected_delta;
        Ok(())
    }

    /// Return previously admitted budget to the account, mutating the
    /// spent totals only when the projected totals stay non-negative
    /// (within one relative tolerance of zero).
    ///
    /// This is the refund arithmetic behind [`MetaLedger`] season
    /// closures: a credit is the mirror of [`admit`](Self::admit), with
    /// the same fail-closed posture — non-finite and negative credits are
    /// refused outright, and a credit that would push the spent totals
    /// below zero (i.e. mint budget past the cap) is refused with
    /// [`LedgerError::CreditExceedsSpent`].
    pub fn credit(&mut self, epsilon: f64, delta: f64) -> Result<(), LedgerError> {
        let invalid = |x: f64| !x.is_finite() || x < 0.0;
        if invalid(epsilon) || invalid(delta) {
            return Err(LedgerError::InvalidCharge { epsilon, delta });
        }
        let mut projected_epsilon = self.spent_epsilon;
        projected_epsilon.add(-epsilon);
        let floor = -self.budget.epsilon.abs() * LEDGER_REL_TOL;
        // A NaN projection (NaN budget) must refuse, not admit.
        let below = |x: f64, floor: f64| x.is_nan() || x < floor;
        if below(projected_epsilon.value(), floor) {
            return Err(LedgerError::CreditExceedsSpent {
                requested: epsilon,
                spent: self.spent_epsilon(),
            });
        }
        let mut projected_delta = self.spent_delta;
        projected_delta.add(-delta);
        let floor = -self.budget.delta.abs() * LEDGER_REL_TOL;
        if below(projected_delta.value(), floor) {
            return Err(LedgerError::CreditExceedsSpent {
                requested: delta,
                spent: self.spent_delta(),
            });
        }
        self.spent_epsilon = projected_epsilon;
        self.spent_delta = projected_delta;
        Ok(())
    }

    /// Charges must carry the account's α: the composition theorems (and
    /// therefore the meaning of a summed ε) are per-α.
    fn check_alpha(&self, alpha: f64) -> Result<(), LedgerError> {
        if (alpha - self.budget.alpha).abs() > 1e-12 {
            return Err(LedgerError::AlphaMismatch {
                ledger: self.budget.alpha,
                charge: alpha,
            });
        }
        Ok(())
    }
}

/// A cumulative privacy-loss ledger with a hard total budget.
///
/// The ledger serializes to JSON (budget + entries + spent totals) and
/// deserializes by *replaying* the entries through the same compensated
/// budget arithmetic, refusing snapshots whose entries overdraw the budget
/// or whose recorded totals disagree with the replay — a tampered or
/// corrupted snapshot cannot be used to resume a season with more budget
/// than was actually left.
///
/// ```
/// use eree_core::{Ledger, PrivacyParams, ReleaseCost};
/// use eree_core::neighbors::NeighborKind;
/// use tabulate::workload1;
///
/// let mut ledger = Ledger::new(PrivacyParams::pure(0.1, 4.0));
/// let per_cell = PrivacyParams::pure(0.1, 2.0);
/// let cost = ReleaseCost::for_marginal(&workload1(), &per_cell, NeighborKind::Strong);
/// // A workplace-only marginal parallel-composes: one epsilon total.
/// assert_eq!(cost.multiplier, 1);
/// ledger.charge("Q1 tabulation", &per_cell, &cost).unwrap();
/// ledger.charge("Q2 tabulation", &per_cell, &cost).unwrap();
/// // The budget is now exhausted; further releases are refused.
/// assert!(ledger.charge("Q3 tabulation", &per_cell, &cost).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Ledger {
    account: BudgetAccount,
    entries: Vec<LedgerEntry>,
}

impl Ledger {
    /// Open a ledger with a total `(α, ε, δ)` budget.
    pub fn new(budget: PrivacyParams) -> Self {
        Self {
            account: BudgetAccount::new(budget),
            entries: Vec::new(),
        }
    }

    /// The total budget.
    pub fn budget(&self) -> &PrivacyParams {
        self.account.budget()
    }

    /// Total ε spent so far (compensated sum over all entries).
    pub fn spent_epsilon(&self) -> f64 {
        self.account.spent_epsilon()
    }

    /// Total δ spent so far (compensated sum over all entries).
    pub fn spent_delta(&self) -> f64 {
        self.account.spent_delta()
    }

    /// Remaining ε.
    pub fn remaining_epsilon(&self) -> f64 {
        self.account.remaining_epsilon()
    }

    /// Remaining δ.
    pub fn remaining_delta(&self) -> f64 {
        self.account.remaining_delta()
    }

    /// Record a charge with α-consistency and budget checks (sequential
    /// composition: charges add).
    ///
    /// Admission is [`BudgetAccount::admit`] on the *projected total*: the
    /// charge is admitted iff `spent + cost ≤ budget × (1 + LEDGER_REL_TOL)`
    /// for both ε and δ. The tolerance is relative and one-shot — however
    /// many charges are made, the lifetime spend can never exceed the
    /// budget by more than one relative tolerance.
    pub fn charge(
        &mut self,
        description: impl Into<String>,
        params: &PrivacyParams,
        cost: &ReleaseCost,
    ) -> Result<(), LedgerError> {
        self.account.check_alpha(params.alpha)?;
        self.account.admit(cost.epsilon, cost.delta)?;
        self.entries.push(LedgerEntry {
            description: description.into(),
            epsilon: cost.epsilon,
            delta: cost.delta,
        });
        Ok(())
    }

    /// Would [`charge`](Self::charge) admit this cost? Exactly the same
    /// α-consistency and admission arithmetic, run on a copy of the
    /// account — nothing is recorded either way. This is the engine's
    /// admission dry-run: it lets fallible work (e.g. a truth-store load)
    /// run between the decision and the charge without ever stranding a
    /// charge that produced no artifact, and it costs two compensated
    /// sums, not a clone of the entry log.
    pub fn can_charge(
        &self,
        params: &PrivacyParams,
        cost: &ReleaseCost,
    ) -> Result<(), LedgerError> {
        self.account.check_alpha(params.alpha)?;
        self.account.clone().admit(cost.epsilon, cost.delta)
    }

    /// Rebuild a ledger by replaying recorded entries against `budget`,
    /// with exactly the arithmetic [`charge`](Self::charge) uses — the
    /// resume path of a persisted publication season. Fails if any entry
    /// would overdraw the budget (a budget-inconsistent snapshot).
    pub fn replay(budget: PrivacyParams, entries: &[LedgerEntry]) -> Result<Self, LedgerError> {
        let mut ledger = Ledger::new(budget);
        for entry in entries {
            ledger.account.admit(entry.epsilon, entry.delta)?;
            ledger.entries.push(entry.clone());
        }
        Ok(ledger)
    }

    /// All recorded charges.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }
}

impl Serialize for Ledger {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("budget".to_string(), self.account.budget().to_value()),
            ("entries".to_string(), self.entries.to_value()),
            ("spent_epsilon".to_string(), self.spent_epsilon().to_value()),
            ("spent_delta".to_string(), self.spent_delta().to_value()),
        ])
    }
}

impl Deserialize for Ledger {
    /// Deserialize by replay: the spent totals are *recomputed* from the
    /// entries (never trusted from the snapshot) and then cross-checked
    /// against the recorded totals. Either an overdraft or a totals
    /// mismatch makes the whole snapshot unusable.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let budget = PrivacyParams::from_value(get_field(v, "budget")?)?;
        let entries = Vec::<LedgerEntry>::from_value(get_field(v, "entries")?)?;
        let ledger = Ledger::replay(budget, &entries)
            .map_err(|e| DeError::new(format!("budget-inconsistent ledger snapshot: {e}")))?;
        let recorded_epsilon = f64::from_value(get_field(v, "spent_epsilon")?)?;
        let recorded_delta = f64::from_value(get_field(v, "spent_delta")?)?;
        // The replay is deterministic, and the vendored JSON writer prints
        // f64 with shortest-round-trip precision, so an untouched snapshot
        // reproduces its totals bit-for-bit; any slack here would be a
        // tampering allowance, not a robustness feature.
        if recorded_epsilon != ledger.spent_epsilon() || recorded_delta != ledger.spent_delta() {
            return Err(DeError::new(format!(
                "ledger snapshot totals (eps {recorded_epsilon}, delta {recorded_delta}) \
                 disagree with entry replay (eps {}, delta {})",
                ledger.spent_epsilon(),
                ledger.spent_delta()
            )));
        }
        Ok(ledger)
    }
}

/// One season's budget reservation in a [`MetaLedger`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonReservation {
    /// The season's unique name (its directory name under an agency).
    pub name: String,
    /// The season-long budget reserved from the agency cap. The season's
    /// [`Ledger`] must carry exactly this budget.
    pub budget: PrivacyParams,
}

/// One recorded event in a [`MetaLedger`]'s append-only log.
///
/// The log is chronological because replay order carries meaning: a
/// reservation made *after* a sealed closure may legitimately spend the
/// refunded budget, so replaying "all reservations, then all closures"
/// would refuse histories the live ledger admitted.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaEvent {
    /// A season reserved its whole budget from the cap.
    Reserve(SeasonReservation),
    /// Phase one of a season closure: the unspent remainder is durably
    /// frozen. The refund is *not yet spendable* — a crash here leaves
    /// the budget conservatively reserved (fail-closed).
    CloseBegin {
        /// The closing season.
        name: String,
        /// The frozen ε refund (reserved ε minus spent ε, clamped ≥ 0).
        refund_epsilon: f64,
        /// The frozen δ refund.
        refund_delta: f64,
    },
    /// Phase two: the frozen refund is credited back to the cap and the
    /// closure becomes final.
    CloseSeal {
        /// The sealed season.
        name: String,
    },
}

impl Serialize for MetaEvent {
    fn to_value(&self) -> Value {
        match self {
            MetaEvent::Reserve(r) => Value::Map(vec![
                ("event".to_string(), Value::Str("reserve".to_string())),
                ("name".to_string(), r.name.to_value()),
                ("budget".to_string(), r.budget.to_value()),
            ]),
            MetaEvent::CloseBegin {
                name,
                refund_epsilon,
                refund_delta,
            } => Value::Map(vec![
                ("event".to_string(), Value::Str("close_begin".to_string())),
                ("name".to_string(), name.to_value()),
                ("refund_epsilon".to_string(), refund_epsilon.to_value()),
                ("refund_delta".to_string(), refund_delta.to_value()),
            ]),
            MetaEvent::CloseSeal { name } => Value::Map(vec![
                ("event".to_string(), Value::Str("close_seal".to_string())),
                ("name".to_string(), name.to_value()),
            ]),
        }
    }
}

impl Deserialize for MetaEvent {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let kind = String::from_value(get_field(v, "event")?)?;
        let name = String::from_value(get_field(v, "name")?)?;
        match kind.as_str() {
            "reserve" => Ok(MetaEvent::Reserve(SeasonReservation {
                name,
                budget: PrivacyParams::from_value(get_field(v, "budget")?)?,
            })),
            "close_begin" => Ok(MetaEvent::CloseBegin {
                name,
                refund_epsilon: f64::from_value(get_field(v, "refund_epsilon")?)?,
                refund_delta: f64::from_value(get_field(v, "refund_delta")?)?,
            }),
            "close_seal" => Ok(MetaEvent::CloseSeal { name }),
            other => Err(DeError::new(format!("unknown meta-ledger event `{other}`"))),
        }
    }
}

/// A season's closure record, materialized from the event log.
#[derive(Debug, Clone, PartialEq)]
pub struct SeasonClosure {
    /// The closing (or closed) season.
    pub name: String,
    /// The frozen ε refund.
    pub refund_epsilon: f64,
    /// The frozen δ refund.
    pub refund_delta: f64,
    /// Whether phase two ran: `false` while only the close-begin is on
    /// record (refund frozen but not yet spendable), `true` once sealed.
    pub sealed: bool,
}

/// The agency-level accountant: a global privacy-loss cap from which every
/// season's whole budget is **reserved up front**.
///
/// Reservation — not per-release pass-through — is what makes the
/// hierarchy crash-safe: once a season's budget is reserved (durably,
/// before its directory exists), the agency's worst case is already
/// accounted for, so a season crashing, resuming, or running concurrently
/// in another process can never push the agency past its cap. The season's
/// own [`Ledger`] then enforces the reserved budget charge-by-charge with
/// the same [`BudgetAccount`] arithmetic.
///
/// Like [`Ledger`], a `MetaLedger` deserializes by *replaying* its
/// reservations and cross-checking the recorded totals, so a tampered
/// snapshot cannot resume an agency with more cap than was actually left.
///
/// ```
/// use eree_core::{MetaLedger, PrivacyParams};
///
/// let mut meta = MetaLedger::new(PrivacyParams::pure(0.1, 16.0));
/// meta.reserve("annual", PrivacyParams::pure(0.1, 13.0)).unwrap();
/// meta.reserve("quarterly", PrivacyParams::pure(0.1, 3.0)).unwrap();
/// // The cap is exhausted: no further season can be opened.
/// assert!(meta.reserve("extra", PrivacyParams::pure(0.1, 0.5)).is_err());
/// assert!(meta.remaining_epsilon() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct MetaLedger {
    account: BudgetAccount,
    events: Vec<MetaEvent>,
    reservations: Vec<SeasonReservation>,
    closures: Vec<SeasonClosure>,
}

impl MetaLedger {
    /// Open a meta-ledger with a global `(α, ε, δ)` cap.
    pub fn new(cap: PrivacyParams) -> Self {
        Self {
            account: BudgetAccount::new(cap),
            events: Vec::new(),
            reservations: Vec::new(),
            closures: Vec::new(),
        }
    }

    /// The global cap.
    pub fn cap(&self) -> &PrivacyParams {
        self.account.budget()
    }

    /// Total ε reserved by seasons so far.
    pub fn reserved_epsilon(&self) -> f64 {
        self.account.spent_epsilon()
    }

    /// Total δ reserved by seasons so far.
    pub fn reserved_delta(&self) -> f64 {
        self.account.spent_delta()
    }

    /// ε still available for new seasons.
    pub fn remaining_epsilon(&self) -> f64 {
        self.account.remaining_epsilon()
    }

    /// δ still available for new seasons.
    pub fn remaining_delta(&self) -> f64 {
        self.account.remaining_delta()
    }

    /// Total ε refunded by sealed season closures so far. Pending (begun
    /// but unsealed) refunds are *not* counted: until the seal lands, the
    /// budget stays conservatively reserved.
    pub fn refunded_epsilon(&self) -> f64 {
        let mut sum = CompensatedSum::default();
        for c in self.closures.iter().filter(|c| c.sealed) {
            sum.add(c.refund_epsilon);
        }
        sum.value()
    }

    /// Total δ refunded by sealed season closures so far.
    pub fn refunded_delta(&self) -> f64 {
        let mut sum = CompensatedSum::default();
        for c in self.closures.iter().filter(|c| c.sealed) {
            sum.add(c.refund_delta);
        }
        sum.value()
    }

    /// All reservations, in the order they were made.
    pub fn reservations(&self) -> &[SeasonReservation] {
        &self.reservations
    }

    /// The reservation held by season `name`, if any.
    pub fn reservation(&self, name: &str) -> Option<&SeasonReservation> {
        self.reservations.iter().find(|r| r.name == name)
    }

    /// The full chronological event log (reservations and closures).
    pub fn events(&self) -> &[MetaEvent] {
        &self.events
    }

    /// All closure records, in close-begin order.
    pub fn closures(&self) -> &[SeasonClosure] {
        &self.closures
    }

    /// The closure record for season `name`, if any (pending or sealed).
    pub fn closure(&self, name: &str) -> Option<&SeasonClosure> {
        self.closures.iter().find(|c| c.name == name)
    }

    /// Reserve `budget` for a new season named `name`.
    ///
    /// Refused — before anything is recorded — when the name is already
    /// reserved, the budget's α differs from the cap's, the budget is
    /// non-finite or negative, or the projected reserved totals would
    /// exceed the cap (same [`BudgetAccount::admit`] rule as release
    /// charges: relative one-shot tolerance, fail-closed on NaN).
    pub fn reserve(
        &mut self,
        name: impl Into<String>,
        budget: PrivacyParams,
    ) -> Result<(), LedgerError> {
        let name = name.into();
        if self.reservation(&name).is_some() {
            return Err(LedgerError::DuplicateReservation { name });
        }
        self.account.check_alpha(budget.alpha)?;
        self.account.admit(budget.epsilon, budget.delta)?;
        let reservation = SeasonReservation { name, budget };
        self.events.push(MetaEvent::Reserve(reservation.clone()));
        self.reservations.push(reservation);
        Ok(())
    }

    /// Phase one of closing season `name`: durably freeze its refund (the
    /// unspent remainder the caller computed from the season's ledger).
    ///
    /// Nothing is credited yet — a crash after this record leaves the
    /// refund frozen but unspendable, which is the fail-closed direction.
    /// Refused when the season holds no reservation, already has a closure
    /// record, the refund is non-finite or negative, or the refund exceeds
    /// the reservation (which would mint budget).
    pub fn close_begin(
        &mut self,
        name: impl Into<String>,
        refund_epsilon: f64,
        refund_delta: f64,
    ) -> Result<(), LedgerError> {
        let name = name.into();
        let Some(reservation) = self.reservation(&name) else {
            return Err(LedgerError::UnknownSeason { name });
        };
        if self.closure(&name).is_some() {
            return Err(LedgerError::DuplicateClosure { name });
        }
        let invalid = |x: f64| !x.is_finite() || x < 0.0;
        if invalid(refund_epsilon) || invalid(refund_delta) {
            return Err(LedgerError::InvalidCharge {
                epsilon: refund_epsilon,
                delta: refund_delta,
            });
        }
        let budget = reservation.budget;
        if refund_epsilon > budget.epsilon * (1.0 + LEDGER_REL_TOL) {
            return Err(LedgerError::RefundExceedsReservation {
                name,
                requested: refund_epsilon,
                reserved: budget.epsilon,
            });
        }
        if refund_delta > budget.delta * (1.0 + LEDGER_REL_TOL) {
            return Err(LedgerError::RefundExceedsReservation {
                name,
                requested: refund_delta,
                reserved: budget.delta,
            });
        }
        self.events.push(MetaEvent::CloseBegin {
            name: name.clone(),
            refund_epsilon,
            refund_delta,
        });
        self.closures.push(SeasonClosure {
            name,
            refund_epsilon,
            refund_delta,
            sealed: false,
        });
        Ok(())
    }

    /// Phase two of closing season `name`: credit the frozen refund back
    /// to the cap and seal the closure.
    ///
    /// Refused without a pending [`close_begin`](Self::close_begin) — the
    /// credited amount must be exactly the durably frozen one.
    pub fn close_seal(&mut self, name: &str) -> Result<(), LedgerError> {
        let Some(index) = self.closures.iter().position(|c| c.name == name) else {
            return Err(LedgerError::NoPendingClosure {
                name: name.to_string(),
            });
        };
        if self.closures[index].sealed {
            return Err(LedgerError::NoPendingClosure {
                name: name.to_string(),
            });
        }
        let (refund_epsilon, refund_delta) = {
            let c = &self.closures[index];
            (c.refund_epsilon, c.refund_delta)
        };
        self.account.credit(refund_epsilon, refund_delta)?;
        self.events.push(MetaEvent::CloseSeal {
            name: name.to_string(),
        });
        self.closures[index].sealed = true;
        Ok(())
    }

    /// Rebuild a meta-ledger by replaying recorded reservations against
    /// `cap` with exactly the arithmetic [`reserve`](Self::reserve) uses —
    /// the agency resume path for histories without closures. Fails if any
    /// reservation is duplicated, α-inconsistent, or would overdraw the
    /// cap.
    pub fn replay(
        cap: PrivacyParams,
        reservations: &[SeasonReservation],
    ) -> Result<Self, LedgerError> {
        let mut meta = MetaLedger::new(cap);
        for r in reservations {
            meta.reserve(r.name.clone(), r.budget)?;
        }
        Ok(meta)
    }

    /// Rebuild a meta-ledger by replaying a full chronological event log
    /// against `cap`, with exactly the arithmetic the live mutators use.
    /// Order matters: a reservation recorded after a sealed closure may
    /// spend the refunded budget, and replay honors that.
    pub fn replay_events(cap: PrivacyParams, events: &[MetaEvent]) -> Result<Self, LedgerError> {
        let mut meta = MetaLedger::new(cap);
        for event in events {
            match event {
                MetaEvent::Reserve(r) => meta.reserve(r.name.clone(), r.budget)?,
                MetaEvent::CloseBegin {
                    name,
                    refund_epsilon,
                    refund_delta,
                } => meta.close_begin(name.clone(), *refund_epsilon, *refund_delta)?,
                MetaEvent::CloseSeal { name } => meta.close_seal(name)?,
            }
        }
        Ok(meta)
    }
}

impl Serialize for MetaLedger {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("cap".to_string(), self.cap().to_value()),
            ("events".to_string(), self.events.to_value()),
            (
                "reserved_epsilon".to_string(),
                self.reserved_epsilon().to_value(),
            ),
            (
                "reserved_delta".to_string(),
                self.reserved_delta().to_value(),
            ),
        ])
    }
}

impl Deserialize for MetaLedger {
    /// Deserialize by replay: reserved totals are recomputed from the
    /// event log (never trusted from the snapshot) and cross-checked
    /// against the recorded totals, exactly like [`Ledger`]'s
    /// deserializer. Snapshots from before the event log (a bare
    /// `reservations` list, no `events` field) still deserialize: the
    /// reservations replay as a closure-free history.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let cap = PrivacyParams::from_value(get_field(v, "cap")?)?;
        let meta = if v.get("events").is_some() {
            let events = Vec::<MetaEvent>::from_value(get_field(v, "events")?)?;
            MetaLedger::replay_events(cap, &events)
        } else {
            let reservations = Vec::<SeasonReservation>::from_value(get_field(v, "reservations")?)?;
            MetaLedger::replay(cap, &reservations)
        }
        .map_err(|e| DeError::new(format!("cap-inconsistent meta-ledger snapshot: {e}")))?;
        let recorded_epsilon = f64::from_value(get_field(v, "reserved_epsilon")?)?;
        let recorded_delta = f64::from_value(get_field(v, "reserved_delta")?)?;
        if recorded_epsilon != meta.reserved_epsilon() || recorded_delta != meta.reserved_delta() {
            return Err(DeError::new(format!(
                "meta-ledger snapshot totals (eps {recorded_epsilon}, delta {recorded_delta}) \
                 disagree with event replay (eps {}, delta {})",
                meta.reserved_epsilon(),
                meta.reserved_delta()
            )));
        }
        Ok(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabulate::{workload1, workload3};

    #[test]
    fn workplace_only_marginal_costs_one_epsilon() {
        let per_cell = PrivacyParams::pure(0.1, 2.0);
        for regime in [NeighborKind::Strong, NeighborKind::Weak] {
            let cost = ReleaseCost::for_marginal(&workload1(), &per_cell, regime);
            assert_eq!(cost.multiplier, 1);
            assert!((cost.epsilon - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weak_worker_marginal_multiplies_by_domain() {
        let per_cell = PrivacyParams::approximate(0.1, 0.5, 0.001);
        let cost = ReleaseCost::for_marginal(&workload3(), &per_cell, NeighborKind::Weak);
        assert_eq!(cost.multiplier, 8, "sex x education domain");
        assert!((cost.epsilon - 4.0).abs() < 1e-12);
        assert!((cost.delta - 0.008).abs() < 1e-12);
        // Strong regime gets Thm 7.5 parallel composition.
        let strong = ReleaseCost::for_marginal(&workload3(), &per_cell, NeighborKind::Strong);
        assert_eq!(strong.multiplier, 1);
    }

    #[test]
    fn flow_release_costs_three_statistics() {
        let per_cell = PrivacyParams::approximate(0.1, 0.5, 0.001);
        let cost = ReleaseCost::for_flows(&per_cell);
        assert_eq!(cost.multiplier, 3, "B, JC, JD are noised; E is derived");
        assert!((cost.epsilon - 1.5).abs() < 1e-12);
        assert!((cost.delta - 0.003).abs() < 1e-12);
        let total = PrivacyParams::approximate(0.1, 1.5, 0.003);
        let inverted = ReleaseCost::per_cell_for_flow_total(&total);
        assert!((inverted.epsilon - 0.5).abs() < 1e-12);
        assert!((inverted.delta - 0.001).abs() < 1e-12);
    }

    #[test]
    fn per_cell_for_total_inverts_cost() {
        let total = PrivacyParams::approximate(0.1, 4.0, 0.04);
        let per_cell = ReleaseCost::per_cell_for_total(&workload3(), &total, NeighborKind::Weak);
        assert!((per_cell.epsilon - 0.5).abs() < 1e-12);
        assert!((per_cell.delta - 0.005).abs() < 1e-12);
        let roundtrip = ReleaseCost::for_marginal(&workload3(), &per_cell, NeighborKind::Weak);
        assert!((roundtrip.epsilon - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_sequential_composition() {
        let mut ledger = Ledger::new(PrivacyParams::pure(0.1, 4.0));
        let params = PrivacyParams::pure(0.1, 1.5);
        let cost = ReleaseCost::for_marginal(&workload1(), &params, NeighborKind::Strong);
        ledger.charge("q1 release", &params, &cost).unwrap();
        ledger.charge("q2 release", &params, &cost).unwrap();
        assert!((ledger.remaining_epsilon() - 1.0).abs() < 1e-12);
        // Third charge exceeds the budget.
        let err = ledger.charge("q3 release", &params, &cost).unwrap_err();
        assert!(matches!(err, LedgerError::EpsilonExhausted { .. }));
        assert_eq!(ledger.entries().len(), 2);
    }

    #[test]
    fn ledger_rejects_alpha_mismatch() {
        let mut ledger = Ledger::new(PrivacyParams::pure(0.1, 4.0));
        let params = PrivacyParams::pure(0.2, 1.0);
        let cost = ReleaseCost::for_marginal(&workload1(), &params, NeighborKind::Strong);
        assert!(matches!(
            ledger.charge("bad alpha", &params, &cost),
            Err(LedgerError::AlphaMismatch { .. })
        ));
    }

    /// Regression: the old ledger admitted any charge up to
    /// `remaining + 1e-9` with an *absolute* tolerance, so once the budget
    /// was exhausted, ε ≤ 1e-9 charges succeeded forever — an unbounded
    /// leak via repeated tiny releases. The relative one-shot tolerance
    /// caps the lifetime overdraft at `LEDGER_REL_TOL × budget` total.
    #[test]
    fn exhausted_ledger_rejects_repeated_tiny_charges() {
        let budget = PrivacyParams::pure(0.1, 4.0);
        let mut ledger = Ledger::new(budget);
        let params = PrivacyParams::pure(0.1, 4.0);
        let full = ReleaseCost::for_marginal(&workload1(), &params, NeighborKind::Strong);
        ledger.charge("exhaust", &params, &full).unwrap();

        let tiny = ReleaseCost {
            epsilon: 1e-9,
            delta: 0.0,
            per_cell_epsilon: 1e-9,
            multiplier: 1,
        };
        let tiny_params = PrivacyParams::pure(0.1, 1e-9);
        let mut admitted = 0usize;
        let mut refused = false;
        for i in 0..10_000 {
            match ledger.charge(format!("tiny {i}"), &tiny_params, &tiny) {
                Ok(()) => admitted += 1,
                Err(LedgerError::EpsilonExhausted { .. }) => {
                    refused = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(
            refused,
            "tiny charges were admitted {admitted} times without refusal"
        );
        // Lifetime spend never exceeds the budget by more than one
        // relative tolerance.
        assert!(ledger.spent_epsilon() <= budget.epsilon * (1.0 + LEDGER_REL_TOL));
    }

    #[test]
    fn long_seasons_do_not_drift() {
        // 1e6 charges of ε = budget / 1e6: naive `+=` drifts by far more
        // than an ulp; the compensated sum lands within one ulp of the
        // budget, so the *entire* budget is usable — no stranded remainder
        // and no leak.
        let budget = 4.0;
        let n = 1_000_000u64;
        let step = budget / n as f64;
        let mut ledger = Ledger::new(PrivacyParams::pure(0.1, budget));
        let params = PrivacyParams::pure(0.1, step);
        let cost = ReleaseCost {
            epsilon: step,
            delta: 0.0,
            per_cell_epsilon: step,
            multiplier: 1,
        };
        for i in 0..n {
            ledger
                .charge(format!("slice {i}"), &params, &cost)
                .unwrap_or_else(|e| panic!("slice {i} refused: {e}"));
        }
        let naive: f64 = (0..n).map(|_| step).sum();
        assert!(
            (naive - budget).abs() > 1e-12,
            "naive summation should visibly drift for this to be a regression test"
        );
        assert!((ledger.spent_epsilon() - budget).abs() < 1e-12);
        assert!(ledger.remaining_epsilon() < 1e-12);
    }

    #[test]
    fn negative_and_non_finite_charges_are_refused() {
        let mut ledger = Ledger::new(PrivacyParams::pure(0.1, 4.0));
        let params = PrivacyParams::pure(0.1, 1.0);
        let cost = |epsilon: f64, delta: f64| ReleaseCost {
            epsilon,
            delta,
            per_cell_epsilon: epsilon,
            multiplier: 1,
        };
        // A negative charge would *refund* budget.
        assert!(matches!(
            ledger.charge("refund attempt", &params, &cost(-1.0, 0.0)),
            Err(LedgerError::InvalidCharge { .. })
        ));
        // Regression: a NaN charge used to be admitted (NaN comparisons
        // are all false), poisoning the spent totals so that every later
        // charge of any size was admitted forever.
        for bad in [f64::NAN, f64::INFINITY] {
            assert!(matches!(
                ledger.charge("poison attempt", &params, &cost(bad, 0.0)),
                Err(LedgerError::InvalidCharge { .. })
            ));
            assert!(matches!(
                ledger.charge("poison attempt", &params, &cost(0.5, bad)),
                Err(LedgerError::InvalidCharge { .. })
            ));
        }
        assert!(ledger.entries().is_empty());
        assert_eq!(ledger.spent_epsilon(), 0.0);
        // Enforcement still works after the refused attempts.
        ledger.charge("fine", &params, &cost(4.0, 0.0)).unwrap();
        assert!(ledger.charge("over", &params, &cost(0.5, 0.0)).is_err());
    }

    #[test]
    fn ledger_json_roundtrip_preserves_state() {
        let mut ledger = Ledger::new(PrivacyParams::approximate(0.1, 4.0, 0.01));
        let params = PrivacyParams::approximate(0.1, 1.1, 0.003);
        let cost = ReleaseCost::for_marginal(&workload1(), &params, NeighborKind::Weak);
        ledger.charge("q1", &params, &cost).unwrap();
        ledger.charge("q2", &params, &cost).unwrap();

        let json = serde_json::to_string_pretty(&ledger).unwrap();
        let back: Ledger = serde_json::from_str(&json).unwrap();
        assert_eq!(back.budget(), ledger.budget());
        assert_eq!(back.entries().len(), 2);
        assert_eq!(back.spent_epsilon(), ledger.spent_epsilon());
        assert_eq!(back.spent_delta(), ledger.spent_delta());
        assert_eq!(back.remaining_epsilon(), ledger.remaining_epsilon());
        // The restored ledger keeps enforcing: a 3rd+4th charge exhausts,
        // a 5th is refused, exactly as on the original.
        let mut back = back;
        back.charge("q3", &params, &cost).unwrap();
        assert!(back.charge("q4", &params, &cost).is_err());
    }

    #[test]
    fn deserialization_refuses_overdrawn_snapshots() {
        let mut ledger = Ledger::new(PrivacyParams::pure(0.1, 2.0));
        let params = PrivacyParams::pure(0.1, 2.0);
        let cost = ReleaseCost::for_marginal(&workload1(), &params, NeighborKind::Strong);
        ledger.charge("all of it", &params, &cost).unwrap();
        let json = serde_json::to_string(&ledger).unwrap();

        // Shrink the budget below the recorded spend: replay must refuse.
        // (The budget object serializes first, so the first "epsilon" hit
        // is the budget's, not an entry's.)
        let tampered = json.replacen("\"epsilon\":2.0", "\"epsilon\":1.0", 1);
        assert_ne!(tampered, json, "tampering must hit the budget field");
        assert!(serde_json::from_str::<Ledger>(&tampered).is_err());

        // Fudge the recorded totals: replay cross-check must refuse.
        let tampered = json.replace("\"spent_epsilon\":2.0", "\"spent_epsilon\":0.5");
        assert_ne!(tampered, json);
        assert!(serde_json::from_str::<Ledger>(&tampered).is_err());
    }

    #[test]
    fn replay_matches_live_charging() {
        let mut live = Ledger::new(PrivacyParams::pure(0.1, 4.0));
        let params = PrivacyParams::pure(0.1, 0.3);
        let cost = ReleaseCost::for_marginal(&workload1(), &params, NeighborKind::Strong);
        for i in 0..13 {
            live.charge(format!("r{i}"), &params, &cost).unwrap();
        }
        let replayed = Ledger::replay(*live.budget(), live.entries()).unwrap();
        assert_eq!(replayed.spent_epsilon(), live.spent_epsilon());
        assert_eq!(replayed.remaining_epsilon(), live.remaining_epsilon());
        assert_eq!(replayed.entries().len(), live.entries().len());
    }

    #[test]
    fn meta_ledger_reserves_and_exhausts() {
        let mut meta = MetaLedger::new(PrivacyParams::approximate(0.1, 10.0, 0.05));
        meta.reserve("annual", PrivacyParams::approximate(0.1, 6.0, 0.03))
            .unwrap();
        meta.reserve("quarterly", PrivacyParams::pure(0.1, 4.0))
            .unwrap();
        assert!(meta.remaining_epsilon() < 1e-9);
        assert!((meta.remaining_delta() - 0.02).abs() < 1e-12);
        // Cap exhausted in epsilon: refused.
        assert!(matches!(
            meta.reserve("extra", PrivacyParams::pure(0.1, 0.1)),
            Err(LedgerError::EpsilonExhausted { .. })
        ));
        // Duplicate names refused before any arithmetic.
        assert!(matches!(
            meta.reserve("annual", PrivacyParams::pure(0.1, 1.0)),
            Err(LedgerError::DuplicateReservation { .. })
        ));
        // Alpha must match the cap's.
        assert!(matches!(
            meta.reserve("wrong-alpha", PrivacyParams::pure(0.2, 1.0)),
            Err(LedgerError::AlphaMismatch { .. })
        ));
        // Non-finite budgets are refused outright (the constructors
        // already reject them; a corrupted snapshot is the only way in).
        let mut poison = PrivacyParams::pure(0.1, 1.0);
        poison.epsilon = f64::NAN;
        assert!(matches!(
            meta.reserve("poison", poison),
            Err(LedgerError::InvalidCharge { .. })
        ));
        assert_eq!(meta.reservations().len(), 2);
        assert_eq!(
            meta.reservation("quarterly").unwrap().budget,
            PrivacyParams::pure(0.1, 4.0)
        );
    }

    #[test]
    fn meta_ledger_json_roundtrip_and_tamper_refusal() {
        let mut meta = MetaLedger::new(PrivacyParams::pure(0.1, 8.0));
        meta.reserve("s1", PrivacyParams::pure(0.1, 5.0)).unwrap();
        meta.reserve("s2", PrivacyParams::pure(0.1, 2.0)).unwrap();
        let json = serde_json::to_string(&meta).unwrap();
        let back: MetaLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cap(), meta.cap());
        assert_eq!(back.reservations(), meta.reservations());
        assert_eq!(back.reserved_epsilon(), meta.reserved_epsilon());
        // Shrinking the cap below the reservations: replay refuses. (The
        // cap serializes first, so the first "epsilon" hit is the cap's.)
        let tampered = json.replacen("\"epsilon\":8.0", "\"epsilon\":4.0", 1);
        assert_ne!(tampered, json);
        assert!(serde_json::from_str::<MetaLedger>(&tampered).is_err());
        // Fudging the recorded totals: cross-check refuses.
        let tampered = json.replace("\"reserved_epsilon\":7.0", "\"reserved_epsilon\":1.0");
        assert_ne!(tampered, json);
        assert!(serde_json::from_str::<MetaLedger>(&tampered).is_err());
    }

    #[test]
    fn meta_ledger_replay_matches_live_reservation() {
        let mut live = MetaLedger::new(PrivacyParams::pure(0.1, 4.0));
        for i in 0..13 {
            live.reserve(format!("s{i}"), PrivacyParams::pure(0.1, 0.3))
                .unwrap();
        }
        let replayed = MetaLedger::replay(*live.cap(), live.reservations()).unwrap();
        assert_eq!(replayed.reserved_epsilon(), live.reserved_epsilon());
        assert_eq!(replayed.remaining_epsilon(), live.remaining_epsilon());
    }

    #[test]
    fn close_season_two_phase_refund() {
        let mut meta = MetaLedger::new(PrivacyParams::pure(0.1, 8.0));
        meta.reserve("s1", PrivacyParams::pure(0.1, 5.0)).unwrap();
        meta.reserve("s2", PrivacyParams::pure(0.1, 3.0)).unwrap();
        assert!(meta.remaining_epsilon() < 1e-9);

        // Phase one freezes the refund without making it spendable.
        meta.close_begin("s1", 4.0, 0.0).unwrap();
        assert!(
            meta.remaining_epsilon() < 1e-9,
            "pending refund fails closed"
        );
        assert!(!meta.closure("s1").unwrap().sealed);
        assert_eq!(meta.refunded_epsilon(), 0.0);

        // Phase two credits exactly the frozen amount.
        meta.close_seal("s1").unwrap();
        assert!((meta.remaining_epsilon() - 4.0).abs() < 1e-12);
        assert!((meta.refunded_epsilon() - 4.0).abs() < 1e-12);
        assert!(meta.closure("s1").unwrap().sealed);

        // The refunded budget is reservable by a later season.
        meta.reserve("s3", PrivacyParams::pure(0.1, 4.0)).unwrap();
        assert!(meta.remaining_epsilon() < 1e-9);

        // A closed name stays reserved: no aliasing re-reservation.
        assert!(matches!(
            meta.reserve("s1", PrivacyParams::pure(0.1, 0.5)),
            Err(LedgerError::DuplicateReservation { .. })
        ));
    }

    #[test]
    fn close_season_refuses_bad_transitions() {
        let mut meta = MetaLedger::new(PrivacyParams::pure(0.1, 8.0));
        meta.reserve("s1", PrivacyParams::pure(0.1, 5.0)).unwrap();
        // Closing an unreserved season.
        assert!(matches!(
            meta.close_begin("ghost", 1.0, 0.0),
            Err(LedgerError::UnknownSeason { .. })
        ));
        // Sealing without a begin.
        assert!(matches!(
            meta.close_seal("s1"),
            Err(LedgerError::NoPendingClosure { .. })
        ));
        // A refund above the reservation would mint budget.
        assert!(matches!(
            meta.close_begin("s1", 5.5, 0.0),
            Err(LedgerError::RefundExceedsReservation { .. })
        ));
        // Non-finite and negative refunds are refused outright.
        assert!(matches!(
            meta.close_begin("s1", f64::NAN, 0.0),
            Err(LedgerError::InvalidCharge { .. })
        ));
        assert!(matches!(
            meta.close_begin("s1", -1.0, 0.0),
            Err(LedgerError::InvalidCharge { .. })
        ));
        meta.close_begin("s1", 2.0, 0.0).unwrap();
        // Double close-begin.
        assert!(matches!(
            meta.close_begin("s1", 2.0, 0.0),
            Err(LedgerError::DuplicateClosure { .. })
        ));
        meta.close_seal("s1").unwrap();
        // Double seal.
        assert!(matches!(
            meta.close_seal("s1"),
            Err(LedgerError::NoPendingClosure { .. })
        ));
    }

    #[test]
    fn meta_event_replay_honors_chronology() {
        // A reservation recorded after a sealed closure spends the
        // refunded budget; replaying reservations before closures would
        // refuse this history.
        let mut live = MetaLedger::new(PrivacyParams::pure(0.1, 4.0));
        live.reserve("a", PrivacyParams::pure(0.1, 4.0)).unwrap();
        live.close_begin("a", 3.0, 0.0).unwrap();
        live.close_seal("a").unwrap();
        live.reserve("b", PrivacyParams::pure(0.1, 3.0)).unwrap();

        let replayed = MetaLedger::replay_events(*live.cap(), live.events()).unwrap();
        assert_eq!(replayed.reserved_epsilon(), live.reserved_epsilon());
        assert_eq!(replayed.refunded_epsilon(), live.refunded_epsilon());
        assert_eq!(replayed.closures(), live.closures());
        assert_eq!(replayed.events(), live.events());
    }

    #[test]
    fn meta_ledger_closure_json_roundtrip_and_compat() {
        let mut meta = MetaLedger::new(PrivacyParams::pure(0.1, 8.0));
        meta.reserve("s1", PrivacyParams::pure(0.1, 5.0)).unwrap();
        meta.close_begin("s1", 4.5, 0.0).unwrap();
        // Roundtrip with a *pending* closure: the crash window between
        // begin and seal must survive persistence.
        let json = serde_json::to_string(&meta).unwrap();
        let back: MetaLedger = serde_json::from_str(&json).unwrap();
        assert!(!back.closure("s1").unwrap().sealed);
        assert_eq!(back.reserved_epsilon(), meta.reserved_epsilon());

        meta.close_seal("s1").unwrap();
        let json = serde_json::to_string(&meta).unwrap();
        let back: MetaLedger = serde_json::from_str(&json).unwrap();
        assert!(back.closure("s1").unwrap().sealed);
        assert_eq!(back.reserved_epsilon(), meta.reserved_epsilon());
        assert_eq!(back.refunded_epsilon(), meta.refunded_epsilon());

        // Pre-event-log snapshots (bare `reservations`) still load.
        let legacy = r#"{
            "cap": {"alpha": 0.1, "epsilon": 8.0, "delta": 0.0},
            "reservations": [
                {"name": "old", "budget": {"alpha": 0.1, "epsilon": 5.0, "delta": 0.0}}
            ],
            "reserved_epsilon": 5.0,
            "reserved_delta": 0.0
        }"#;
        let back: MetaLedger = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.reservations().len(), 1);
        assert!(back.closures().is_empty());
        assert!((back.remaining_epsilon() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn budget_account_credit_mirrors_admit() {
        let mut account = BudgetAccount::new(PrivacyParams::pure(0.1, 4.0));
        account.admit(3.0, 0.0).unwrap();
        account.credit(2.0, 0.0).unwrap();
        assert!((account.spent_epsilon() - 1.0).abs() < 1e-12);
        assert!((account.remaining_epsilon() - 3.0).abs() < 1e-12);
        // Crediting past zero would mint budget beyond the cap.
        assert!(matches!(
            account.credit(2.0, 0.0),
            Err(LedgerError::CreditExceedsSpent { .. })
        ));
        // Negative and non-finite credits are refused outright.
        assert!(matches!(
            account.credit(-1.0, 0.0),
            Err(LedgerError::InvalidCharge { .. })
        ));
        assert!(matches!(
            account.credit(f64::NAN, 0.0),
            Err(LedgerError::InvalidCharge { .. })
        ));
        assert!((account.spent_epsilon() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_account_is_shared_arithmetic() {
        // The account alone enforces the same relative one-shot tolerance
        // the ledger does — the hierarchy adds bookkeeping, not rules.
        let mut account = BudgetAccount::new(PrivacyParams::pure(0.1, 1.0));
        account.admit(1.0, 0.0).unwrap();
        assert!(account.admit(1e-6, 0.0).is_err());
        assert!(account.admit(f64::NAN, 0.0).is_err());
        assert!(account.admit(-0.5, 0.0).is_err());
        assert_eq!(account.spent_epsilon(), 1.0);
    }

    #[test]
    fn ledger_tracks_delta() {
        let mut ledger = Ledger::new(PrivacyParams::approximate(0.1, 100.0, 0.01));
        let params = PrivacyParams::approximate(0.1, 0.5, 0.004);
        let cost = ReleaseCost::for_marginal(&workload1(), &params, NeighborKind::Weak);
        ledger.charge("a", &params, &cost).unwrap();
        ledger.charge("b", &params, &cost).unwrap();
        let err = ledger.charge("c", &params, &cost).unwrap_err();
        assert!(matches!(err, LedgerError::DeltaExhausted { .. }));
    }
}
