//! Composition and budget accounting (Sec 7.3 of the paper).
//!
//! * **Sequential composition** (Thm 7.3): releasing (α,ε₁)- and
//!   (α,ε₂)-private outputs on the same data yields (α, ε₁+ε₂); δ values
//!   also add.
//! * **Parallel composition over establishments** (Thm 7.4): releases over
//!   record sets belonging to *distinct establishments* compose in
//!   parallel — total loss is the max, not the sum. Both strong and weak
//!   variants enjoy this. A workplace-only marginal partitions
//!   establishments across its cells, so the whole marginal costs ε.
//! * **Parallel composition over workers** (Thm 7.5): record sets that
//!   split workers *of the same establishments* (e.g. males vs females)
//!   compose in parallel under **strong** ER-EE privacy only. Under weak
//!   privacy, releasing a marginal with worker attributes costs
//!   `d·ε` where `d` is the worker-attribute domain size (Sec 8).
//!
//! [`Ledger`] enforces a total budget across a sequence of releases,
//! mirroring how a statistical agency would track cumulative privacy loss
//! across publications.

use crate::definitions::PrivacyParams;
use crate::neighbors::NeighborKind;
use serde::{Deserialize, Serialize};
use tabulate::MarginalSpec;

/// The privacy-loss cost of releasing one marginal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReleaseCost {
    /// Total ε charged.
    pub epsilon: f64,
    /// Total δ charged.
    pub delta: f64,
    /// The per-cell ε the mechanism must be instantiated with.
    pub per_cell_epsilon: f64,
    /// The sequential-composition multiplier that was applied
    /// (1 when parallel composition covers the whole marginal).
    pub multiplier: usize,
}

impl ReleaseCost {
    /// Cost of releasing every cell of `spec` with a per-cell
    /// `(α, ε, δ)`-mechanism under the given neighbor regime.
    ///
    /// * Workplace-only marginals: parallel composition over
    ///   establishments (Thm 7.4) → multiplier 1 under either regime.
    /// * Marginals with worker attributes:
    ///   * strong regime: cells with different worker values partition the
    ///     workers of each establishment → Thm 7.5 applies → multiplier 1;
    ///   * weak regime: Thm 7.5 fails; sequential composition over the
    ///     worker-attribute domain → multiplier `d`.
    pub fn for_marginal(
        spec: &MarginalSpec,
        per_cell: &PrivacyParams,
        regime: NeighborKind,
    ) -> Self {
        let multiplier = match (spec.has_worker_attrs(), regime) {
            (false, _) => 1,
            (true, NeighborKind::Strong) => 1,
            (true, NeighborKind::Weak) => spec.worker_domain_size(),
        };
        Self {
            epsilon: per_cell.epsilon * multiplier as f64,
            delta: per_cell.delta * multiplier as f64,
            per_cell_epsilon: per_cell.epsilon,
            multiplier,
        }
    }

    /// Invert the accounting: per-cell parameters such that the *total*
    /// marginal release costs `total`, under the given regime.
    pub fn per_cell_for_total(
        spec: &MarginalSpec,
        total: &PrivacyParams,
        regime: NeighborKind,
    ) -> PrivacyParams {
        let multiplier = match (spec.has_worker_attrs(), regime) {
            (false, _) | (true, NeighborKind::Strong) => 1,
            (true, NeighborKind::Weak) => spec.worker_domain_size(),
        };
        let mut p = *total;
        p.epsilon = total.epsilon / multiplier as f64;
        p.delta = total.delta / multiplier as f64;
        p
    }
}

/// Errors from the budget ledger.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// The charge would exceed the remaining ε budget.
    EpsilonExhausted {
        /// Requested ε.
        requested: f64,
        /// Remaining ε.
        remaining: f64,
    },
    /// The charge would exceed the remaining δ budget.
    DeltaExhausted {
        /// Requested δ.
        requested: f64,
        /// Remaining δ.
        remaining: f64,
    },
    /// Charges must use the ledger's α (the guarantee is per-α).
    AlphaMismatch {
        /// The ledger's α.
        ledger: f64,
        /// The charge's α.
        charge: f64,
    },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::EpsilonExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "epsilon budget exhausted: requested {requested}, remaining {remaining}"
            ),
            LedgerError::DeltaExhausted {
                requested,
                remaining,
            } => write!(
                f,
                "delta budget exhausted: requested {requested}, remaining {remaining}"
            ),
            LedgerError::AlphaMismatch { ledger, charge } => {
                write!(f, "alpha mismatch: ledger {ledger}, charge {charge}")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// One recorded charge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Free-form description of the release.
    pub description: String,
    /// ε charged.
    pub epsilon: f64,
    /// δ charged.
    pub delta: f64,
}

/// A cumulative privacy-loss ledger with a hard total budget.
///
/// ```
/// use eree_core::{Ledger, PrivacyParams, ReleaseCost};
/// use eree_core::neighbors::NeighborKind;
/// use tabulate::workload1;
///
/// let mut ledger = Ledger::new(PrivacyParams::pure(0.1, 4.0));
/// let per_cell = PrivacyParams::pure(0.1, 2.0);
/// let cost = ReleaseCost::for_marginal(&workload1(), &per_cell, NeighborKind::Strong);
/// // A workplace-only marginal parallel-composes: one epsilon total.
/// assert_eq!(cost.multiplier, 1);
/// ledger.charge("Q1 tabulation", &per_cell, &cost).unwrap();
/// ledger.charge("Q2 tabulation", &per_cell, &cost).unwrap();
/// // The budget is now exhausted; further releases are refused.
/// assert!(ledger.charge("Q3 tabulation", &per_cell, &cost).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Ledger {
    budget: PrivacyParams,
    entries: Vec<LedgerEntry>,
    spent_epsilon: f64,
    spent_delta: f64,
}

impl Ledger {
    /// Open a ledger with a total `(α, ε, δ)` budget.
    pub fn new(budget: PrivacyParams) -> Self {
        Self {
            budget,
            entries: Vec::new(),
            spent_epsilon: 0.0,
            spent_delta: 0.0,
        }
    }

    /// The total budget.
    pub fn budget(&self) -> &PrivacyParams {
        &self.budget
    }

    /// Remaining ε.
    pub fn remaining_epsilon(&self) -> f64 {
        (self.budget.epsilon - self.spent_epsilon).max(0.0)
    }

    /// Remaining δ.
    pub fn remaining_delta(&self) -> f64 {
        (self.budget.delta - self.spent_delta).max(0.0)
    }

    /// Record a charge with α-consistency and budget checks (sequential
    /// composition: charges add).
    pub fn charge(
        &mut self,
        description: impl Into<String>,
        params: &PrivacyParams,
        cost: &ReleaseCost,
    ) -> Result<(), LedgerError> {
        if (params.alpha - self.budget.alpha).abs() > 1e-12 {
            return Err(LedgerError::AlphaMismatch {
                ledger: self.budget.alpha,
                charge: params.alpha,
            });
        }
        let tol = 1e-9;
        if cost.epsilon > self.remaining_epsilon() + tol {
            return Err(LedgerError::EpsilonExhausted {
                requested: cost.epsilon,
                remaining: self.remaining_epsilon(),
            });
        }
        if cost.delta > self.remaining_delta() + tol {
            return Err(LedgerError::DeltaExhausted {
                requested: cost.delta,
                remaining: self.remaining_delta(),
            });
        }
        self.spent_epsilon += cost.epsilon;
        self.spent_delta += cost.delta;
        self.entries.push(LedgerEntry {
            description: description.into(),
            epsilon: cost.epsilon,
            delta: cost.delta,
        });
        Ok(())
    }

    /// All recorded charges.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabulate::{workload1, workload3};

    #[test]
    fn workplace_only_marginal_costs_one_epsilon() {
        let per_cell = PrivacyParams::pure(0.1, 2.0);
        for regime in [NeighborKind::Strong, NeighborKind::Weak] {
            let cost = ReleaseCost::for_marginal(&workload1(), &per_cell, regime);
            assert_eq!(cost.multiplier, 1);
            assert!((cost.epsilon - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weak_worker_marginal_multiplies_by_domain() {
        let per_cell = PrivacyParams::approximate(0.1, 0.5, 0.001);
        let cost = ReleaseCost::for_marginal(&workload3(), &per_cell, NeighborKind::Weak);
        assert_eq!(cost.multiplier, 8, "sex x education domain");
        assert!((cost.epsilon - 4.0).abs() < 1e-12);
        assert!((cost.delta - 0.008).abs() < 1e-12);
        // Strong regime gets Thm 7.5 parallel composition.
        let strong = ReleaseCost::for_marginal(&workload3(), &per_cell, NeighborKind::Strong);
        assert_eq!(strong.multiplier, 1);
    }

    #[test]
    fn per_cell_for_total_inverts_cost() {
        let total = PrivacyParams::approximate(0.1, 4.0, 0.04);
        let per_cell = ReleaseCost::per_cell_for_total(&workload3(), &total, NeighborKind::Weak);
        assert!((per_cell.epsilon - 0.5).abs() < 1e-12);
        assert!((per_cell.delta - 0.005).abs() < 1e-12);
        let roundtrip = ReleaseCost::for_marginal(&workload3(), &per_cell, NeighborKind::Weak);
        assert!((roundtrip.epsilon - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_sequential_composition() {
        let mut ledger = Ledger::new(PrivacyParams::pure(0.1, 4.0));
        let params = PrivacyParams::pure(0.1, 1.5);
        let cost = ReleaseCost::for_marginal(&workload1(), &params, NeighborKind::Strong);
        ledger.charge("q1 release", &params, &cost).unwrap();
        ledger.charge("q2 release", &params, &cost).unwrap();
        assert!((ledger.remaining_epsilon() - 1.0).abs() < 1e-12);
        // Third charge exceeds the budget.
        let err = ledger.charge("q3 release", &params, &cost).unwrap_err();
        assert!(matches!(err, LedgerError::EpsilonExhausted { .. }));
        assert_eq!(ledger.entries().len(), 2);
    }

    #[test]
    fn ledger_rejects_alpha_mismatch() {
        let mut ledger = Ledger::new(PrivacyParams::pure(0.1, 4.0));
        let params = PrivacyParams::pure(0.2, 1.0);
        let cost = ReleaseCost::for_marginal(&workload1(), &params, NeighborKind::Strong);
        assert!(matches!(
            ledger.charge("bad alpha", &params, &cost),
            Err(LedgerError::AlphaMismatch { .. })
        ));
    }

    #[test]
    fn ledger_tracks_delta() {
        let mut ledger = Ledger::new(PrivacyParams::approximate(0.1, 100.0, 0.01));
        let params = PrivacyParams::approximate(0.1, 0.5, 0.004);
        let cost = ReleaseCost::for_marginal(&workload1(), &params, NeighborKind::Weak);
        ledger.charge("a", &params, &cost).unwrap();
        ledger.charge("b", &params, &cost).unwrap();
        let err = ledger.charge("c", &params, &cost).unwrap_err();
        assert!(matches!(err, LedgerError::DeltaExhausted { .. }));
    }
}
