//! The agency layer: many publication seasons, one global privacy-loss
//! cap, one shared store of tabulated truths.
//!
//! A statistical agency does not run one season — it runs a recurring,
//! overlapping release program over a single confidential snapshot, and
//! the privacy semantics of sequential composition mean the quantity that
//! must be governed is the **total** ε spent across *all* of it (Abowd &
//! Schmutte's social choice of a global privacy-loss budget). The
//! [`AgencyStore`] is that governance made durable:
//!
//! ```text
//! <agency>/
//! ├── agency.json        manifest: format, cap, dataset digest
//! ├── meta_ledger.json   MetaLedger snapshot: cap + season reservations
//! ├── seasons/
//! │   ├── <name>/        one SeasonStore per season
//! │   │   ├── season.json
//! │   │   ├── ledger.json
//! │   │   └── artifacts/000000.json …
//! │   └── …
//! ├── truths/            content-addressed truth store (shared,
//! │   └── <key-digest>.json                             confidential)
//! ├── public/            content-addressed released-artifact cache
//! │   └── <key-digest>.json                             (releasable)
//! └── agency.lock        write lease (live-PID, reclaimed when stale)
//! ```
//!
//! # Budget hierarchy
//!
//! The [`MetaLedger`] reserves every season's **whole budget** from the
//! agency cap *before the season exists*: [`AgencyStore::create_season`]
//! writes the reservation durably, then creates the season directory.
//! A season that would overspend the cap is refused before any directory,
//! any tabulation, and any sampling. Because a season's
//! [`Ledger`](crate::accountant::Ledger) can
//! never admit more than its budget (same fail-closed
//! [`BudgetAccount`](crate::accountant::BudgetAccount) arithmetic at both
//! levels), the agency's lifetime privacy loss is bounded by the cap no
//! matter how seasons run, crash, resume, or interleave.
//!
//! The crash window of that two-step protocol is a reservation whose
//! directory was never created. That state *holds* budget (the safe
//! direction — fail closed) and is repaired by re-issuing
//! [`create_season`](AgencyStore::create_season) (or
//! [`open_or_create_season`](AgencyStore::open_or_create_season)) with the
//! same budget. The reverse state — a season directory with no
//! reservation — would be privacy loss outside the meta-ledger and is
//! refused outright on [`open`](AgencyStore::open).
//!
//! # Verification on open
//!
//! [`AgencyStore::open`] replays and cross-checks everything it governs:
//! the meta-ledger snapshot deserializes by replaying its reservations
//! against the cap; every season directory must hold a reservation; every
//! reserved season that exists is opened through the full
//! [`SeasonStore::open`] verification (ledger replay, artifact/entry
//! agreement, crash-window repair) and must carry exactly its reserved
//! budget; and every season must be pinned to the agency's dataset.
//! Tampering any one season's ledger snapshot therefore makes the whole
//! agency refuse to open.
//!
//! # Shared truths
//!
//! [`AgencyStore::run_season`] executes a season through a
//! [`TabulationCache`] backed by the agency-wide [`TruthStore`]: the
//! first season to tabulate
//! a `(spec, normalized filter)` persists the truth, and every later
//! season — or a resumed run of the same season — loads it back
//! digest-verified with zero recomputation.
//!
//! # The degenerate case
//!
//! A single [`SeasonStore`] used directly is exactly an agency with one
//! season and `cap = season budget`; the season API is unchanged and keeps
//! working standalone.
//!
//! ```
//! use eree_core::agency::AgencyStore;
//! use eree_core::{MechanismKind, PrivacyParams, ReleaseRequest};
//! use lodes::{Generator, GeneratorConfig};
//! use tabulate::{workload1, workload3};
//!
//! let dataset = Generator::new(GeneratorConfig::test_small(7)).generate();
//! let dir = std::env::temp_dir().join("eree-doctest-agency");
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // A global cap of eps = 10 governs every season this agency will run.
//! let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 10.0)).unwrap();
//! agency.create_season("annual", PrivacyParams::pure(0.1, 8.0)).unwrap();
//!
//! let annual = vec![ReleaseRequest::marginal(workload3())
//!     .mechanism(MechanismKind::LogLaplace)
//!     .budget(PrivacyParams::pure(0.1, 8.0))
//!     .seed(1)];
//! agency.run_season("annual", &dataset, &annual).unwrap();
//!
//! // A sibling season re-publishing the same marginal never re-tabulates:
//! // its truth is served from the agency's persistent truth store.
//! agency.create_season("update", PrivacyParams::pure(0.1, 2.0)).unwrap();
//! let update = vec![ReleaseRequest::marginal(workload3())
//!     .mechanism(MechanismKind::LogLaplace)
//!     .budget(PrivacyParams::pure(0.1, 2.0))
//!     .seed(2)];
//! let report = agency.run_season("update", &dataset, &update).unwrap();
//! assert_eq!(report.tabulations_computed, 0);
//! assert_eq!(report.tabulation_disk_hits, 1);
//!
//! // The cap is spoken for: a third season is refused before anything
//! // touches disk or data.
//! assert!(agency.create_season("extra", PrivacyParams::pure(0.1, 1.0)).is_err());
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::accountant::MetaLedger;
use crate::definitions::PrivacyParams;
use crate::engine::{ReleaseRequest, RequestKind, TabulationCache};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::public_cache::ReleaseCache;
use crate::store::{
    cfs, dataset_digest, panel_digest, read_json, sweep_tmp_files, write_json_atomic, DirLease,
    SeasonReport, SeasonStore, StoreError,
};
use crate::truths::TruthStore;
use lodes::{Dataset, DatasetPanel};
use serde::{get_field, DeError, Deserialize, Serialize, Value};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Agency store format version, recorded in the manifest.
const FORMAT_VERSION: u32 = 1;

/// Manifest file name under the agency directory.
const MANIFEST_FILE: &str = "agency.json";
/// Meta-ledger snapshot file name under the agency directory.
const META_LEDGER_FILE: &str = "meta_ledger.json";
/// Season subdirectory name.
const SEASONS_DIR: &str = "seasons";
/// Truth-store subdirectory name.
const TRUTHS_DIR: &str = "truths";
/// Released-artifact cache subdirectory name — everything under it sits on
/// the **public** side of the release barrier.
const PUBLIC_DIR: &str = "public";
/// Agency write-lease file name.
const LEASE_FILE: &str = "agency.lock";
/// Durable cumulative-metrics snapshot file name under the agency
/// directory. Written at season-commit points (create / run / close /
/// open); best-effort on read — a missing or corrupt snapshot never
/// refuses the agency, it only loses volatile counter tails.
const METRICS_FILE: &str = "metrics.json";

/// The request families in [`crate::metrics::FAMILY_LABELS`] order, so
/// replay tallies land in the same slots the live registry uses.
const FAMILY_KINDS: [RequestKind; 3] = [
    RequestKind::Marginal,
    RequestKind::Shapes,
    RequestKind::Flows,
];

/// The agency manifest: identifies the directory as an agency, pins the
/// global cap the meta-ledger must carry, and — once the first
/// [`AgencyStore::run_season`] (or
/// [`run_panel_season`](AgencyStore::run_panel_season)) has seen the
/// confidential data — pins its fingerprint: the [`dataset_digest`] of
/// the one snapshot for a single-snapshot agency, the [`panel_digest`]
/// over every quarter for a panel agency.
#[derive(Debug, Clone, PartialEq, Serialize)]
struct AgencyManifest {
    format: u32,
    cap: PrivacyParams,
    dataset_digest: Option<u64>,
    /// Whether the agency governs a quarterly panel (per-quarter seasons
    /// pin their own quarter digests; the agency pins the panel digest).
    panel: bool,
}

impl Deserialize for AgencyManifest {
    /// Hand-written for compatibility: `panel` postdates the first agency
    /// stores, so a manifest without the field reads as a single-snapshot
    /// agency rather than refusing to open.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            format: u32::from_value(get_field(v, "format")?)?,
            cap: PrivacyParams::from_value(get_field(v, "cap")?)?,
            dataset_digest: Option::<u64>::from_value(get_field(v, "dataset_digest")?)?,
            panel: match get_field(v, "panel") {
                Ok(value) => bool::from_value(value)?,
                Err(_) => false,
            },
        })
    }
}

/// The audit view of one governed season, refreshed on
/// [`AgencyStore::open`] and after every [`AgencyStore::run_season`].
/// Serializable so budget-audit endpoints can publish it as-is.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeasonSummary {
    /// The season's name (its directory name under `seasons/`).
    pub name: String,
    /// The budget reserved for it in the meta-ledger.
    pub budget: PrivacyParams,
    /// ε the season has actually spent so far.
    pub spent_epsilon: f64,
    /// δ the season has actually spent so far.
    pub spent_delta: f64,
    /// Releases the season has persisted so far.
    pub completed: usize,
    /// Whether the season directory exists yet. `false` only in the
    /// crash window between a durable reservation and the directory's
    /// creation; the budget is held either way.
    pub materialized: bool,
    /// Whether the season has been closed: its unspent remainder was
    /// refunded to the cap and no further release is admitted.
    pub closed: bool,
}

impl Deserialize for SeasonSummary {
    /// Hand-written for wire compatibility: `closed` postdates the first
    /// audit payloads, so a summary without the field reads as open.
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            name: String::from_value(get_field(v, "name")?)?,
            budget: PrivacyParams::from_value(get_field(v, "budget")?)?,
            spent_epsilon: f64::from_value(get_field(v, "spent_epsilon")?)?,
            spent_delta: f64::from_value(get_field(v, "spent_delta")?)?,
            completed: usize::from_value(get_field(v, "completed")?)?,
            materialized: bool::from_value(get_field(v, "materialized")?)?,
            closed: match get_field(v, "closed") {
                Ok(value) => bool::from_value(value)?,
                Err(_) => false,
            },
        })
    }
}

/// What [`AgencyStore::close_season`] accomplished: the refund credited
/// back to the cap (or the one recorded by an earlier completed close).
/// Serializable so the service can return it from the close endpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosureReceipt {
    /// The closed season.
    pub name: String,
    /// ε refunded to the agency cap.
    pub refund_epsilon: f64,
    /// δ refunded to the agency cap.
    pub refund_delta: f64,
    /// `true` when the season was already closed and this call changed
    /// nothing (the refund fields echo the original closure).
    pub already_closed: bool,
    /// ε unreserved under the cap after the refund.
    pub remaining_epsilon: f64,
}

/// A durable multi-season agency: meta-ledger + season stores + shared
/// truth store under one directory. See the [module docs](self).
#[derive(Debug)]
pub struct AgencyStore {
    root: PathBuf,
    manifest: AgencyManifest,
    meta: MetaLedger,
    seasons: Vec<SeasonSummary>,
    /// The agency-wide live metrics registry: shared (`Arc`) with every
    /// season store, engine, truth store, and cache handle this agency
    /// hands out, and flushed durably to [`METRICS_FILE`] at
    /// season-commit points.
    metrics: Arc<MetricsRegistry>,
    /// Write lease on the agency directory: the meta-ledger and manifest
    /// have exactly one writer per agency at a time. Released on drop.
    _lease: DirLease,
}

impl AgencyStore {
    /// Start a fresh agency under `root` (created if absent) with the
    /// given global `(α, ε, δ)` cap. Refuses a directory that already
    /// holds one.
    pub fn create(root: impl AsRef<Path>, cap: PrivacyParams) -> Result<Self, StoreError> {
        Self::create_mode(root, cap, false)
    }

    /// [`create`](Self::create) in **panel mode**: the agency will govern
    /// per-quarter seasons of one quarterly panel, each season pinned to
    /// its own quarter's snapshot while the agency pins the
    /// [`panel_digest`] over all of them — and all quarters draw their
    /// season budgets from this one multi-year cap. Seasons run through
    /// [`run_panel_season`](Self::run_panel_season).
    pub fn create_panel(root: impl AsRef<Path>, cap: PrivacyParams) -> Result<Self, StoreError> {
        Self::create_mode(root, cap, true)
    }

    fn create_mode(
        root: impl AsRef<Path>,
        cap: PrivacyParams,
        panel: bool,
    ) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        let manifest_path = root.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return Err(StoreError::AlreadyExists { path: root });
        }
        for sub in [SEASONS_DIR, TRUTHS_DIR, PUBLIC_DIR] {
            cfs::create_dir_all(&root.join(sub)).map_err(|source| StoreError::Io {
                path: root.join(sub),
                source,
            })?;
        }
        // Lease before the manifest: from the moment this directory can be
        // recognized as an agency, it has exactly one writer.
        let lease = DirLease::acquire(root.join(LEASE_FILE))?;
        let manifest = AgencyManifest {
            format: FORMAT_VERSION,
            cap,
            dataset_digest: None,
            panel,
        };
        let meta = MetaLedger::new(cap);
        // Manifest last: its presence is the commit point (`open` demands
        // it, `create` refuses it). A crash before it leaves a directory
        // a retried `create` simply finishes; a crash after it leaves a
        // complete agency. Manifest-first would strand a directory that
        // `open` rejects (no meta-ledger) and `create` rejects
        // (AlreadyExists) — unrecoverable without manual deletion.
        write_json_atomic(&root.join(META_LEDGER_FILE), &meta)?;
        write_json_atomic(&manifest_path, &manifest)?;
        let agency = Self {
            root,
            manifest,
            meta,
            seasons: Vec::new(),
            metrics: Arc::new(MetricsRegistry::new()),
            _lease: lease,
        };
        agency.flush_metrics()?;
        Ok(agency)
    }

    /// Reload a persisted agency, verifying everything it governs:
    ///
    /// 1. the manifest parses and its format is supported;
    /// 2. the meta-ledger snapshot parses, its reservations **replay**
    ///    within the cap, and its cap matches the manifest's;
    /// 3. every directory under `seasons/` holds a reservation (a season
    ///    with no reservation would be privacy loss outside the
    ///    meta-ledger);
    /// 4. every reserved season that exists passes the full
    ///    [`SeasonStore::open`] verification and carries exactly its
    ///    reserved budget;
    /// 5. every materialized season is pinned to the agency's dataset (a
    ///    season bound before the agency was binds the agency, provided
    ///    all seasons agree).
    ///
    /// A reservation without a directory is the tolerated crash window of
    /// [`create_season`](Self::create_season): the budget stays held.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        let manifest_path = root.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            return Err(StoreError::NotAStore { path: root });
        }
        // One writer per agency: a second live opener is refused with
        // [`StoreError::Locked`] before any verification work; a lease
        // left by a dead process is reclaimed.
        let lease = DirLease::acquire(root.join(LEASE_FILE))?;
        // Clear temp files orphaned by a crash mid-write. Safe only under
        // the lease (a live writer's in-flight temp must survive); the
        // season and artifact directories sweep their own on
        // `SeasonStore::open`.
        sweep_tmp_files(&root);
        sweep_tmp_files(&root.join(TRUTHS_DIR));
        sweep_tmp_files(&root.join(PUBLIC_DIR));
        let mut manifest: AgencyManifest = read_json(&manifest_path)?;
        if manifest.format != FORMAT_VERSION {
            return Err(StoreError::Corrupt {
                path: manifest_path,
                detail: format!(
                    "unsupported agency format {} (this build reads {FORMAT_VERSION})",
                    manifest.format
                ),
            });
        }
        let mut meta: MetaLedger = read_json(&root.join(META_LEDGER_FILE))?;
        if meta.cap() != &manifest.cap {
            return Err(StoreError::Inconsistent {
                detail: format!(
                    "meta-ledger cap {:?} disagrees with agency manifest {:?}",
                    meta.cap(),
                    manifest.cap
                ),
            });
        }
        // Every season directory must be in the meta-ledger.
        let seasons_dir = root.join(SEASONS_DIR);
        let entries = fs::read_dir(&seasons_dir).map_err(|source| StoreError::Io {
            path: seasons_dir.clone(),
            source,
        })?;
        for entry in entries {
            let entry = entry.map_err(|source| StoreError::Io {
                path: seasons_dir.clone(),
                source,
            })?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if meta.reservation(&name).is_none() {
                return Err(StoreError::Inconsistent {
                    detail: format!(
                        "season directory `{name}` holds no meta-ledger reservation — \
                         privacy loss outside the agency cap"
                    ),
                });
            }
        }
        // Open and verify every reserved season that exists.
        let mut seasons = Vec::with_capacity(meta.reservations().len());
        let mut bound_digest = manifest.dataset_digest;
        // Per-family `(accepted, Σε, Σδ)` replay tallies over every
        // persisted release, accumulated in release order — the same
        // naive summation order the live registry uses, so a restored
        // snapshot reconciles bit-exactly with live accumulation.
        let mut tallies = [(0u64, 0.0f64, 0.0f64); 3];
        for reservation in meta.reservations() {
            let season_dir = seasons_dir.join(&reservation.name);
            // Materialization means the season *manifest* exists — a bare
            // directory left by a crash before the manifest landed is
            // still the repairable create window.
            if !SeasonStore::exists_at(&season_dir) {
                seasons.push(SeasonSummary {
                    name: reservation.name.clone(),
                    budget: reservation.budget,
                    spent_epsilon: 0.0,
                    spent_delta: 0.0,
                    completed: 0,
                    materialized: false,
                    closed: meta
                        .closure(&reservation.name)
                        .is_some_and(|closure| closure.sealed),
                });
                continue;
            }
            let season = SeasonStore::open(&season_dir)?;
            if season.ledger().budget() != &reservation.budget {
                return Err(StoreError::Inconsistent {
                    detail: format!(
                        "season `{}` carries budget {:?} but its reservation is {:?}",
                        reservation.name,
                        season.ledger().budget(),
                        reservation.budget
                    ),
                });
            }
            // Panel agencies pin a panel digest while each per-quarter
            // season pins its own quarter's snapshot — the digests
            // legitimately differ, and the panel pin is re-verified
            // against the live panel on every `run_panel_season` instead.
            if !manifest.panel {
                if let Some(season_digest) = season.dataset_digest() {
                    match bound_digest {
                        Some(agency_digest) if agency_digest != season_digest => {
                            return Err(StoreError::Inconsistent {
                                detail: format!(
                                    "season `{}` is bound to dataset {season_digest:016x} but the \
                                     agency is bound to {agency_digest:016x}",
                                    reservation.name
                                ),
                            });
                        }
                        Some(_) => {}
                        // A season bound before the agency was (e.g. run
                        // standalone): adopt its dataset, provided every
                        // other season agrees.
                        None => bound_digest = Some(season_digest),
                    }
                }
            }
            for release in season.releases() {
                let slot = FAMILY_KINDS
                    .iter()
                    .position(|&kind| kind == release.request.kind)
                    .expect("every request kind belongs to a metrics family");
                tallies[slot].0 += 1;
                tallies[slot].1 += release.cost.epsilon;
                tallies[slot].2 += release.cost.delta;
            }
            seasons.push(SeasonSummary {
                name: reservation.name.clone(),
                budget: reservation.budget,
                spent_epsilon: season.ledger().spent_epsilon(),
                spent_delta: season.ledger().spent_delta(),
                completed: season.completed(),
                materialized: true,
                closed: season.is_closed(),
            });
        }
        if bound_digest != manifest.dataset_digest {
            manifest.dataset_digest = bound_digest;
            write_json_atomic(&manifest_path, &manifest)?;
        }
        // Roll forward closes interrupted between the frozen refund and
        // the seal: the refund amount is already durable, so finishing
        // the close is the only direction that neither loses the refund
        // nor lets frozen budget be spent.
        let pending: Vec<String> = meta
            .closures()
            .iter()
            .filter(|closure| !closure.sealed)
            .map(|closure| closure.name.clone())
            .collect();
        for name in pending {
            let season_dir = seasons_dir.join(&name);
            if SeasonStore::exists_at(&season_dir) {
                let mut season = SeasonStore::open(&season_dir)?;
                season.seal()?;
            }
            let mut next = meta.clone();
            next.close_seal(&name)
                .map_err(|source| StoreError::AgencyBudget {
                    season: name.clone(),
                    source,
                })?;
            write_json_atomic(&root.join(META_LEDGER_FILE), &next)?;
            meta = next;
            if let Some(summary) = seasons.iter_mut().find(|s| s.name == name) {
                summary.closed = true;
            }
        }
        // Restore the durable counter snapshot (best-effort: the metrics
        // file predates nothing the agency's correctness depends on), then
        // overwrite every replay-derived value from the stores just
        // verified — accepted totals and family ε/δ spend come from the
        // durable releases themselves, so they are exact across any crash,
        // while volatile counters (denials, cache hits, latency) resume
        // from the last flush.
        let metrics = Arc::new(MetricsRegistry::new());
        if let Ok(snapshot) = read_json::<MetricsSnapshot>(&root.join(METRICS_FILE)) {
            metrics.restore(&snapshot);
        }
        for (slot, &kind) in FAMILY_KINDS.iter().enumerate() {
            let family = metrics.family(kind);
            family.accepted_total.set(tallies[slot].0);
            family.epsilon_spent.set(tallies[slot].1);
            family.delta_spent.set(tallies[slot].2);
        }
        let agency = Self {
            root,
            manifest,
            meta,
            seasons,
            metrics,
            _lease: lease,
        };
        agency.flush_metrics()?;
        Ok(agency)
    }

    /// [`open`](Self::open) if `root` holds an agency (whose cap must
    /// equal `cap`), else [`create`](Self::create).
    pub fn open_or_create(root: impl AsRef<Path>, cap: PrivacyParams) -> Result<Self, StoreError> {
        Self::open_or_create_mode(root, cap, false)
    }

    /// [`open_or_create`](Self::open_or_create) in **panel mode** — the
    /// resume path of a panel agency (see
    /// [`create_panel`](Self::create_panel)). Refuses a directory holding
    /// a single-snapshot agency, and vice versa.
    pub fn open_or_create_panel(
        root: impl AsRef<Path>,
        cap: PrivacyParams,
    ) -> Result<Self, StoreError> {
        Self::open_or_create_mode(root, cap, true)
    }

    fn open_or_create_mode(
        root: impl AsRef<Path>,
        cap: PrivacyParams,
        panel: bool,
    ) -> Result<Self, StoreError> {
        let root = root.as_ref();
        if root.join(MANIFEST_FILE).exists() {
            let agency = Self::open(root)?;
            if agency.cap() != &cap {
                return Err(StoreError::Inconsistent {
                    detail: format!(
                        "existing agency cap {:?} differs from requested {:?}",
                        agency.cap(),
                        cap
                    ),
                });
            }
            if agency.is_panel() != panel {
                return Err(StoreError::Inconsistent {
                    detail: format!(
                        "existing agency is a {} agency but a {} agency was requested",
                        mode_label(agency.is_panel()),
                        mode_label(panel)
                    ),
                });
            }
            Ok(agency)
        } else {
            Self::create_mode(root, cap, panel)
        }
    }

    /// The agency directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The global cap.
    pub fn cap(&self) -> &PrivacyParams {
        self.meta.cap()
    }

    /// The (restored) meta-ledger.
    pub fn meta_ledger(&self) -> &MetaLedger {
        &self.meta
    }

    /// ε still unreserved under the cap.
    pub fn remaining_epsilon(&self) -> f64 {
        self.meta.remaining_epsilon()
    }

    /// δ still unreserved under the cap.
    pub fn remaining_delta(&self) -> f64 {
        self.meta.remaining_delta()
    }

    /// The confidential-data fingerprint the agency is pinned to (`None`
    /// until the first [`run_season`](Self::run_season) or
    /// [`run_panel_season`](Self::run_panel_season) binds one): a
    /// [`dataset_digest`] for a single-snapshot agency, a
    /// [`panel_digest`] over every quarter for a panel agency.
    pub fn dataset_digest(&self) -> Option<u64> {
        self.manifest.dataset_digest
    }

    /// Whether this agency governs a quarterly panel (see
    /// [`create_panel`](Self::create_panel)).
    pub fn is_panel(&self) -> bool {
        self.manifest.panel
    }

    /// Audit summaries of every reserved season, in reservation order.
    pub fn seasons(&self) -> &[SeasonSummary] {
        &self.seasons
    }

    /// Total ε actually spent across all materialized seasons — always
    /// `≤` [`MetaLedger::reserved_epsilon`], which is `≤` the cap's ε.
    pub fn spent_epsilon(&self) -> f64 {
        self.seasons.iter().map(|s| s.spent_epsilon).sum()
    }

    /// The agency-wide persistent truth store, pinned to the agency's
    /// dataset. `None` until a dataset is bound.
    pub fn truth_store(&self) -> Result<Option<TruthStore>, StoreError> {
        match self.manifest.dataset_digest {
            Some(digest) => Ok(Some(self.truth_store_pinned(digest)?)),
            None => Ok(None),
        }
    }

    /// A handle over the agency's shared `truths/` directory pinned to
    /// `digest`. Panel drivers use this to open one handle per quarter —
    /// the level truth keys fold the pin, so the quarters' truths coexist
    /// in the single shared directory without aliasing, while flow truths
    /// (addressed by their dataset-*pair* digest) are pin-agnostic.
    pub fn truth_store_pinned(&self, digest: u64) -> Result<TruthStore, StoreError> {
        Ok(TruthStore::open(self.root.join(TRUTHS_DIR), digest)?.with_metrics(self.metrics()))
    }

    /// The agency's **public** released-artifact cache (see
    /// [`ReleaseCache`]): completed artifacts land here keyed by their
    /// full release identity, and repeat identical requests are served
    /// from it with zero additional ε and zero tabulation. Unlike the
    /// truth store it needs no dataset pin — the dataset digest is part
    /// of every cache key.
    pub fn release_cache(&self) -> Result<ReleaseCache, StoreError> {
        Ok(ReleaseCache::open(self.root.join(PUBLIC_DIR))?.with_metrics(self.metrics()))
    }

    /// Pin the agency to the dataset fingerprinted by `digest`, durably,
    /// if it is not already pinned. Refuses a digest that disagrees with
    /// an existing pin — an agency never mixes databases.
    pub fn bind_dataset(&mut self, digest: u64) -> Result<(), StoreError> {
        match self.manifest.dataset_digest {
            Some(bound) if bound != digest => Err(StoreError::Inconsistent {
                detail: format!(
                    "agency is bound to dataset {bound:016x} but was asked to run \
                     against dataset {digest:016x} — refusing to mix databases"
                ),
            }),
            Some(_) => Ok(()),
            None => {
                self.manifest.dataset_digest = Some(digest);
                write_json_atomic(&self.root.join(MANIFEST_FILE), &self.manifest)
            }
        }
    }

    fn season_dir(&self, name: &str) -> PathBuf {
        self.root.join(SEASONS_DIR).join(name)
    }

    /// Season names become directory names; keep them boring so a name
    /// can never traverse outside `seasons/` or collide with store files.
    fn validate_name(name: &str) -> Result<(), StoreError> {
        let ok = !name.is_empty()
            && name.len() <= 64
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            && !name.starts_with('.');
        if ok {
            Ok(())
        } else {
            Err(StoreError::Inconsistent {
                detail: format!(
                    "invalid season name `{name}`: use 1-64 ASCII alphanumerics, `-`, `_`, `.` \
                     (not leading)"
                ),
            })
        }
    }

    /// Start a new season: reserve `budget` from the cap in the
    /// meta-ledger (durably, first), then create its [`SeasonStore`].
    ///
    /// Refused with [`StoreError::AgencyBudget`] — before anything touches
    /// disk — when the reservation would overspend the cap, duplicate a
    /// name, or mismatch the cap's α. Re-issuing after a crash that left
    /// the reservation without a directory materializes the season
    /// (`budget` must equal the reservation).
    pub fn create_season(
        &mut self,
        name: &str,
        budget: PrivacyParams,
    ) -> Result<SeasonStore, StoreError> {
        Self::validate_name(name)?;
        // A closed name never comes back — not even the unmaterialized
        // crash window, whose whole budget was refunded at close.
        if self.meta.closure(name).is_some() {
            return Err(StoreError::SeasonClosed {
                name: name.to_string(),
            });
        }
        let season_dir = self.season_dir(name);
        if let Some(reservation) = self.meta.reservation(name) {
            if SeasonStore::exists_at(&season_dir) {
                return Err(StoreError::AlreadyExists { path: season_dir });
            }
            // Crash-window repair: the reservation is durable, the
            // directory never appeared. Materialize under the reserved
            // budget — and only that budget.
            if reservation.budget != budget {
                return Err(StoreError::Inconsistent {
                    detail: format!(
                        "season `{name}` already holds a reservation of {:?}; \
                         cannot materialize it with {:?}",
                        reservation.budget, budget
                    ),
                });
            }
            let mut store = SeasonStore::create(&season_dir, budget)?;
            store.set_metrics(self.metrics());
            self.upsert_summary(name, &store);
            self.flush_metrics()?;
            return Ok(store);
        }
        // Reservation-first write protocol: the meta-ledger admits (and
        // durably records) the whole season budget before the season
        // exists, so a crash can strand held budget but never unseen
        // spending capacity.
        let mut meta = self.meta.clone();
        meta.reserve(name, budget)
            .map_err(|source| StoreError::AgencyBudget {
                season: name.to_string(),
                source,
            })?;
        write_json_atomic(&self.root.join(META_LEDGER_FILE), &meta)?;
        self.meta = meta;
        let mut store = SeasonStore::create(&season_dir, budget)?;
        store.set_metrics(self.metrics());
        self.upsert_summary(name, &store);
        self.flush_metrics()?;
        Ok(store)
    }

    /// Refresh the audit view of one season from its live store.
    fn upsert_summary(&mut self, name: &str, season: &SeasonStore) {
        let summary = SeasonSummary {
            name: name.to_string(),
            budget: *season.ledger().budget(),
            spent_epsilon: season.ledger().spent_epsilon(),
            spent_delta: season.ledger().spent_delta(),
            completed: season.completed(),
            materialized: true,
            closed: season.is_closed(),
        };
        match self.seasons.iter_mut().find(|s| s.name == name) {
            Some(existing) => *existing = summary,
            None => self.seasons.push(summary),
        }
    }

    /// Open an existing season of this agency, re-verifying it end to end
    /// (full [`SeasonStore::open`]) and checking its budget against the
    /// reservation.
    pub fn open_season(&self, name: &str) -> Result<SeasonStore, StoreError> {
        Self::validate_name(name)?;
        let reservation = self
            .meta
            .reservation(name)
            .ok_or_else(|| StoreError::Inconsistent {
                detail: format!("agency holds no season named `{name}`"),
            })?;
        let mut season = SeasonStore::open(self.season_dir(name))?;
        if season.ledger().budget() != &reservation.budget {
            return Err(StoreError::Inconsistent {
                detail: format!(
                    "season `{name}` carries budget {:?} but its reservation is {:?}",
                    season.ledger().budget(),
                    reservation.budget
                ),
            });
        }
        season.set_metrics(self.metrics());
        Ok(season)
    }

    /// [`open_season`](Self::open_season) if the season exists (its
    /// reservation must equal `budget`), else
    /// [`create_season`](Self::create_season).
    pub fn open_or_create_season(
        &mut self,
        name: &str,
        budget: PrivacyParams,
    ) -> Result<SeasonStore, StoreError> {
        Self::validate_name(name)?;
        match self.meta.reservation(name) {
            Some(reservation) if reservation.budget != budget => Err(StoreError::Inconsistent {
                detail: format!(
                    "season `{name}` is reserved at {:?}, not the requested {:?}",
                    reservation.budget, budget
                ),
            }),
            Some(_) if SeasonStore::exists_at(self.season_dir(name)) => self.open_season(name),
            Some(_) => self.create_season(name, budget),
            None => self.create_season(name, budget),
        }
    }

    /// Execute (or resume) season `name` against `dataset` under the
    /// agency's shared truth store: verify the dataset pin (binding it on
    /// the agency's first run), open the season, and drive
    /// [`SeasonStore::run_cached`] with a cache backed by the persistent
    /// [`TruthStore`] — so truths tabulated by *any* season of this agency
    /// are reused, digest-verified, with zero recomputation.
    pub fn run_season(
        &mut self,
        name: &str,
        dataset: &Dataset,
        requests: &[ReleaseRequest],
    ) -> Result<SeasonReport, StoreError> {
        if self.manifest.panel {
            return Err(StoreError::Inconsistent {
                detail: "this agency governs a quarterly panel — run seasons through \
                         run_panel_season"
                    .to_string(),
            });
        }
        // Validate the season *before* touching the dataset pin: a failed
        // call (typo'd name, corrupt season) must not durably bind the
        // agency to whatever dataset it happened to be handed.
        let mut season = self.open_season(name)?;
        if season.is_closed() {
            return Err(StoreError::SeasonClosed {
                name: name.to_string(),
            });
        }
        let digest = dataset_digest(dataset);
        self.bind_dataset(digest)?;
        let truths = self.truth_store_pinned(digest)?;
        let mut cache = TabulationCache::with_store(truths);
        let result = season.run_cached_with_digest(dataset, digest, requests, &mut cache);
        // Refresh the audit view even when the run aborted mid-plan: the
        // season store reflects exactly what was durably persisted (and
        // charged) before the refusal, and that spend is real.
        self.upsert_summary(name, &season);
        // Flush the counters the run accumulated. On the error path the
        // original refusal outranks a metrics-flush failure.
        match self.flush_metrics() {
            Ok(()) => result,
            Err(flush_error) => result.and(Err(flush_error)),
        }
    }

    /// Execute (or resume) season `name` as quarter `quarter` of `panel`
    /// — the panel-mode counterpart of [`run_season`](Self::run_season).
    ///
    /// The agency is pinned to the [`panel_digest`] over every quarter's
    /// snapshot (bound on the first run, verified on every later one), the
    /// season to its own quarter's [`dataset_digest`] — so neither a
    /// changed panel nor a season resumed against the wrong quarter can
    /// pass. Within the run:
    ///
    /// * level and shape requests tabulate the quarter's snapshot, with
    ///   truths persisted in the shared store under the quarter's digest;
    /// * [flow](crate::engine::ReleaseRequest::flows) requests tabulate
    ///   the `(quarter − 1, quarter)` pair (refused for the base quarter),
    ///   with truths content-addressed by the pair digest;
    /// * every request's noise seed is derived by [`panel_quarter_seed`]
    ///   from its own seed and the quarter index — the
    ///   **consistent-over-time seeding rule**: the noise a request draws
    ///   at quarter `q` depends only on `(request seed, q)`, never on
    ///   submission order or which other quarters have run, so
    ///   level-vs-change comparisons see coherent noise and resumed
    ///   quarters reproduce bit-identically.
    pub fn run_panel_season(
        &mut self,
        name: &str,
        panel: &DatasetPanel,
        quarter: usize,
        requests: &[ReleaseRequest],
    ) -> Result<SeasonReport, StoreError> {
        if !self.manifest.panel {
            return Err(StoreError::Inconsistent {
                detail: "this agency governs a single snapshot — run seasons through run_season"
                    .to_string(),
            });
        }
        if quarter >= panel.quarters() {
            return Err(StoreError::Inconsistent {
                detail: format!(
                    "panel holds {} quarters; quarter {quarter} does not exist",
                    panel.quarters()
                ),
            });
        }
        // Season validity before the pin, exactly as in `run_season`.
        let mut season = self.open_season(name)?;
        if season.is_closed() {
            return Err(StoreError::SeasonClosed {
                name: name.to_string(),
            });
        }
        let quarter_digests: Vec<u64> = panel.snapshots().iter().map(dataset_digest).collect();
        self.bind_dataset(panel_digest(&quarter_digests))?;
        let digest = quarter_digests[quarter];
        // The store handle is pinned to *this quarter*: level truths of
        // different quarters have disjoint content addresses in the one
        // shared directory, and flow truths are addressed by pair digest.
        let truths = self.truth_store_pinned(digest)?;
        let mut cache = TabulationCache::with_store(truths);
        let seeded: Vec<ReleaseRequest> = requests
            .iter()
            .map(|request| {
                let seed = panel_quarter_seed(request.seed_value(), quarter);
                request.clone().seed(seed)
            })
            .collect();
        let before =
            (quarter > 0).then(|| (panel.quarter(quarter - 1), quarter_digests[quarter - 1]));
        let result = season.run_panel_cached_with_digest(
            before,
            panel.quarter(quarter),
            digest,
            &seeded,
            &mut cache,
        );
        self.upsert_summary(name, &season);
        match self.flush_metrics() {
            Ok(()) => result,
            Err(flush_error) => result.and(Err(flush_error)),
        }
    }

    /// Close season `name`: durably refund its unspent remainder to the
    /// agency cap and seal the season against further releases.
    ///
    /// The close is a three-step protocol, each step durable before the
    /// next, so every crash window rolls forward:
    ///
    /// 1. **Freeze** — [`MetaLedger::close_begin`] records the refund
    ///    (the season ledger's remaining `(ε, δ)`; the whole reservation
    ///    for a season that never materialized) and the meta-ledger is
    ///    persisted. A crash here leaves the refund frozen but not yet
    ///    spendable — fail closed.
    /// 2. **Seal** — the season manifest is marked closed
    ///    ([`SeasonStore::seal`]), so the remainder being refunded can
    ///    never also be spent by a resumed run.
    /// 3. **Credit** — [`MetaLedger::close_seal`] credits the frozen
    ///    amount back to the cap and the meta-ledger is persisted again.
    ///
    /// Crashes between the steps are repaired by [`open`](Self::open)
    /// (which rolls pending closures forward) or by re-issuing this call,
    /// which resumes from the durable record instead of recomputing the
    /// refund. Closing an already-closed season is not an error: it
    /// returns the original closure's receipt with
    /// [`already_closed`](ClosureReceipt::already_closed) set.
    pub fn close_season(&mut self, name: &str) -> Result<ClosureReceipt, StoreError> {
        Self::validate_name(name)?;
        let reservation = self
            .meta
            .reservation(name)
            .ok_or_else(|| StoreError::Inconsistent {
                detail: format!("agency holds no season named `{name}`"),
            })?
            .clone();
        if let Some(closure) = self.meta.closure(name) {
            if closure.sealed {
                return Ok(ClosureReceipt {
                    name: name.to_string(),
                    refund_epsilon: closure.refund_epsilon,
                    refund_delta: closure.refund_delta,
                    already_closed: true,
                    remaining_epsilon: self.meta.remaining_epsilon(),
                });
            }
        }
        let season_dir = self.season_dir(name);
        let mut season = if SeasonStore::exists_at(&season_dir) {
            Some(SeasonStore::open(&season_dir)?)
        } else {
            None
        };
        // Step 1 — freeze the refund durably. A re-issued close after a
        // crash honors the frozen amount rather than recomputing it (the
        // season may have been sealed in between, but its ledger cannot
        // have moved: the freeze-then-seal order leaves no window where
        // the remainder changes).
        let (refund_epsilon, refund_delta) = match self.meta.closure(name) {
            Some(pending) => (pending.refund_epsilon, pending.refund_delta),
            None => {
                let (refund_epsilon, refund_delta) = match &season {
                    Some(season) => (
                        season.ledger().remaining_epsilon(),
                        season.ledger().remaining_delta(),
                    ),
                    // Never materialized: the whole reservation comes back.
                    None => (reservation.budget.epsilon, reservation.budget.delta),
                };
                let mut meta = self.meta.clone();
                meta.close_begin(name, refund_epsilon, refund_delta)
                    .map_err(|source| StoreError::AgencyBudget {
                        season: name.to_string(),
                        source,
                    })?;
                write_json_atomic(&self.root.join(META_LEDGER_FILE), &meta)?;
                self.meta = meta;
                (refund_epsilon, refund_delta)
            }
        };
        // Step 2 — seal the season: from here no resumed run can spend
        // the remainder that step 3 is about to credit back.
        if let Some(season) = season.as_mut() {
            season.seal()?;
            self.upsert_summary(name, season);
        }
        // Step 3 — credit the frozen refund and seal the closure.
        let mut meta = self.meta.clone();
        meta.close_seal(name)
            .map_err(|source| StoreError::AgencyBudget {
                season: name.to_string(),
                source,
            })?;
        write_json_atomic(&self.root.join(META_LEDGER_FILE), &meta)?;
        self.meta = meta;
        if let Some(summary) = self.seasons.iter_mut().find(|s| s.name == name) {
            summary.closed = true;
        }
        // Close is a season-commit point: the refund just moved the
        // budget gauges, and the durable counter snapshot should carry
        // every denial and cache hit recorded up to the seal.
        self.flush_metrics()?;
        Ok(ClosureReceipt {
            name: name.to_string(),
            refund_epsilon,
            refund_delta,
            already_closed: false,
            remaining_epsilon: self.meta.remaining_epsilon(),
        })
    }

    /// Total ε refunded to the cap by sealed season closures.
    pub fn refunded_epsilon(&self) -> f64 {
        self.meta.refunded_epsilon()
    }

    /// The agency's live metrics registry. Shared with every season
    /// store, engine, and cache handle this agency hands out; cheap to
    /// clone (an [`Arc`]) and safe to read from any thread.
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// A point-in-time [`MetricsSnapshot`] with the budget gauges
    /// refreshed from the meta-ledger first, so the snapshot's ε
    /// accounting always matches [`Self::meta_ledger`] bit-exactly.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.refresh_budget_gauges();
        self.metrics.snapshot()
    }

    /// Refresh the registry's budget gauges from the authoritative
    /// meta-ledger. Gauges are convenience mirrors — the ledger replay is
    /// the source of truth, so they are overwritten (never accumulated)
    /// right before every snapshot and flush.
    fn refresh_budget_gauges(&self) {
        self.metrics.epsilon_cap.set(self.meta.cap().epsilon);
        self.metrics
            .epsilon_reserved
            .set(self.meta.reserved_epsilon());
        self.metrics
            .epsilon_remaining
            .set(self.meta.remaining_epsilon());
        self.metrics
            .epsilon_refunded
            .set(self.meta.refunded_epsilon());
    }

    /// Durably persist the cumulative counters to [`METRICS_FILE`]
    /// through the chaos-counted atomic write path. Called at
    /// season-commit points (create / open / run / close); the flush
    /// counter increments first so the written snapshot accounts for its
    /// own flush.
    fn flush_metrics(&self) -> Result<(), StoreError> {
        self.refresh_budget_gauges();
        self.metrics.flushes.inc();
        write_json_atomic(&self.root.join(METRICS_FILE), &self.metrics.snapshot())
    }

    /// Total δ refunded to the cap by sealed season closures.
    pub fn refunded_delta(&self) -> f64 {
        self.meta.refunded_delta()
    }
}

/// `panel`-flag display helper for mode-mismatch errors.
fn mode_label(panel: bool) -> &'static str {
    if panel {
        "quarterly-panel"
    } else {
        "single-snapshot"
    }
}

/// Derive the noise seed a request uses at `quarter` of a panel: two
/// SplitMix64 rounds over the request's own seed and the quarter index
/// (the same derivation style as the engine's per-cell seeds).
///
/// This is the consistent-over-time seeding rule in one function — a pure
/// function of `(base, quarter)`, so a request's noise at a quarter is
/// independent of submission order, of resumption, and of every other
/// quarter, while distinct quarters (and distinct base seeds) get
/// decorrelated streams. A flow request over `(q − 1, q)` is seeded by its
/// *ending* quarter `q`: the flow and the quarter-`q` level release it
/// reconciles against draw from the same per-quarter stream family.
pub fn panel_quarter_seed(base: u64, quarter: usize) -> u64 {
    let mut state = base ^ (quarter as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut step = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    step();
    step()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::MechanismKind;
    use lodes::{Generator, GeneratorConfig};
    use tabulate::{workload1, workload3};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eree-agency-unit-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn dataset() -> Dataset {
        Generator::new(GeneratorConfig::test_small(21)).generate()
    }

    fn request(seed: u64, epsilon: f64) -> ReleaseRequest {
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, epsilon))
            .seed(seed)
    }

    #[test]
    fn create_then_open_round_trips() {
        let dir = tmp_dir("roundtrip");
        let cap = PrivacyParams::pure(0.1, 8.0);
        let mut agency = AgencyStore::create(&dir, cap).unwrap();
        agency
            .create_season("a", PrivacyParams::pure(0.1, 3.0))
            .unwrap();
        agency
            .create_season("b", PrivacyParams::pure(0.1, 4.0))
            .unwrap();
        drop(agency);
        let agency = AgencyStore::open(&dir).unwrap();
        assert_eq!(agency.cap(), &cap);
        assert_eq!(agency.seasons().len(), 2);
        assert!((agency.remaining_epsilon() - 1.0).abs() < 1e-12);
        assert!(matches!(
            AgencyStore::create(&dir, cap),
            Err(StoreError::AlreadyExists { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn over_cap_season_is_refused_before_any_disk_state() {
        let dir = tmp_dir("over-cap");
        let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 4.0)).unwrap();
        agency
            .create_season("first", PrivacyParams::pure(0.1, 3.0))
            .unwrap();
        let err = agency
            .create_season("greedy", PrivacyParams::pure(0.1, 2.0))
            .unwrap_err();
        assert!(matches!(err, StoreError::AgencyBudget { .. }));
        assert!(!dir.join("seasons").join("greedy").exists());
        assert_eq!(agency.meta_ledger().reservations().len(), 1);
        // The durable state agrees: reopening sees one season.
        drop(agency);
        let agency = AgencyStore::open(&dir).unwrap();
        assert_eq!(agency.seasons().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_season_names_are_refused() {
        let dir = tmp_dir("names");
        let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 4.0)).unwrap();
        for bad in ["", "..", "a/b", "a\\b", ".hidden", "x".repeat(65).as_str()] {
            assert!(
                matches!(
                    agency.create_season(bad, PrivacyParams::pure(0.1, 1.0)),
                    Err(StoreError::Inconsistent { .. })
                ),
                "name {bad:?} must be refused"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reservation_without_directory_is_the_repairable_crash_window() {
        let dir = tmp_dir("crash-window");
        let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 4.0)).unwrap();
        agency
            .create_season("s", PrivacyParams::pure(0.1, 3.0))
            .unwrap();
        // Simulate the crash: the reservation landed, the directory never
        // did (and the crashed process's handle — with its lease — died).
        drop(agency);
        fs::remove_dir_all(dir.join("seasons").join("s")).unwrap();
        let mut agency = AgencyStore::open(&dir).unwrap();
        assert!(!agency.seasons()[0].materialized);
        // The budget stays held…
        assert!((agency.remaining_epsilon() - 1.0).abs() < 1e-12);
        // …a different budget cannot claim the name…
        assert!(matches!(
            agency.create_season("s", PrivacyParams::pure(0.1, 1.0)),
            Err(StoreError::Inconsistent { .. })
        ));
        // …and re-issuing with the reserved budget materializes it — in
        // the in-memory audit view too, not just on disk.
        agency
            .create_season("s", PrivacyParams::pure(0.1, 3.0))
            .unwrap();
        assert!(dir.join("seasons").join("s").exists());
        assert!(agency
            .seasons()
            .iter()
            .any(|s| s.name == "s" && s.materialized));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_concurrent_agency_writer_is_refused() {
        let dir = tmp_dir("agency-lease");
        let agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 4.0)).unwrap();
        // The directory is write-leased while a handle lives…
        assert!(matches!(
            AgencyStore::open(&dir),
            Err(StoreError::Locked { holder_pid, .. }) if holder_pid == std::process::id()
        ));
        // …and the public artifact cache exists from birth.
        assert!(agency.release_cache().unwrap().is_empty());
        drop(agency);
        let agency = AgencyStore::open(&dir).unwrap();
        drop(agency);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn season_directory_without_reservation_is_refused() {
        let dir = tmp_dir("rogue-season");
        let agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 4.0)).unwrap();
        drop(agency);
        SeasonStore::create(
            dir.join("seasons").join("rogue"),
            PrivacyParams::pure(0.1, 1.0),
        )
        .unwrap();
        let err = AgencyStore::open(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Inconsistent { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_season_binds_dataset_and_shares_truths() {
        let dir = tmp_dir("shared-truths");
        let d = dataset();
        let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 6.0)).unwrap();
        // A failed run against a nonexistent season must not durably bind
        // the agency to the dataset it was (possibly wrongly) handed.
        assert!(agency.run_season("typo", &d, &[request(0, 1.0)]).is_err());
        assert_eq!(agency.dataset_digest(), None);
        agency
            .create_season("a", PrivacyParams::pure(0.1, 2.0))
            .unwrap();
        agency
            .create_season("b", PrivacyParams::pure(0.1, 2.0))
            .unwrap();
        let ra = agency.run_season("a", &d, &[request(1, 2.0)]).unwrap();
        assert_eq!(ra.tabulations_computed, 1);
        assert_eq!(ra.tabulation_disk_hits, 0);
        // Season b shares the (spec, filter): zero recomputation.
        let rb = agency.run_season("b", &d, &[request(2, 2.0)]).unwrap();
        assert_eq!(rb.tabulations_computed, 0);
        assert_eq!(rb.tabulation_disk_hits, 1);
        // The agency is now pinned: a different dataset is refused.
        let other = Generator::new(GeneratorConfig::test_small(22)).generate();
        agency
            .create_season("c", PrivacyParams::pure(0.1, 1.0))
            .unwrap();
        assert!(matches!(
            agency.run_season("c", &other, &[request(3, 1.0)]),
            Err(StoreError::Inconsistent { .. })
        ));
        // And so is a season plan that overdraws its own ledger.
        assert!(matches!(
            agency.run_season("c", &d, &[request(3, 1.5)]),
            Err(StoreError::Refused { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_season_ledger_refuses_the_whole_agency() {
        let dir = tmp_dir("tampered-season");
        let d = dataset();
        let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 6.0)).unwrap();
        agency
            .create_season("a", PrivacyParams::pure(0.1, 2.0))
            .unwrap();
        agency.run_season("a", &d, &[request(1, 2.0)]).unwrap();
        drop(agency);
        let ledger_path = dir.join("seasons").join("a").join("ledger.json");
        let tampered = fs::read_to_string(&ledger_path)
            .unwrap()
            .replace("\"spent_epsilon\": 2.0", "\"spent_epsilon\": 0.5");
        fs::write(&ledger_path, tampered).unwrap();
        assert!(AgencyStore::open(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resumed_season_serves_truths_from_disk() {
        let dir = tmp_dir("resume-truths");
        let d = dataset();
        let plan = vec![
            request(1, 1.0),
            ReleaseRequest::marginal(workload3())
                .mechanism(MechanismKind::LogLaplace)
                .budget(PrivacyParams::pure(0.1, 8.0))
                .seed(2),
        ];
        let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 9.0)).unwrap();
        agency
            .create_season("s", PrivacyParams::pure(0.1, 9.0))
            .unwrap();
        // First run killed after one release.
        agency.run_season("s", &d, &plan[..1]).unwrap();
        drop(agency);
        // Resume from a fresh process: the first request's truth comes
        // from the store (it is verified, not re-tabulated), the second is
        // computed and persisted.
        let mut agency = AgencyStore::open(&dir).unwrap();
        let report = agency.run_season("s", &d, &plan).unwrap();
        assert_eq!(report.resumed_from, 1);
        assert_eq!(report.executed, 1);
        assert_eq!(report.tabulations_computed, 1);
        let truths = agency.truth_store().unwrap().expect("dataset bound");
        assert_eq!(truths.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn close_season_refunds_unspent_budget_and_seals() {
        let dir = tmp_dir("close");
        let d = dataset();
        let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 8.0)).unwrap();
        agency
            .create_season("s", PrivacyParams::pure(0.1, 5.0))
            .unwrap();
        agency.run_season("s", &d, &[request(1, 2.0)]).unwrap();
        // 5 reserved, 2 spent: the close refunds 3 back to the cap.
        let receipt = agency.close_season("s").unwrap();
        assert!(!receipt.already_closed);
        assert!((receipt.refund_epsilon - 3.0).abs() < 1e-9);
        assert!((agency.remaining_epsilon() - 6.0).abs() < 1e-9);
        assert!((agency.refunded_epsilon() - 3.0).abs() < 1e-9);
        // The sealed season refuses further runs, the name never returns,
        // and the refunded headroom is reservable by a new season.
        assert!(matches!(
            agency.run_season("s", &d, &[request(2, 1.0)]),
            Err(StoreError::SeasonClosed { .. })
        ));
        assert!(matches!(
            agency.create_season("s", PrivacyParams::pure(0.1, 1.0)),
            Err(StoreError::SeasonClosed { .. })
        ));
        agency
            .create_season("next", PrivacyParams::pure(0.1, 6.0))
            .unwrap();
        // Closing again is idempotent and echoes the original refund.
        let again = agency.close_season("s").unwrap();
        assert!(again.already_closed);
        assert!((again.refund_epsilon - 3.0).abs() < 1e-9);
        // Everything survives a reopen.
        drop(agency);
        let agency = AgencyStore::open(&dir).unwrap();
        assert!(agency
            .seasons()
            .iter()
            .any(|s| s.name == "s" && s.closed && s.materialized));
        assert!((agency.refunded_epsilon() - 3.0).abs() < 1e-9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn close_of_unmaterialized_season_refunds_whole_reservation() {
        let dir = tmp_dir("close-unmaterialized");
        let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 4.0)).unwrap();
        agency
            .create_season("s", PrivacyParams::pure(0.1, 3.0))
            .unwrap();
        // Simulate the create-season crash window: reservation, no dir.
        fs::remove_dir_all(dir.join("seasons").join("s")).unwrap();
        drop(agency);
        let mut agency = AgencyStore::open(&dir).unwrap();
        let receipt = agency.close_season("s").unwrap();
        assert!((receipt.refund_epsilon - 3.0).abs() < 1e-9);
        assert!((agency.remaining_epsilon() - 4.0).abs() < 1e-9);
        // The closed name cannot be re-materialized through the
        // crash-window repair path.
        assert!(matches!(
            agency.create_season("s", PrivacyParams::pure(0.1, 3.0)),
            Err(StoreError::SeasonClosed { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_close_rolls_forward_on_open() {
        let dir = tmp_dir("close-rollforward");
        let d = dataset();
        let mut agency = AgencyStore::create(&dir, PrivacyParams::pure(0.1, 8.0)).unwrap();
        agency
            .create_season("s", PrivacyParams::pure(0.1, 5.0))
            .unwrap();
        agency.run_season("s", &d, &[request(1, 2.0)]).unwrap();
        // Simulate a crash between close_begin and close_seal: freeze the
        // refund durably, then "die" before sealing.
        let mut meta = agency.meta_ledger().clone();
        meta.close_begin("s", 3.0, 0.0).unwrap();
        write_json_atomic(&dir.join("meta_ledger.json"), &meta).unwrap();
        drop(agency);
        // While frozen, the refund is not spendable (fail closed)…
        let frozen: MetaLedger = crate::store::read_json(&dir.join("meta_ledger.json")).unwrap();
        assert!((frozen.remaining_epsilon() - 3.0).abs() < 1e-9);
        // …and open rolls the close forward: season sealed, refund
        // credited, totals visible.
        let agency = AgencyStore::open(&dir).unwrap();
        assert!((agency.remaining_epsilon() - 6.0).abs() < 1e-9);
        assert!((agency.refunded_epsilon() - 3.0).abs() < 1e-9);
        assert!(agency.seasons().iter().any(|s| s.name == "s" && s.closed));
        assert!(agency.open_season("s").unwrap().is_closed());
        fs::remove_dir_all(&dir).unwrap();
    }

    fn panel() -> DatasetPanel {
        DatasetPanel::generate(
            &GeneratorConfig::test_small(31),
            &lodes::PanelConfig {
                quarters: 3,
                growth_sigma: 0.1,
                death_rate: 0.03,
                seed: 5,
            },
        )
    }

    fn flow_request(seed: u64, epsilon: f64) -> ReleaseRequest {
        ReleaseRequest::flows(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, epsilon))
            .seed(seed)
    }

    #[test]
    fn panel_agency_runs_quarters_under_one_cap() {
        let dir = tmp_dir("panel");
        let p = panel();
        let mut agency = AgencyStore::create_panel(&dir, PrivacyParams::pure(0.1, 13.0)).unwrap();
        assert!(agency.is_panel());
        for q in 0..p.quarters() {
            agency
                .create_season(&format!("q{q}"), PrivacyParams::pure(0.1, 4.0))
                .unwrap();
        }
        // All three quarterly budgets are reservations of the one cap.
        assert!((agency.remaining_epsilon() - 1.0).abs() < 1e-12);
        // Base quarter: a level release; later quarters: level + flows.
        agency
            .run_panel_season("q0", &p, 0, &[request(9, 4.0)])
            .unwrap();
        for q in 1..p.quarters() {
            let name = format!("q{q}");
            let plan = [request(9, 1.0), flow_request(9, 3.0)];
            let report = agency.run_panel_season(&name, &p, q, &plan).unwrap();
            assert_eq!(report.executed, 2);
        }
        // A flow in the base quarter has no before-snapshot: refused.
        agency
            .create_season("extra", PrivacyParams::pure(0.1, 1.0))
            .unwrap();
        assert!(matches!(
            agency.run_panel_season("extra", &p, 0, &[flow_request(1, 0.9)]),
            Err(StoreError::Refused { .. })
        ));
        // Mode mismatches are refused outright.
        assert!(matches!(
            agency.run_season("q1", p.quarter(1), &[request(1, 1.0)]),
            Err(StoreError::Inconsistent { .. })
        ));
        // The agency pin is the panel digest, not any quarter's.
        let quarter_digests: Vec<u64> = p.snapshots().iter().map(dataset_digest).collect();
        assert_eq!(
            agency.dataset_digest(),
            Some(panel_digest(&quarter_digests))
        );
        // Reopening verifies every per-quarter season without tripping the
        // single-snapshot digest cross-check.
        drop(agency);
        let agency = AgencyStore::open(&dir).unwrap();
        assert!(agency.is_panel());
        assert_eq!(agency.seasons().len(), 4);
        assert!(matches!(
            AgencyStore::open_or_create(&dir, PrivacyParams::pure(0.1, 13.0)),
            Err(StoreError::Locked { .. })
        ));
        drop(agency);
        // Mode is part of the open_or_create contract.
        assert!(matches!(
            AgencyStore::open_or_create(&dir, PrivacyParams::pure(0.1, 13.0)),
            Err(StoreError::Inconsistent { .. })
        ));
        let agency =
            AgencyStore::open_or_create_panel(&dir, PrivacyParams::pure(0.1, 13.0)).unwrap();
        drop(agency);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn panel_seasons_resume_bit_identically_and_share_flow_truths() {
        let dir = tmp_dir("panel-resume");
        let p = panel();
        let plan = [request(3, 1.0), flow_request(3, 3.0)];
        let mut agency = AgencyStore::create_panel(&dir, PrivacyParams::pure(0.1, 8.0)).unwrap();
        agency
            .create_season("q1", PrivacyParams::pure(0.1, 4.0))
            .unwrap();
        let first = agency.run_panel_season("q1", &p, 1, &plan).unwrap();
        assert_eq!(first.executed, 2);
        // Re-running the same quarter resumes: the derived seeds (and so
        // the persisted artifacts) reproduce, and the whole plan is
        // recognized as already published.
        let resumed = agency.run_panel_season("q1", &p, 1, &plan).unwrap();
        assert_eq!(resumed.resumed_from, 2);
        assert_eq!(resumed.executed, 0);
        // A sibling season publishing the same flow reuses its persisted
        // truth from disk (addressed by the pair digest).
        agency
            .create_season("q1-update", PrivacyParams::pure(0.1, 4.0))
            .unwrap();
        let sibling = agency.run_panel_season("q1-update", &p, 1, &plan).unwrap();
        assert_eq!(sibling.tabulations_computed, 0);
        assert_eq!(sibling.tabulation_disk_hits, 2);
        // The seeding rule is a pure function of (seed, quarter).
        assert_eq!(panel_quarter_seed(3, 1), panel_quarter_seed(3, 1));
        assert_ne!(panel_quarter_seed(3, 1), panel_quarter_seed(3, 2));
        assert_ne!(panel_quarter_seed(3, 1), panel_quarter_seed(4, 1));
        // A changed panel (e.g. a quarter swapped out) is refused by the
        // panel-digest pin before anything runs.
        let other = DatasetPanel::generate(
            &GeneratorConfig::test_small(32),
            &lodes::PanelConfig {
                quarters: 3,
                growth_sigma: 0.1,
                death_rate: 0.03,
                seed: 5,
            },
        );
        assert!(matches!(
            agency.run_panel_season("q1", &other, 1, &plan),
            Err(StoreError::Inconsistent { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
