//! Fault injection for the durability protocol (compiled only with the
//! default-off `chaos` cargo feature).
//!
//! Every durable filesystem mutation in the store/agency/truth/cache
//! layers funnels through thin wrappers that call [`hit`] immediately
//! before the real syscall. With no plan armed, [`hit`] is a no-op (and
//! without the feature, the wrappers compile down to the bare syscalls).
//! A chaos sweep then works in two passes:
//!
//! 1. **Count** ([`arm_count`]): run the scenario once, fault-free, and
//!    learn how many syscall boundaries it crosses — the denominator that
//!    makes coverage a *counted* property instead of a hand-picked list.
//! 2. **Fault** ([`arm`]): re-run the scenario once per boundary `k`,
//!    injecting at exactly the `k`-th boundary either an I/O error
//!    ([`FaultMode::Error`] — the syscall fails, destructors still run)
//!    or a kill ([`FaultMode::Kill`] — the "process" dies on the spot:
//!    an unwind carrying [`ChaosKill`] that skips lease cleanup, exactly
//!    like `kill -9` leaving the lease file behind).
//!
//! Kills also need a believable process identity: a store killed by the
//! sweep must reopen *in the same test process* and still exercise the
//! stale-lease reclaim path. [`set_lease_pid`] makes leases record a fake
//! PID instead of the real one, and a kill marks that PID dead, so the
//! reopened store sees a lease held by a provably dead process.
//!
//! All state is thread-local: the sweep driver is single-threaded, and
//! the engine's tabulation worker threads never touch the filesystem.

use std::cell::RefCell;
use std::collections::HashSet;
use std::io;
use std::path::Path;

/// The panic payload of an injected kill. Carried by the unwind that
/// [`FaultMode::Kill`] starts; the sweep driver catches it with
/// `std::panic::catch_unwind` and treats it as the simulated `SIGKILL`.
#[derive(Debug)]
pub struct ChaosKill;

/// What an armed fault does when its boundary is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The wrapped syscall fails with an injected `io::Error`. The caller
    /// sees an ordinary I/O failure and its destructors run — the
    /// "full disk / flaky device" shape of fault.
    Error,
    /// The process "dies" at the boundary: an unwinding panic carrying
    /// [`ChaosKill`] that suppresses lease cleanup and marks the current
    /// fake lease PID dead — the `kill -9` shape of fault.
    Kill,
}

#[derive(Debug, Default)]
struct State {
    armed: bool,
    /// Boundary number to trip, 1-based; 0 means count-only.
    target: u64,
    mode: Option<FaultMode>,
    counter: u64,
    tripped: bool,
    sites: Vec<String>,
    crashed: bool,
    lease_pid: Option<u32>,
    dead_pids: HashSet<u32>,
}

thread_local! {
    static STATE: RefCell<State> = RefCell::new(State::default());
}

/// What one armed window observed: how many boundaries were crossed,
/// whether the armed fault actually fired, and a site label per boundary.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Syscall boundaries crossed while armed.
    pub boundaries: u64,
    /// Whether the armed fault fired (always `false` after
    /// [`arm_count`]).
    pub tripped: bool,
    /// One `"op:file"` label per boundary, in order.
    pub sites: Vec<String>,
}

/// Arm counting mode: every boundary is recorded, none faults. Use this
/// first pass to learn the sweep's denominator.
pub fn arm_count() {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.armed = true;
        s.target = 0;
        s.mode = None;
        s.counter = 0;
        s.tripped = false;
        s.sites.clear();
    });
}

/// Arm a fault at the `target`-th boundary (1-based) in the given mode.
pub fn arm(target: u64, mode: FaultMode) {
    assert!(target > 0, "boundary numbers are 1-based");
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.armed = true;
        s.target = target;
        s.mode = Some(mode);
        s.counter = 0;
        s.tripped = false;
        s.sites.clear();
    });
}

/// Disarm and return what the armed window observed.
pub fn disarm() -> ChaosReport {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.armed = false;
        ChaosReport {
            boundaries: s.counter,
            tripped: s.tripped,
            sites: std::mem::take(&mut s.sites),
        }
    })
}

/// Is the thread currently unwinding (or left) a simulated kill? While
/// true, `DirLease` skips its drop-time cleanup — a killed process never
/// removes its own lease file.
pub fn crashed() -> bool {
    STATE.with(|s| s.borrow().crashed)
}

/// Acknowledge a simulated kill: the driver calls this after catching
/// [`ChaosKill`], before reopening stores as the "next" process.
pub fn clear_crashed() {
    STATE.with(|s| s.borrow_mut().crashed = false);
}

/// Make subsequently acquired leases record `pid` instead of the real
/// process id — the identity of the simulated process. The PID reads as
/// alive until a kill (or [`mark_pid_dead`]) declares it dead.
pub fn set_lease_pid(pid: u32) {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        s.lease_pid = Some(pid);
        s.dead_pids.remove(&pid);
    });
}

/// Stop overriding the lease PID: leases record the real process id
/// again.
pub fn clear_lease_pid() {
    STATE.with(|s| s.borrow_mut().lease_pid = None);
}

/// Declare `pid` dead, so a lease recording it reads as stale and gets
/// reclaimed.
pub fn mark_pid_dead(pid: u32) {
    STATE.with(|s| {
        let mut s = s.borrow_mut();
        if s.lease_pid == Some(pid) {
            s.lease_pid = None;
        }
        s.dead_pids.insert(pid);
    });
}

/// The PID leases should record right now, if overridden.
pub(crate) fn lease_pid_override() -> Option<u32> {
    STATE.with(|s| s.borrow().lease_pid)
}

/// Chaos's verdict on whether `pid` is alive, if it has one: dead if
/// declared dead, alive if it is the current simulated identity, and no
/// opinion (fall through to the real check) otherwise.
pub(crate) fn pid_alive_override(pid: u32) -> Option<bool> {
    STATE.with(|s| {
        let s = s.borrow();
        if s.dead_pids.contains(&pid) {
            Some(false)
        } else if s.lease_pid == Some(pid) {
            Some(true)
        } else {
            None
        }
    })
}

/// One syscall boundary: called by the `cfs` wrappers immediately before
/// the real filesystem mutation. Counts the boundary and, if it is the
/// armed target, injects the armed fault.
pub(crate) fn hit(op: &str, path: &Path) -> io::Result<()> {
    let kill = STATE.with(|s| {
        let mut s = s.borrow_mut();
        if !s.armed {
            return Ok(false);
        }
        s.counter += 1;
        // Label with the last two path components: file names alone do
        // not distinguish e.g. a truth file from a cache entry (both are
        // `<digest>.json`), their parent directories do.
        let mut tail: Vec<String> = path
            .components()
            .rev()
            .take(2)
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        tail.reverse();
        let file = tail.join("/");
        s.sites.push(format!("{op}:{file}"));
        if s.target != 0 && s.counter == s.target {
            s.tripped = true;
            match s.mode.expect("armed target always carries a mode") {
                FaultMode::Error => {
                    return Err(io::Error::other(format!(
                        "chaos: injected fault at boundary {} ({op} on {file})",
                        s.counter
                    )));
                }
                FaultMode::Kill => {
                    s.crashed = true;
                    // The dying "process" takes its identity with it: its
                    // leases must read as stale on reopen.
                    if let Some(pid) = s.lease_pid.take() {
                        s.dead_pids.insert(pid);
                    }
                    // Stop injecting while destructors unwind.
                    s.armed = false;
                    return Ok(true);
                }
            }
        }
        Ok(false)
    })?;
    if kill {
        std::panic::panic_any(ChaosKill);
    }
    Ok(())
}

/// Install a panic hook that silences [`ChaosKill`] unwinds (the sweep
/// kills on purpose at every boundary; the default hook would print a
/// backtrace per kill) while delegating every real panic to the previous
/// hook. Call once at the start of a sweep.
pub fn silence_kill_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info.payload().is::<ChaosKill>() {
            return;
        }
        previous(info);
    }));
}
