//! Privacy parameter types, validity constraints, and the paper's Tables
//! 1 and 2.

use crate::smooth::AdmissibilityBudget;
use serde::{Deserialize, Serialize};

/// Parameters of an (α, ε[, δ])-ER-EE privacy guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyParams {
    /// Multiplicative establishment-size protection factor `α > 0`.
    /// Keeping ε fixed, larger α means *less* privacy loss (sizes within a
    /// wider band are indistinguishable).
    pub alpha: f64,
    /// Privacy-loss budget `ε > 0`.
    pub epsilon: f64,
    /// Failure probability; `0` for pure (α,ε)-ER-EE privacy.
    pub delta: f64,
}

impl PrivacyParams {
    /// Pure (α, ε) parameters (δ = 0).
    ///
    /// # Panics
    /// Panics unless `α > 0` and `ε > 0` and both are finite.
    pub fn pure(alpha: f64, epsilon: f64) -> Self {
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "alpha must be positive, got {alpha}"
        );
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive, got {epsilon}"
        );
        Self {
            alpha,
            epsilon,
            delta: 0.0,
        }
    }

    /// Approximate (α, ε, δ) parameters.
    ///
    /// # Panics
    /// Panics unless `α, ε > 0` and `δ ∈ (0, 1)`.
    pub fn approximate(alpha: f64, epsilon: f64, delta: f64) -> Self {
        let mut p = Self::pure(alpha, epsilon);
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0,1), got {delta}"
        );
        p.delta = delta;
        p
    }

    /// δ values of order `1/n` or larger are dangerous: a mechanism that
    /// releases a δ-fraction of records exactly satisfies the definition
    /// (Sec 9). Returns `true` when `δ < 1/n`.
    pub fn delta_safe_for(&self, n_records: usize) -> bool {
        self.delta < 1.0 / n_records.max(1) as f64
    }
}

/// The privacy methods compared in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrivacyMethod {
    /// Input noise infusion — the deployed SDL (Sec 5).
    InputNoiseInfusion,
    /// Differential privacy over individuals (edge-DP on the bipartite
    /// graph; Sec 6).
    DpIndividuals,
    /// Differential privacy over establishments (node-DP; Sec 6).
    DpEstablishments,
    /// (α, ε)-ER-EE privacy (Def 7.2).
    EreePrivacy,
    /// Weak (α, ε)-ER-EE privacy (Def 7.4).
    WeakEreePrivacy,
}

impl PrivacyMethod {
    /// All rows of Table 1, in the paper's order.
    pub const ALL: [PrivacyMethod; 5] = [
        PrivacyMethod::InputNoiseInfusion,
        PrivacyMethod::DpIndividuals,
        PrivacyMethod::DpEstablishments,
        PrivacyMethod::EreePrivacy,
        PrivacyMethod::WeakEreePrivacy,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            PrivacyMethod::InputNoiseInfusion => "Input Noise Infusion (Sec 5)",
            PrivacyMethod::DpIndividuals => "Differential Privacy (individuals, Sec 6)",
            PrivacyMethod::DpEstablishments => "Differential Privacy (establishments, Sec 6)",
            PrivacyMethod::EreePrivacy => "ER-EE-privacy (Sec 7)",
            PrivacyMethod::WeakEreePrivacy => "Weak ER-EE privacy (Sec 7)",
        }
    }
}

/// The three statutory requirements of Section 4 (columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Requirement {
    /// Def 4.1: no re-identification of individuals.
    Individuals,
    /// Def 4.2: no precise inference of establishment size.
    EmployerSize,
    /// Def 4.3: no precise inference of establishment shape.
    EmployerShape,
}

impl Requirement {
    /// All columns of Table 1.
    pub const ALL: [Requirement; 3] = [
        Requirement::Individuals,
        Requirement::EmployerSize,
        Requirement::EmployerShape,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Requirement::Individuals => "Individuals",
            Requirement::EmployerSize => "Emp. Size",
            Requirement::EmployerShape => "Emp. Shape",
        }
    }
}

/// Whether a method satisfies a requirement (the entries of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Satisfaction {
    /// Requirement provably satisfied.
    Yes,
    /// Requirement not satisfied.
    No,
    /// Satisfied only against weak adversaries (the starred entry).
    WeakAdversariesOnly,
}

impl Satisfaction {
    /// Short cell text matching the paper.
    pub fn cell(&self) -> &'static str {
        match self {
            Satisfaction::Yes => "Yes",
            Satisfaction::No => "No",
            Satisfaction::WeakAdversariesOnly => "Yes*",
        }
    }
}

/// Table 1 of the paper: which privacy definitions satisfy which statutory
/// requirements.
///
/// The entries are the paper's analytical results; the test-suite
/// *validates* the load-bearing ones numerically (edge-DP failing employer
/// size via [`graphdp`-style band analysis]; ER-EE mechanisms passing all
/// three via density-ratio checks in [`crate::pufferfish`]).
pub fn requirement_matrix() -> Vec<(PrivacyMethod, [(Requirement, Satisfaction); 3])> {
    use PrivacyMethod::*;
    use Requirement::*;
    use Satisfaction::*;
    vec![
        (
            InputNoiseInfusion,
            [(Individuals, No), (EmployerSize, No), (EmployerShape, No)],
        ),
        (
            DpIndividuals,
            [(Individuals, Yes), (EmployerSize, No), (EmployerShape, No)],
        ),
        (
            DpEstablishments,
            [
                (Individuals, Yes),
                (EmployerSize, Yes),
                (EmployerShape, Yes),
            ],
        ),
        (
            EreePrivacy,
            [
                (Individuals, Yes),
                (EmployerSize, Yes),
                (EmployerShape, Yes),
            ],
        ),
        (
            WeakEreePrivacy,
            [
                (Individuals, Yes),
                (EmployerSize, WeakAdversariesOnly),
                (EmployerShape, Yes),
            ],
        ),
    ]
}

/// Table 2: the minimum ε for which the Smooth Laplace mechanism
/// (Algorithm 3) is valid at a given (α, δ) — the solution of
/// `α + 1 = e^{ε/(2·ln(1/δ))}`, i.e. `ε = 2·ln(1/δ)·ln(1+α)`.
///
/// See DESIGN.md §6: this constraint-derived formula matches the paper's
/// δ = 5×10⁻⁴ column; the published δ = .05 column appears to use a
/// different convention and is recorded side-by-side in EXPERIMENTS.md.
pub fn min_epsilon_smooth_laplace(alpha: f64, delta: f64) -> f64 {
    assert!(alpha > 0.0, "alpha must be positive");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    2.0 * (1.0 / delta).ln() * (1.0 + alpha).ln()
}

/// The minimum ε for which the Smooth Gamma mechanism (Algorithm 2) is
/// valid at a given α: `ε > 5·ln(1+α)`.
pub fn min_epsilon_smooth_gamma(alpha: f64) -> f64 {
    assert!(alpha > 0.0, "alpha must be positive");
    5.0 * (1.0 + alpha).ln()
}

/// Validity of each mechanism at given parameters (used by experiment
/// runners to skip disallowed (α,ε) combinations, mirroring the gaps in
/// the paper's figures).
pub fn smooth_gamma_valid(alpha: f64, epsilon: f64) -> bool {
    AdmissibilityBudget::gamma_poly(alpha, epsilon).is_some()
}

/// Whether Smooth Laplace is valid at `(α, ε, δ)`.
pub fn smooth_laplace_valid(alpha: f64, epsilon: f64, delta: f64) -> bool {
    AdmissibilityBudget::laplace(alpha, epsilon, delta).is_some()
}

/// Whether the Log-Laplace expectation is finite (λ = 2·ln(1+α)/ε < 1,
/// Lemma 8.2); the paper omits Log-Laplace results when unbounded.
pub fn log_laplace_bounded(alpha: f64, epsilon: f64) -> bool {
    2.0 * (1.0 + alpha).ln() / epsilon < 1.0
}

/// Section 9, Equation 13: under (α, ε, δ)-ER-EE privacy the failure mass
/// grows with database distance —
/// `Pr[M(D) ∈ S] ≤ e^{εd}·Pr[M(D′) ∈ S] + δ·(e^{εd} − 1)/(e^ε − 1)`
/// for `d = d(D, D′)` (the group-privacy form of the δ term; the paper
/// states the order `Ω(δ·e^{ε(d−1)})`).
///
/// Once the effective δ reaches 1 the bound is vacuous: an adversary may
/// rule out sufficiently distant databases **with certainty** — the
/// qualitative drawback of approximate privacy the paper highlights
/// ("an adversary must always have some amount of uncertainty … no matter
/// how far apart" only holds when δ = 0).
pub fn approx_delta_at_distance(epsilon: f64, delta: f64, distance: u32) -> f64 {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!((0.0..1.0).contains(&delta), "delta must be in [0,1)");
    if distance == 0 {
        return 0.0;
    }
    // Sum_{i=0}^{d-1} e^{eps*i} * delta = delta*(e^{eps*d}-1)/(e^eps - 1).
    let d = distance as f64;
    (delta * ((epsilon * d).exp() - 1.0) / (epsilon.exp() - 1.0)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        let p = PrivacyParams::pure(0.1, 2.0);
        assert_eq!(p.delta, 0.0);
        let p = PrivacyParams::approximate(0.1, 2.0, 0.05);
        assert_eq!(p.delta, 0.05);
        assert!(p.delta_safe_for(10));
        assert!(!p.delta_safe_for(100));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn rejects_zero_alpha() {
        PrivacyParams::pure(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0,1)")]
    fn rejects_bad_delta() {
        PrivacyParams::approximate(0.1, 1.0, 1.5);
    }

    #[test]
    fn table1_matches_paper() {
        let matrix = requirement_matrix();
        assert_eq!(matrix.len(), 5);
        // Input noise infusion fails everything.
        assert!(matrix[0].1.iter().all(|(_, s)| *s == Satisfaction::No));
        // Edge-DP protects individuals only.
        assert_eq!(matrix[1].1[0].1, Satisfaction::Yes);
        assert_eq!(matrix[1].1[1].1, Satisfaction::No);
        // ER-EE privacy satisfies all three.
        assert!(matrix[3].1.iter().all(|(_, s)| *s == Satisfaction::Yes));
        // Weak ER-EE: size only under weak adversaries.
        assert_eq!(matrix[4].1[1].1, Satisfaction::WeakAdversariesOnly);
        assert_eq!(matrix[4].1[1].1.cell(), "Yes*");
    }

    #[test]
    fn table2_epsilon_values() {
        // delta = 5e-4 column of Table 2.
        assert!((min_epsilon_smooth_laplace(0.01, 5e-4) - 0.151).abs() < 5e-3);
        assert!((min_epsilon_smooth_laplace(0.10, 5e-4) - 1.449).abs() < 5e-3);
        // Monotone in alpha and in 1/delta.
        assert!(min_epsilon_smooth_laplace(0.2, 5e-4) > min_epsilon_smooth_laplace(0.1, 5e-4));
        assert!(min_epsilon_smooth_laplace(0.1, 1e-6) > min_epsilon_smooth_laplace(0.1, 5e-4));
    }

    #[test]
    fn approx_delta_grows_with_distance_and_saturates() {
        let (eps, delta) = (1.0f64, 1e-3);
        assert_eq!(approx_delta_at_distance(eps, delta, 0), 0.0);
        assert!((approx_delta_at_distance(eps, delta, 1) - delta).abs() < 1e-15);
        // Strictly increasing in distance until the clamp at 1 engages.
        let mut prev = 0.0;
        for d in 1..10 {
            let cur = approx_delta_at_distance(eps, delta, d);
            assert!(
                cur > prev || (cur == 1.0 && prev == 1.0),
                "d={d}: {cur} <= {prev}"
            );
            prev = cur;
        }
        // Matches the paper's Omega(delta * e^{eps(d-1)}) order (checked
        // below the saturation point).
        let d5 = approx_delta_at_distance(eps, delta, 5);
        assert!(d5 >= delta * (eps * 4.0).exp());
        // Far enough: saturates at 1 (the adversary can rule D' out).
        assert_eq!(approx_delta_at_distance(eps, delta, 100), 1.0);
        // Pure (delta = 0) never saturates.
        assert_eq!(approx_delta_at_distance(eps, 0.0, 100), 0.0);
    }

    #[test]
    fn validity_predicates_agree_with_budgets() {
        assert!(smooth_gamma_valid(0.1, 2.0));
        assert!(!smooth_gamma_valid(0.3, 1.0));
        assert!(smooth_laplace_valid(0.1, 2.0, 0.05));
        assert!(!smooth_laplace_valid(0.2, 0.5, 5e-4));
        assert!(log_laplace_bounded(0.1, 1.0));
        assert!(!log_laplace_bounded(0.2, 0.25));
        // Gamma validity threshold matches min_epsilon.
        let alpha = 0.15;
        let e = min_epsilon_smooth_gamma(alpha);
        assert!(!smooth_gamma_valid(alpha, e * 0.999));
        assert!(smooth_gamma_valid(alpha, e * 1.001));
    }
}
