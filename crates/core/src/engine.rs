//! The release engine: the single front door for formally private
//! releases.
//!
//! A production release service — the operating model of a statistical
//! agency publishing many tabulations from one confidential database —
//! needs every release to flow through one place where it is *requested*,
//! *budget-checked*, *executed*, and *recorded*. This module provides that
//! seam:
//!
//! * [`ReleaseRequest`] — a builder describing one release: a marginal
//!   (`ReleaseRequest::marginal`) or an establishment-shape release
//!   (`ReleaseRequest::shapes`), with a mechanism, an `(α, ε[, δ])`
//!   budget (total or per-cell), an optional population filter (a
//!   declarative, serializable [`FilterExpr`] via
//!   [`ReleaseRequest::filter_expr`]; opaque closures survive as a
//!   deprecated escape hatch), optional integer post-processing, and a
//!   seed.
//! * [`ReleaseEngine`] — owns a [`Ledger`] and executes requests. Every
//!   request is validated against the mechanism's constraints and the
//!   remaining budget *before* any sampling happens; a rejected request
//!   consumes nothing. [`ReleaseEngine::execute_all`] runs a whole
//!   workload batch under the same ledger (sequential composition,
//!   Thm 7.3), parallelizing tabulation across requests and noising
//!   across cells.
//! * [`ReleaseArtifact`] — the durable, serde-serializable output:
//!   published cells (or shapes), the neighbor regime, the
//!   [`ReleaseCost`] charged, the mechanism name, the seed and request
//!   provenance. Truth digests are only attached when the `eval-only`
//!   feature is enabled (the evaluation harness needs them; a production
//!   service must not emit them).
//!
//! Determinism: per-cell noise streams are derived from
//! `(request seed, cell key)` with a SplitMix64 mix, and tabulation's
//! sharded establishment loop merges sorted runs with commutative
//! aggregates, so a fixed seed yields bit-identical artifacts regardless
//! of how many worker threads participate in either phase.
//!
//! Tabulation runs on a columnar employer-grouped
//! [`TabulationIndex`] — built **once per
//! dataset**: `execute_all` builds it per batch, [`TabulationCache`]
//! (used by `SeasonStore::run`) holds it for a whole season. Within a
//! batch or cache, each distinct `(MarginalSpec, filter identity)` is
//! tabulated once; declarative filters are identified by their
//! normalized structure (the [`FilterId`] digest is its compact
//! fingerprint), so structurally equal expressions share even when
//! constructed independently.
//!
//! ```
//! use eree_core::engine::{ReleaseEngine, ReleaseRequest};
//! use eree_core::{FilterExpr, MechanismKind, PrivacyParams};
//! use lodes::{Generator, GeneratorConfig, Sex};
//! use tabulate::{workload1, workload3};
//!
//! let dataset = Generator::new(GeneratorConfig::test_small(7)).generate();
//! // One ledger governs the whole publication season.
//! let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 11.0));
//! let batch = vec![
//!     ReleaseRequest::marginal(workload1())
//!         .mechanism(MechanismKind::SmoothGamma)
//!         .budget(PrivacyParams::pure(0.1, 2.0))
//!         .seed(1),
//!     ReleaseRequest::marginal(workload3())
//!         .mechanism(MechanismKind::LogLaplace)
//!         .budget(PrivacyParams::pure(0.1, 8.0))
//!         .seed(2),
//!     // A sub-population release: the filter is declarative data, so it
//!     // is recorded in the artifact's provenance and shares tabulations
//!     // with any structurally equal filter.
//!     ReleaseRequest::marginal(workload1())
//!         .mechanism(MechanismKind::SmoothGamma)
//!         .budget(PrivacyParams::pure(0.1, 1.0))
//!         .filter_expr(FilterExpr::sex(Sex::Female))
//!         .seed(3),
//! ];
//! let artifacts = engine.execute_all(&dataset, &batch);
//! assert!(artifacts.iter().all(|a| a.is_ok()));
//! assert!(engine.ledger().remaining_epsilon() < 1e-9);
//! let filtered = artifacts[2].as_ref().unwrap();
//! assert_eq!(
//!     filtered.request.filter_id(),
//!     Some(FilterExpr::sex(Sex::Female).id()),
//! );
//! ```

use crate::accountant::{Ledger, ReleaseCost};
use crate::definitions::PrivacyParams;
use crate::error::EngineError;
use crate::mechanisms::{CellQuery, MechanismKind};
use crate::metrics::{MetricsRegistry, REASON_REQUEST_INVALID};
use crate::neighbors::NeighborKind;
use crate::shape::ShapeRelease;
use lodes::{Dataset, Worker};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use tabulate::{
    CellKey, DatasetIndex, FilterExpr, FilterId, FlowMarginal, FlowStats, Marginal, MarginalSpec,
    RegionShardedIndex, TabulationIndex,
};

/// Worker predicate for filtered (single-query) workloads — the opaque
/// escape hatch. Prefer [`FilterExpr`] (via
/// [`ReleaseRequest::filter_expr`]): an expression's identity is
/// serializable, so structurally equal filters share tabulations and
/// filter provenance survives in artifacts and season stores.
pub type WorkerFilter = Arc<dyn Fn(&Worker) -> bool + Send + Sync>;

/// How a request restricts the tabulated population.
#[derive(Clone)]
enum RequestFilter {
    /// Declarative, serializable filter (the documented path).
    Expr(FilterExpr),
    /// Opaque closure (deprecated escape hatch); identity is the `Arc`
    /// pointer, provenance records only a boolean.
    Closure(WorkerFilter),
}

impl RequestFilter {
    fn expr(&self) -> Option<&FilterExpr> {
        match self {
            RequestFilter::Expr(expr) => Some(expr),
            RequestFilter::Closure(_) => None,
        }
    }
}

impl std::fmt::Debug for RequestFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestFilter::Expr(expr) => write!(f, "Expr({})", expr.id()),
            RequestFilter::Closure(_) => write!(f, "Closure(<opaque>)"),
        }
    }
}

/// What kind of release a request describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// Release every nonzero cell of a marginal.
    Marginal,
    /// Release the workforce shape of every workplace cell.
    Shapes,
    /// Release job-flow statistics (`B`, `JC`, `JD`, derived `E`) over a
    /// `(before, after)` dataset pair sharing one establishment frame.
    /// Flow requests execute through the `execute_flows*` entry points,
    /// which take both snapshots.
    Flows,
}

impl RequestKind {
    /// The stable lowercase label of this family — the `family` string
    /// in [`crate::metrics::FamilySnapshot`] and in request descriptions.
    pub fn label(&self) -> &'static str {
        match self {
            RequestKind::Marginal => "marginal",
            RequestKind::Shapes => "shapes",
            RequestKind::Flows => "flows",
        }
    }
}

/// How the request's budget is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum BudgetSpec {
    /// Budget for the *whole* release; per-cell parameters are derived by
    /// inverting the composition accounting.
    Total(PrivacyParams),
    /// Per-cell mechanism parameters; the ledger is charged the induced
    /// total (`multiplier × per-cell`).
    PerCell(PrivacyParams),
}

/// A builder-style description of one release.
///
/// Construct with [`ReleaseRequest::marginal`] or
/// [`ReleaseRequest::shapes`], then chain [`mechanism`](Self::mechanism),
/// [`budget`](Self::budget) (or [`budget_per_cell`](Self::budget_per_cell)),
/// and optionally [`filter_expr`](Self::filter_expr),
/// [`integerize`](Self::integerize), [`seed`](Self::seed),
/// [`describe`](Self::describe).
#[derive(Clone)]
pub struct ReleaseRequest {
    kind: RequestKind,
    spec: MarginalSpec,
    mechanism: Option<MechanismKind>,
    budget: Option<BudgetSpec>,
    filter: Option<RequestFilter>,
    integerize: bool,
    seed: u64,
    description: Option<String>,
}

impl std::fmt::Debug for ReleaseRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReleaseRequest")
            .field("kind", &self.kind)
            .field("spec", &self.spec.name())
            .field("mechanism", &self.mechanism)
            .field("budget", &self.budget)
            .field("filter", &self.filter)
            .field("integerize", &self.integerize)
            .field("seed", &self.seed)
            .finish()
    }
}

impl ReleaseRequest {
    fn new(kind: RequestKind, spec: MarginalSpec) -> Self {
        Self {
            kind,
            spec,
            mechanism: None,
            budget: None,
            filter: None,
            integerize: false,
            seed: 0,
            description: None,
        }
    }

    /// Request the marginal `spec` (every nonzero cell, noised).
    pub fn marginal(spec: MarginalSpec) -> Self {
        Self::new(RequestKind::Marginal, spec)
    }

    /// Request establishment-class shapes over the worker partition of
    /// `spec` (which must group by at least one worker attribute).
    pub fn shapes(spec: MarginalSpec) -> Self {
        Self::new(RequestKind::Shapes, spec)
    }

    /// Request job-flow statistics (`B`, `JC`, `JD`, derived `E`) grouped
    /// by the workplace attributes of `spec`, over a `(before, after)`
    /// dataset pair. The spec must not group by worker attributes — flows
    /// are establishment-level quantities. Execute through
    /// [`ReleaseEngine::execute_flows`] (or its cached/precomputed
    /// variants), which take both snapshots.
    pub fn flows(spec: MarginalSpec) -> Self {
        Self::new(RequestKind::Flows, spec)
    }

    /// Reconstruct the request a recorded [`RequestProvenance`] describes
    /// — the resume path of drivers that hold only persisted artifacts
    /// (e.g. a release service rebuilding a season's plan from its store).
    /// The rebuilt request reproduces the stored provenance exactly, so it
    /// passes the season store's resume verification.
    ///
    /// Returns `None` for closure-filtered provenance (`filtered` with no
    /// recorded expression): the population is not reconstructible.
    pub fn from_provenance(provenance: &RequestProvenance) -> Option<Self> {
        if provenance.filtered && provenance.filter.is_none() {
            return None;
        }
        let mut request = Self::new(provenance.kind, provenance.spec.clone())
            .mechanism(provenance.mechanism)
            .integerize(provenance.integerized)
            .seed(provenance.seed)
            .describe(provenance.description.clone());
        request = if provenance.budget_is_per_cell {
            request.budget_per_cell(provenance.budget)
        } else {
            request.budget(provenance.budget)
        };
        if let Some(expr) = &provenance.filter {
            request = request.filter_expr(expr.clone());
        }
        Some(request)
    }

    /// Which mechanism to sample from (required).
    pub fn mechanism(mut self, mechanism: MechanismKind) -> Self {
        self.mechanism = Some(mechanism);
        self
    }

    /// Total `(α, ε[, δ])` budget for the whole release (required, unless
    /// [`budget_per_cell`](Self::budget_per_cell) is used instead).
    pub fn budget(mut self, budget: PrivacyParams) -> Self {
        self.budget = Some(BudgetSpec::Total(budget));
        self
    }

    /// Per-cell mechanism parameters; the ledger is charged the induced
    /// total under the request's composition regime. This is the natural
    /// mode for single-query workloads evaluated at a per-query ε.
    pub fn budget_per_cell(mut self, per_cell: PrivacyParams) -> Self {
        self.budget = Some(BudgetSpec::PerCell(per_cell));
        self
    }

    /// Restrict the tabulated population by a declarative [`FilterExpr`]
    /// (see [`crate::filter`]). Filtered counts answer worker-level
    /// questions even on workplace-only specs, so a filtered request
    /// always runs under the **weak** regime (including a vacuous
    /// `FilterExpr::All` — the engine prices the request by its form,
    /// not by what the expression happens to match).
    ///
    /// Unlike a closure filter, the expression is recorded in the
    /// artifact's provenance, keys the tabulation cache by its
    /// normalized structure (structurally equal expressions share a
    /// tabulation, no `Arc` reuse required — the [`FilterId`] digest is
    /// only a compact fingerprint), and is verified across season
    /// resumes.
    pub fn filter_expr(mut self, expr: FilterExpr) -> Self {
        self.filter = Some(RequestFilter::Expr(expr));
        self
    }

    /// Restrict the tabulated population by an opaque worker predicate.
    ///
    /// Deprecated escape hatch: a closure's identity is its `Arc`
    /// pointer, so only requests cloned from one handle share
    /// tabulations, and provenance records nothing but a boolean flag —
    /// a resumed season cannot verify *which* population was filtered.
    /// Use [`filter_expr`](Self::filter_expr) unless the predicate
    /// genuinely cannot be expressed as a [`FilterExpr`].
    #[deprecated(
        since = "0.1.0",
        note = "use filter_expr(FilterExpr) — serializable identity, shared tabulations, verifiable provenance"
    )]
    pub fn filter(mut self, filter: impl Fn(&Worker) -> bool + Send + Sync + 'static) -> Self {
        self.filter = Some(RequestFilter::Closure(Arc::new(filter)));
        self
    }

    /// Round published values to non-negative integers (data-independent
    /// post-processing; preserves the guarantee, adds ≤ 0.5 expected L1).
    pub fn integerize(mut self, integerize: bool) -> Self {
        self.integerize = integerize;
        self
    }

    /// RNG seed (noise streams derive deterministically from it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Human-readable description recorded in the ledger and provenance.
    pub fn describe(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// The workload kind this request declares — drivers that route
    /// requests to the right execution path (single-snapshot vs dataset
    /// pair) dispatch on it.
    pub fn kind(&self) -> RequestKind {
        self.kind
    }

    /// The request's RNG seed (as set by [`seed`](Self::seed); the panel
    /// runner derives per-quarter seeds from it).
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// The neighbor regime the release's guarantee holds under.
    pub fn regime(&self) -> NeighborKind {
        match self.kind {
            RequestKind::Shapes => NeighborKind::Weak,
            RequestKind::Marginal | RequestKind::Flows => {
                if self.spec.has_worker_attrs() || self.filter.is_some() {
                    NeighborKind::Weak
                } else {
                    NeighborKind::Strong
                }
            }
        }
    }

    /// The request's description (explicit or derived).
    pub fn description(&self) -> String {
        self.description
            .clone()
            .unwrap_or_else(|| format!("{} release of {}", self.kind.label(), self.spec.name()))
    }

    /// The marginal spec the request tabulates.
    pub fn spec(&self) -> &MarginalSpec {
        &self.spec
    }

    /// Resolve budget accounting and validate the mechanism, *without*
    /// sampling or spending: returns per-cell parameters and the total
    /// [`ReleaseCost`] the ledger would be charged.
    pub fn plan(&self) -> Result<ReleasePlan, EngineError> {
        let mechanism = self.mechanism.ok_or(EngineError::IncompleteRequest {
            missing: "mechanism",
        })?;
        let budget = self
            .budget
            .ok_or(EngineError::IncompleteRequest { missing: "budget" })?;
        if self.kind == RequestKind::Shapes && !self.spec.has_worker_attrs() {
            return Err(EngineError::Shape(
                crate::shape::ShapeError::NoWorkerAttributes,
            ));
        }
        if self.kind == RequestKind::Flows && self.spec.has_worker_attrs() {
            return Err(EngineError::Flow {
                detail: "flow specs are establishment-level and must not \
                         group by worker attributes",
            });
        }
        let regime = self.regime();
        // Flow releases noise three statistics per cell (B, JC, JD; E is
        // derived), so their composition accounting is their own.
        let (per_cell, requested) = match (self.kind, budget) {
            (RequestKind::Flows, BudgetSpec::Total(total)) => {
                (ReleaseCost::per_cell_for_flow_total(&total), total)
            }
            (_, BudgetSpec::Total(total)) => (
                ReleaseCost::per_cell_for_total(&self.spec, &total, regime),
                total,
            ),
            (_, BudgetSpec::PerCell(per_cell)) => (per_cell, per_cell),
        };
        let cost = if self.kind == RequestKind::Flows {
            ReleaseCost::for_flows(&per_cell)
        } else {
            ReleaseCost::for_marginal(&self.spec, &per_cell, regime)
        };
        // Validate mechanism parameters up front so invalid requests are
        // rejected before any budget is spent.
        if mechanism.build(&per_cell).is_none() {
            return Err(EngineError::InvalidParameters {
                mechanism,
                per_cell_epsilon: per_cell.epsilon,
                alpha: per_cell.alpha,
                delta: per_cell.delta,
            });
        }
        Ok(ReleasePlan {
            mechanism,
            per_cell,
            cost,
            regime,
            requested,
            per_cell_budgeting: matches!(budget, BudgetSpec::PerCell(_)),
        })
    }

    pub(crate) fn provenance(&self, plan: &ReleasePlan) -> RequestProvenance {
        RequestProvenance {
            kind: self.kind,
            spec: self.spec.clone(),
            mechanism: plan.mechanism,
            budget: plan.requested,
            budget_is_per_cell: plan.per_cell_budgeting,
            seed: self.seed,
            filtered: self.filter.is_some(),
            filter: self.filter.as_ref().and_then(RequestFilter::expr).cloned(),
            integerized: self.integerize,
            description: self.description(),
        }
    }
}

/// A validated request: resolved accounting, not yet executed.
#[derive(Debug, Clone, Copy)]
pub struct ReleasePlan {
    /// The mechanism kind.
    pub mechanism: MechanismKind,
    /// Per-cell mechanism parameters after composition accounting.
    pub per_cell: PrivacyParams,
    /// Total cost the ledger will be charged.
    pub cost: ReleaseCost,
    /// Neighbor regime of the guarantee.
    pub regime: NeighborKind,
    requested: PrivacyParams,
    per_cell_budgeting: bool,
}

/// Immutable record of what was asked for, embedded in every artifact.
///
/// Serde is hand-written (not derived) for one reason: artifacts
/// persisted before the filter AST existed carry no `filter` field, and
/// they must keep deserializing — a missing field reads as `None`, the
/// exact provenance those artifacts recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestProvenance {
    /// Marginal or shapes.
    pub kind: RequestKind,
    /// The tabulated spec.
    pub spec: MarginalSpec,
    /// The sampling mechanism.
    pub mechanism: MechanismKind,
    /// The requested budget (total or per-cell, per
    /// [`budget_is_per_cell`](Self::budget_is_per_cell)).
    pub budget: PrivacyParams,
    /// Whether [`budget`](Self::budget) was per-cell parameters.
    pub budget_is_per_cell: bool,
    /// The request seed.
    pub seed: u64,
    /// Whether a worker filter restricted the population.
    pub filtered: bool,
    /// The declarative filter restricting the population, when the
    /// request used [`ReleaseRequest::filter_expr`]. `None` for
    /// unfiltered requests, for the deprecated closure escape hatch
    /// (whose only trace is [`filtered`](Self::filtered)), and for
    /// artifacts persisted before the AST existed.
    pub filter: Option<FilterExpr>,
    /// Whether outputs were rounded to non-negative integers.
    pub integerized: bool,
    /// Free-form description (also the ledger entry text).
    pub description: String,
}

impl RequestProvenance {
    /// Content digest of the recorded filter expression, when one was
    /// recorded. Season resume verification compares these digests.
    pub fn filter_id(&self) -> Option<FilterId> {
        self.filter.as_ref().map(FilterExpr::id)
    }
}

impl Serialize for RequestProvenance {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("kind".to_string(), self.kind.to_value()),
            ("spec".to_string(), self.spec.to_value()),
            ("mechanism".to_string(), self.mechanism.to_value()),
            ("budget".to_string(), self.budget.to_value()),
            (
                "budget_is_per_cell".to_string(),
                self.budget_is_per_cell.to_value(),
            ),
            ("seed".to_string(), self.seed.to_value()),
            ("filtered".to_string(), self.filtered.to_value()),
            ("filter".to_string(), self.filter.to_value()),
            ("integerized".to_string(), self.integerized.to_value()),
            ("description".to_string(), self.description.to_value()),
        ])
    }
}

impl Deserialize for RequestProvenance {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            kind: Deserialize::from_value(serde::get_field(v, "kind")?)?,
            spec: Deserialize::from_value(serde::get_field(v, "spec")?)?,
            mechanism: Deserialize::from_value(serde::get_field(v, "mechanism")?)?,
            budget: Deserialize::from_value(serde::get_field(v, "budget")?)?,
            budget_is_per_cell: Deserialize::from_value(serde::get_field(
                v,
                "budget_is_per_cell",
            )?)?,
            seed: Deserialize::from_value(serde::get_field(v, "seed")?)?,
            filtered: Deserialize::from_value(serde::get_field(v, "filtered")?)?,
            // Absent in pre-AST artifacts: default to "no expression
            // recorded" rather than refusing the whole store.
            filter: match v.get("filter") {
                Some(value) => Deserialize::from_value(value)?,
                None => None,
            },
            integerized: Deserialize::from_value(serde::get_field(v, "integerized")?)?,
            description: Deserialize::from_value(serde::get_field(v, "description")?)?,
        })
    }
}

/// One published flow cell: three noised statistics and the derived
/// fourth.
///
/// `beginning`, `job_creation`, and `job_destruction` each carry an
/// independent noise draw; `ending` is computed from them as
/// `B + JC − JD` *after* any integer post-processing, so the accounting
/// identity `E − B = JC − JD` holds **exactly** on the published values —
/// consistency is free post-processing, not a fourth query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowRelease {
    /// Noised beginning-of-period employment `B`.
    pub beginning: f64,
    /// Noised job creation `JC`.
    pub job_creation: f64,
    /// Noised job destruction `JD`.
    pub job_destruction: f64,
    /// Derived ending employment `E = B + JC − JD` (post-processed, never
    /// separately noised; may be negative when destruction noise
    /// dominates — clamping it would break the identity).
    pub ending: f64,
}

/// The released data inside an artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArtifactPayload {
    /// Noisy value per nonzero-true-count cell.
    Cells(BTreeMap<CellKey, f64>),
    /// One released shape per workplace cell.
    Shapes(Vec<ShapeRelease>),
    /// One released flow per active cell of a quarter pair.
    Flows(BTreeMap<CellKey, FlowRelease>),
}

/// A compact fingerprint of the underlying truth, for evaluation only.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TruthDigest {
    /// Number of nonzero cells.
    pub num_cells: usize,
    /// Sum of all true counts.
    pub total_count: u64,
    /// FNV-1a over `(key, count)` pairs in key order.
    pub checksum: u64,
}

impl TruthDigest {
    /// Digest a marginal.
    pub fn of(truth: &Marginal) -> Self {
        let mut checksum: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |word: u64| {
            for byte in word.to_le_bytes() {
                checksum ^= byte as u64;
                checksum = checksum.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for (key, stats) in truth.iter() {
            fold(key.0);
            fold(stats.count);
        }
        Self {
            num_cells: truth.num_cells(),
            total_count: truth.total(),
            checksum,
        }
    }

    /// Digest a flow marginal (the checksum is its content digest; the
    /// total is beginning-of-period employment).
    pub fn of_flows(truth: &FlowMarginal) -> Self {
        Self {
            num_cells: truth.num_cells(),
            total_count: truth.totals().beginning,
            checksum: truth.content_digest(),
        }
    }
}

/// A completed, durable release: everything a downstream consumer (or
/// auditor) needs, serializable to JSON and back losslessly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleaseArtifact {
    /// What was requested.
    pub request: RequestProvenance,
    /// Neighbor regime the guarantee holds under.
    pub regime: NeighborKind,
    /// What the ledger was charged.
    pub cost: ReleaseCost,
    /// Mechanism display name.
    pub mechanism_name: String,
    /// The released data.
    pub payload: ArtifactPayload,
    /// Truth fingerprint — only populated when the crate is built with the
    /// `eval-only` feature; a production release service never emits it.
    pub truth_digest: Option<TruthDigest>,
}

impl ReleaseArtifact {
    /// The published cells, when this is a marginal release.
    pub fn cells(&self) -> Option<&BTreeMap<CellKey, f64>> {
        match &self.payload {
            ArtifactPayload::Cells(cells) => Some(cells),
            _ => None,
        }
    }

    /// The released shapes, when this is a shapes release.
    pub fn shapes(&self) -> Option<&[ShapeRelease]> {
        match &self.payload {
            ArtifactPayload::Shapes(shapes) => Some(shapes),
            _ => None,
        }
    }

    /// The published flow cells, when this is a flow release.
    pub fn flows(&self) -> Option<&BTreeMap<CellKey, FlowRelease>> {
        match &self.payload {
            ArtifactPayload::Flows(flows) => Some(flows),
            _ => None,
        }
    }

    /// Total L1 error of a cell release against an externally supplied
    /// truth marginal (evaluation use).
    pub fn l1_error_against(&self, truth: &Marginal) -> Result<f64, EngineError> {
        let cells = match &self.payload {
            ArtifactPayload::Cells(cells) => cells,
            _ => return Err(EngineError::WrongPayload { expected: "cells" }),
        };
        let mut total = 0.0;
        for (key, stats) in truth.iter() {
            let published = cells
                .get(&key)
                .ok_or(EngineError::MissingCell { key: key.0 })?;
            total += (stats.count as f64 - published).abs();
        }
        Ok(total)
    }
}

/// Execution order for batches and per-cell noising.
const MIN_PARALLEL_CELLS: usize = 512;

/// Identity of the filter of one tabulation, for cache keying.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum FilterKey {
    /// The normalized form of a declarative filter: *structurally equal*
    /// expressions share a tabulation no matter where or when they were
    /// constructed. The expression itself is the key (not its
    /// [`FilterId`] digest) so a digest collision can never alias two
    /// different populations onto one cached truth.
    Expr(FilterExpr),
    /// Address of an opaque closure's shared [`WorkerFilter`] allocation:
    /// only requests built from the *same* `Arc` (a cloned request, or
    /// one handle reused across a batch) share. Cache entries hold a
    /// clone of the `Arc`, so a keyed address can never be freed and
    /// reused while the cache lives.
    Opaque(usize),
}

/// Identity of one tabulation: the marginal spec plus the identity of the
/// filter restricting its population (`None` when unfiltered).
type TabulationKey = (MarginalSpec, Option<FilterKey>);

fn tabulation_key(request: &ReleaseRequest) -> TabulationKey {
    (
        request.spec.clone(),
        request.filter.as_ref().map(|f| match f {
            RequestFilter::Expr(expr) => FilterKey::Expr(expr.normalized()),
            RequestFilter::Closure(closure) => {
                FilterKey::Opaque(Arc::as_ptr(closure) as *const () as usize)
            }
        }),
    )
}

/// Where one cached tabulation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TabulationSource {
    /// Served from this cache's in-memory entries.
    Memory,
    /// Loaded (and verified) from the persistent [`TruthStore`].
    Disk,
    /// Freshly computed over the shared index.
    Computed,
}

/// A cache of tabulated truth marginals keyed by
/// `(MarginalSpec, filter identity)` — the normalized expression for
/// declarative filters, the `Arc` address for opaque closures — plus the
/// shared columnar [`TabulationIndex`] they were computed from.
///
/// Tabulation is the engine's dominant cost for large universes; a batch
/// (or a resumed publication season) whose requests share a marginal
/// should pay it once — and every request, shared marginal or not, should
/// share one CSR index of the dataset, built lazily on the first miss.
/// The cache is owned by the *caller* (or created per
/// [`ReleaseEngine::execute_all`] batch) rather than stored inside the
/// engine, because cached truths (and the index) are only valid for one
/// dataset — tying the cache's lifetime to the caller's dataset makes
/// stale reuse a type discipline instead of a runtime bug.
///
/// A cache built with [`with_store`](Self::with_store) additionally reads
/// and writes a persistent, content-addressed
/// [`TruthStore`](crate::truths::TruthStore): a memory miss first tries
/// the store (digest-verified
/// load), and a computed truth is persisted before it is used — so a
/// resumed season, or a *sibling* season sharing a `(spec, filter)` with
/// an earlier one, never re-tabulates. The store is pinned to one dataset
/// digest, checked against the dataset on the **first tabulation through
/// this cache** (one linear scan; a mismatch is refused loudly) and on
/// every [`SeasonStore::run_cached`](crate::store::SeasonStore::run_cached)
/// — the one-dataset-per-cache contract above still rests on the caller
/// for later direct `execute_cached` calls. Closure-filtered truths have
/// no serializable identity and stay memory-only.
#[derive(Default)]
pub struct TabulationCache {
    index: Option<DatasetIndex>,
    entries: BTreeMap<TabulationKey, (Arc<Marginal>, Option<WorkerFilter>)>,
    store: Option<crate::truths::TruthStore>,
    /// Whether the dataset's digest has been checked against the store's.
    /// One linear pass per cache, on the first tabulation.
    dataset_verified: bool,
    /// Cached flow tabulations of the cache's one `(before, after)` pair.
    /// The cache's main `index` doubles as the *after* side (it is the
    /// index of the cache's one dataset — the current quarter); only the
    /// *before* snapshot needs a second index.
    flow_entries: BTreeMap<TabulationKey, (Arc<FlowMarginal>, Option<WorkerFilter>)>,
    before_index: Option<DatasetIndex>,
    /// [`dataset_pair_digest`](crate::store::dataset_pair_digest) of the
    /// cache's one pair, computed (two full-dataset scans) or supplied by
    /// a driver once, then reused for every persistent flow-truth lookup.
    flow_pair_digest: Option<u64>,
}

impl TabulationCache {
    /// An empty, memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache backed by a persistent truth store. Declaratively
    /// identified tabulations (unfiltered or [`FilterExpr`]-filtered) are
    /// served from and persisted to `store`; the cache may only ever be
    /// used with the dataset `store` is pinned to.
    pub fn with_store(store: crate::truths::TruthStore) -> Self {
        Self {
            store: Some(store),
            ..Self::default()
        }
    }

    /// The persistent truth store backing this cache, if any.
    pub fn store(&self) -> Option<&crate::truths::TruthStore> {
        self.store.as_ref()
    }

    /// Seed the cache with an already built index instead of building one
    /// lazily on the first miss. A multi-tenant frontend builds the index
    /// **once** at startup and hands a clone (the [`DatasetIndex`]
    /// variants are `Arc`-backed) to every per-season cache, so N
    /// concurrent seasons share one image of the dataset instead of
    /// paying N builds — the caller owes the same one-dataset contract as
    /// for cached truths: the index must have been built from the dataset
    /// this cache will be used with.
    pub fn with_shared_index(mut self, index: DatasetIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Seed the cache with an already built index of the *before*
    /// snapshot for flow tabulations — the pair-wise analogue of
    /// [`with_shared_index`](Self::with_shared_index) (which supplies the
    /// *after*/current-quarter side). The same one-dataset contract
    /// applies — and both quarters of a pair must use the same
    /// representation (flat or region-sharded), which holds automatically
    /// when both are built through [`DatasetIndex::build_auto`] on
    /// same-scale panel quarters.
    pub fn with_flow_before_index(mut self, index: DatasetIndex) -> Self {
        self.before_index = Some(index);
        self
    }

    /// Supply the pair digest of the cache's `(before, after)` pair so the
    /// first persistent flow-truth lookup doesn't pay two full-dataset
    /// scans — drivers (the agency's panel runner, the release service)
    /// already hold both quarter digests for their own pins. The digest
    /// must be [`dataset_pair_digest`](crate::store::dataset_pair_digest)
    /// of the datasets actually passed; handing a digest of different data
    /// voids the truth store's content addressing.
    pub(crate) fn set_flow_pair_digest(&mut self, digest: u64) {
        self.flow_pair_digest = Some(digest);
    }

    /// Number of distinct tabulations held in memory.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no in-memory tabulations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Check an externally computed dataset digest against the backing
    /// store's pin, marking the cache verified on success — so callers
    /// that already paid for the digest (season/agency drivers, which
    /// need it for their own manifest pins) don't trigger a second
    /// full-dataset scan inside [`get_or_tabulate`](Self::get_or_tabulate).
    /// A no-op for memory-only caches.
    pub(crate) fn verify_dataset_digest(&mut self, digest: u64) -> Result<(), EngineError> {
        if let Some(store) = &self.store {
            if digest != store.dataset_digest() {
                return Err(EngineError::TruthStore {
                    detail: format!(
                        "cache's truth store is pinned to dataset {:016x} but was handed \
                         dataset {digest:016x} — refusing to mix databases",
                        store.dataset_digest()
                    ),
                });
            }
            self.dataset_verified = true;
        }
        Ok(())
    }

    /// The shared index of `dataset`, building it on first use — flat for
    /// ordinary datasets, region-sharded above the national-scale
    /// threshold (see [`DatasetIndex::build_auto`]); results are
    /// bit-identical either way.
    fn index_for(&mut self, dataset: &Dataset) -> DatasetIndex {
        self.index
            .get_or_insert_with(|| DatasetIndex::build_auto(dataset))
            .clone()
    }

    /// The truth marginal for `request`: in-memory entry, verified
    /// persistent truth, or fresh tabulation of `dataset`, in that order.
    fn get_or_tabulate(
        &mut self,
        dataset: &Dataset,
        request: &ReleaseRequest,
        threads: usize,
    ) -> Result<(Arc<Marginal>, TabulationSource), EngineError> {
        let key = tabulation_key(request);
        if let Some((truth, _)) = self.entries.get(&key) {
            return Ok((Arc::clone(truth), TabulationSource::Memory));
        }
        // The persistent layer only speaks serializable identities.
        let filter_expr = match &request.filter {
            Some(RequestFilter::Expr(expr)) => Some(expr),
            Some(RequestFilter::Closure(_)) => None,
            None => None,
        };
        let persistable = !matches!(&request.filter, Some(RequestFilter::Closure(_)));
        if self.store.is_some() {
            if !self.dataset_verified {
                let digest = crate::store::dataset_digest(dataset);
                self.verify_dataset_digest(digest)?;
            }
            let store = self.store.as_ref().expect("checked above");
            if persistable {
                if let Some(truth) = store.load(&request.spec, filter_expr) {
                    let truth = Arc::new(truth);
                    self.entries.insert(key, (Arc::clone(&truth), None));
                    return Ok((truth, TabulationSource::Disk));
                }
            }
        }
        let index = self.index_for(dataset);
        let truth = Arc::new(tabulate_request(&index, request, threads));
        if persistable {
            if let Some(store) = &self.store {
                store
                    .save(&request.spec, filter_expr, &truth)
                    .map_err(|e| EngineError::TruthStore {
                        detail: format!("persisting freshly computed truth failed: {e}"),
                    })?;
            }
        }
        // Pin opaque closures so an `Opaque` key's address can never be
        // freed and reused while the cache lives; declarative filters are
        // keyed by their normalized structure and need no pinning.
        let pinned = match &request.filter {
            Some(RequestFilter::Closure(closure)) => Some(Arc::clone(closure)),
            _ => None,
        };
        self.entries.insert(key, (Arc::clone(&truth), pinned));
        Ok((truth, TabulationSource::Computed))
    }

    /// The flow truth for `request` over the `(before, after)` pair:
    /// in-memory entry, verified persistent flow truth (addressed by the
    /// pair digest, not the store's single-dataset pin), or fresh
    /// tabulation over the shared pair of indexes, in that order.
    fn get_or_tabulate_flows(
        &mut self,
        before: &Dataset,
        after: &Dataset,
        request: &ReleaseRequest,
        threads: usize,
    ) -> Result<(Arc<FlowMarginal>, TabulationSource), EngineError> {
        let key = tabulation_key(request);
        if let Some((truth, _)) = self.flow_entries.get(&key) {
            return Ok((Arc::clone(truth), TabulationSource::Memory));
        }
        let filter_expr = match &request.filter {
            Some(RequestFilter::Expr(expr)) => Some(expr),
            Some(RequestFilter::Closure(_)) | None => None,
        };
        let persistable = !matches!(&request.filter, Some(RequestFilter::Closure(_)));
        // Flow truths are content-addressed by the pair digest — computed
        // once per cache — so only store-backed caches pay for it.
        let pair_digest = if self.store.is_some() && persistable {
            Some(*self.flow_pair_digest.get_or_insert_with(|| {
                crate::store::dataset_pair_digest(
                    crate::store::dataset_digest(before),
                    crate::store::dataset_digest(after),
                )
            }))
        } else {
            None
        };
        if let (Some(store), Some(pair)) = (self.store.as_ref(), pair_digest) {
            if let Some(truth) = store.load_flows(pair, &request.spec, filter_expr) {
                let truth = Arc::new(truth);
                self.flow_entries.insert(key, (Arc::clone(&truth), None));
                return Ok((truth, TabulationSource::Disk));
            }
        }
        let after_index = self.index_for(after);
        // The before side must match the after side's representation —
        // sharded flow tabulation pairs shards state by state.
        let before_index = self
            .before_index
            .get_or_insert_with(|| match &after_index {
                DatasetIndex::Single(_) => {
                    DatasetIndex::Single(Arc::new(TabulationIndex::build(before)))
                }
                DatasetIndex::Sharded(_) => {
                    DatasetIndex::Sharded(Arc::new(RegionShardedIndex::build(before)))
                }
            })
            .clone();
        let truth = Arc::new(tabulate_flow_request(
            &before_index,
            &after_index,
            request,
            threads,
        ));
        if let (Some(store), Some(pair)) = (self.store.as_ref(), pair_digest) {
            store
                .save_flows(pair, &request.spec, filter_expr, &truth)
                .map_err(|e| EngineError::TruthStore {
                    detail: format!("persisting freshly computed flow truth failed: {e}"),
                })?;
        }
        let pinned = match &request.filter {
            Some(RequestFilter::Closure(closure)) => Some(Arc::clone(closure)),
            _ => None,
        };
        self.flow_entries.insert(key, (Arc::clone(&truth), pinned));
        Ok((truth, TabulationSource::Computed))
    }
}

/// Tabulate one request's truth marginal over the shared index,
/// sharding the establishment loop across up to `threads` workers
/// (bit-identical at any count). The advisory
/// [`effective_shards`](DatasetIndex::effective_shards) heuristic caps
/// fan-out first, so small datasets take the single-shard path instead of
/// paying per-shard spawn/sort/merge overhead that exceeds the scan.
fn tabulate_request(index: &DatasetIndex, request: &ReleaseRequest, threads: usize) -> Marginal {
    let threads = index.effective_shards(threads);
    match &request.filter {
        Some(RequestFilter::Expr(expr)) => {
            index.marginal_expr_sharded(&request.spec, expr, threads)
        }
        Some(RequestFilter::Closure(filter)) => {
            index.marginal_filtered_sharded(&request.spec, |w| filter(w), threads)
        }
        None => index.marginal_sharded(&request.spec, threads),
    }
}

/// Tabulate one flow request's truth over the shared pair of indexes,
/// sharding the establishment loop (bit-identical at any thread count);
/// a filter restricts the population on *both* sides of the pair.
fn tabulate_flow_request(
    before: &DatasetIndex,
    after: &DatasetIndex,
    request: &ReleaseRequest,
    threads: usize,
) -> FlowMarginal {
    let threads = before.effective_shards(threads);
    match &request.filter {
        Some(RequestFilter::Expr(expr)) => {
            before.flows_expr_sharded(after, &request.spec, expr, threads)
        }
        Some(RequestFilter::Closure(filter)) => {
            before.flows_filtered_sharded(after, &request.spec, |w| filter(w), threads)
        }
        None => before.flows_sharded(after, &request.spec, threads),
    }
}

/// Lifetime tabulation-cache counters of a [`ReleaseEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TabulationStats {
    /// Tabulations actually computed (a full scan of the indexed dataset).
    pub computed: u64,
    /// Requests served from an in-memory cached tabulation.
    pub hits: u64,
    /// Requests served from the persistent truth store (a digest-verified
    /// load — zero recomputation, e.g. on season resume or from a sibling
    /// season that already tabulated the same `(spec, filter)`).
    pub disk_hits: u64,
}

/// The ledger-enforced release engine.
///
/// Owns a [`Ledger`]; every execution path charges it before sampling, so
/// the cumulative privacy loss of everything the engine has ever released
/// is `ledger().budget() - remaining`. A request that would overdraw the
/// ledger (or fails validation) is rejected *without* spending.
#[derive(Debug)]
pub struct ReleaseEngine {
    ledger: Ledger,
    threads: usize,
    tab_stats: TabulationStats,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl ReleaseEngine {
    /// Open an engine with a fresh ledger holding `budget`.
    pub fn new(budget: PrivacyParams) -> Self {
        Self::with_ledger(Ledger::new(budget))
    }

    /// Open an engine over an existing ledger (e.g. resumed mid-season).
    pub fn with_ledger(ledger: Ledger) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            ledger,
            threads,
            tab_stats: TabulationStats::default(),
            metrics: None,
        }
    }

    /// Attach a [`MetricsRegistry`]: every execution path then records
    /// admissions (with charged cost and wall latency), denials by
    /// [`LedgerError`](crate::accountant::LedgerError) reason, and
    /// tabulation-cache sources into it. Without a registry the engine
    /// records nothing and pays nothing.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Cap worker threads (`1` forces fully sequential execution; results
    /// are bit-identical at any setting).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The engine's ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Consume the engine, returning the ledger (for archival).
    pub fn into_ledger(self) -> Ledger {
        self.ledger
    }

    /// Lifetime tabulation-cache counters: how many truth marginals were
    /// actually computed vs served from a cache, across all
    /// [`execute_all`](Self::execute_all) batches and
    /// [`execute_cached`](Self::execute_cached) calls on this engine.
    pub fn tabulation_stats(&self) -> TabulationStats {
        self.tab_stats
    }

    /// Validate `request`, charge the ledger, tabulate, and sample.
    ///
    /// Builds a throwaway [`TabulationIndex`] for the single tabulation;
    /// batches and seasons ([`execute_all`](Self::execute_all),
    /// [`execute_cached`](Self::execute_cached)) share one index across
    /// requests instead.
    pub fn execute(
        &mut self,
        dataset: &Dataset,
        request: &ReleaseRequest,
    ) -> Result<ReleaseArtifact, EngineError> {
        let started = Instant::now();
        let result = (|| {
            reject_flow_kind(request)?;
            let plan = request.plan()?;
            self.charge(request, &plan)?;
            let index = DatasetIndex::build_auto(dataset);
            let truth = tabulate_request(&index, request, self.threads);
            Ok(self.sample(&truth, request, &plan, self.threads))
        })();
        self.observe(request.kind(), started, &result);
        result
    }

    /// Like [`execute`](Self::execute), but over an already-tabulated
    /// truth marginal (the hot path for evaluation sweeps, which tabulate
    /// once and release many times). The marginal's spec must match the
    /// request's.
    pub fn execute_precomputed(
        &mut self,
        truth: &Marginal,
        request: &ReleaseRequest,
    ) -> Result<ReleaseArtifact, EngineError> {
        let started = Instant::now();
        let result = (|| {
            reject_flow_kind(request)?;
            if truth.spec() != &request.spec {
                return Err(EngineError::SpecMismatch {
                    requested: request.spec.name(),
                    supplied: truth.spec().name(),
                });
            }
            let plan = request.plan()?;
            self.charge(request, &plan)?;
            Ok(self.sample(truth, request, &plan, self.threads))
        })();
        self.observe(request.kind(), started, &result);
        result
    }

    /// Like [`execute`](Self::execute), but tabulating through a
    /// caller-owned [`TabulationCache`]: requests sharing a
    /// `(spec, filter)` tabulation — e.g. the sequential, persist-as-you-go
    /// releases of a publication season — pay for it once, and *all*
    /// requests share the cache's one [`TabulationIndex`] of the dataset.
    /// The cache must only ever be used with one dataset.
    pub fn execute_cached(
        &mut self,
        dataset: &Dataset,
        request: &ReleaseRequest,
        cache: &mut TabulationCache,
    ) -> Result<ReleaseArtifact, EngineError> {
        let started = Instant::now();
        let result = (|| {
            reject_flow_kind(request)?;
            let plan = request.plan()?;
            // Dry-run the admission first: a budget-rejected request must
            // not touch the cache or the truth store, and — the other way
            // round — a truth-store failure must not strand a ledger
            // charge that never produced an artifact. The real charge
            // happens once the truth is in hand, on identical ledger
            // state, so it cannot fail.
            self.ledger.can_charge(&plan.per_cell, &plan.cost)?;
            let (truth, source) = cache.get_or_tabulate(dataset, request, self.threads)?;
            self.charge(request, &plan)
                .expect("dry-run admitted this charge on identical ledger state");
            self.note_source(source);
            Ok(self.sample(&truth, request, &plan, self.threads))
        })();
        self.observe(request.kind(), started, &result);
        result
    }

    /// Validate a flow `request`, charge the ledger, tabulate job-flow
    /// statistics over the `(before, after)` dataset pair, and sample.
    ///
    /// Builds two throwaway [`TabulationIndex`]es for the single
    /// tabulation; drivers executing several flow requests over one pair
    /// share them through
    /// [`execute_flows_cached`](Self::execute_flows_cached).
    pub fn execute_flows(
        &mut self,
        before: &Dataset,
        after: &Dataset,
        request: &ReleaseRequest,
    ) -> Result<ReleaseArtifact, EngineError> {
        let started = Instant::now();
        let result = (|| {
            let plan = flow_plan(request)?;
            self.charge(request, &plan)?;
            let before_index = DatasetIndex::build_auto(before);
            let after_index = DatasetIndex::build_auto(after);
            let truth = tabulate_flow_request(&before_index, &after_index, request, self.threads);
            Ok(self.sample_flows(&truth, request, &plan, self.threads))
        })();
        self.observe(request.kind(), started, &result);
        result
    }

    /// Like [`execute_flows`](Self::execute_flows), but over an
    /// already-tabulated flow truth (evaluation sweeps tabulate the pair
    /// once and release many times). The truth's spec must match the
    /// request's.
    pub fn execute_flows_precomputed(
        &mut self,
        truth: &FlowMarginal,
        request: &ReleaseRequest,
    ) -> Result<ReleaseArtifact, EngineError> {
        let started = Instant::now();
        let result = (|| {
            let plan = flow_plan(request)?;
            if truth.spec() != &request.spec {
                return Err(EngineError::SpecMismatch {
                    requested: request.spec.name(),
                    supplied: truth.spec().name(),
                });
            }
            self.charge(request, &plan)?;
            Ok(self.sample_flows(truth, request, &plan, self.threads))
        })();
        self.observe(request.kind(), started, &result);
        result
    }

    /// Like [`execute_flows`](Self::execute_flows), but tabulating through
    /// a caller-owned [`TabulationCache`] — the same dry-run-then-charge
    /// protocol as [`execute_cached`](Self::execute_cached). The cache's
    /// one-dataset contract extends pair-wise: `after` must be the cache's
    /// dataset (its shared index and truth store are the current
    /// quarter's) and every flow call must pass the same `before`.
    pub fn execute_flows_cached(
        &mut self,
        before: &Dataset,
        after: &Dataset,
        request: &ReleaseRequest,
        cache: &mut TabulationCache,
    ) -> Result<ReleaseArtifact, EngineError> {
        let started = Instant::now();
        let result = (|| {
            let plan = flow_plan(request)?;
            self.ledger.can_charge(&plan.per_cell, &plan.cost)?;
            let (truth, source) =
                cache.get_or_tabulate_flows(before, after, request, self.threads)?;
            self.charge(request, &plan)
                .expect("dry-run admitted this charge on identical ledger state");
            self.note_source(source);
            Ok(self.sample_flows(&truth, request, &plan, self.threads))
        })();
        self.observe(request.kind(), started, &result);
        result
    }

    /// Execute a whole workload batch under this engine's single ledger.
    ///
    /// Budget accounting is strictly sequential in request order
    /// (sequential composition, Thm 7.3): each request is validated and
    /// charged before the next, and a rejected request consumes nothing —
    /// later requests still run if they fit the remaining budget.
    /// Execution of the admitted requests (tabulation + noising) is
    /// parallelized across requests; artifacts are returned in request
    /// order and are bit-identical to sequential execution.
    pub fn execute_all(
        &mut self,
        dataset: &Dataset,
        requests: &[ReleaseRequest],
    ) -> Vec<Result<ReleaseArtifact, EngineError>> {
        // Phase 1 (sequential): validate + charge in order. Admissions and
        // denials are recorded per request; batch latency is not broken
        // out per release (the histograms cover single-release paths).
        let admitted: Vec<Result<ReleasePlan, EngineError>> = requests
            .iter()
            .map(|request| {
                let outcome = (|| {
                    reject_flow_kind(request)?;
                    let plan = request.plan()?;
                    self.charge(request, &plan)?;
                    Ok(plan)
                })();
                if let Some(registry) = &self.metrics {
                    let family = registry.family(request.kind());
                    match &outcome {
                        Ok(plan) => family.record_accepted(plan.cost.epsilon, plan.cost.delta),
                        Err(error) => family.record_denied(denial_reason(error)),
                    }
                }
                outcome
            })
            .collect();
        // Phase 2 (parallel): run admitted requests. Leftover threads are
        // shared out to each request's per-cell noising, so a batch of one
        // big marginal parallelizes as well as a direct `execute` call.
        let jobs: Vec<(usize, &ReleaseRequest, ReleasePlan)> = admitted
            .iter()
            .enumerate()
            .filter_map(|(i, outcome)| outcome.as_ref().ok().map(|plan| (i, &requests[i], *plan)))
            .collect();
        // Tabulate each distinct (spec, filter identity) exactly once over
        // a single shared columnar index of the dataset, in parallel
        // across the distinct keys (leftover threads shard each
        // tabulation's establishment loop); requests sharing a marginal
        // then sample from the shared truth. Keys (which clone and
        // normalize the filter expression) are computed once per job.
        let job_keys: Vec<TabulationKey> = jobs
            .iter()
            .map(|(_, request, _)| tabulation_key(request))
            .collect();
        let mut key_index: BTreeMap<&TabulationKey, usize> = BTreeMap::new();
        let mut distinct: Vec<&ReleaseRequest> = Vec::new();
        for ((_, request, _), key) in jobs.iter().zip(&job_keys) {
            key_index.entry(key).or_insert_with(|| {
                distinct.push(request);
                distinct.len() - 1
            });
        }
        let index = if distinct.is_empty() {
            None
        } else {
            Some(DatasetIndex::build_auto(dataset))
        };
        let tab_inner = (self.threads / distinct.len().max(1)).max(1);
        let truths: Vec<Arc<Marginal>> = par_map(
            &distinct,
            self.threads.min(distinct.len().max(1)),
            |request| {
                let index = index.as_ref().expect("index built for nonempty batch");
                Arc::new(tabulate_request(index, request, tab_inner))
            },
        );
        self.tab_stats.computed += distinct.len() as u64;
        self.tab_stats.hits += (jobs.len() - distinct.len()) as u64;
        if let Some(registry) = &self.metrics {
            registry.caches.truth_computed.add(distinct.len() as u64);
            registry
                .caches
                .truth_memory_hits
                .add((jobs.len() - distinct.len()) as u64);
        }
        let tasks: Vec<(usize, &ReleaseRequest, ReleasePlan, Arc<Marginal>)> = jobs
            .iter()
            .zip(&job_keys)
            .map(|(&(i, request, plan), key)| {
                let truth = Arc::clone(&truths[key_index[key]]);
                (i, request, plan, truth)
            })
            .collect();
        let inner_threads = (self.threads / tasks.len().max(1)).max(1);
        let artifacts = par_map(
            &tasks,
            self.threads.min(tasks.len().max(1)),
            |(_, request, plan, truth)| self.sample(truth, request, plan, inner_threads),
        );
        let mut by_index: BTreeMap<usize, ReleaseArtifact> =
            jobs.iter().map(|(i, _, _)| *i).zip(artifacts).collect();
        admitted
            .into_iter()
            .enumerate()
            .map(|(i, outcome)| {
                outcome.map(|_| by_index.remove(&i).expect("artifact for admitted request"))
            })
            .collect()
    }

    fn charge(&mut self, request: &ReleaseRequest, plan: &ReleasePlan) -> Result<(), EngineError> {
        // The ledger re-checks budget arithmetic and α-consistency; it
        // mutates nothing when it refuses.
        self.ledger
            .charge(request.description(), &plan.per_cell, &plan.cost)?;
        Ok(())
    }

    /// Record a single-release outcome into the attached registry: an
    /// admission with its charged cost and wall latency, or a denial
    /// keyed by reason.
    fn observe(
        &self,
        kind: RequestKind,
        started: Instant,
        result: &Result<ReleaseArtifact, EngineError>,
    ) {
        let Some(registry) = &self.metrics else {
            return;
        };
        let family = registry.family(kind);
        match result {
            Ok(artifact) => {
                family.record_accepted(artifact.cost.epsilon, artifact.cost.delta);
                let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                family.latency.observe_micros(micros);
            }
            Err(error) => family.record_denied(denial_reason(error)),
        }
    }

    /// Count one cached-tabulation source, mirrored into both the
    /// engine's [`TabulationStats`] and the attached registry.
    fn note_source(&mut self, source: TabulationSource) {
        match source {
            TabulationSource::Memory => self.tab_stats.hits += 1,
            TabulationSource::Disk => self.tab_stats.disk_hits += 1,
            TabulationSource::Computed => self.tab_stats.computed += 1,
        }
        if let Some(registry) = &self.metrics {
            match source {
                TabulationSource::Memory => registry.caches.truth_memory_hits.inc(),
                TabulationSource::Disk => registry.caches.truth_disk_hits.inc(),
                TabulationSource::Computed => registry.caches.truth_computed.inc(),
            }
        }
    }

    fn sample(
        &self,
        truth: &Marginal,
        request: &ReleaseRequest,
        plan: &ReleasePlan,
        threads: usize,
    ) -> ReleaseArtifact {
        let payload = match request.kind {
            RequestKind::Marginal => ArtifactPayload::Cells(sample_cells(
                truth,
                plan,
                request.seed,
                request.integerize,
                threads,
            )),
            RequestKind::Shapes => ArtifactPayload::Shapes(sample_shapes(
                truth,
                plan,
                request.seed,
                request.integerize,
                threads,
            )),
            // Every level-marginal entry point rejects flow requests up
            // front; flow artifacts come from `sample_flows`.
            RequestKind::Flows => unreachable!("flow requests are routed through sample_flows"),
        };
        let mechanism_name = plan
            .mechanism
            .build(&plan.per_cell)
            .expect("plan() validated mechanism parameters")
            .name()
            .to_string();
        ReleaseArtifact {
            request: request.provenance(plan),
            regime: plan.regime,
            cost: plan.cost,
            mechanism_name,
            payload,
            truth_digest: truth_digest(truth),
        }
    }

    fn sample_flows(
        &self,
        truth: &FlowMarginal,
        request: &ReleaseRequest,
        plan: &ReleasePlan,
        threads: usize,
    ) -> ReleaseArtifact {
        let payload = ArtifactPayload::Flows(sample_flow_cells(
            truth,
            plan,
            request.seed,
            request.integerize,
            threads,
        ));
        let mechanism_name = plan
            .mechanism
            .build(&plan.per_cell)
            .expect("plan() validated mechanism parameters")
            .name()
            .to_string();
        ReleaseArtifact {
            request: request.provenance(plan),
            regime: plan.regime,
            cost: plan.cost,
            mechanism_name,
            payload,
            truth_digest: flow_truth_digest(truth),
        }
    }
}

/// The metrics denial-reason slug for an engine refusal: ledger denials
/// carry their [`LedgerError`](crate::accountant::LedgerError) reason,
/// everything that never reached the ledger (validation, spec mismatch,
/// flow-kind misuse) folds into
/// [`REASON_REQUEST_INVALID`](crate::metrics::REASON_REQUEST_INVALID).
fn denial_reason(error: &EngineError) -> &'static str {
    match error {
        EngineError::Budget(ledger_error) => ledger_error.metric_reason(),
        _ => REASON_REQUEST_INVALID,
    }
}

/// Refuse [`RequestKind::Flows`] on a single-snapshot execution path:
/// flow statistics tabulate a `(before, after)` dataset pair and must go
/// through the `execute_flows*` entry points — there is no dataset a
/// single-snapshot path could silently substitute for the missing one.
fn reject_flow_kind(request: &ReleaseRequest) -> Result<(), EngineError> {
    if request.kind == RequestKind::Flows {
        return Err(EngineError::Flow {
            detail: "flow requests tabulate a (before, after) dataset pair — \
                     use execute_flows / execute_flows_cached",
        });
    }
    Ok(())
}

/// The flow-path mirror of [`reject_flow_kind`]: only
/// [`RequestKind::Flows`] requests may enter `execute_flows*`, and their
/// plan is computed here.
fn flow_plan(request: &ReleaseRequest) -> Result<ReleasePlan, EngineError> {
    if request.kind != RequestKind::Flows {
        return Err(EngineError::Flow {
            detail: "only RequestKind::Flows requests may use the flow execution paths",
        });
    }
    request.plan()
}

#[cfg(feature = "eval-only")]
fn truth_digest(truth: &Marginal) -> Option<TruthDigest> {
    Some(TruthDigest::of(truth))
}

#[cfg(not(feature = "eval-only"))]
fn truth_digest(_truth: &Marginal) -> Option<TruthDigest> {
    None
}

#[cfg(feature = "eval-only")]
fn flow_truth_digest(truth: &FlowMarginal) -> Option<TruthDigest> {
    Some(TruthDigest::of_flows(truth))
}

#[cfg(not(feature = "eval-only"))]
fn flow_truth_digest(_truth: &FlowMarginal) -> Option<TruthDigest> {
    None
}

/// Derive the independent noise seed of one cell from the request seed:
/// two SplitMix64 rounds over the key so neighbouring keys decorrelate.
fn cell_seed(base: u64, key: u64) -> u64 {
    let mut state = base ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut step = || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    step();
    step()
}

/// Deterministic parallel map preserving input order: contiguous chunks
/// are mapped on scoped worker threads and re-concatenated in order.
fn par_map<T: Sync, U: Send>(items: &[T], threads: usize, f: impl Fn(&T) -> U + Sync) -> Vec<U> {
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<U> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|chunk_items| {
                let f = &f;
                scope.spawn(move || chunk_items.iter().map(f).collect::<Vec<U>>())
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("release worker panicked"));
        }
    });
    out
}

fn sample_cells(
    truth: &Marginal,
    plan: &ReleasePlan,
    seed: u64,
    integerize: bool,
    threads: usize,
) -> BTreeMap<CellKey, f64> {
    let cells: Vec<(CellKey, CellQuery)> = truth
        .iter()
        .map(|(key, stats)| (key, CellQuery::from_stats(stats)))
        .collect();
    let threads = if cells.len() < MIN_PARALLEL_CELLS {
        1
    } else {
        threads
    };
    let mechanism = plan
        .mechanism
        .build(&plan.per_cell)
        .expect("plan() validated mechanism parameters");
    let released = par_map(&cells, threads, |(key, query)| {
        let mut rng = StdRng::seed_from_u64(cell_seed(seed, key.0));
        let value = mechanism.release(query, &mut rng);
        let value = if integerize {
            value.round().max(0.0)
        } else {
            value
        };
        (*key, value)
    });
    released.into_iter().collect()
}

/// Noise one flow cell's three *released* statistics — beginning `B`, job
/// creation `JC`, job destruction `JD` — sequentially from the cell's one
/// derived RNG stream (each with its own smooth-sensitivity query:
/// `x_v` is that statistic's largest single-establishment contribution),
/// then derive ending employment `E = B + JC − JD` by post-processing, so
/// the accounting identity holds exactly in every published cell.
/// Integerization rounds and clamps the three noised statistics before `E`
/// is derived — never `E` itself, which may legitimately go negative.
fn sample_flow_cells(
    truth: &FlowMarginal,
    plan: &ReleasePlan,
    seed: u64,
    integerize: bool,
    threads: usize,
) -> BTreeMap<CellKey, FlowRelease> {
    let cells: Vec<(CellKey, FlowStats)> = truth.iter().map(|(key, stats)| (key, *stats)).collect();
    let threads = if cells.len() < MIN_PARALLEL_CELLS {
        1
    } else {
        threads
    };
    let mechanism = plan
        .mechanism
        .build(&plan.per_cell)
        .expect("plan() validated mechanism parameters");
    let released = par_map(&cells, threads, |(key, stats)| {
        let mut rng = StdRng::seed_from_u64(cell_seed(seed, key.0));
        let finish = |value: f64| {
            if integerize {
                value.round().max(0.0)
            } else {
                value
            }
        };
        // A zero-count statistic of an active cell still has x_v = 0;
        // the mechanisms need max(x_v, 1) just like Lemma 8.5's
        // max(x_v·α, 1) floor.
        let beginning = finish(mechanism.release(
            &CellQuery {
                count: stats.beginning,
                max_establishment: stats.max_beginning.max(1),
            },
            &mut rng,
        ));
        let job_creation = finish(mechanism.release(
            &CellQuery {
                count: stats.job_creation,
                max_establishment: stats.max_creation.max(1),
            },
            &mut rng,
        ));
        let job_destruction = finish(mechanism.release(
            &CellQuery {
                count: stats.job_destruction,
                max_establishment: stats.max_destruction.max(1),
            },
            &mut rng,
        ));
        (
            *key,
            FlowRelease {
                beginning,
                job_creation,
                job_destruction,
                ending: beginning + job_creation - job_destruction,
            },
        )
    });
    released.into_iter().collect()
}

fn sample_shapes(
    truth: &Marginal,
    plan: &ReleasePlan,
    seed: u64,
    integerize: bool,
    threads: usize,
) -> Vec<ShapeRelease> {
    // One cell of the full marginal: (worker-class index, full packed key,
    // query) — the full key pins the cell's independent noise stream.
    type GroupedCell = (usize, u64, CellQuery);
    let d = truth.spec().worker_domain_size();
    let schema = truth.schema();
    let n_wp = truth.spec().workplace_attrs.len();
    // Group the marginal's cells by their workplace part.
    let mut groups: BTreeMap<u64, Vec<GroupedCell>> = BTreeMap::new();
    for (key, stats) in truth.iter() {
        let mut wp_key: u64 = 0;
        for pos in 0..n_wp {
            wp_key = wp_key * schema.cardinality_of(pos) + schema.value_of(key, pos) as u64;
        }
        let mut class_idx: u64 = 0;
        for pos in n_wp..schema.attrs().len() {
            class_idx = class_idx * schema.cardinality_of(pos) + schema.value_of(key, pos) as u64;
        }
        groups.entry(wp_key).or_default().push((
            class_idx as usize,
            key.0,
            CellQuery::from_stats(stats),
        ));
    }
    let mechanism = plan
        .mechanism
        .build(&plan.per_cell)
        .expect("plan() validated mechanism parameters");
    let group_list: Vec<(u64, Vec<GroupedCell>)> = groups.into_iter().collect();
    let threads = if group_list.len() < MIN_PARALLEL_CELLS {
        1
    } else {
        threads
    };
    par_map(&group_list, threads, |(wp_key, cells)| {
        let mut sub_counts = vec![0.0; d];
        for (class_idx, full_key, query) in cells {
            // True-zero classes are not released (sparse-publication
            // convention); their noisy value stays 0.
            let mut rng = StdRng::seed_from_u64(cell_seed(seed, *full_key));
            let mut value = mechanism.release(query, &mut rng).max(0.0);
            if integerize {
                value = value.round();
            }
            sub_counts[*class_idx] = value;
        }
        let total: f64 = sub_counts.iter().sum();
        let fractions = if total > 0.0 {
            sub_counts.iter().map(|&c| c / total).collect()
        } else {
            vec![0.0; d]
        };
        ShapeRelease {
            cell: CellKey(*wp_key),
            fractions,
            sub_counts,
            total,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};
    use tabulate::{compute_marginal, workload1, workload3};

    fn dataset() -> Dataset {
        Generator::new(GeneratorConfig::test_small(91)).generate()
    }

    #[test]
    fn builder_requires_mechanism_and_budget() {
        let err = ReleaseRequest::marginal(workload1()).plan().unwrap_err();
        assert_eq!(
            err,
            EngineError::IncompleteRequest {
                missing: "mechanism"
            }
        );
        let err = ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .plan()
            .unwrap_err();
        assert_eq!(err, EngineError::IncompleteRequest { missing: "budget" });
    }

    #[test]
    fn regimes_follow_spec_and_filter() {
        let plain = ReleaseRequest::marginal(workload1());
        assert_eq!(plain.regime(), NeighborKind::Strong);
        let filtered =
            ReleaseRequest::marginal(workload1()).filter_expr(FilterExpr::sex(lodes::Sex::Female));
        assert_eq!(filtered.regime(), NeighborKind::Weak);
        #[allow(deprecated)]
        let closure = ReleaseRequest::marginal(workload1()).filter(|w| w.sex.index() == 1);
        assert_eq!(closure.regime(), NeighborKind::Weak);
        assert_eq!(
            ReleaseRequest::marginal(workload3()).regime(),
            NeighborKind::Weak
        );
        assert_eq!(
            ReleaseRequest::shapes(workload3()).regime(),
            NeighborKind::Weak
        );
    }

    #[test]
    fn execute_charges_exactly_the_cost() {
        let d = dataset();
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 4.0));
        let artifact = engine
            .execute(
                &d,
                &ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::SmoothGamma)
                    .budget(PrivacyParams::pure(0.1, 2.0))
                    .seed(5),
            )
            .unwrap();
        assert_eq!(artifact.cost.multiplier, 1);
        assert!((engine.ledger().remaining_epsilon() - 2.0).abs() < 1e-12);
        assert_eq!(artifact.regime, NeighborKind::Strong);
        let cells = artifact.cells().expect("marginal payload");
        let truth = compute_marginal(&d, &workload1());
        assert_eq!(cells.len(), truth.num_cells());
    }

    #[test]
    fn rejected_requests_spend_nothing() {
        let d = dataset();
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 1.0));
        // Over budget.
        let err = engine
            .execute(
                &d,
                &ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::SmoothGamma)
                    .budget(PrivacyParams::pure(0.1, 2.0)),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Budget(_)));
        assert!((engine.ledger().remaining_epsilon() - 1.0).abs() < 1e-12);
        // Invalid mechanism parameters: rejected before charging.
        let err = engine
            .execute(
                &d,
                &ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::SmoothGamma)
                    .budget(PrivacyParams::pure(0.1, 0.2)),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidParameters { .. }));
        assert!((engine.ledger().remaining_epsilon() - 1.0).abs() < 1e-12);
        assert!(engine.ledger().entries().is_empty());
    }

    #[test]
    fn execute_all_is_deterministic_across_parallelism() {
        let d = dataset();
        let requests = vec![
            ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 2.0))
                .seed(11),
            ReleaseRequest::marginal(workload3())
                .mechanism(MechanismKind::LogLaplace)
                .budget(PrivacyParams::pure(0.1, 8.0))
                .seed(12),
            ReleaseRequest::shapes(workload3())
                .mechanism(MechanismKind::SmoothLaplace)
                .budget(PrivacyParams::approximate(0.1, 16.0, 0.05))
                .seed(13),
        ];
        let run = |threads: usize| {
            let mut engine = ReleaseEngine::new(PrivacyParams::approximate(0.1, 26.0, 0.05))
                .with_parallelism(threads);
            engine.execute_all(&d, &requests)
        };
        let sequential = run(1);
        let parallel = run(8);
        assert_eq!(sequential.len(), 3);
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.as_ref().unwrap(), p.as_ref().unwrap());
        }
        // Single-request execution with cell parallelism agrees too.
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0)).with_parallelism(8);
        let single = engine.execute(&d, &requests[0]).unwrap();
        assert_eq!(&single, sequential[0].as_ref().unwrap());
    }

    #[test]
    fn batch_skips_overdraws_but_keeps_later_requests() {
        let d = dataset();
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 3.0));
        let outcomes = engine.execute_all(
            &d,
            &[
                ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::SmoothGamma)
                    .budget(PrivacyParams::pure(0.1, 2.0))
                    .seed(1),
                // 2.0 > remaining 1.0: rejected, nothing spent.
                ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::SmoothGamma)
                    .budget(PrivacyParams::pure(0.1, 2.0))
                    .seed(2),
                // Exactly the remaining 1.0: admitted.
                ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::LogLaplace)
                    .budget(PrivacyParams::pure(0.1, 1.0))
                    .seed(3),
            ],
        );
        assert!(outcomes[0].is_ok());
        assert!(matches!(
            outcomes[1],
            Err(EngineError::Budget(
                crate::accountant::LedgerError::EpsilonExhausted { .. }
            ))
        ));
        assert!(outcomes[2].is_ok());
        assert!(engine.ledger().remaining_epsilon() < 1e-9);
        assert_eq!(engine.ledger().entries().len(), 2);
    }

    #[test]
    fn batch_sharing_one_marginal_tabulates_it_once() {
        let d = dataset();
        let requests: Vec<ReleaseRequest> = (0..4)
            .map(|i| {
                ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::LogLaplace)
                    .budget(PrivacyParams::pure(0.1, 1.0))
                    .seed(i)
            })
            .collect();
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 4.0));
        let outcomes = engine.execute_all(&d, &requests);
        assert!(outcomes.iter().all(Result::is_ok));
        let stats = engine.tabulation_stats();
        assert_eq!(stats.computed, 1, "one distinct marginal, one tabulation");
        assert_eq!(stats.hits, 3, "the other three requests share it");
        // A mixed batch still tabulates each distinct spec exactly once.
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 10.0));
        let mixed = vec![
            requests[0].clone(),
            ReleaseRequest::marginal(workload3())
                .mechanism(MechanismKind::LogLaplace)
                .budget(PrivacyParams::pure(0.1, 8.0))
                .seed(9),
            requests[1].clone(),
        ];
        let outcomes = engine.execute_all(&d, &mixed);
        assert!(outcomes.iter().all(Result::is_ok));
        assert_eq!(engine.tabulation_stats().computed, 2);
        assert_eq!(engine.tabulation_stats().hits, 1);
    }

    #[test]
    fn cached_execution_matches_uncached_and_counts_hits() {
        let d = dataset();
        let r1 = ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .seed(31);
        let r2 = ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .seed(32);
        let mut cached = ReleaseEngine::new(PrivacyParams::pure(0.1, 3.0));
        let mut cache = TabulationCache::new();
        let a1 = cached.execute_cached(&d, &r1, &mut cache).unwrap();
        let a2 = cached.execute_cached(&d, &r2, &mut cache).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cached.tabulation_stats().computed, 1);
        assert_eq!(cached.tabulation_stats().hits, 1);
        // Bit-identical to the uncached path.
        let mut plain = ReleaseEngine::new(PrivacyParams::pure(0.1, 3.0));
        assert_eq!(plain.execute(&d, &r1).unwrap(), a1);
        assert_eq!(plain.execute(&d, &r2).unwrap(), a2);
        // A rejected request never touches the cache or the stats.
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 0.5));
        let mut cache = TabulationCache::new();
        assert!(engine.execute_cached(&d, &r1, &mut cache).is_err());
        assert!(cache.is_empty());
        assert_eq!(engine.tabulation_stats(), TabulationStats::default());
    }

    /// A season run over the region-sharded representation releases
    /// bit-identical artifacts (same truths, same draws, same digests) as
    /// the flat index — sharding is a pure representation choice.
    #[test]
    fn sharded_index_seasons_release_bit_identical_artifacts() {
        let d = dataset();
        let requests = [
            ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 2.0))
                .seed(41),
            ReleaseRequest::marginal(workload3())
                .filter_expr(FilterExpr::sex(lodes::Sex::Female))
                .mechanism(MechanismKind::LogLaplace)
                .budget(PrivacyParams::pure(0.1, 1.0))
                .seed(42),
        ];
        let flat_index = DatasetIndex::build_with_threshold(&d, usize::MAX);
        let sharded_index = DatasetIndex::build_with_threshold(&d, 1);
        assert!(!flat_index.is_sharded());
        assert!(sharded_index.is_sharded());
        let mut flat_engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 4.0));
        let mut flat_cache = TabulationCache::new().with_shared_index(flat_index);
        let mut sharded_engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 4.0));
        let mut sharded_cache = TabulationCache::new().with_shared_index(sharded_index);
        for request in &requests {
            let flat = flat_engine
                .execute_cached(&d, request, &mut flat_cache)
                .unwrap();
            let sharded = sharded_engine
                .execute_cached(&d, request, &mut sharded_cache)
                .unwrap();
            assert_eq!(flat, sharded);
            assert_eq!(flat.truth_digest, sharded.truth_digest);
        }
    }

    #[test]
    fn structurally_equal_filter_exprs_share_one_tabulation() {
        use lodes::{Education, Sex};
        let d = dataset();
        // Two *separately constructed* — but structurally equal —
        // expressions: no Arc reuse, no pointer identity.
        let ranking2 = || {
            FilterExpr::sex(Sex::Female)
                .and(FilterExpr::education_at_least(Education::BachelorOrHigher))
        };
        let requests = vec![
            ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::SmoothGamma)
                .budget(PrivacyParams::pure(0.1, 2.0))
                .filter_expr(ranking2())
                .seed(1),
            ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::LogLaplace)
                .budget(PrivacyParams::pure(0.1, 1.0))
                .filter_expr(ranking2())
                .seed(2),
        ];
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 3.0));
        let outcomes = engine.execute_all(&d, &requests);
        assert!(outcomes.iter().all(Result::is_ok));
        assert_eq!(engine.tabulation_stats().computed, 1);
        assert_eq!(engine.tabulation_stats().hits, 1);
        // The caller-owned cache shares by digest the same way.
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 3.0));
        let mut cache = TabulationCache::new();
        let a0 = engine.execute_cached(&d, &requests[0], &mut cache).unwrap();
        let a1 = engine.execute_cached(&d, &requests[1], &mut cache).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(engine.tabulation_stats().hits, 1);
        assert_eq!(outcomes[0].as_ref().unwrap(), &a0);
        assert_eq!(outcomes[1].as_ref().unwrap(), &a1);
        // A structurally different filter does not share.
        let mut other = ReleaseEngine::new(PrivacyParams::pure(0.1, 1.0));
        other
            .execute_cached(
                &d,
                &ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::LogLaplace)
                    .budget(PrivacyParams::pure(0.1, 1.0))
                    .filter_expr(FilterExpr::sex(Sex::Female))
                    .seed(3),
                &mut cache,
            )
            .unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    #[allow(deprecated)]
    fn closure_filters_still_share_by_arc_identity() {
        use lodes::Sex;
        let d = dataset();
        let shared: WorkerFilter = Arc::new(|w: &Worker| w.sex == Sex::Female);
        let request = |seed: u64, f: WorkerFilter| {
            let mut r = ReleaseRequest::marginal(workload1())
                .mechanism(MechanismKind::LogLaplace)
                .budget(PrivacyParams::pure(0.1, 1.0))
                .seed(seed);
            r.filter = Some(RequestFilter::Closure(f));
            r
        };
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 3.0));
        let batch = vec![
            request(1, Arc::clone(&shared)),
            request(2, Arc::clone(&shared)),
            // Textually identical but separately allocated: not shared.
            request(3, Arc::new(|w: &Worker| w.sex == Sex::Female)),
        ];
        let outcomes = engine.execute_all(&d, &batch);
        assert!(outcomes.iter().all(Result::is_ok));
        assert_eq!(engine.tabulation_stats().computed, 2);
        assert_eq!(engine.tabulation_stats().hits, 1);
        // The AST filter for the same population is bit-identical to the
        // closure's artifact (modulo provenance, which now records it).
        let mut ast_engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 1.0));
        let ast = ast_engine
            .execute(
                &d,
                &ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::LogLaplace)
                    .budget(PrivacyParams::pure(0.1, 1.0))
                    .filter_expr(FilterExpr::sex(Sex::Female))
                    .seed(1),
            )
            .unwrap();
        let closure_artifact = outcomes[0].as_ref().unwrap();
        assert_eq!(ast.payload, closure_artifact.payload);
        assert!(closure_artifact.request.filter.is_none());
        assert!(closure_artifact.request.filtered);
        assert!(ast.request.filter.is_some());
    }

    #[test]
    fn provenance_json_without_filter_field_still_deserializes() {
        // A pre-AST artifact's provenance has no `filter` key at all.
        let request = ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .seed(7);
        let fresh = request.provenance(&request.plan().unwrap());
        let json = serde_json::to_string(&fresh).unwrap();
        let stripped = json.replace("\"filter\":null,", "");
        assert_ne!(json, stripped, "test must actually remove the field");
        let parsed: RequestProvenance = serde_json::from_str(&stripped).unwrap();
        assert_eq!(parsed, fresh);
        // And a filtered provenance round-trips with its expression.
        let filtered = ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .filter_expr(FilterExpr::sex(lodes::Sex::Female))
            .seed(7);
        let fresh = filtered.provenance(&filtered.plan().unwrap());
        let back: RequestProvenance =
            serde_json::from_str(&serde_json::to_string(&fresh).unwrap()).unwrap();
        assert_eq!(back, fresh);
        assert_eq!(back.filter_id(), fresh.filter_id());
    }

    #[test]
    fn precomputed_path_matches_dataset_path() {
        let d = dataset();
        let truth = compute_marginal(&d, &workload1());
        let request = ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .seed(21);
        let mut e1 = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
        let mut e2 = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
        let a = e1.execute(&d, &request).unwrap();
        let b = e2.execute_precomputed(&truth, &request).unwrap();
        assert_eq!(a, b);
        // Spec mismatch is caught.
        let err = e2
            .execute_precomputed(
                &truth,
                &ReleaseRequest::marginal(workload3())
                    .mechanism(MechanismKind::SmoothGamma)
                    .budget(PrivacyParams::pure(0.1, 2.0)),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::SpecMismatch { .. }));
    }

    #[test]
    fn integerize_rounds_and_clamps() {
        let d = dataset();
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.5, 1.0));
        let artifact = engine
            .execute(
                &d,
                &ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::LogLaplace)
                    .budget(PrivacyParams::pure(0.5, 1.0))
                    .integerize(true)
                    .seed(3),
            )
            .unwrap();
        for &v in artifact.cells().unwrap().values() {
            assert!(v >= 0.0 && v.fract() == 0.0, "non-integer value {v}");
        }
        assert!(artifact.request.integerized);
    }

    #[test]
    fn per_cell_budgeting_charges_the_induced_total() {
        let d = dataset();
        // Workload 3 under weak composition: per-cell 1.0 -> total 8.0.
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 8.0));
        let artifact = engine
            .execute(
                &d,
                &ReleaseRequest::marginal(workload3())
                    .mechanism(MechanismKind::LogLaplace)
                    .budget_per_cell(PrivacyParams::pure(0.1, 1.0))
                    .seed(1),
            )
            .unwrap();
        assert_eq!(artifact.cost.multiplier, 8);
        assert!((artifact.cost.epsilon - 8.0).abs() < 1e-12);
        assert!((artifact.cost.per_cell_epsilon - 1.0).abs() < 1e-12);
        assert!(engine.ledger().remaining_epsilon() < 1e-9);
        assert!(artifact.request.budget_is_per_cell);
    }

    #[test]
    fn shapes_request_needs_worker_attributes() {
        let err = ReleaseRequest::shapes(workload1())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 16.0, 0.05))
            .plan()
            .unwrap_err();
        assert_eq!(
            err,
            EngineError::Shape(crate::shape::ShapeError::NoWorkerAttributes)
        );
    }

    #[cfg(feature = "eval-only")]
    #[test]
    fn truth_digest_present_under_eval_only() {
        let d = dataset();
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
        let artifact = engine
            .execute(
                &d,
                &ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::SmoothGamma)
                    .budget(PrivacyParams::pure(0.1, 2.0)),
            )
            .unwrap();
        let digest = artifact.truth_digest.expect("digest under eval-only");
        let truth = compute_marginal(&d, &workload1());
        assert_eq!(digest, TruthDigest::of(&truth));
        assert_eq!(digest.num_cells, truth.num_cells());
    }

    fn quarter_pair() -> (Dataset, Dataset) {
        let panel = lodes::DatasetPanel::generate(
            &GeneratorConfig::test_small(91),
            &lodes::PanelConfig {
                quarters: 2,
                growth_sigma: 0.1,
                death_rate: 0.05,
                seed: 23,
            },
        );
        (panel.quarter(0).clone(), panel.quarter(1).clone())
    }

    fn flow_request() -> ReleaseRequest {
        ReleaseRequest::flows(workload1())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 6.0, 0.06))
            .seed(77)
    }

    #[test]
    fn flow_release_charges_triple_and_keeps_the_identity() {
        let (before, after) = quarter_pair();
        let mut engine = ReleaseEngine::new(PrivacyParams::approximate(0.1, 6.0, 0.06));
        let artifact = engine
            .execute_flows(&before, &after, &flow_request())
            .unwrap();
        // B, JC, JD are separate sequential charges; E is post-processing.
        assert_eq!(artifact.cost.multiplier, ReleaseCost::FLOW_STATISTICS);
        assert!((artifact.cost.per_cell_epsilon - 2.0).abs() < 1e-12);
        assert!((engine.ledger().remaining_epsilon() - 0.0).abs() < 1e-12);
        assert_eq!(artifact.regime, NeighborKind::Strong);
        let truth = tabulate::compute_flows(&before, &after, &workload1());
        let flows = artifact.flows().expect("flow payload");
        assert_eq!(flows.len(), truth.num_cells());
        for release in flows.values() {
            let derived = release.beginning + release.job_creation - release.job_destruction;
            assert!((release.ending - derived).abs() < 1e-9);
        }
    }

    #[test]
    fn flow_requests_are_refused_on_single_snapshot_paths() {
        let (before, after) = quarter_pair();
        let mut engine = ReleaseEngine::new(PrivacyParams::approximate(0.1, 20.0, 0.2));
        let request = flow_request();
        assert!(matches!(
            engine.execute(&after, &request).unwrap_err(),
            EngineError::Flow { .. }
        ));
        let mut cache = TabulationCache::new();
        assert!(matches!(
            engine
                .execute_cached(&after, &request, &mut cache)
                .unwrap_err(),
            EngineError::Flow { .. }
        ));
        let outcomes = engine.execute_all(&after, std::slice::from_ref(&request));
        assert!(matches!(outcomes[0], Err(EngineError::Flow { .. })));
        // And the mirror: a level request may not enter the flow paths.
        let level = ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0));
        assert!(matches!(
            engine.execute_flows(&before, &after, &level).unwrap_err(),
            EngineError::Flow { .. }
        ));
        // Nothing above spent budget.
        assert!(engine.ledger().entries().is_empty());
    }

    #[test]
    fn worker_attr_flow_specs_are_rejected_at_planning() {
        let err = ReleaseRequest::flows(workload3())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 6.0, 0.06))
            .plan()
            .unwrap_err();
        assert!(matches!(err, EngineError::Flow { .. }));
    }

    #[test]
    fn cached_flow_execution_is_bit_identical_and_counts_hits() {
        let (before, after) = quarter_pair();
        let budget = PrivacyParams::approximate(0.1, 12.0, 0.12);
        let request = flow_request();

        let mut direct_engine = ReleaseEngine::new(budget);
        let direct = direct_engine
            .execute_flows(&before, &after, &request)
            .unwrap();

        let mut engine = ReleaseEngine::new(budget);
        let mut cache = TabulationCache::new();
        let first = engine
            .execute_flows_cached(&before, &after, &request, &mut cache)
            .unwrap();
        let second = engine
            .execute_flows_cached(&before, &after, &request.clone().seed(78), &mut cache)
            .unwrap();
        assert_eq!(first, direct);
        assert_ne!(first.payload, second.payload, "different seeds re-noise");
        let stats = engine.tabulation_stats();
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn precomputed_flow_execution_matches_and_checks_spec() {
        let (before, after) = quarter_pair();
        let truth = tabulate::compute_flows(&before, &after, &workload1());
        let budget = PrivacyParams::approximate(0.1, 6.0, 0.06);

        let mut direct_engine = ReleaseEngine::new(budget);
        let direct = direct_engine
            .execute_flows(&before, &after, &flow_request())
            .unwrap();
        let mut engine = ReleaseEngine::new(budget);
        let from_truth = engine
            .execute_flows_precomputed(&truth, &flow_request())
            .unwrap();
        assert_eq!(from_truth, direct);

        let other_spec = MarginalSpec::new(vec![tabulate::WorkplaceAttr::County], vec![]);
        let err = ReleaseEngine::new(budget)
            .execute_flows_precomputed(
                &truth,
                &ReleaseRequest::flows(other_spec)
                    .mechanism(MechanismKind::SmoothLaplace)
                    .budget(budget),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::SpecMismatch { .. }));
    }

    #[test]
    fn filtered_flow_requests_price_weak_and_restrict_both_sides() {
        let (before, after) = quarter_pair();
        let expr = FilterExpr::sex(lodes::Sex::Female);
        let request = ReleaseRequest::flows(workload1())
            .filter_expr(expr.clone())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 6.0, 0.06))
            .seed(101);
        assert_eq!(request.regime(), NeighborKind::Weak);
        let mut engine = ReleaseEngine::new(PrivacyParams::approximate(0.1, 6.0, 0.06));
        let artifact = engine.execute_flows(&before, &after, &request).unwrap();
        assert_eq!(artifact.regime, NeighborKind::Weak);
        // The filtered truth the noise was centred on is the both-sides
        // restriction computed by the tabulation layer.
        let b_idx = TabulationIndex::build(&before);
        let a_idx = TabulationIndex::build(&after);
        let truth = b_idx.flows_expr_sharded(&a_idx, &workload1(), &expr, 1);
        assert_eq!(
            artifact.flows().expect("flow payload").len(),
            truth.num_cells()
        );
    }

    #[test]
    fn store_backed_flow_cache_serves_disk_hits_across_caches() {
        let (before, after) = quarter_pair();
        let dir = std::env::temp_dir().join("eree-engine-unit-flow-disk-hits");
        let _ = std::fs::remove_dir_all(&dir);
        let digest = crate::store::dataset_digest(&after);
        let budget = PrivacyParams::approximate(0.1, 12.0, 0.12);
        let request = flow_request();

        let open_cache =
            || TabulationCache::with_store(crate::truths::TruthStore::open(&dir, digest).unwrap());
        let mut engine = ReleaseEngine::new(budget);
        let mut cache = open_cache();
        let first = engine
            .execute_flows_cached(&before, &after, &request, &mut cache)
            .unwrap();
        assert_eq!(engine.tabulation_stats().computed, 1);

        // A sibling cache over the same store reuses the persisted flow
        // truth: a digest-verified load, zero recomputation.
        let mut engine2 = ReleaseEngine::new(budget);
        let mut cache2 = open_cache();
        let resumed = engine2
            .execute_flows_cached(&before, &after, &request, &mut cache2)
            .unwrap();
        assert_eq!(resumed, first);
        assert_eq!(engine2.tabulation_stats().computed, 0);
        assert_eq!(engine2.tabulation_stats().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
