//! The unified error hierarchy of the release engine.
//!
//! Before the [`crate::engine`] redesign, each layer had its own error
//! type — [`ReleaseError`](crate::release::ReleaseError) from marginal
//! releases, [`LedgerError`] from budget accounting, [`ShapeError`] from
//! shape releases and [`NeighborError`] from neighbor checking — and callers composing
//! multiple layers had to invent ad-hoc wrappers. [`EngineError`] is the
//! one type every engine entry point returns; the legacy types survive as
//! wrapped sources (with `From` conversions) so existing match sites keep
//! working.

use crate::accountant::LedgerError;
use crate::mechanisms::MechanismKind;
use crate::neighbors::NeighborError;
use crate::shape::ShapeError;

/// Any failure from the release engine.
///
/// The hierarchy is hand-written (`Display` + `Error::source`) rather than
/// derived with `thiserror` because this build environment vendors its
/// dependencies offline; the shape matches what `thiserror` would emit.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The request builder was missing a required component.
    IncompleteRequest {
        /// Which component (`"mechanism"` / `"budget"`).
        missing: &'static str,
    },
    /// The mechanism's validity constraint rejects the per-cell parameters
    /// (e.g. Smooth Gamma needs `α+1 < e^{ε/5}`; Smooth Laplace needs
    /// `δ > 0`).
    InvalidParameters {
        /// The mechanism that rejected them.
        mechanism: MechanismKind,
        /// Per-cell ε after composition accounting.
        per_cell_epsilon: f64,
        /// α.
        alpha: f64,
        /// δ.
        delta: f64,
    },
    /// The ledger refused the charge: the release would exceed the
    /// remaining budget, or its α does not match the ledger's.
    Budget(LedgerError),
    /// Shape-release failure (e.g. no worker attributes to partition by).
    Shape(ShapeError),
    /// A neighbor-definition check failed.
    Neighbor(NeighborError),
    /// A precomputed truth marginal does not match the request's spec.
    SpecMismatch {
        /// The spec named by the request.
        requested: String,
        /// The spec of the supplied marginal.
        supplied: String,
    },
    /// A published cell expected by a consistency/error computation is
    /// absent from the release.
    MissingCell {
        /// The packed cell key.
        key: u64,
    },
    /// An artifact operation was applied to the wrong payload kind (e.g.
    /// cell error metrics on a shapes release).
    WrongPayload {
        /// The payload kind the operation needs.
        expected: &'static str,
    },
    /// A flow request was invalid (e.g. its spec groups by worker
    /// attributes) or reached a single-snapshot execution path — flow
    /// statistics tabulate a `(before, after)` dataset pair and must go
    /// through the `execute_flows*` entry points.
    Flow {
        /// What went wrong.
        detail: &'static str,
    },
    /// The persistent truth store refused to cooperate: the cache's store
    /// is pinned to a different dataset than the one being tabulated, or
    /// persisting a freshly computed truth failed. The store is never
    /// silently bypassed — a season configured to persist truths either
    /// persists them or stops.
    TruthStore {
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::IncompleteRequest { missing } => {
                write!(f, "release request is missing its {missing}")
            }
            EngineError::InvalidParameters {
                mechanism,
                per_cell_epsilon,
                alpha,
                delta,
            } => write!(
                f,
                "{} rejects per-cell parameters (alpha={alpha}, epsilon={per_cell_epsilon}, delta={delta})",
                mechanism.label()
            ),
            EngineError::Budget(e) => write!(f, "budget refused: {e}"),
            EngineError::Shape(e) => write!(f, "shape release failed: {e}"),
            EngineError::Neighbor(e) => write!(f, "neighbor check failed: {e:?}"),
            EngineError::SpecMismatch {
                requested,
                supplied,
            } => write!(
                f,
                "precomputed marginal is for `{supplied}`, request names `{requested}`"
            ),
            EngineError::MissingCell { key } => {
                write!(f, "published release is missing cell {key}")
            }
            EngineError::WrongPayload { expected } => {
                write!(f, "operation needs a {expected} payload")
            }
            EngineError::Flow { detail } => {
                write!(f, "flow release: {detail}")
            }
            EngineError::TruthStore { detail } => {
                write!(f, "persistent truth store: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Budget(e) => Some(e),
            EngineError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LedgerError> for EngineError {
    fn from(e: LedgerError) -> Self {
        EngineError::Budget(e)
    }
}

impl From<ShapeError> for EngineError {
    fn from(e: ShapeError) -> Self {
        EngineError::Shape(e)
    }
}

impl From<NeighborError> for EngineError {
    fn from(e: NeighborError) -> Self {
        EngineError::Neighbor(e)
    }
}

impl From<crate::release::ReleaseError> for EngineError {
    fn from(e: crate::release::ReleaseError) -> Self {
        match e {
            crate::release::ReleaseError::InvalidParameters {
                mechanism,
                per_cell_epsilon,
                alpha,
                delta,
            } => EngineError::InvalidParameters {
                mechanism,
                per_cell_epsilon,
                alpha,
                delta,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = EngineError::from(LedgerError::EpsilonExhausted {
            requested: 2.0,
            remaining: 1.0,
        });
        assert!(e.to_string().contains("budget refused"));
        assert!(std::error::Error::source(&e).is_some());

        let e = EngineError::from(ShapeError::NoWorkerAttributes);
        assert!(e.to_string().contains("shape release failed"));

        let e = EngineError::IncompleteRequest {
            missing: "mechanism",
        };
        assert!(e.to_string().contains("missing its mechanism"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn release_error_maps_to_invalid_parameters() {
        let e = EngineError::from(crate::release::ReleaseError::InvalidParameters {
            mechanism: MechanismKind::SmoothGamma,
            per_cell_epsilon: 0.5,
            alpha: 0.2,
            delta: 0.0,
        });
        assert!(matches!(e, EngineError::InvalidParameters { .. }));
        assert!(e.to_string().contains("Smooth Gamma"));
    }
}
