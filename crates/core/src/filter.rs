//! Declarative population filters for release requests.
//!
//! This module is the release engine's view of the filter AST implemented
//! in [`tabulate::filter`] (compilation lives next to the columnar index
//! it specializes against; the types are re-exported here so engine users
//! need only `eree_core`). See that module for the expression grammar and
//! the compilation pipeline; this page documents what filter *identity*
//! buys the release pipeline.
//!
//! A sub-population release — OnTheMap-style county × industry extracts,
//! Ranking 2's "female workers with a bachelor's degree or higher" —
//! restricts the tabulated population. When the restriction is an opaque
//! closure the engine can neither compare two filters nor record what was
//! filtered, which breaks exactly the properties a statistical agency's
//! pipeline needs:
//!
//! * **Shared tabulation.** Tabulating the confidential database is the
//!   dominant cost at national scale. With a [`FilterExpr`], the
//!   [`TabulationCache`](crate::engine::TabulationCache) and
//!   [`ReleaseEngine::execute_all`](crate::engine::ReleaseEngine::execute_all)
//!   key on `(MarginalSpec, normalized FilterExpr)`: structurally equal
//!   filters share one tabulation even when constructed independently —
//!   in another function, another batch, or (once truths persist)
//!   another process.
//! * **Auditable provenance.** The serialized expression is embedded in
//!   every [`ReleaseArtifact`](crate::engine::ReleaseArtifact), so an
//!   auditor can read *which* population a published table covers — the
//!   disclosure-avoidance review posture the paper's setting demands.
//! * **Verified resume.** A [`SeasonStore`](crate::store::SeasonStore)
//!   compares stored filter digests against the resume plan's: a season
//!   can no longer be silently resumed under a plan whose filter changed,
//!   which the previous boolean `filtered` flag could not detect.
//!
//! ```
//! use eree_core::filter::FilterExpr;
//! use eree_core::{MechanismKind, PrivacyParams, ReleaseEngine, ReleaseRequest};
//! use lodes::{CountyId, Education, Generator, GeneratorConfig, Sex};
//! use tabulate::workload1;
//!
//! // "Female workers with a bachelor's degree or higher, at
//! //  establishments in county 0" — geography prefix × worker predicate.
//! let expr = FilterExpr::in_county(CountyId(0))
//!     .and(FilterExpr::sex(Sex::Female))
//!     .and(FilterExpr::education_at_least(Education::BachelorOrHigher));
//!
//! // The expression is data: serializable, with a stable digest.
//! let json = serde_json::to_string(&expr).unwrap();
//! let back: FilterExpr = serde_json::from_str(&json).unwrap();
//! assert_eq!(back.id(), expr.id());
//!
//! // It rides a request like any other builder option, and the artifact
//! // records it.
//! let dataset = Generator::new(GeneratorConfig::test_small(7)).generate();
//! let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
//! let artifact = engine
//!     .execute(
//!         &dataset,
//!         &ReleaseRequest::marginal(workload1())
//!             .mechanism(MechanismKind::SmoothGamma)
//!             .budget(PrivacyParams::pure(0.1, 2.0))
//!             .filter_expr(expr.clone())
//!             .seed(3),
//!     )
//!     .unwrap();
//! assert_eq!(artifact.request.filter_id(), Some(expr.id()));
//! ```

pub use tabulate::filter::{Cmp, CompiledFilter, FilterExpr, FilterId};
