//! Integer post-processing of mechanism outputs.
//!
//! Production tabulations publish non-negative integers, while the paper's
//! mechanisms emit reals (Log-Laplace outputs can even fall below zero,
//! down to `−γ`). Rounding to the nearest non-negative integer is a
//! data-independent post-processing map, so it preserves any (α, ε[, δ])-
//! ER-EE guarantee verbatim — and the resulting *probability mass
//! function* inherits the ε-ratio bound exactly:
//!
//! `P(k | D) = CDF(k+½ | D) − CDF(k−½ | D)` is a probability of an
//! interval, and interval probabilities on α-neighbors are within `e^ε`
//! (plus δ, for Smooth Laplace).
//!
//! The wrapper adds at most 0.5 to the expected L1 error.

use crate::mechanisms::{CellQuery, CountMechanism};
use rand::RngCore;

/// Integer-valued release by rounding an inner mechanism's output to the
/// nearest non-negative integer.
#[derive(Debug, Clone, Copy)]
pub struct Integerized<M> {
    inner: M,
}

impl<M: CountMechanism> Integerized<M> {
    /// Wrap a mechanism.
    pub fn new(inner: M) -> Self {
        Self { inner }
    }

    /// The wrapped mechanism.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Release a non-negative integer count.
    pub fn release(&self, query: &CellQuery, rng: &mut dyn RngCore) -> u64 {
        let raw = self.inner.release(query, rng);
        raw.round().max(0.0) as u64
    }

    /// Probability mass of output `k` (with all mass below 0.5 absorbed
    /// into `k = 0` by the clamp).
    pub fn pmf(&self, query: &CellQuery, k: u64) -> f64 {
        if k == 0 {
            self.inner.output_cdf(query, 0.5)
        } else {
            self.inner.output_cdf(query, k as f64 + 0.5)
                - self.inner.output_cdf(query, k as f64 - 0.5)
        }
    }

    /// CDF over the integer output.
    pub fn cdf(&self, query: &CellQuery, k: u64) -> f64 {
        self.inner.output_cdf(query, k as f64 + 0.5)
    }

    /// Expected L1 error bound: the inner mechanism's plus the rounding
    /// half-unit.
    pub fn expected_l1_bound(&self, query: &CellQuery) -> Option<f64> {
        self.inner.expected_l1(query).map(|e| e + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::{LogLaplaceMechanism, SmoothGammaMechanism};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn outputs_are_nonnegative_integers() {
        // Log-Laplace with small counts produces negatives; the wrapper
        // must clamp them away.
        let mech = Integerized::new(LogLaplaceMechanism::new(0.5, 1.0));
        let q = CellQuery {
            count: 1,
            max_establishment: 1,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut zeros = 0;
        for _ in 0..10_000 {
            let v = mech.release(&q, &mut rng);
            if v == 0 {
                zeros += 1;
            }
        }
        assert!(zeros > 0, "clamping must engage for tiny counts");
    }

    #[test]
    fn pmf_sums_to_one() {
        let mech = Integerized::new(SmoothGammaMechanism::new(0.1, 2.0).unwrap());
        let q = CellQuery {
            count: 50,
            max_establishment: 50,
        };
        // Heavy polynomial tails: sum far out and allow small remainder.
        let total: f64 = (0..200_000).map(|k| mech.pmf(&q, k)).sum();
        assert!(total > 0.995 && total <= 1.0 + 1e-9, "pmf total {total}");
    }

    #[test]
    fn pmf_matches_empirical_frequencies() {
        let mech = Integerized::new(SmoothGammaMechanism::new(0.1, 2.0).unwrap());
        let q = CellQuery {
            count: 20,
            max_establishment: 20,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let mut hist = std::collections::BTreeMap::new();
        for _ in 0..n {
            *hist.entry(mech.release(&q, &mut rng)).or_insert(0usize) += 1;
        }
        for k in [18u64, 20, 22] {
            let emp = hist.get(&k).copied().unwrap_or(0) as f64 / n as f64;
            let analytic = mech.pmf(&q, k);
            assert!(
                (emp - analytic).abs() < 0.01,
                "k={k}: empirical {emp} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn pmf_ratio_respects_epsilon_on_neighbors() {
        // Post-processing preserves the guarantee: check the pmf ratio for
        // a delta = 0 mechanism on a strong alpha-neighbor pair.
        let (alpha, eps) = (0.1, 2.0);
        let mech = Integerized::new(SmoothGammaMechanism::new(alpha, eps).unwrap());
        let q1 = CellQuery {
            count: 100,
            max_establishment: 100,
        };
        let q2 = CellQuery {
            count: 110,
            max_establishment: 110,
        };
        let bound = eps.exp() * (1.0 + 1e-9);
        for k in 0..400u64 {
            let p1 = mech.pmf(&q1, k);
            let p2 = mech.pmf(&q2, k);
            if p1 > 1e-290 || p2 > 1e-290 {
                assert!(p1 <= bound * p2 + 1e-300, "k={k}: {p1} vs {p2}");
                assert!(p2 <= bound * p1 + 1e-300, "k={k}: {p2} vs {p1}");
            }
        }
    }

    #[test]
    fn error_increase_is_at_most_half() {
        let inner = SmoothGammaMechanism::new(0.1, 2.0).unwrap();
        let mech = Integerized::new(inner);
        let q = CellQuery {
            count: 500,
            max_establishment: 200,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let emp: f64 = (0..n)
            .map(|_| (mech.release(&q, &mut rng) as f64 - 500.0).abs())
            .sum::<f64>()
            / n as f64;
        let bound = mech.expected_l1_bound(&q).unwrap();
        assert!(emp <= bound + 0.05, "empirical {emp} vs bound {bound}");
    }
}
