//! (α, ε)-ER-EE privacy: the primary contribution of Haney et al.
//! (SIGMOD 2017), "Utility Cost of Formal Privacy for Releasing National
//! Employer-Employee Statistics".
//!
//! ## The release engine
//!
//! The crate's front door is [`engine::ReleaseEngine`]: a ledger-enforced
//! executor through which every formally private release flows. Requests
//! are described with the [`engine::ReleaseRequest`] builder, validated
//! against the mechanism's constraints and the remaining `(α, ε, δ)`
//! budget *before* any sampling, and emitted as serde-serializable
//! [`engine::ReleaseArtifact`]s carrying provenance, cost, and payload:
//!
//! ```
//! use eree_core::engine::{ReleaseEngine, ReleaseRequest};
//! use eree_core::{MechanismKind, PrivacyParams};
//! use lodes::{Generator, GeneratorConfig};
//! use tabulate::workload1;
//!
//! let dataset = Generator::new(GeneratorConfig::test_small(7)).generate();
//! let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 4.0));
//! let artifact = engine
//!     .execute(
//!         &dataset,
//!         &ReleaseRequest::marginal(workload1())
//!             .mechanism(MechanismKind::SmoothGamma)
//!             .budget(PrivacyParams::pure(0.1, 2.0))
//!             .seed(42),
//!     )
//!     .unwrap();
//! assert!((engine.ledger().remaining_epsilon() - 2.0).abs() < 1e-12);
//! assert!(!artifact.cells().unwrap().is_empty());
//! // Truth digests only exist under the opt-in `eval-only` feature.
//! assert!(cfg!(feature = "eval-only") || artifact.truth_digest.is_none());
//! ```
//!
//! Failures anywhere in the pipeline surface as the unified
//! [`EngineError`] hierarchy; a rejected request never spends budget.
//!
//! ## Resuming a publication season
//!
//! A season — an agency's ordered plan of releases spending one
//! season-long budget — outlives any single process. The
//! [`store::SeasonStore`] makes it durable: every artifact is persisted
//! as JSON (atomically, artifact first) together with a [`Ledger`]
//! snapshot, and [`store::SeasonStore::open`] restores the ledger by
//! *replaying* its entries through the same compensated budget
//! arithmetic [`Ledger::charge`] uses, refusing corrupted or
//! budget-inconsistent stores outright. Killing a season run and
//! resuming it re-spends nothing and reproduces the remaining artifacts
//! bit-for-bit (noise streams derive from `(request seed, cell key)`):
//!
//! ```
//! use eree_core::store::SeasonStore;
//! use eree_core::{MechanismKind, PrivacyParams, ReleaseRequest};
//! use lodes::{Generator, GeneratorConfig};
//! use tabulate::{workload1, workload3};
//!
//! let dataset = Generator::new(GeneratorConfig::test_small(7)).generate();
//! let season = vec![
//!     ReleaseRequest::marginal(workload1())
//!         .mechanism(MechanismKind::SmoothGamma)
//!         .budget(PrivacyParams::pure(0.1, 2.0))
//!         .describe("Q1: establishment counts")
//!         .seed(1),
//!     ReleaseRequest::marginal(workload3())
//!         .mechanism(MechanismKind::LogLaplace)
//!         .budget(PrivacyParams::pure(0.1, 8.0))
//!         .describe("Q2: … x sex x education")
//!         .seed(2),
//! ];
//! let dir = std::env::temp_dir().join("eree-lib-doc-season");
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // The process running the season is killed after the first release…
//! let mut store = SeasonStore::create(&dir, PrivacyParams::pure(0.1, 10.0)).unwrap();
//! store.run(&dataset, &season[..1]).unwrap();
//! drop(store); // (the kill)
//!
//! // …and a new process resumes exactly where it stopped.
//! let mut store = SeasonStore::open(&dir).unwrap();
//! let report = store.run(&dataset, &season).unwrap();
//! assert_eq!((report.resumed_from, report.executed), (1, 1));
//! assert_eq!(store.completed(), 2);
//! assert!(store.ledger().remaining_epsilon() < 1e-9);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```
//!
//! ## Layer map
//!
//! Roughly in the order the paper develops them:
//!
//! * [`pufferfish`] — machine-checkable encodings of the three statutory
//!   privacy requirements (Defs 4.1–4.3): no re-identification of
//!   individuals, no precise inference of establishment *size*, no precise
//!   inference of establishment *shape*.
//! * [`neighbors`] — strong and weak α-neighbors (Defs 7.1/7.3) and the
//!   induced database distance metric of Sec 7.2.
//! * [`definitions`] — the privacy parameter types ((α,ε), weak, and
//!   (α,ε,δ) variants), their validity constraints, the Table 1
//!   requirement-satisfaction matrix, and the Table 2 minimum-ε
//!   computation.
//! * [`smooth`] — the extended smooth-sensitivity framework
//!   (Defs 8.1–8.3, Thm 8.4, Lemmas 8.5/8.6/9.1).
//! * [`mechanisms`] — Algorithms 1–3: Log-Laplace, Smooth Gamma, and
//!   Smooth Laplace, each with exact samplers *and* analytic output
//!   densities so the ε-indistinguishability guarantees are verified
//!   numerically in the test-suite rather than assumed.
//! * [`accountant`] — sequential and parallel composition (Thms 7.3–7.5)
//!   and the budget [`Ledger`] the engine enforces.
//! * [`engine`] — the release engine: builder requests, ledger-enforced
//!   single and batch execution (noising parallelized across
//!   cells/requests, deterministic under any thread count), durable
//!   artifacts, and the shared [`engine::TabulationCache`].
//! * [`filter`] — declarative sub-population filters ([`FilterExpr`]):
//!   serializable ASTs over worker/workplace attributes with a stable
//!   content digest ([`FilterId`]), so filtered requests share
//!   tabulations by structure and filter provenance is verified across
//!   season resumes.
//! * [`store`] — the on-disk season store: atomic artifact + ledger
//!   persistence with verified, replay-based resume.
//! * [`truths`] — the persistent, content-addressed store of tabulated
//!   truth marginals (keyed by dataset digest + spec + normalized filter,
//!   digest-verified on load) that seasons share.
//! * [`public_cache`] — the *public* side of the same discipline: a
//!   content-addressed cache of released artifacts, keyed by the full
//!   release identity, from which repeat identical requests are served
//!   with zero additional ε and zero tabulation work.
//! * [`agency`] — the multi-season governance layer: a durable
//!   [`MetaLedger`] holding a global ε cap from which every season's
//!   budget is reserved up front, child [`SeasonStore`]s, and the shared
//!   truth store — an agency's whole release program under one bound.
//! * [`error`] — the [`EngineError`] hierarchy consolidating release,
//!   ledger, shape, and neighbor errors.
//! * [`release`] / [`shape`] — the legacy free functions, now thin
//!   deprecated wrappers over the engine.

// Every public item of the release pipeline is part of an agency-facing
// API surface; undocumented additions fail `cargo doc -D warnings` in CI.
#![warn(missing_docs)]

pub mod accountant;
pub mod agency;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod definitions;
pub mod engine;
pub mod error;
pub mod filter;
pub mod integerize;
pub mod mechanisms;
pub mod metrics;
pub mod neighbors;
pub mod public_cache;
pub mod pufferfish;
pub mod release;
pub mod shape;
pub mod smooth;
pub mod store;
pub mod truths;

pub use accountant::{
    BudgetAccount, Ledger, LedgerEntry, LedgerError, MetaEvent, MetaLedger, ReleaseCost,
    SeasonClosure, SeasonReservation, LEDGER_REL_TOL,
};
pub use agency::{panel_quarter_seed, AgencyStore, ClosureReceipt, SeasonSummary};
pub use definitions::{
    min_epsilon_smooth_gamma, min_epsilon_smooth_laplace, requirement_matrix, PrivacyMethod,
    PrivacyParams, Requirement, Satisfaction,
};
pub use engine::{
    ArtifactPayload, FlowRelease, ReleaseArtifact, ReleaseEngine, ReleaseRequest, RequestKind,
    RequestProvenance, TabulationCache, TabulationStats, TruthDigest,
};
pub use error::EngineError;
pub use filter::{Cmp, CompiledFilter, FilterExpr, FilterId};
pub use integerize::Integerized;
pub use mechanisms::{
    CellQuery, CountMechanism, LogLaplaceMechanism, MechanismKind, SmoothGammaMechanism,
    SmoothLaplaceMechanism,
};
pub use metrics::{
    CacheSnapshot, FamilyMetrics, FamilySnapshot, LatencySnapshot, MetricsRegistry,
    MetricsSnapshot, ReasonCount, SeasonQueue, ServiceSnapshot,
};
pub use neighbors::{size_distance, NeighborError, NeighborKind};
pub use public_cache::{ReleaseCache, ReleaseKey};
#[allow(deprecated)]
pub use release::release_marginal;
pub use release::{PrivateRelease, ReleaseConfig, ReleaseError};
#[allow(deprecated)]
pub use shape::release_shapes;
pub use shape::{ShapeError, ShapeRelease};
pub use smooth::{smooth_sensitivity_count, AdmissibilityBudget};
pub use store::{
    dataset_digest, dataset_pair_digest, panel_digest, CompletedRelease, DirLease, SeasonReport,
    SeasonStore, StoreError,
};
pub use truths::TruthStore;
