//! (α, ε)-ER-EE privacy: the primary contribution of Haney et al.
//! (SIGMOD 2017), "Utility Cost of Formal Privacy for Releasing National
//! Employer-Employee Statistics".
//!
//! ## The release engine
//!
//! The crate's front door is [`engine::ReleaseEngine`]: a ledger-enforced
//! executor through which every formally private release flows. Requests
//! are described with the [`engine::ReleaseRequest`] builder, validated
//! against the mechanism's constraints and the remaining `(α, ε, δ)`
//! budget *before* any sampling, and emitted as serde-serializable
//! [`engine::ReleaseArtifact`]s carrying provenance, cost, and payload:
//!
//! ```
//! use eree_core::engine::{ReleaseEngine, ReleaseRequest};
//! use eree_core::{MechanismKind, PrivacyParams};
//! use lodes::{Generator, GeneratorConfig};
//! use tabulate::workload1;
//!
//! let dataset = Generator::new(GeneratorConfig::test_small(7)).generate();
//! let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 4.0));
//! let artifact = engine
//!     .execute(
//!         &dataset,
//!         &ReleaseRequest::marginal(workload1())
//!             .mechanism(MechanismKind::SmoothGamma)
//!             .budget(PrivacyParams::pure(0.1, 2.0))
//!             .seed(42),
//!     )
//!     .unwrap();
//! assert!((engine.ledger().remaining_epsilon() - 2.0).abs() < 1e-12);
//! assert!(!artifact.cells().unwrap().is_empty());
//! // Truth digests only exist under the opt-in `eval-only` feature.
//! assert!(cfg!(feature = "eval-only") || artifact.truth_digest.is_none());
//! ```
//!
//! Failures anywhere in the pipeline surface as the unified
//! [`EngineError`] hierarchy; a rejected request never spends budget.
//!
//! ## Layer map
//!
//! Roughly in the order the paper develops them:
//!
//! * [`pufferfish`] — machine-checkable encodings of the three statutory
//!   privacy requirements (Defs 4.1–4.3): no re-identification of
//!   individuals, no precise inference of establishment *size*, no precise
//!   inference of establishment *shape*.
//! * [`neighbors`] — strong and weak α-neighbors (Defs 7.1/7.3) and the
//!   induced database distance metric of Sec 7.2.
//! * [`definitions`] — the privacy parameter types ((α,ε), weak, and
//!   (α,ε,δ) variants), their validity constraints, the Table 1
//!   requirement-satisfaction matrix, and the Table 2 minimum-ε
//!   computation.
//! * [`smooth`] — the extended smooth-sensitivity framework
//!   (Defs 8.1–8.3, Thm 8.4, Lemmas 8.5/8.6/9.1).
//! * [`mechanisms`] — Algorithms 1–3: Log-Laplace, Smooth Gamma, and
//!   Smooth Laplace, each with exact samplers *and* analytic output
//!   densities so the ε-indistinguishability guarantees are verified
//!   numerically in the test-suite rather than assumed.
//! * [`accountant`] — sequential and parallel composition (Thms 7.3–7.5)
//!   and the budget [`Ledger`] the engine enforces.
//! * [`engine`] — the release engine: builder requests, ledger-enforced
//!   single and batch execution (noising parallelized across
//!   cells/requests, deterministic under any thread count), durable
//!   artifacts.
//! * [`error`] — the [`EngineError`] hierarchy consolidating release,
//!   ledger, shape, and neighbor errors.
//! * [`release`] / [`shape`] — the legacy free functions, now thin
//!   deprecated wrappers over the engine.

pub mod accountant;
pub mod definitions;
pub mod engine;
pub mod error;
pub mod integerize;
pub mod mechanisms;
pub mod neighbors;
pub mod pufferfish;
pub mod release;
pub mod shape;
pub mod smooth;

pub use accountant::{Ledger, LedgerError, ReleaseCost};
pub use definitions::{
    min_epsilon_smooth_gamma, min_epsilon_smooth_laplace, requirement_matrix, PrivacyMethod,
    PrivacyParams, Requirement, Satisfaction,
};
pub use engine::{
    ArtifactPayload, ReleaseArtifact, ReleaseEngine, ReleaseRequest, RequestKind,
    RequestProvenance, TruthDigest,
};
pub use error::EngineError;
pub use integerize::Integerized;
pub use mechanisms::{
    CellQuery, CountMechanism, LogLaplaceMechanism, MechanismKind, SmoothGammaMechanism,
    SmoothLaplaceMechanism,
};
pub use neighbors::{size_distance, NeighborError, NeighborKind};
#[allow(deprecated)]
pub use release::release_marginal;
pub use release::{PrivateRelease, ReleaseConfig, ReleaseError};
#[allow(deprecated)]
pub use shape::release_shapes;
pub use shape::{ShapeError, ShapeRelease};
pub use smooth::{smooth_sensitivity_count, AdmissibilityBudget};
