//! (α, ε)-ER-EE privacy: the primary contribution of Haney et al.
//! (SIGMOD 2017), "Utility Cost of Formal Privacy for Releasing National
//! Employer-Employee Statistics".
//!
//! The crate provides, roughly in the order the paper develops them:
//!
//! * [`pufferfish`] — machine-checkable encodings of the three statutory
//!   privacy requirements (Defs 4.1–4.3): no re-identification of
//!   individuals, no precise inference of establishment *size*, no precise
//!   inference of establishment *shape*.
//! * [`neighbors`] — strong and weak α-neighbors (Defs 7.1/7.3) and the
//!   induced database distance metric of Sec 7.2.
//! * [`definitions`] — the privacy parameter types ((α,ε), weak, and
//!   (α,ε,δ) variants), their validity constraints, the Table 1
//!   requirement-satisfaction matrix, and the Table 2 minimum-ε
//!   computation.
//! * [`smooth`] — the extended smooth-sensitivity framework
//!   (Defs 8.1–8.3, Thm 8.4, Lemmas 8.5/8.6/9.1).
//! * [`mechanisms`] — Algorithms 1–3: Log-Laplace, Smooth Gamma, and
//!   Smooth Laplace, each with exact samplers *and* analytic output
//!   densities so the ε-indistinguishability guarantees are verified
//!   numerically in the test-suite rather than assumed.
//! * [`accountant`] — sequential and parallel composition (Thms 7.3–7.5)
//!   and a budget ledger for multi-release accounting.
//! * [`release`] — the high-level API: release a whole marginal under a
//!   chosen mechanism with correct per-cell budgeting.

pub mod accountant;
pub mod definitions;
pub mod integerize;
pub mod mechanisms;
pub mod neighbors;
pub mod pufferfish;
pub mod release;
pub mod shape;
pub mod smooth;

pub use accountant::{Ledger, LedgerError, ReleaseCost};
pub use definitions::{
    min_epsilon_smooth_gamma, min_epsilon_smooth_laplace, requirement_matrix, PrivacyMethod,
    PrivacyParams, Requirement, Satisfaction,
};
pub use mechanisms::{
    CellQuery, CountMechanism, LogLaplaceMechanism, MechanismKind, SmoothGammaMechanism,
    SmoothLaplaceMechanism,
};
pub use neighbors::{size_distance, NeighborError, NeighborKind};
pub use integerize::Integerized;
pub use release::{release_marginal, PrivateRelease, ReleaseConfig};
pub use shape::{release_shapes, ShapeError, ShapeRelease};
pub use smooth::{smooth_sensitivity_count, AdmissibilityBudget};
