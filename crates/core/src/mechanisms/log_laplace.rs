//! Algorithm 1: the Log-Laplace mechanism.
//!
//! Counts have unbounded global sensitivity under α-neighbors (a count of
//! `x` may change by `αx`), but the *logarithm* of the (shifted) count has
//! global sensitivity `ln(1+α)`. The mechanism therefore perturbs on the
//! log scale:
//!
//! ```text
//! γ ← 1/α
//! ℓ ← ln(n + γ)
//! η ~ Laplace(2·ln(1+α)/ε)
//! ñ ← e^{ℓ+η} − γ
//! ```
//!
//! Theorem 8.1: the release satisfies (α,ε)-ER-EE privacy for queries over
//! establishment attributes, and weak (α,ε)-ER-EE privacy for queries that
//! also involve worker attributes.
//!
//! The mechanism is biased (Lemma 8.2: `E[ñ]+γ = (n+γ)/(1−λ²)` for
//! `λ < 1`); an optional bias-corrected variant divides the shifted output
//! by the known factor — an extension beyond the paper, off by default.

use super::{CellQuery, CountMechanism};
use noise::{ContinuousDistribution, LogLaplace};
use rand::RngCore;

/// Algorithm 1.
#[derive(Debug, Clone, Copy)]
pub struct LogLaplaceMechanism {
    alpha: f64,
    epsilon: f64,
    gamma: f64,
    lambda: f64,
    bias_corrected: bool,
}

impl LogLaplaceMechanism {
    /// Create the mechanism at `(α, ε)`. Always valid, though the output
    /// expectation diverges when `λ = 2·ln(1+α)/ε ≥ 1`.
    ///
    /// # Panics
    /// Panics unless `α > 0` and `ε > 0`.
    pub fn new(alpha: f64, epsilon: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive"
        );
        Self {
            alpha,
            epsilon,
            gamma: 1.0 / alpha,
            lambda: 2.0 * (1.0 + alpha).ln() / epsilon,
            bias_corrected: false,
        }
    }

    /// Enable multiplicative bias correction (divides the shifted output by
    /// `1/(1−λ²)`; requires `λ < 1`). Post-processing, so privacy is
    /// unaffected.
    pub fn with_bias_correction(mut self) -> Self {
        assert!(
            self.lambda < 1.0,
            "bias correction requires lambda < 1 (finite expectation)"
        );
        self.bias_corrected = true;
        self
    }

    /// The Laplace log-scale `λ = 2·ln(1+α)/ε`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The size-protection factor α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The privacy-loss parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The shift `γ = 1/α`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Output distribution of the *shifted* value `ñ + γ` for a cell.
    fn shifted_distribution(&self, query: &CellQuery) -> LogLaplace {
        LogLaplace::new(query.count as f64 + self.gamma, self.lambda)
            .expect("count + gamma > 0 and lambda > 0 by construction")
    }

    /// The bias-correction divisor `1/(1−λ²)` applied to `ñ + γ`.
    fn correction(&self) -> f64 {
        if self.bias_corrected {
            1.0 / (1.0 - self.lambda * self.lambda)
        } else {
            1.0
        }
    }
}

impl CountMechanism for LogLaplaceMechanism {
    fn name(&self) -> &'static str {
        if self.bias_corrected {
            "Log-Laplace (bias-corrected)"
        } else {
            "Log-Laplace"
        }
    }

    fn release(&self, query: &CellQuery, rng: &mut dyn RngCore) -> f64 {
        let shifted = self.shifted_distribution(query).sample(rng);
        shifted / self.correction() - self.gamma
    }

    fn output_pdf(&self, query: &CellQuery, output: f64) -> f64 {
        // ñ = (X/c) − γ for X ~ shifted log-Laplace with correction c:
        // pdf_ñ(o) = c · pdf_X(c·(o + γ)).
        let c = self.correction();
        c * self
            .shifted_distribution(query)
            .pdf(c * (output + self.gamma))
    }

    fn output_cdf(&self, query: &CellQuery, output: f64) -> f64 {
        let c = self.correction();
        self.shifted_distribution(query)
            .cdf(c * (output + self.gamma))
    }

    fn expected_l1(&self, query: &CellQuery) -> Option<f64> {
        // E|ñ − n| = (n+γ)/c · E|e^η − c'| with c'=... For the uncorrected
        // mechanism: E|e^η − 1|·(n+γ) = (n+γ)·λ/(1−λ²), finite iff λ < 1.
        if self.lambda >= 1.0 {
            return None;
        }
        let m = query.count as f64 + self.gamma;
        if self.bias_corrected {
            // No simple closed form with the correction divisor; integrate
            // E|X/c − m| for X log-Laplace(median m, λ) numerically.
            let c = self.correction();
            let dist = self.shifted_distribution(query);
            let (lo, hi, n) = (1e-9, m * 50.0, 20_000);
            let h = (hi - lo) / n as f64;
            let mut acc = 0.0;
            for i in 0..n {
                let x = lo + (i as f64 + 0.5) * h;
                acc += (x / c - m).abs() * dist.pdf(x) * h;
            }
            Some(acc)
        } else {
            Some(m * self.lambda / (1.0 - self.lambda * self.lambda))
        }
    }

    fn unbiased(&self) -> bool {
        self.bias_corrected
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn epsilon_indistinguishability_on_strong_neighbors() {
        // Theorem 8.1, verified numerically on the output densities.
        for &(alpha, eps) in &[(0.1, 1.0), (0.05, 0.5), (0.2, 2.0), (0.01, 0.25)] {
            let mech = LogLaplaceMechanism::new(alpha, eps);
            for x in [1u64, 10, 100, 2000] {
                for (q1, q2) in strong_neighbor_pairs(x, alpha) {
                    assert_pointwise_indistinguishable(&mech, &q1, &q2, eps);
                }
            }
        }
    }

    #[test]
    fn bias_matches_lemma_8_2() {
        let mech = LogLaplaceMechanism::new(0.1, 2.0);
        let q = CellQuery {
            count: 1000,
            max_establishment: 1000,
        };
        let lambda = mech.lambda();
        assert!(lambda < 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 300_000;
        let mean: f64 = (0..n).map(|_| mech.release(&q, &mut rng)).sum::<f64>() / n as f64;
        let expected = (1000.0 + mech.gamma()) / (1.0 - lambda * lambda) - mech.gamma();
        assert!(
            (mean - expected).abs() / expected < 0.01,
            "empirical {mean} vs Lemma 8.2 {expected}"
        );
    }

    #[test]
    fn bias_correction_centers_the_output() {
        let mech = LogLaplaceMechanism::new(0.1, 2.0).with_bias_correction();
        let q = CellQuery {
            count: 1000,
            max_establishment: 1000,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let n = 300_000;
        let mean: f64 = (0..n).map(|_| mech.release(&q, &mut rng)).sum::<f64>() / n as f64;
        // Corrected mean: E[X]/c − γ = m − γ ... up to the γ·(1−1/c) shift:
        // E[ñ] = m/1·... = (m/(1−λ²))·(1−λ²) − γ = m − γ = n + γ − γ = n? No:
        // E[X/c] = m/(1−λ²)·(1−λ²) = m, so E[ñ] = m − γ = n exactly.
        assert!((mean - 1000.0).abs() < 4.0, "corrected mean {mean}");
        assert!(mech.unbiased());
    }

    #[test]
    fn expected_l1_closed_form_matches_empirical() {
        let mech = LogLaplaceMechanism::new(0.1, 2.0);
        let q = CellQuery {
            count: 500,
            max_establishment: 500,
        };
        let analytic = mech.expected_l1(&q).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 300_000;
        let emp: f64 = (0..n)
            .map(|_| (mech.release(&q, &mut rng) - 500.0).abs())
            .sum::<f64>()
            / n as f64;
        assert!(
            (emp - analytic).abs() / analytic < 0.02,
            "empirical {emp} vs analytic {analytic}"
        );
    }

    #[test]
    fn expectation_divergence_reported() {
        // lambda >= 1: alpha=0.2, eps=0.25 -> lambda = 2 ln(1.2)/0.25 ≈ 1.46.
        let mech = LogLaplaceMechanism::new(0.2, 0.25);
        assert!(mech.lambda() >= 1.0);
        let q = CellQuery {
            count: 10,
            max_establishment: 10,
        };
        assert!(mech.expected_l1(&q).is_none());
    }

    #[test]
    fn pdf_integrates_to_one() {
        let mech = LogLaplaceMechanism::new(0.1, 1.0);
        let q = CellQuery {
            count: 50,
            max_establishment: 50,
        };
        let (lo, hi, n) = (-mech.gamma() + 1e-9, 5_000.0, 400_000);
        let h = (hi - lo) / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            acc += mech.output_pdf(&q, lo + (i as f64 + 0.5) * h) * h;
        }
        assert!((acc - 1.0).abs() < 5e-3, "integral {acc}");
    }

    #[test]
    fn output_support_is_above_minus_gamma() {
        let mech = LogLaplaceMechanism::new(0.5, 1.0);
        let q = CellQuery {
            count: 0,
            max_establishment: 0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let out = mech.release(&q, &mut rng);
            assert!(out > -mech.gamma() - 1e-12);
        }
    }
}
