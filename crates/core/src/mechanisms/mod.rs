//! The paper's release mechanisms (Algorithms 1–3) behind a common trait.
//!
//! Every mechanism answers a single counting query `q_v` — one cell of a
//! marginal — given the cell's true count and its largest single-
//! establishment contribution `x_v`. Marginals are released cell-by-cell
//! with the composition rules of Section 7.3 (see [`crate::accountant`]).
//!
//! Each implementation exposes the *analytic density and CDF of its output
//! distribution*, enabling the test-suite to verify the privacy guarantee
//! numerically: for strong α-neighbor inputs the output densities must stay
//! within a factor `e^ε` pointwise (plus δ in interval form for Smooth
//! Laplace).

mod log_laplace;
mod smooth_gamma;
mod smooth_laplace;

pub use log_laplace::LogLaplaceMechanism;
pub use smooth_gamma::SmoothGammaMechanism;
pub use smooth_laplace::SmoothLaplaceMechanism;

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// One counting query: a marginal cell's true statistics.
///
/// Constructed from [`tabulate::CellStats`] via [`CellQuery::from_stats`],
/// or directly in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellQuery {
    /// The true count `q_v(D)`.
    pub count: u64,
    /// `x_v`: the largest contribution of a single establishment to this
    /// cell (drives smooth sensitivity; Lemma 8.5).
    pub max_establishment: u32,
}

impl CellQuery {
    /// Build from tabulation output.
    pub fn from_stats(stats: &tabulate::CellStats) -> Self {
        Self {
            count: stats.count,
            max_establishment: stats.max_establishment,
        }
    }
}

/// A single-count release mechanism.
pub trait CountMechanism {
    /// Human-readable name (used in experiment reports).
    fn name(&self) -> &'static str;

    /// Release a noisy answer for the cell.
    fn release(&self, query: &CellQuery, rng: &mut dyn RngCore) -> f64;

    /// Analytic pdf of the output distribution at `output`, given the cell.
    fn output_pdf(&self, query: &CellQuery, output: f64) -> f64;

    /// Analytic CDF of the output distribution at `output`.
    fn output_cdf(&self, query: &CellQuery, output: f64) -> f64;

    /// Expected absolute error `E|ñ − n|`, when finite.
    fn expected_l1(&self, query: &CellQuery) -> Option<f64>;

    /// Whether the mechanism is unbiased (`E[ñ] = n`).
    fn unbiased(&self) -> bool;
}

/// Which mechanism to use — the experiment grid iterates over these.
///
/// ```
/// use eree_core::{CellQuery, MechanismKind, PrivacyParams};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let params = PrivacyParams::pure(0.1, 2.0);
/// let mechanism = MechanismKind::SmoothGamma.build(&params).expect("valid");
/// let cell = CellQuery { count: 1200, max_establishment: 300 };
/// let mut rng = StdRng::seed_from_u64(1);
/// let noisy = mechanism.release(&cell, &mut rng);
/// // Unbiased, with expected |error| = (sqrt(2)/2) * scale:
/// assert!((noisy - 1200.0).abs() < 2_000.0);
/// assert!(mechanism.unbiased());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MechanismKind {
    /// Algorithm 1 (δ = 0, biased).
    LogLaplace,
    /// Algorithm 2 (δ = 0, unbiased).
    SmoothGamma,
    /// Algorithm 3 (δ > 0, unbiased).
    SmoothLaplace,
}

impl MechanismKind {
    /// The three mechanisms in the paper's presentation order.
    pub const ALL: [MechanismKind; 3] = [
        MechanismKind::LogLaplace,
        MechanismKind::SmoothGamma,
        MechanismKind::SmoothLaplace,
    ];

    /// Display label matching the figures.
    pub fn label(&self) -> &'static str {
        match self {
            MechanismKind::LogLaplace => "Log-Laplace",
            MechanismKind::SmoothGamma => "Smooth Gamma",
            MechanismKind::SmoothLaplace => "Smooth Laplace",
        }
    }

    /// Instantiate at `(α, ε[, δ])`. Returns `None` when the parameters
    /// violate the mechanism's validity constraint (the gaps in the
    /// paper's figures):
    ///
    /// * Smooth Gamma needs `α + 1 < e^{ε/5}`;
    /// * Smooth Laplace needs `α + 1 ≤ e^{ε/(2 ln(1/δ))}` (δ from
    ///   `params.delta`, which must be positive);
    /// * Log-Laplace is always defined, but its *expectation* diverges when
    ///   `λ = 2 ln(1+α)/ε ≥ 1`; instantiation succeeds and the divergence
    ///   is reported through [`CountMechanism::expected_l1`].
    pub fn build(
        &self,
        params: &crate::definitions::PrivacyParams,
    ) -> Option<Box<dyn CountMechanism + Send + Sync>> {
        match self {
            MechanismKind::LogLaplace => Some(Box::new(LogLaplaceMechanism::new(
                params.alpha,
                params.epsilon,
            ))),
            MechanismKind::SmoothGamma => SmoothGammaMechanism::new(params.alpha, params.epsilon)
                .map(|m| Box::new(m) as Box<dyn CountMechanism + Send + Sync>),
            MechanismKind::SmoothLaplace => {
                if params.delta <= 0.0 {
                    return None;
                }
                SmoothLaplaceMechanism::new(params.alpha, params.epsilon, params.delta)
                    .map(|m| Box::new(m) as Box<dyn CountMechanism + Send + Sync>)
            }
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Pointwise ε-indistinguishability check over a grid of outputs:
    /// `pdf₁(ω) ≤ e^ε · pdf₂(ω)` and vice versa. Valid for δ = 0
    /// mechanisms (Log-Laplace, Smooth Gamma).
    pub fn assert_pointwise_indistinguishable(
        mech: &dyn CountMechanism,
        q1: &CellQuery,
        q2: &CellQuery,
        epsilon: f64,
    ) {
        let e_eps = epsilon.exp() * (1.0 + 1e-9);
        let lo = -3.0 * (q1.count.max(q2.count) as f64 + 10.0);
        let hi = 4.0 * (q1.count.max(q2.count) as f64 + 10.0);
        let n = 4000;
        for i in 0..=n {
            let omega = lo + (hi - lo) * i as f64 / n as f64;
            let p1 = mech.output_pdf(q1, omega);
            let p2 = mech.output_pdf(q2, omega);
            if p1 > 1e-300 || p2 > 1e-300 {
                assert!(
                    p1 <= e_eps * p2 + 1e-300,
                    "ratio violated at omega={omega}: p1={p1}, p2={p2}, e^eps={e_eps}"
                );
                assert!(
                    p2 <= e_eps * p1 + 1e-300,
                    "reverse ratio violated at omega={omega}: p1={p1}, p2={p2}"
                );
            }
        }
    }

    /// Interval-form (ε, δ) check: for a family of intervals `S`,
    /// `P₁(S) ≤ e^ε·P₂(S) + δ` and vice versa. Used for Smooth Laplace.
    pub fn assert_interval_indistinguishable(
        mech: &dyn CountMechanism,
        q1: &CellQuery,
        q2: &CellQuery,
        epsilon: f64,
        delta: f64,
    ) {
        let e_eps = epsilon.exp();
        let span = 4.0 * (q1.count.max(q2.count) as f64 + 10.0);
        let lo = -span;
        let hi = 2.0 * span;
        let n = 600usize;
        let step = (hi - lo) / n as f64;
        // All intervals [a, b) on the grid.
        for i in 0..n {
            for j in (i + 1)..=n {
                let (a, b) = (lo + i as f64 * step, lo + j as f64 * step);
                let p1 = mech.output_cdf(q1, b) - mech.output_cdf(q1, a);
                let p2 = mech.output_cdf(q2, b) - mech.output_cdf(q2, a);
                assert!(
                    p1 <= e_eps * p2 + delta + 1e-9,
                    "interval [{a},{b}): p1={p1}, p2={p2}"
                );
                assert!(
                    p2 <= e_eps * p1 + delta + 1e-9,
                    "reverse interval [{a},{b}): p1={p1}, p2={p2}"
                );
            }
        }
    }

    /// Enumerate strong α-neighbor count pairs for a single-establishment
    /// cell of size `x`: the neighbor may grow to any `y ∈ [x, max((1+α)x, x+1)]`.
    pub fn strong_neighbor_pairs(x: u64, alpha: f64) -> Vec<(CellQuery, CellQuery)> {
        let max_y = (((1.0 + alpha) * x as f64).floor() as u64).max(x + 1);
        let mut pairs = Vec::new();
        for y in [x + 1, (x + max_y) / 2, max_y] {
            if y <= max_y && y > x {
                pairs.push((
                    CellQuery {
                        count: x,
                        max_establishment: x as u32,
                    },
                    CellQuery {
                        count: y,
                        max_establishment: y as u32,
                    },
                ));
            }
        }
        pairs.dedup_by(|a, b| a.1 == b.1);
        pairs
    }
}
