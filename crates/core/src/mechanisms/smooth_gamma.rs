//! Algorithm 2: the Smooth Gamma mechanism.
//!
//! Adds polynomial-tail noise `h(z) ∝ 1/(1+z⁴)` scaled by the smooth
//! sensitivity:
//!
//! ```text
//! require α + 1 < e^{ε/5}
//! ε₂ ← 5·ln(α+1);  ε₁ ← ε − ε₂
//! S* ← max(x_v·α, 1)            // Lemma 8.5 with b = ε₂/5 = ln(1+α)
//! ñ ← n + (S*/(ε₁/5))·Z,  Z ~ h
//! ```
//!
//! The budget split fixes ε₂ at the *minimum* dilation allowance for which
//! the smooth sensitivity is finite, leaving the rest for sliding — only
//! the sliding share `a = ε₁/5` enters the noise scale, so this split
//! minimizes error (an ablation bench verifies it).
//!
//! Unbiased; expected L1 error `(√2/2)·S*·5/ε₁ = O(x_v·α/ε + 1/ε)`
//! (Lemma 8.8 — see `noise::moments` for the normalization note).

use super::{CellQuery, CountMechanism};
use crate::smooth::{smooth_sensitivity_count, AdmissibilityBudget};
use noise::{ContinuousDistribution, GammaPoly};
use rand::RngCore;

/// Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub struct SmoothGammaMechanism {
    alpha: f64,
    epsilon: f64,
    budget: AdmissibilityBudget,
}

impl SmoothGammaMechanism {
    /// Create the mechanism at `(α, ε)`; `None` when `α + 1 ≥ e^{ε/5}`
    /// (the algorithm's input constraint).
    pub fn new(alpha: f64, epsilon: f64) -> Option<Self> {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive"
        );
        let budget = AdmissibilityBudget::gamma_poly(alpha, epsilon)?;
        Some(Self {
            alpha,
            epsilon,
            budget,
        })
    }

    /// The admissibility budget split (ε₁ sliding, ε₂ dilation).
    pub fn budget(&self) -> &AdmissibilityBudget {
        &self.budget
    }

    /// Noise scale for a cell: `S*·5/ε₁`.
    pub fn noise_scale(&self, query: &CellQuery) -> f64 {
        let s_star = smooth_sensitivity_count(query.max_establishment, self.alpha, self.budget.b)
            .expect("budget construction guarantees e^b >= 1+alpha");
        self.budget.noise_scale(s_star)
    }

    fn distribution(&self, query: &CellQuery) -> GammaPoly {
        GammaPoly::new(self.noise_scale(query)).expect("positive scale by construction")
    }

    /// The total privacy-loss parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl CountMechanism for SmoothGammaMechanism {
    fn name(&self) -> &'static str {
        "Smooth Gamma"
    }

    fn release(&self, query: &CellQuery, rng: &mut dyn RngCore) -> f64 {
        query.count as f64 + self.distribution(query).sample(rng)
    }

    fn output_pdf(&self, query: &CellQuery, output: f64) -> f64 {
        self.distribution(query).pdf(output - query.count as f64)
    }

    fn output_cdf(&self, query: &CellQuery, output: f64) -> f64 {
        self.distribution(query).cdf(output - query.count as f64)
    }

    fn expected_l1(&self, query: &CellQuery) -> Option<f64> {
        self.distribution(query).mean_abs()
    }

    fn unbiased(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        // alpha + 1 >= e^{eps/5}: 1.3 >= e^{0.2} = 1.221 -> invalid.
        assert!(SmoothGammaMechanism::new(0.3, 1.0).is_none());
        assert!(SmoothGammaMechanism::new(0.1, 2.0).is_some());
        // Paper's boundary: alpha + 1 < e^{eps/5} strictly.
        let eps = 5.0 * 1.2f64.ln();
        assert!(SmoothGammaMechanism::new(0.2, eps).is_none());
        assert!(SmoothGammaMechanism::new(0.2, eps + 0.01).is_some());
    }

    #[test]
    fn epsilon_indistinguishability_on_strong_neighbors() {
        // Lemma 8.7 via Theorem 8.4, verified numerically. Note that both
        // the center (count) and the noise scale (through x_v) change
        // between neighbors; the test exercises exactly that.
        for &(alpha, eps) in &[(0.1, 2.0), (0.05, 1.0), (0.2, 4.0), (0.01, 0.5)] {
            let mech = SmoothGammaMechanism::new(alpha, eps).unwrap();
            for x in [1u64, 10, 100, 2000] {
                for (q1, q2) in strong_neighbor_pairs(x, alpha) {
                    assert_pointwise_indistinguishable(&mech, &q1, &q2, eps);
                }
            }
        }
    }

    #[test]
    fn unbiased_and_l1_matches_moments() {
        let mech = SmoothGammaMechanism::new(0.1, 2.0).unwrap();
        let q = CellQuery {
            count: 500,
            max_establishment: 120,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let n = 300_000;
        let (mut sum, mut sum_abs) = (0.0, 0.0);
        for _ in 0..n {
            let out = mech.release(&q, &mut rng);
            sum += out;
            sum_abs += (out - 500.0).abs();
        }
        let mean = sum / n as f64;
        let mean_abs_err = sum_abs / n as f64;
        assert!((mean - 500.0).abs() < 0.5, "mean {mean}");
        let analytic = mech.expected_l1(&q).unwrap();
        assert!(
            (mean_abs_err - analytic).abs() / analytic < 0.02,
            "empirical {mean_abs_err} vs analytic {analytic}"
        );
    }

    #[test]
    fn error_scales_with_x_v_not_count() {
        // Lemma 8.8: error is O(x_v*alpha/eps), independent of the count.
        let mech = SmoothGammaMechanism::new(0.1, 2.0).unwrap();
        let small_xv = CellQuery {
            count: 100_000,
            max_establishment: 10,
        };
        let large_xv = CellQuery {
            count: 100,
            max_establishment: 5_000,
        };
        let e_small = mech.expected_l1(&small_xv).unwrap();
        let e_large = mech.expected_l1(&large_xv).unwrap();
        assert!(
            e_large > 100.0 * e_small,
            "x_v drives error: {e_small} vs {e_large}"
        );
    }

    #[test]
    fn sensitivity_floor_applies_to_tiny_cells() {
        let mech = SmoothGammaMechanism::new(0.1, 2.0).unwrap();
        // x_v * alpha = 0.5 < 1: floor S* = 1.
        let q = CellQuery {
            count: 5,
            max_establishment: 5,
        };
        let scale = mech.noise_scale(&q);
        let budget = mech.budget();
        assert!((scale - 1.0 / budget.a).abs() < 1e-12);
    }

    #[test]
    fn budget_minimizes_scale_among_valid_splits() {
        // Ablation: any larger epsilon_2 (dilation share) leaves less for
        // sliding and inflates the noise scale.
        let (alpha, eps) = (0.1, 2.0);
        let mech = SmoothGammaMechanism::new(alpha, eps).unwrap();
        let q = CellQuery {
            count: 1000,
            max_establishment: 1000,
        };
        let chosen_scale = mech.noise_scale(&q);
        for extra in [0.1, 0.5, 1.0] {
            let eps2 = 5.0 * (1.0 + alpha).ln() + extra;
            let eps1 = eps - eps2;
            if eps1 <= 0.0 {
                continue;
            }
            // Larger b than ln(1+alpha) doesn't shrink S* (it stays
            // max(x_v*alpha,1)), so scale = S*/(eps1/5) strictly grows.
            let s_star = (q.max_establishment as f64 * alpha).max(1.0);
            let alt_scale = s_star / (eps1 / 5.0);
            assert!(alt_scale > chosen_scale);
        }
    }
}
