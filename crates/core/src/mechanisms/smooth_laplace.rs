//! Algorithm 3: the Smooth Laplace mechanism — the (α, ε, δ) relaxation.
//!
//! Laplace noise is not admissible with δ = 0 (its dilation property
//! fails), but Lemma 9.1 shows the unit Laplace is
//! `(ε/2, ε/(2·ln(1/δ)))`-admissible, giving:
//!
//! ```text
//! require α + 1 ≤ e^{ε/(2·ln(1/δ))}
//! S* ← max(x_v·α, 1)            // Lemma 8.5 with b = ε/(2·ln(1/δ))
//! ñ ← n + (S*/(ε/2))·η,  η ~ Laplace(1)
//! ```
//!
//! Unbiased; expected L1 error `2·S*/ε = O(x_v·α/ε + 1/ε)` (Lemma 9.3).
//! The error does not depend on δ — δ only constrains which (α, ε) pairs
//! are allowed (Table 2) — which is why this mechanism dominates the other
//! two whenever its relaxed guarantee is acceptable (Finding 5).

use super::{CellQuery, CountMechanism};
use crate::smooth::{smooth_sensitivity_count, AdmissibilityBudget};
use noise::{ContinuousDistribution, Laplace};
use rand::RngCore;

/// Algorithm 3.
#[derive(Debug, Clone, Copy)]
pub struct SmoothLaplaceMechanism {
    alpha: f64,
    epsilon: f64,
    delta: f64,
    budget: AdmissibilityBudget,
}

impl SmoothLaplaceMechanism {
    /// Create the mechanism at `(α, ε, δ)`; `None` when
    /// `α + 1 > e^{ε/(2·ln(1/δ))}`.
    pub fn new(alpha: f64, epsilon: f64, delta: f64) -> Option<Self> {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive"
        );
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let budget = AdmissibilityBudget::laplace(alpha, epsilon, delta)?;
        Some(Self {
            alpha,
            epsilon,
            delta,
            budget,
        })
    }

    /// The failure probability δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The total privacy-loss parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Noise scale for a cell: `S*/(ε/2) = 2·S*/ε`.
    pub fn noise_scale(&self, query: &CellQuery) -> f64 {
        let s_star = smooth_sensitivity_count(query.max_establishment, self.alpha, self.budget.b)
            .expect("budget construction guarantees e^b >= 1+alpha");
        self.budget.noise_scale(s_star)
    }

    fn distribution(&self, query: &CellQuery) -> Laplace {
        Laplace::new(self.noise_scale(query)).expect("positive scale by construction")
    }
}

impl CountMechanism for SmoothLaplaceMechanism {
    fn name(&self) -> &'static str {
        "Smooth Laplace"
    }

    fn release(&self, query: &CellQuery, rng: &mut dyn RngCore) -> f64 {
        query.count as f64 + self.distribution(query).sample(rng)
    }

    fn output_pdf(&self, query: &CellQuery, output: f64) -> f64 {
        self.distribution(query).pdf(output - query.count as f64)
    }

    fn output_cdf(&self, query: &CellQuery, output: f64) -> f64 {
        self.distribution(query).cdf(output - query.count as f64)
    }

    fn expected_l1(&self, query: &CellQuery) -> Option<f64> {
        Some(self.noise_scale(query))
    }

    fn unbiased(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validity_constraint_is_table_2() {
        use crate::definitions::min_epsilon_smooth_laplace;
        for &(alpha, delta) in &[(0.01, 0.05), (0.1, 0.05), (0.1, 5e-4), (0.2, 5e-4)] {
            let e_min = min_epsilon_smooth_laplace(alpha, delta);
            assert!(SmoothLaplaceMechanism::new(alpha, e_min * 1.001, delta).is_some());
            assert!(SmoothLaplaceMechanism::new(alpha, e_min * 0.98, delta).is_none());
        }
    }

    #[test]
    fn interval_indistinguishability_with_delta() {
        // Lemma 9.2 via Theorem 8.4 (delta > 0 form), verified numerically
        // in interval form: P1(S) <= e^eps P2(S) + delta.
        let (alpha, delta) = (0.1, 0.05);
        let eps = crate::definitions::min_epsilon_smooth_laplace(alpha, delta) * 1.5;
        let mech = SmoothLaplaceMechanism::new(alpha, eps, delta).unwrap();
        for x in [10u64, 200] {
            for (q1, q2) in strong_neighbor_pairs(x, alpha) {
                assert_interval_indistinguishable(&mech, &q1, &q2, eps, delta);
            }
        }
    }

    #[test]
    fn pointwise_ratio_can_exceed_e_eps_in_tails() {
        // This is exactly why delta > 0 is needed: pure Laplace noise with
        // scale varying between neighbors violates the pointwise bound far
        // in the tails. Documents the necessity of the relaxation.
        let (alpha, delta) = (0.1, 0.05);
        let eps = crate::definitions::min_epsilon_smooth_laplace(alpha, delta);
        let mech = SmoothLaplaceMechanism::new(alpha, eps * 1.01, delta).unwrap();
        let q1 = CellQuery {
            count: 1000,
            max_establishment: 1000,
        };
        let q2 = CellQuery {
            count: 1100,
            max_establishment: 1100,
        };
        // Far tail: scales differ by (1+alpha), so the log-ratio grows
        // linearly in |omega| and eventually exceeds eps.
        let omega = -1.0e5;
        let ratio = mech.output_pdf(&q1, omega) / mech.output_pdf(&q2, omega);
        assert!(
            ratio.max(1.0 / ratio) > (eps * 1.01f64).exp(),
            "tail ratio {ratio} should exceed e^eps"
        );
    }

    #[test]
    fn unbiased_with_scale_2s_over_eps() {
        let mech = SmoothLaplaceMechanism::new(0.1, 2.0, 0.05).unwrap();
        let q = CellQuery {
            count: 700,
            max_establishment: 300,
        };
        let expected_scale = (300.0 * 0.1) / (2.0 / 2.0);
        assert!((mech.noise_scale(&q) - expected_scale).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| mech.release(&q, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 700.0).abs() < 0.5, "mean {mean}");
        assert!(mech.unbiased());
    }

    #[test]
    fn error_is_independent_of_delta() {
        // Lemma 9.3 discussion: delta constrains validity, not accuracy.
        let q = CellQuery {
            count: 500,
            max_establishment: 200,
        };
        let a = SmoothLaplaceMechanism::new(0.1, 2.0, 0.05).unwrap();
        let b = SmoothLaplaceMechanism::new(0.1, 2.0, 0.01).unwrap();
        assert_eq!(a.expected_l1(&q), b.expected_l1(&q));
    }

    #[test]
    fn dominates_smooth_gamma_at_matched_parameters() {
        // Finding 5: Smooth Laplace error < Smooth Gamma error, same (α,ε).
        use crate::mechanisms::SmoothGammaMechanism;
        let (alpha, eps) = (0.1, 2.0);
        let sl = SmoothLaplaceMechanism::new(alpha, eps, 0.05).unwrap();
        let sg = SmoothGammaMechanism::new(alpha, eps).unwrap();
        let q = CellQuery {
            count: 1000,
            max_establishment: 400,
        };
        assert!(sl.expected_l1(&q).unwrap() < sg.expected_l1(&q).unwrap());
    }
}
