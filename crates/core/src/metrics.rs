//! Structured metrics: a dependency-light registry of counters, gauges,
//! and fixed-bucket latency histograms, with serde-serializable snapshot
//! types and durable cumulative counters.
//!
//! The registry answers the operator question ROADMAP item 5 poses: how
//! much of the scarce resource — the agency's ε cap — has been spent,
//! refused, refunded, and cached away, *live*, without replaying ledgers
//! by hand. Three layers feed one [`MetricsRegistry`]:
//!
//! * the [`ReleaseEngine`](crate::engine::ReleaseEngine) records
//!   admissions, denials (by [`LedgerError`] reason), per-family ε/δ
//!   spend, execution latency, and tabulation-cache sources;
//! * the [`AgencyStore`](crate::agency::AgencyStore) owns the registry,
//!   keeps the budget gauges reconciled against its
//!   [`MetaLedger`](crate::accountant::MetaLedger), and persists a
//!   durable snapshot (`metrics.json`, written through the same atomic
//!   `cfs` path as every other durable file — so the chaos sweep counts
//!   and faults its syscall boundaries automatically);
//! * the service layer (`eree_service`) adds HTTP status classes, worker
//!   lifecycle, queue depth, and public-cache hit counters, and exposes
//!   the whole snapshot over `GET /metrics`.
//!
//! # Hot-path cost
//!
//! Every mutation is a relaxed atomic increment (or one CAS for the f64
//! gauges) — no locks, no allocation. Snapshots allocate; take them off
//! the hot path.
//!
//! # Crash-exactness contract
//!
//! Two classes of values live in the registry, with different durability:
//!
//! * **Replay-derived** — `accepted_total`, per-family ε/δ spend, and the
//!   budget gauges are recomputed from durable, replay-verified state
//!   (persisted releases and ledgers) every time an agency opens. They
//!   are *exact* across any crash: a counter update that never reached
//!   `metrics.json` is reconstructed from the release records, and a
//!   flushed counter whose release was rolled back is overwritten. The
//!   chaos sweep asserts this at every syscall boundary.
//! * **Volatile-cumulative** — denials, cache hits, self-heals, latency,
//!   and service counters spend nothing and leave no ledger trace; they
//!   are persisted cumulatively at season-commit points and restored on
//!   open, best-effort across a crash (at worst the tail since the last
//!   flush is lost — never double-counted, because restore *sets* rather
//!   than adds).
//!
//! Latency histograms cover the single-release execution paths (the
//! season and service path); batch
//! [`execute_all`](crate::engine::ReleaseEngine::execute_all) records
//! admissions and denials only.

use crate::accountant::LedgerError;
use crate::engine::RequestKind;
use serde::{DeError, Deserialize, Serialize, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format tag of the serialized [`MetricsSnapshot`].
pub const SNAPSHOT_FORMAT: u32 = 1;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

/// A monotonic event counter: relaxed atomic increments, lock-free reads.
///
/// [`Counter::set`] exists for restore/reconcile only — instrumentation
/// sites must only ever [`inc`](Counter::inc) or [`add`](Counter::add).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Count one event.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the count (snapshot restore and replay reconciliation).
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }
}

/// An `f64` gauge stored as bits in an `AtomicU64`: lock-free set/read,
/// one CAS loop for accumulating adds (cold paths only — once per
/// admitted release, not per cell).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at `0.0`.
    pub const fn new() -> Self {
        // 0u64 is the bit pattern of +0.0, so Default and new agree.
        Self(AtomicU64::new(0))
    }

    /// Overwrite the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Accumulate `delta` into the gauge.
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

/// Upper bounds (µs, inclusive) of the finite latency buckets; a ninth
/// overflow bucket catches everything slower. Chosen to straddle the
/// real spread: a cache-served release is tens of µs, a small tabulation
/// hundreds, a national-scale marginal tens of ms, a cold panel flow
/// release can reach seconds.
pub const LATENCY_BUCKETS_US: [u64; 8] = [
    100, 500, 2_500, 10_000, 50_000, 250_000, 1_000_000, 5_000_000,
];

/// A fixed-bucket latency histogram (non-cumulative per-bucket counts
/// plus total count and sum), mutation-cost one relaxed increment each
/// on two counters.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    /// One counter per [`LATENCY_BUCKETS_US`] bound, plus overflow.
    buckets: [Counter; LATENCY_BUCKETS_US.len() + 1],
    count: Counter,
    sum_micros: Counter,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of `micros` µs.
    pub fn observe_micros(&self, micros: u64) {
        let slot = LATENCY_BUCKETS_US
            .iter()
            .position(|&le| micros <= le)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[slot].inc();
        self.count.inc();
        self.sum_micros.add(micros);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.get()
    }

    /// A serializable copy of the current state.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            count: self.count.get(),
            sum_micros: self.sum_micros.get(),
            le_micros: LATENCY_BUCKETS_US.to_vec(),
            counts: self.buckets.iter().map(Counter::get).collect(),
        }
    }

    /// Overwrite the histogram from a snapshot (restore on open). Bucket
    /// counts restore positionally only when the snapshot's bounds match
    /// the compiled [`LATENCY_BUCKETS_US`]; otherwise only the count and
    /// sum survive (bounds changed between versions).
    pub fn restore(&self, snap: &LatencySnapshot) {
        self.count.set(snap.count);
        self.sum_micros.set(snap.sum_micros);
        let bounds_match =
            snap.le_micros == LATENCY_BUCKETS_US && snap.counts.len() == self.buckets.len();
        for (slot, bucket) in self.buckets.iter().enumerate() {
            bucket.set(if bounds_match { snap.counts[slot] } else { 0 });
        }
    }
}

// ---------------------------------------------------------------------------
// Denial reasons
// ---------------------------------------------------------------------------

/// The denial-reason vocabulary: one slug per [`LedgerError`] variant,
/// plus [`REASON_REQUEST_INVALID`] for refusals that never reached the
/// ledger (spec validation, flow-kind mismatch, …).
pub const DENY_REASONS: [&str; 11] = [
    "epsilon_exhausted",
    "delta_exhausted",
    "alpha_mismatch",
    "invalid_charge",
    "duplicate_reservation",
    "unknown_season",
    "duplicate_closure",
    "refund_exceeds_reservation",
    "no_pending_closure",
    "credit_exceeds_spent",
    REASON_REQUEST_INVALID,
];

/// The denial reason recorded for refusals that never reached the ledger.
pub const REASON_REQUEST_INVALID: &str = "request_invalid";

fn reason_slot(reason: &str) -> usize {
    DENY_REASONS
        .iter()
        .position(|&r| r == reason)
        .unwrap_or(DENY_REASONS.len() - 1)
}

impl LedgerError {
    /// The stable metrics slug for this denial reason (an entry of
    /// [`DENY_REASONS`]).
    pub fn metric_reason(&self) -> &'static str {
        match self {
            LedgerError::EpsilonExhausted { .. } => "epsilon_exhausted",
            LedgerError::DeltaExhausted { .. } => "delta_exhausted",
            LedgerError::AlphaMismatch { .. } => "alpha_mismatch",
            LedgerError::InvalidCharge { .. } => "invalid_charge",
            LedgerError::DuplicateReservation { .. } => "duplicate_reservation",
            LedgerError::UnknownSeason { .. } => "unknown_season",
            LedgerError::DuplicateClosure { .. } => "duplicate_closure",
            LedgerError::RefundExceedsReservation { .. } => "refund_exceeds_reservation",
            LedgerError::NoPendingClosure { .. } => "no_pending_closure",
            LedgerError::CreditExceedsSpent { .. } => "credit_exceeds_spent",
        }
    }
}

// ---------------------------------------------------------------------------
// Families and the registry
// ---------------------------------------------------------------------------

/// Family labels, indexed consistently with
/// [`MetricsRegistry::family`]'s internal layout.
pub const FAMILY_LABELS: [&str; 3] = ["marginal", "shapes", "flows"];

fn family_index(kind: RequestKind) -> usize {
    match kind {
        RequestKind::Marginal => 0,
        RequestKind::Shapes => 1,
        RequestKind::Flows => 2,
    }
}

/// Live counters for one release family (a [`RequestKind`]).
#[derive(Debug, Default)]
pub struct FamilyMetrics {
    /// Releases admitted (the ledger accepted the charge).
    pub accepted_total: Counter,
    /// Releases refused (by the ledger or by request validation).
    pub denied_total: Counter,
    /// ε actually charged by this family's admitted releases.
    pub epsilon_spent: Gauge,
    /// δ actually charged by this family's admitted releases.
    pub delta_spent: Gauge,
    /// Execution latency of single-release paths.
    pub latency: LatencyHistogram,
    denied_by_reason: [Counter; DENY_REASONS.len()],
}

impl FamilyMetrics {
    /// Record an admitted release charging `(epsilon, delta)`.
    pub fn record_accepted(&self, epsilon: f64, delta: f64) {
        self.accepted_total.inc();
        self.epsilon_spent.add(epsilon);
        self.delta_spent.add(delta);
    }

    /// Record a denial under `reason` (see [`DENY_REASONS`]; unknown
    /// reasons fold into [`REASON_REQUEST_INVALID`]).
    pub fn record_denied(&self, reason: &str) {
        self.denied_total.inc();
        self.denied_by_reason[reason_slot(reason)].inc();
    }

    /// Denials recorded under `reason`.
    pub fn denied_for(&self, reason: &str) -> u64 {
        self.denied_by_reason[reason_slot(reason)].get()
    }

    fn snapshot(&self, family: &str, epsilon_remaining: f64) -> FamilySnapshot {
        FamilySnapshot {
            family: family.to_string(),
            accepted_total: self.accepted_total.get(),
            denied_total: self.denied_total.get(),
            denied_by_reason: DENY_REASONS
                .iter()
                .zip(&self.denied_by_reason)
                .filter(|(_, counter)| counter.get() > 0)
                .map(|(&reason, counter)| ReasonCount {
                    reason: reason.to_string(),
                    denied: counter.get(),
                })
                .collect(),
            epsilon_spent: self.epsilon_spent.get(),
            delta_spent: self.delta_spent.get(),
            epsilon_remaining,
            latency: self.latency.snapshot(),
        }
    }

    fn restore(&self, snap: &FamilySnapshot) {
        self.accepted_total.set(snap.accepted_total);
        self.denied_total.set(snap.denied_total);
        self.epsilon_spent.set(snap.epsilon_spent);
        self.delta_spent.set(snap.delta_spent);
        self.latency.restore(&snap.latency);
        for (slot, &reason) in DENY_REASONS.iter().enumerate() {
            let denied = snap
                .denied_by_reason
                .iter()
                .find(|rc| rc.reason == reason)
                .map(|rc| rc.denied)
                .unwrap_or(0);
            self.denied_by_reason[slot].set(denied);
        }
    }
}

/// Cache-effectiveness counters across the truth store, the in-memory
/// tabulation cache, and the public released-artifact cache.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Tabulations served from the in-memory cache.
    pub truth_memory_hits: Counter,
    /// Tabulations served from the persistent truth store.
    pub truth_disk_hits: Counter,
    /// Tabulations actually computed (full dataset scans).
    pub truth_computed: Counter,
    /// Truth files found corrupt on load and queued for recomputation.
    pub truth_self_heals: Counter,
    /// Submissions answered from the public artifact cache (zero ε).
    pub public_hits: Counter,
    /// Submissions that missed the public artifact cache.
    pub public_misses: Counter,
    /// Public cache entries found corrupt on load and discarded.
    pub public_self_heals: Counter,
}

/// Service-layer counters (HTTP frontend, season workers, queues).
#[derive(Debug, Default)]
pub struct ServiceCounters {
    /// Responses with a 2xx status.
    pub http_2xx: Counter,
    /// Responses with a 4xx status.
    pub http_4xx: Counter,
    /// Responses with a 5xx status.
    pub http_5xx: Counter,
    /// Season worker threads spawned.
    pub worker_spawns: Counter,
    /// Season worker threads retired idle (lease released).
    pub worker_retirements: Counter,
    /// Releases enqueued to a season worker.
    pub releases_enqueued: Counter,
    /// Releases a season worker finished executing (either outcome).
    pub releases_executed: Counter,
}

/// The process-wide metrics registry for one agency: family counters,
/// budget gauges, cache and service counters. Shared by `Arc` between
/// the agency store, its engines, and the service frontend.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Agency ε cap (the meta-ledger's global budget).
    pub epsilon_cap: Gauge,
    /// ε reserved by season budgets (net of refunds).
    pub epsilon_reserved: Gauge,
    /// ε remaining unreserved under the cap.
    pub epsilon_remaining: Gauge,
    /// ε refunded by audited season closures.
    pub epsilon_refunded: Gauge,
    /// Cache-effectiveness counters.
    pub caches: CacheCounters,
    /// Service-layer counters.
    pub service: ServiceCounters,
    /// Durable snapshot flushes (`metrics.json` writes).
    pub flushes: Counter,
    families: [FamilyMetrics; FAMILY_LABELS.len()],
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The live counters for `kind`'s family.
    pub fn family(&self, kind: RequestKind) -> &FamilyMetrics {
        &self.families[family_index(kind)]
    }

    /// Total ε actually charged, summed over families in label order.
    pub fn epsilon_spent(&self) -> f64 {
        self.families.iter().map(|f| f.epsilon_spent.get()).sum()
    }

    /// A serializable copy of the whole registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let epsilon_remaining = self.epsilon_remaining.get();
        let enqueued = self.service.releases_enqueued.get();
        let executed = self.service.releases_executed.get();
        MetricsSnapshot {
            format: SNAPSHOT_FORMAT,
            epsilon_cap: self.epsilon_cap.get(),
            epsilon_reserved: self.epsilon_reserved.get(),
            epsilon_spent: self.epsilon_spent(),
            epsilon_remaining,
            epsilon_refunded: self.epsilon_refunded.get(),
            families: FAMILY_LABELS
                .iter()
                .zip(&self.families)
                .map(|(&label, family)| family.snapshot(label, epsilon_remaining))
                .collect(),
            caches: CacheSnapshot {
                truth_memory_hits: self.caches.truth_memory_hits.get(),
                truth_disk_hits: self.caches.truth_disk_hits.get(),
                truth_computed: self.caches.truth_computed.get(),
                truth_self_heals: self.caches.truth_self_heals.get(),
                public_hits: self.caches.public_hits.get(),
                public_misses: self.caches.public_misses.get(),
                public_self_heals: self.caches.public_self_heals.get(),
            },
            service: ServiceSnapshot {
                http_2xx: self.service.http_2xx.get(),
                http_4xx: self.service.http_4xx.get(),
                http_5xx: self.service.http_5xx.get(),
                worker_spawns: self.service.worker_spawns.get(),
                worker_retirements: self.service.worker_retirements.get(),
                releases_enqueued: enqueued,
                releases_executed: executed,
                queue_depth: enqueued.saturating_sub(executed),
                season_queues: Vec::new(),
            },
            flushes: self.flushes.get(),
        }
    }

    /// Overwrite the registry from a durable snapshot (restore on open).
    /// Families match by label, denial reasons by slug — a snapshot from
    /// an older vocabulary restores what it knows and zeroes the rest.
    /// The replay-derived values restored here (accepted totals, ε
    /// gauges) are expected to be immediately re-reconciled by the
    /// caller against the durable ledgers.
    pub fn restore(&self, snap: &MetricsSnapshot) {
        self.epsilon_cap.set(snap.epsilon_cap);
        self.epsilon_reserved.set(snap.epsilon_reserved);
        self.epsilon_remaining.set(snap.epsilon_remaining);
        self.epsilon_refunded.set(snap.epsilon_refunded);
        for (&label, family) in FAMILY_LABELS.iter().zip(&self.families) {
            match snap.families.iter().find(|f| f.family == label) {
                Some(fs) => family.restore(fs),
                None => family.restore(&FamilySnapshot::empty(label)),
            }
        }
        self.caches
            .truth_memory_hits
            .set(snap.caches.truth_memory_hits);
        self.caches.truth_disk_hits.set(snap.caches.truth_disk_hits);
        self.caches.truth_computed.set(snap.caches.truth_computed);
        self.caches
            .truth_self_heals
            .set(snap.caches.truth_self_heals);
        self.caches.public_hits.set(snap.caches.public_hits);
        self.caches.public_misses.set(snap.caches.public_misses);
        self.caches
            .public_self_heals
            .set(snap.caches.public_self_heals);
        self.service.http_2xx.set(snap.service.http_2xx);
        self.service.http_4xx.set(snap.service.http_4xx);
        self.service.http_5xx.set(snap.service.http_5xx);
        self.service.worker_spawns.set(snap.service.worker_spawns);
        self.service
            .worker_retirements
            .set(snap.service.worker_retirements);
        self.service
            .releases_enqueued
            .set(snap.service.releases_enqueued);
        self.service
            .releases_executed
            .set(snap.service.releases_executed);
        self.flushes.set(snap.flushes);
    }
}

// ---------------------------------------------------------------------------
// Snapshot types
// ---------------------------------------------------------------------------

/// The canonical serializable metrics snapshot: the one shape behind
/// `GET /metrics`, the durable `metrics.json`, and `AuditView.metrics`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Snapshot format tag ([`SNAPSHOT_FORMAT`]).
    pub format: u32,
    /// Agency ε cap.
    pub epsilon_cap: f64,
    /// ε reserved by season budgets (net of refunds).
    pub epsilon_reserved: f64,
    /// ε actually charged, summed over families.
    pub epsilon_spent: f64,
    /// ε remaining unreserved under the cap.
    pub epsilon_remaining: f64,
    /// ε refunded by audited season closures.
    pub epsilon_refunded: f64,
    /// Per-family admission/denial/spend/latency counters.
    pub families: Vec<FamilySnapshot>,
    /// Cache-effectiveness counters.
    pub caches: CacheSnapshot,
    /// Service-layer counters.
    pub service: ServiceSnapshot,
    /// Durable snapshot flushes so far.
    pub flushes: u64,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsRegistry::new().snapshot()
    }
}

/// The `Content-Type` of an OpenMetrics text exposition, as scrapers
/// negotiate it.
pub const OPENMETRICS_CONTENT_TYPE: &str =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";

/// Escape a label value per the OpenMetrics text format: backslash,
/// double quote, and newline get backslash escapes.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Render this snapshot in the OpenMetrics text exposition format
    /// (the Prometheus scrape format), ending with the mandatory
    /// `# EOF` terminator.
    ///
    /// Metric families map one-to-one onto the JSON snapshot: ε gauges,
    /// per-family admission counters and latency histograms (labelled
    /// `family="..."`, denials additionally `reason="..."`), cache and
    /// service counters, and per-season queue-depth gauges. Latency
    /// buckets keep their native microsecond bounds (`le` in µs); the
    /// trailing overflow slot becomes the `+Inf` bucket.
    pub fn to_openmetrics(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096);

        let gauge = |out: &mut String, name: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            &mut out,
            "eree_epsilon_cap",
            "Agency epsilon cap.",
            self.epsilon_cap,
        );
        gauge(
            &mut out,
            "eree_epsilon_reserved",
            "Epsilon reserved by season budgets, net of refunds.",
            self.epsilon_reserved,
        );
        gauge(
            &mut out,
            "eree_epsilon_spent",
            "Epsilon actually charged, summed over families.",
            self.epsilon_spent,
        );
        gauge(
            &mut out,
            "eree_epsilon_remaining",
            "Epsilon remaining unreserved under the cap.",
            self.epsilon_remaining,
        );
        gauge(
            &mut out,
            "eree_epsilon_refunded",
            "Epsilon refunded by audited season closures.",
            self.epsilon_refunded,
        );

        out.push_str("# HELP eree_releases_accepted Releases admitted, by family.\n");
        out.push_str("# TYPE eree_releases_accepted counter\n");
        for f in &self.families {
            let _ = writeln!(
                out,
                "eree_releases_accepted_total{{family=\"{}\"}} {}",
                escape_label(&f.family),
                f.accepted_total
            );
        }
        out.push_str("# HELP eree_releases_denied Releases refused, by family.\n");
        out.push_str("# TYPE eree_releases_denied counter\n");
        for f in &self.families {
            let _ = writeln!(
                out,
                "eree_releases_denied_total{{family=\"{}\"}} {}",
                escape_label(&f.family),
                f.denied_total
            );
        }
        out.push_str(
            "# HELP eree_releases_denied_by_reason Releases refused, by family and reason.\n",
        );
        out.push_str("# TYPE eree_releases_denied_by_reason counter\n");
        for f in &self.families {
            for r in &f.denied_by_reason {
                let _ = writeln!(
                    out,
                    "eree_releases_denied_by_reason_total{{family=\"{}\",reason=\"{}\"}} {}",
                    escape_label(&f.family),
                    escape_label(&r.reason),
                    r.denied
                );
            }
        }
        out.push_str("# HELP eree_family_epsilon_spent Epsilon charged, by family.\n");
        out.push_str("# TYPE eree_family_epsilon_spent gauge\n");
        for f in &self.families {
            let _ = writeln!(
                out,
                "eree_family_epsilon_spent{{family=\"{}\"}} {}",
                escape_label(&f.family),
                f.epsilon_spent
            );
        }
        out.push_str("# HELP eree_family_delta_spent Delta charged, by family.\n");
        out.push_str("# TYPE eree_family_delta_spent gauge\n");
        for f in &self.families {
            let _ = writeln!(
                out,
                "eree_family_delta_spent{{family=\"{}\"}} {}",
                escape_label(&f.family),
                f.delta_spent
            );
        }

        out.push_str(
            "# HELP eree_release_latency_micros Release execution latency, microseconds.\n",
        );
        out.push_str("# TYPE eree_release_latency_micros histogram\n");
        for f in &self.families {
            let family = escape_label(&f.family);
            let mut cumulative = 0u64;
            for (slot, bound) in f.latency.le_micros.iter().enumerate() {
                cumulative += f.latency.counts.get(slot).copied().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "eree_release_latency_micros_bucket{{family=\"{family}\",le=\"{bound}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "eree_release_latency_micros_bucket{{family=\"{family}\",le=\"+Inf\"}} {}",
                f.latency.count
            );
            let _ = writeln!(
                out,
                "eree_release_latency_micros_sum{{family=\"{family}\"}} {}",
                f.latency.sum_micros
            );
            let _ = writeln!(
                out,
                "eree_release_latency_micros_count{{family=\"{family}\"}} {}",
                f.latency.count
            );
        }

        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name}_total {value}");
        };
        let c = &self.caches;
        counter(
            &mut out,
            "eree_cache_truth_memory_hits",
            "Tabulations served from the in-memory cache.",
            c.truth_memory_hits,
        );
        counter(
            &mut out,
            "eree_cache_truth_disk_hits",
            "Tabulations served from the persistent truth store.",
            c.truth_disk_hits,
        );
        counter(
            &mut out,
            "eree_cache_truth_computed",
            "Tabulations actually computed.",
            c.truth_computed,
        );
        counter(
            &mut out,
            "eree_cache_truth_self_heals",
            "Corrupt truth files healed by recomputation.",
            c.truth_self_heals,
        );
        counter(
            &mut out,
            "eree_cache_public_hits",
            "Public-cache hits (zero-epsilon repeat answers).",
            c.public_hits,
        );
        counter(
            &mut out,
            "eree_cache_public_misses",
            "Public-cache misses.",
            c.public_misses,
        );
        counter(
            &mut out,
            "eree_cache_public_self_heals",
            "Corrupt public-cache entries discarded.",
            c.public_self_heals,
        );

        let s = &self.service;
        out.push_str("# HELP eree_http_responses HTTP responses served, by status class.\n");
        out.push_str("# TYPE eree_http_responses counter\n");
        for (class, value) in [
            ("2xx", s.http_2xx),
            ("4xx", s.http_4xx),
            ("5xx", s.http_5xx),
        ] {
            let _ = writeln!(
                out,
                "eree_http_responses_total{{class=\"{class}\"}} {value}"
            );
        }
        counter(
            &mut out,
            "eree_worker_spawns",
            "Season workers spawned.",
            s.worker_spawns,
        );
        counter(
            &mut out,
            "eree_worker_retirements",
            "Season workers retired idle.",
            s.worker_retirements,
        );
        counter(
            &mut out,
            "eree_releases_enqueued",
            "Releases enqueued to season workers.",
            s.releases_enqueued,
        );
        counter(
            &mut out,
            "eree_releases_executed",
            "Releases workers finished executing.",
            s.releases_executed,
        );
        gauge(
            &mut out,
            "eree_queue_depth",
            "Releases currently queued across all season workers.",
            s.queue_depth as f64,
        );
        out.push_str("# HELP eree_season_queue_depth Releases queued, by live season worker.\n");
        out.push_str("# TYPE eree_season_queue_depth gauge\n");
        for q in &s.season_queues {
            let _ = writeln!(
                out,
                "eree_season_queue_depth{{season=\"{}\"}} {}",
                escape_label(&q.season),
                q.depth
            );
        }
        counter(
            &mut out,
            "eree_snapshot_flushes",
            "Durable metrics snapshot flushes.",
            self.flushes,
        );

        out.push_str("# EOF\n");
        out
    }
}

/// One release family's counters inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FamilySnapshot {
    /// Family label (an entry of [`FAMILY_LABELS`]).
    pub family: String,
    /// Releases admitted.
    pub accepted_total: u64,
    /// Releases refused.
    pub denied_total: u64,
    /// Nonzero denial counts, by reason slug.
    pub denied_by_reason: Vec<ReasonCount>,
    /// ε charged by this family.
    pub epsilon_spent: f64,
    /// δ charged by this family.
    pub delta_spent: f64,
    /// Agency ε headroom visible to this family (shared, not per-family).
    pub epsilon_remaining: f64,
    /// Execution-latency histogram.
    pub latency: LatencySnapshot,
}

impl FamilySnapshot {
    fn empty(family: &str) -> Self {
        FamilyMetrics::default().snapshot(family, 0.0)
    }
}

/// A denial count under one reason slug.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReasonCount {
    /// The reason slug (an entry of [`DENY_REASONS`]).
    pub reason: String,
    /// Denials recorded under it.
    pub denied: u64,
}

/// Serializable cache-effectiveness counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct CacheSnapshot {
    /// Tabulations served from the in-memory cache.
    pub truth_memory_hits: u64,
    /// Tabulations served from the persistent truth store.
    pub truth_disk_hits: u64,
    /// Tabulations actually computed.
    pub truth_computed: u64,
    /// Corrupt truth files healed by recomputation.
    pub truth_self_heals: u64,
    /// Public-cache hits (zero-ε repeat answers).
    pub public_hits: u64,
    /// Public-cache misses.
    pub public_misses: u64,
    /// Corrupt public-cache entries discarded.
    pub public_self_heals: u64,
}

/// Serializable service-layer counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ServiceSnapshot {
    /// Responses with a 2xx status.
    pub http_2xx: u64,
    /// Responses with a 4xx status.
    pub http_4xx: u64,
    /// Responses with a 5xx status.
    pub http_5xx: u64,
    /// Season workers spawned.
    pub worker_spawns: u64,
    /// Season workers retired idle.
    pub worker_retirements: u64,
    /// Releases enqueued to season workers.
    pub releases_enqueued: u64,
    /// Releases workers finished executing.
    pub releases_executed: u64,
    /// Releases currently queued (enqueued − executed).
    pub queue_depth: u64,
    /// Live per-season queue depths (empty outside a running service).
    pub season_queues: Vec<SeasonQueue>,
}

/// One live season worker's queue depth.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeasonQueue {
    /// The season name.
    pub season: String,
    /// Releases queued on its worker.
    pub depth: u64,
}

/// A serializable latency histogram: per-bucket counts aligned with
/// `le_micros` bounds, plus one trailing overflow bucket.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LatencySnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, µs.
    pub sum_micros: u64,
    /// Inclusive upper bounds of the finite buckets, µs.
    pub le_micros: Vec<u64>,
    /// Per-bucket counts: one per bound, plus a trailing overflow slot.
    pub counts: Vec<u64>,
}

// ---------------------------------------------------------------------------
// Lenient deserialization (back-compat)
// ---------------------------------------------------------------------------
//
// Every snapshot type deserializes leniently: a missing or null field
// reads as its default. This is what lets (a) pre-metrics audit JSON
// (`AuditView` without a `metrics` field) keep deserializing, and (b) a
// `metrics.json` written by an older vocabulary restore what it can.

fn field_or<T: Deserialize>(v: &Value, name: &str, default: T) -> Result<T, DeError> {
    match v.get(name) {
        None | Some(Value::Null) => Ok(default),
        Some(value) => T::from_value(value),
    }
}

impl Deserialize for MetricsSnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            format: field_or(v, "format", SNAPSHOT_FORMAT)?,
            epsilon_cap: field_or(v, "epsilon_cap", 0.0)?,
            epsilon_reserved: field_or(v, "epsilon_reserved", 0.0)?,
            epsilon_spent: field_or(v, "epsilon_spent", 0.0)?,
            epsilon_remaining: field_or(v, "epsilon_remaining", 0.0)?,
            epsilon_refunded: field_or(v, "epsilon_refunded", 0.0)?,
            families: field_or(v, "families", Self::default().families)?,
            caches: field_or(v, "caches", CacheSnapshot::default())?,
            service: field_or(v, "service", ServiceSnapshot::default())?,
            flushes: field_or(v, "flushes", 0)?,
        })
    }
}

impl Deserialize for FamilySnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            family: field_or(v, "family", String::new())?,
            accepted_total: field_or(v, "accepted_total", 0)?,
            denied_total: field_or(v, "denied_total", 0)?,
            denied_by_reason: field_or(v, "denied_by_reason", Vec::new())?,
            epsilon_spent: field_or(v, "epsilon_spent", 0.0)?,
            delta_spent: field_or(v, "delta_spent", 0.0)?,
            epsilon_remaining: field_or(v, "epsilon_remaining", 0.0)?,
            latency: field_or(v, "latency", LatencySnapshot::default())?,
        })
    }
}

impl Deserialize for ReasonCount {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            reason: field_or(v, "reason", String::new())?,
            denied: field_or(v, "denied", 0)?,
        })
    }
}

impl Deserialize for CacheSnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            truth_memory_hits: field_or(v, "truth_memory_hits", 0)?,
            truth_disk_hits: field_or(v, "truth_disk_hits", 0)?,
            truth_computed: field_or(v, "truth_computed", 0)?,
            truth_self_heals: field_or(v, "truth_self_heals", 0)?,
            public_hits: field_or(v, "public_hits", 0)?,
            public_misses: field_or(v, "public_misses", 0)?,
            public_self_heals: field_or(v, "public_self_heals", 0)?,
        })
    }
}

impl Deserialize for ServiceSnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            http_2xx: field_or(v, "http_2xx", 0)?,
            http_4xx: field_or(v, "http_4xx", 0)?,
            http_5xx: field_or(v, "http_5xx", 0)?,
            worker_spawns: field_or(v, "worker_spawns", 0)?,
            worker_retirements: field_or(v, "worker_retirements", 0)?,
            releases_enqueued: field_or(v, "releases_enqueued", 0)?,
            releases_executed: field_or(v, "releases_executed", 0)?,
            queue_depth: field_or(v, "queue_depth", 0)?,
            season_queues: field_or(v, "season_queues", Vec::new())?,
        })
    }
}

impl Deserialize for SeasonQueue {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            season: field_or(v, "season", String::new())?,
            depth: field_or(v, "depth", 0)?,
        })
    }
}

impl Deserialize for LatencySnapshot {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Self {
            count: field_or(v, "count", 0)?,
            sum_micros: field_or(v, "sum_micros", 0)?,
            le_micros: field_or(v, "le_micros", Vec::new())?,
            counts: field_or(v, "counts", Vec::new())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_counter_gauge_histogram_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.set(2);
        assert_eq!(c.get(), 2);

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.add(0.1);
        g.add(0.2);
        assert_eq!(g.get(), 0.1 + 0.2, "adds accumulate in call order");
        g.set(7.5);
        assert_eq!(g.get(), 7.5);

        let h = LatencyHistogram::new();
        h.observe_micros(50); // first bucket (≤ 100)
        h.observe_micros(100); // bound is inclusive
        h.observe_micros(9_999_999_999); // overflow
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum_micros, 50 + 100 + 9_999_999_999);
        assert_eq!(snap.counts[0], 2);
        assert_eq!(*snap.counts.last().unwrap(), 1);
        assert_eq!(snap.counts.iter().sum::<u64>(), snap.count);
    }

    #[test]
    fn metrics_every_ledger_error_maps_into_the_reason_vocabulary() {
        let variants: Vec<LedgerError> = vec![
            LedgerError::EpsilonExhausted {
                requested: 1.0,
                remaining: 0.0,
            },
            LedgerError::DeltaExhausted {
                requested: 1.0,
                remaining: 0.0,
            },
            LedgerError::AlphaMismatch {
                ledger: 0.1,
                charge: 0.2,
            },
            LedgerError::InvalidCharge {
                epsilon: -1.0,
                delta: 0.0,
            },
            LedgerError::DuplicateReservation { name: "s".into() },
            LedgerError::UnknownSeason { name: "s".into() },
            LedgerError::DuplicateClosure { name: "s".into() },
            LedgerError::RefundExceedsReservation {
                name: "s".into(),
                requested: 2.0,
                reserved: 1.0,
            },
            LedgerError::NoPendingClosure { name: "s".into() },
            LedgerError::CreditExceedsSpent {
                requested: 2.0,
                spent: 1.0,
            },
        ];
        for e in &variants {
            let reason = e.metric_reason();
            assert!(DENY_REASONS.contains(&reason), "unlisted reason {reason:?}");
            // The slug resolves to its own slot, not the fallback.
            assert_eq!(DENY_REASONS[reason_slot(reason)], reason);
        }
        // Unknown reasons fold into the request_invalid slot.
        assert_eq!(
            DENY_REASONS[reason_slot("no_such_reason")],
            REASON_REQUEST_INVALID
        );
    }

    fn populated() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.epsilon_cap.set(8.0);
        reg.epsilon_reserved.set(5.0);
        reg.epsilon_remaining.set(3.0);
        reg.epsilon_refunded.set(0.25);
        let fam = reg.family(RequestKind::Marginal);
        fam.record_accepted(0.1, 0.0);
        fam.record_accepted(0.2, 0.0);
        fam.latency.observe_micros(1234);
        fam.record_denied("epsilon_exhausted");
        reg.family(RequestKind::Flows)
            .record_denied(REASON_REQUEST_INVALID);
        reg.caches.truth_computed.inc();
        reg.caches.public_hits.add(3);
        reg.service.http_2xx.add(9);
        reg.service.releases_enqueued.add(4);
        reg.service.releases_executed.add(3);
        reg.flushes.add(2);
        reg
    }

    #[test]
    fn metrics_snapshot_roundtrips_bit_exactly_through_json() {
        let snap = populated().snapshot();
        assert_eq!(snap.epsilon_spent, 0.1 + 0.2);
        assert_eq!(snap.service.queue_depth, 1);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap, "snapshot must round-trip bit-exactly");
    }

    #[test]
    fn metrics_restore_then_snapshot_is_identity() {
        let snap = populated().snapshot();
        let fresh = MetricsRegistry::new();
        fresh.restore(&snap);
        assert_eq!(fresh.snapshot(), snap);
        // Reason-indexed counts survive the name-keyed restore.
        assert_eq!(
            fresh
                .family(RequestKind::Marginal)
                .denied_for("epsilon_exhausted"),
            1
        );
    }

    #[test]
    fn metrics_snapshot_deserializes_leniently_for_back_compat() {
        // Pre-metrics JSON: an empty object is a default snapshot.
        let empty: MetricsSnapshot = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, MetricsSnapshot::default());
        assert_eq!(empty.families.len(), FAMILY_LABELS.len());
        // Partial JSON: unknown-to-us fields beyond the vocabulary are
        // ignored, known ones land, missing ones default.
        let partial: MetricsSnapshot = serde_json::from_str(
            r#"{"epsilon_cap": 4.0, "families": [{"family": "marginal", "accepted_total": 7}],
                "future_field": true}"#,
        )
        .unwrap();
        assert_eq!(partial.epsilon_cap, 4.0);
        assert_eq!(partial.families[0].accepted_total, 7);
        assert_eq!(partial.families[0].denied_total, 0);
        // An old-vocabulary snapshot restores what it names.
        let reg = MetricsRegistry::new();
        reg.family(RequestKind::Marginal).record_denied("whatever");
        reg.restore(&partial);
        assert_eq!(
            reg.family(RequestKind::Marginal).accepted_total.get(),
            7,
            "named family restores"
        );
        assert_eq!(
            reg.family(RequestKind::Marginal).denied_total.get(),
            0,
            "restore sets, never adds"
        );
    }

    #[test]
    fn metrics_family_labels_cover_every_request_kind() {
        for kind in [
            RequestKind::Marginal,
            RequestKind::Shapes,
            RequestKind::Flows,
        ] {
            let label = FAMILY_LABELS[family_index(kind)];
            assert!(!label.is_empty());
            // The registry's family lookup and the snapshot labels agree.
            let reg = MetricsRegistry::new();
            reg.family(kind).accepted_total.set(41);
            let snap = reg.snapshot();
            let fam = snap.families.iter().find(|f| f.family == label).unwrap();
            assert_eq!(fam.accepted_total, 41);
        }
    }

    #[test]
    fn metrics_latency_restore_discards_mismatched_bucket_bounds() {
        let h = LatencyHistogram::new();
        h.observe_micros(10);
        let mut snap = h.snapshot();
        snap.le_micros[0] += 1; // a different compiled vocabulary
        let fresh = LatencyHistogram::new();
        fresh.restore(&snap);
        let restored = fresh.snapshot();
        assert_eq!(restored.count, 1, "count and sum always survive");
        assert_eq!(restored.sum_micros, 10);
        assert_eq!(restored.counts.iter().sum::<u64>(), 0, "counts do not");
    }

    #[test]
    fn openmetrics_exposition_is_cumulative_escaped_and_terminated() {
        let reg = MetricsRegistry::new();
        reg.epsilon_cap.set(4.0);
        let fam = reg.family(RequestKind::Marginal);
        fam.accepted_total.inc();
        fam.latency.observe_micros(10);
        fam.latency.observe_micros(u64::MAX); // overflow bucket
        let mut snap = reg.snapshot();
        snap.service.season_queues.push(SeasonQueue {
            season: "q\"1\\\n".to_string(),
            depth: 3,
        });

        let text = snap.to_openmetrics();
        assert!(text.ends_with("# EOF\n"));
        assert!(text.contains("eree_epsilon_cap 4\n"));
        assert!(text.contains("eree_releases_accepted_total{family=\"marginal\"} 1\n"));
        // Label values carry the escaped quote, backslash, and newline.
        assert!(text.contains("eree_season_queue_depth{season=\"q\\\"1\\\\\\n\"} 3\n"));

        // Histogram buckets are cumulative and the +Inf bucket equals the
        // total count (the overflow observation is only visible there).
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("eree_release_latency_micros_bucket{family=\"marginal\""))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
        assert_eq!(*buckets.last().unwrap(), 2, "+Inf bucket is the count");
        assert_eq!(
            buckets[buckets.len() - 2],
            1,
            "overflow excluded before +Inf"
        );
        assert!(text.contains("eree_release_latency_micros_count{family=\"marginal\"} 2\n"));

        // Every sample line parses as `name ws value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let value = line.rsplit_once(' ').expect("value present").1;
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
        }
    }
}
