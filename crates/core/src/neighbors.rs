//! Strong and weak α-neighbors (Definitions 7.1 and 7.3) and the induced
//! database distance metric (Section 7.2).
//!
//! Two ER-EE tables are neighbors when they differ in the employment of
//! exactly one establishment `e`, with the workforce change bounded:
//!
//! * **Strong** (Def 7.1): with `E ⊆ E'` the two workforces,
//!   `|E| ≤ |E'| ≤ max((1+α)|E|, |E|+1)` — the *total* may grow by an α
//!   fraction (or by one worker, whichever is larger).
//! * **Weak** (Def 7.3): for *every* workforce property `φ`,
//!   `φ(E) ≤ φ(E') ≤ max((1+α)φ(E), φ(E)+1)` — every sub-population grows
//!   at most proportionally. Weak neighbors are closer together than
//!   strong ones, so weak privacy is a weaker guarantee (Sec 7.1's
//!   19-year-olds example).
//!
//! Workforces are represented as histograms over the full worker-attribute
//! domain, which is faithful because workers are exchangeable within a
//! cell for every marginal query.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which neighbor definition is in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NeighborKind {
    /// Definition 7.1 — bounds only the total size change.
    Strong,
    /// Definition 7.3 — bounds every sub-population's change.
    Weak,
}

/// Why two workforce histograms fail to be α-neighbors.
#[derive(Debug, Clone, PartialEq)]
pub enum NeighborError {
    /// A cell count decreased (the definitions require `E ⊆ E'`; call with
    /// arguments swapped for shrinking changes).
    NotSuperset {
        /// The offending worker-cell index.
        cell: u64,
    },
    /// The total grew beyond `max((1+α)|E|, |E|+1)`.
    TotalGrowthExceeded {
        /// Old total.
        from: u64,
        /// New total.
        to: u64,
        /// Allowed maximum.
        allowed: u64,
    },
    /// Some property `φ` grew beyond `max((1+α)φ(E), φ(E)+1)` (weak only).
    PropertyGrowthExceeded {
        /// Cells making up the violating property (worker-cell indices).
        cells: Vec<u64>,
        /// `φ(E)`.
        from: u64,
        /// `φ(E')`.
        to: u64,
        /// Allowed maximum.
        allowed: u64,
    },
    /// The weak checker's exact subset enumeration is capped; the changed
    /// support was too large.
    SupportTooLarge(usize),
}

/// Allowed growth target `max(⌈(1+α)x⌉, x+1)` for a count `x`.
///
/// The ceiling is taken with a small tolerance so that exactly-representable
/// products like `1.1 × 100` do not round up through floating-point noise.
fn allowed_growth(x: u64, alpha: f64) -> u64 {
    let scaled = ((1.0 + alpha) * x as f64 - 1e-9).ceil() as u64;
    scaled.max(x + 1)
}

/// Check that histograms `from → to` form a **strong** α-neighbor step
/// (one establishment's workforce grew from `from` to `to`).
pub fn check_strong_neighbors(
    from: &BTreeMap<u64, u64>,
    to: &BTreeMap<u64, u64>,
    alpha: f64,
) -> Result<(), NeighborError> {
    check_superset(from, to)?;
    let from_total: u64 = from.values().sum();
    let to_total: u64 = to.values().sum();
    let allowed = allowed_growth(from_total, alpha);
    if to_total > allowed {
        return Err(NeighborError::TotalGrowthExceeded {
            from: from_total,
            to: to_total,
            allowed,
        });
    }
    Ok(())
}

/// Check that histograms `from → to` form a **weak** α-neighbor step:
/// every property (subset of worker cells) grows at most proportionally.
///
/// Exact verification enumerates subsets of the cells whose counts changed;
/// the changed support must have at most 20 cells (ample for tests — real
/// neighbor steps touch few cells).
pub fn check_weak_neighbors(
    from: &BTreeMap<u64, u64>,
    to: &BTreeMap<u64, u64>,
    alpha: f64,
) -> Result<(), NeighborError> {
    check_superset(from, to)?;
    // Cells with increased counts.
    let changed: Vec<u64> = to
        .iter()
        .filter(|(c, &n)| n > from.get(c).copied().unwrap_or(0))
        .map(|(&c, _)| c)
        .collect();
    if changed.len() > 20 {
        return Err(NeighborError::SupportTooLarge(changed.len()));
    }
    // For every subset X of changed cells, combined with all unchanged
    // cells contributing no growth, the binding constraint is on subsets of
    // changed cells alone (adding unchanged cells to X only raises φ(E)
    // without raising the growth, loosening the constraint).
    for mask in 1u32..(1 << changed.len()) {
        let cells: Vec<u64> = changed
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &c)| c)
            .collect();
        let phi_from: u64 = cells
            .iter()
            .map(|c| from.get(c).copied().unwrap_or(0))
            .sum();
        let phi_to: u64 = cells.iter().map(|c| to.get(c).copied().unwrap_or(0)).sum();
        let allowed = allowed_growth(phi_from, alpha);
        if phi_to > allowed {
            return Err(NeighborError::PropertyGrowthExceeded {
                cells,
                from: phi_from,
                to: phi_to,
                allowed,
            });
        }
    }
    Ok(())
}

/// Check a neighbor step under either definition.
pub fn check_neighbors(
    kind: NeighborKind,
    from: &BTreeMap<u64, u64>,
    to: &BTreeMap<u64, u64>,
    alpha: f64,
) -> Result<(), NeighborError> {
    match kind {
        NeighborKind::Strong => check_strong_neighbors(from, to, alpha),
        NeighborKind::Weak => check_weak_neighbors(from, to, alpha),
    }
}

fn check_superset(from: &BTreeMap<u64, u64>, to: &BTreeMap<u64, u64>) -> Result<(), NeighborError> {
    for (&cell, &n) in from {
        if to.get(&cell).copied().unwrap_or(0) < n {
            return Err(NeighborError::NotSuperset { cell });
        }
    }
    Ok(())
}

/// The induced distance between two establishment sizes (Sec 7.2): the
/// minimum number of α-neighbor steps taking a workforce of size `x` to one
/// of size `y`. Each step multiplies the size by at most `(1+α)` or adds
/// one worker, whichever is larger.
///
/// An adversary's Bayes factor for distinguishing sizes `x` vs `y` from an
/// (α,ε)-ER-EE-private release is bounded by `ε · size_distance(x, y, α)`.
pub fn size_distance(x: u64, y: u64, alpha: f64) -> u32 {
    assert!(alpha > 0.0, "alpha must be positive");
    let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
    let mut reach = lo;
    let mut steps = 0u32;
    while reach < hi {
        reach = allowed_growth(reach, alpha);
        steps += 1;
        assert!(steps < 10_000, "distance computation runaway");
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(pairs: &[(u64, u64)]) -> BTreeMap<u64, u64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn strong_allows_alpha_growth() {
        let from = hist(&[(0, 100)]);
        let to = hist(&[(0, 100), (1, 10)]); // total 100 -> 110 = (1+0.1)*100
        assert!(check_strong_neighbors(&from, &to, 0.1).is_ok());
        let too_big = hist(&[(0, 100), (1, 11)]);
        assert!(matches!(
            check_strong_neighbors(&from, &too_big, 0.1),
            Err(NeighborError::TotalGrowthExceeded { .. })
        ));
    }

    #[test]
    fn strong_allows_plus_one_even_from_zero_or_small() {
        let from = hist(&[]);
        let to = hist(&[(3, 1)]);
        assert!(check_strong_neighbors(&from, &to, 0.01).is_ok());
        let from = hist(&[(3, 5)]);
        let to = hist(&[(3, 6)]);
        // (1+0.01)*5 = 5.05 -> ceil 6; also 5+1=6.
        assert!(check_strong_neighbors(&from, &to, 0.01).is_ok());
    }

    #[test]
    fn shrinking_is_not_superset() {
        let from = hist(&[(0, 5)]);
        let to = hist(&[(0, 4)]);
        assert!(matches!(
            check_strong_neighbors(&from, &to, 0.5),
            Err(NeighborError::NotSuperset { cell: 0 })
        ));
    }

    #[test]
    fn weak_is_stricter_than_strong() {
        // The paper's 19-year-olds example: all growth concentrated in one
        // tiny sub-population is a strong neighbor but not a weak one.
        let from = hist(&[(0, 100), (1, 2)]); // cell 1 = 19-year-olds
        let to = hist(&[(0, 100), (1, 12)]); // 102 -> 112 < 1.1*102 ok
        assert!(check_strong_neighbors(&from, &to, 0.1).is_ok());
        let err = check_weak_neighbors(&from, &to, 0.1);
        assert!(
            matches!(
                err,
                Err(NeighborError::PropertyGrowthExceeded { ref cells, .. }) if cells == &vec![1]
            ),
            "concentrated growth must violate the weak definition: {err:?}"
        );
    }

    #[test]
    fn weak_allows_proportional_growth() {
        let from = hist(&[(0, 50), (1, 50)]);
        let to = hist(&[(0, 55), (1, 55)]);
        assert!(check_weak_neighbors(&from, &to, 0.1).is_ok());
        assert!(check_strong_neighbors(&from, &to, 0.1).is_ok());
    }

    #[test]
    fn weak_plus_one_per_property_is_allowed() {
        // A new worker in a previously-empty cell: phi for that cell goes
        // 0 -> 1, allowed by the +1 branch.
        let from = hist(&[(0, 10)]);
        let to = hist(&[(0, 10), (7, 1)]);
        assert!(check_weak_neighbors(&from, &to, 0.01).is_ok());
        // But two new workers in an empty cell exceed max(0, 0+1).
        let to2 = hist(&[(0, 10), (7, 2)]);
        assert!(check_weak_neighbors(&from, &to2, 0.01).is_err());
    }

    #[test]
    fn weak_checks_subset_sums_not_just_cells() {
        // Each cell individually passes (+1 rule) but their union gains 2
        // from a base of 1, exceeding max(ceil(1.01*1), 2) = 2? union from
        // = 1 (cell 0 has 1, cell 7 has 0): to = 3 > 2 -> violation found
        // only by subset enumeration.
        let from = hist(&[(0, 1)]);
        let to = hist(&[(0, 2), (7, 1)]);
        assert!(check_weak_neighbors(&from, &to, 0.01).is_err());
        // Individually: cell 0: 1->2 allowed (+1); cell 7: 0->1 allowed.
        let to_a = hist(&[(0, 2)]);
        let to_b = hist(&[(0, 1), (7, 1)]);
        assert!(check_weak_neighbors(&from, &to_a, 0.01).is_ok());
        assert!(check_weak_neighbors(&from, &to_b, 0.01).is_ok());
    }

    #[test]
    fn kind_dispatch() {
        let from = hist(&[(0, 100), (1, 2)]);
        let to = hist(&[(0, 100), (1, 12)]);
        assert!(check_neighbors(NeighborKind::Strong, &from, &to, 0.1).is_ok());
        assert!(check_neighbors(NeighborKind::Weak, &from, &to, 0.1).is_err());
    }

    #[test]
    fn distance_metric_matches_geometric_growth() {
        // From 100 with alpha=0.1: one step reaches 110, two reach 121.
        assert_eq!(size_distance(100, 100, 0.1), 0);
        assert_eq!(size_distance(100, 110, 0.1), 1);
        assert_eq!(size_distance(100, 121, 0.1), 2);
        assert_eq!(size_distance(121, 100, 0.1), 2, "symmetric");
        // Small sizes move by +1 while (1+alpha)x < x+1.
        assert_eq!(size_distance(1, 4, 0.01), 3);
        // k ~ log_{1+alpha}(y/x) for large x.
        let k = size_distance(1000, 2000, 0.1);
        let analytic = (2.0f64.ln() / 1.1f64.ln()).ceil() as u32;
        assert_eq!(k, analytic);
    }
}
