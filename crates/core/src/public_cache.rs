//! The **public** released-artifact cache: once ε is spent, serving the
//! same artifact again is free.
//!
//! A [`ReleaseArtifact`] is a *published* object. The moment it leaves
//! the engine, its privacy cost is paid in full, and differential privacy
//! is closed under post-processing — so answering an **identical** repeat
//! request from a copy of the artifact spends zero additional budget and
//! needs zero access to the confidential snapshot. At
//! millions-of-users scale repeat queries are the overwhelming majority
//! of traffic, and this cache is what lets a release service answer them
//! without touching tabulation, the ledger, or the data: the hot path of
//! [`eree_service`'s](crate) HTTP frontend is a single digest-named file
//! read.
//!
//! # The public/confidential boundary
//!
//! Everything under the cache directory is, by construction,
//! **releasable**: only completed artifacts — already charged to a
//! ledger, already persisted by a [`SeasonStore`](crate::store::SeasonStore)
//! — are ever written here. Nothing in a cache file derives from the
//! confidential data except through a mechanism whose cost the
//! meta-ledger accounts for. The directory can be rsynced to a public
//! mirror wholesale. Contrast the sibling
//! [`TruthStore`](crate::truths::TruthStore), which holds *exact*
//! confidential tabulations and must never cross that boundary; the two
//! stores share their integrity machinery (atomic temp-file + rename
//! writes, content-digest verification on load, structural key
//! comparison) but sit on opposite sides of the release barrier.
//!
//! # Addressing
//!
//! A released artifact is a **pure function** of its [`ReleaseKey`]:
//! dataset digest, request kind, marginal spec, mechanism, budget (and
//! whether it was per-cell), normalized filter expression, integerization
//! flag, and seed. Noise streams derive deterministically from
//! `(seed, cell key)`, so two requests agreeing on the key produce
//! bit-identical artifacts — which is exactly what licenses serving a
//! cached copy. The free-form description is *not* part of the key: it
//! labels a release, it does not define one.
//!
//! Files are named by an FNV-1a digest of the canonical key JSON, but the
//! digest only names: the full key is stored inside the file, compared
//! structurally on load, and cross-checked against the artifact's own
//! recorded provenance, so a digest collision (or a tampered pairing of
//! key and artifact) can alias nothing.
//!
//! # Integrity
//!
//! Same discipline as the truth store: atomic writes, and loads verify
//! format, structural key equality, key-vs-provenance agreement, and a
//! recorded content digest that must reproduce from the stored artifact.
//! Any failure reads as a **miss** — the caller re-executes the release
//! (deterministically identical, though re-charged) and the rewrite
//! repairs the file. A corrupt cache can cost budget; it can never serve
//! garbage.

use crate::definitions::PrivacyParams;
use crate::engine::{ReleaseArtifact, RequestKind, RequestProvenance};
use crate::mechanisms::MechanismKind;
use crate::metrics::MetricsRegistry;
use crate::store::{fnv1a_bytes, read_json, write_json_atomic, StoreError};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tabulate::{FilterExpr, MarginalSpec};

/// Cache-file format version, recorded in every file so a future layout
/// change invalidates (rather than misreads) old entries.
const CACHE_FORMAT_VERSION: u32 = 1;

/// The full identity of one released artifact — everything its bits are a
/// deterministic function of. See the [module docs](self) for why the
/// description is excluded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReleaseKey {
    /// Fingerprint of the confidential dataset
    /// ([`dataset_digest`](crate::store::dataset_digest)).
    pub dataset_digest: u64,
    /// Marginal or shapes release.
    pub kind: RequestKind,
    /// The tabulated spec.
    pub spec: MarginalSpec,
    /// The sampling mechanism.
    pub mechanism: MechanismKind,
    /// The requested budget (total or per-cell, per
    /// [`budget_is_per_cell`](Self::budget_is_per_cell)).
    pub budget: PrivacyParams,
    /// Whether [`budget`](Self::budget) was per-cell parameters.
    pub budget_is_per_cell: bool,
    /// The **normalized** filter expression, `None` when unfiltered.
    pub filter: Option<FilterExpr>,
    /// Whether outputs were rounded to non-negative integers.
    pub integerized: bool,
    /// The request seed the noise streams derive from.
    pub seed: u64,
}

impl ReleaseKey {
    /// The key of the artifact `provenance` describes, released against
    /// the dataset fingerprinted by `dataset_digest`.
    ///
    /// Returns `None` for closure-filtered releases (provenance records
    /// `filtered` with no expression): their population has no
    /// serializable identity, so they are never cacheable — the same rule
    /// the [`TruthStore`](crate::truths::TruthStore) applies.
    pub fn of(provenance: &RequestProvenance, dataset_digest: u64) -> Option<Self> {
        if provenance.filtered && provenance.filter.is_none() {
            return None;
        }
        Some(Self {
            dataset_digest,
            kind: provenance.kind,
            spec: provenance.spec.clone(),
            mechanism: provenance.mechanism,
            budget: provenance.budget,
            budget_is_per_cell: provenance.budget_is_per_cell,
            filter: provenance.filter.as_ref().map(FilterExpr::normalized),
            integerized: provenance.integerized,
            seed: provenance.seed,
        })
    }
}

/// The on-disk form of one cached release: the full identity key, the
/// artifact, and the artifact's content digest.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheFile {
    format: u32,
    key: ReleaseKey,
    content_digest: u64,
    artifact: ReleaseArtifact,
}

/// A directory of content-addressed released artifacts — the public side
/// of the release pipeline. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ReleaseCache {
    dir: PathBuf,
    /// Registry corrupt-entry discards (self-heals) are counted into.
    /// Hit/miss counters stay with the serving layer — `load` is also
    /// the verification path of registry rehydration, which must not
    /// inflate them.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl ReleaseCache {
    /// Open (creating if absent) the cache directory `dir`. Unlike the
    /// truth store, the cache is not pinned to one dataset: the dataset
    /// digest is part of every [`ReleaseKey`], so artifacts of different
    /// snapshots coexist without aliasing.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        crate::store::cfs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            path: dir.clone(),
            source,
        })?;
        Ok(Self { dir, metrics: None })
    }

    /// The same cache counting corrupt-on-load entries (self-heals) into
    /// `registry`.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content address of `key`: FNV-1a over its canonical JSON.
    /// Names the file only; loads always re-verify the full key
    /// structurally.
    pub fn key_digest(key: &ReleaseKey) -> u64 {
        let json = serde_json::to_string(key).expect("key serialization is infallible");
        fnv1a_bytes(json.as_bytes())
    }

    fn path_for(&self, key: &ReleaseKey) -> PathBuf {
        self.dir
            .join(format!("{:016x}.json", Self::key_digest(key)))
    }

    /// Content digest of an artifact: FNV-1a over its canonical JSON.
    /// (The vendored serde emits fields in declaration order, so the JSON
    /// form is canonical by construction.)
    pub fn artifact_digest(artifact: &ReleaseArtifact) -> u64 {
        let json = serde_json::to_string(artifact).expect("artifact serialization is infallible");
        fnv1a_bytes(json.as_bytes())
    }

    /// Load the cached artifact for `key`, or `None` when it is absent or
    /// fails any verification (format, structural key equality, key vs
    /// artifact provenance, content digest). A failed verification reads
    /// as a miss so the caller re-executes and overwrites the bad file —
    /// self-healing, never garbage-serving.
    pub fn load(&self, key: &ReleaseKey) -> Option<ReleaseArtifact> {
        let path = self.path_for(key);
        if !path.exists() {
            return None;
        }
        let verified = (|| {
            let file: CacheFile = read_json(&path).ok()?;
            if file.format != CACHE_FORMAT_VERSION || &file.key != key {
                return None;
            }
            // The stored key and the stored artifact must describe the
            // same release: a tampered pairing (right key, wrong
            // artifact) fails here even with a self-consistent content
            // digest.
            if ReleaseKey::of(&file.artifact.request, key.dataset_digest).as_ref() != Some(key) {
                return None;
            }
            if Self::artifact_digest(&file.artifact) != file.content_digest {
                return None;
            }
            Some(file.artifact)
        })();
        if verified.is_none() {
            if let Some(registry) = &self.metrics {
                registry.caches.public_self_heals.inc();
            }
        }
        verified
    }

    /// Persist `artifact` under `key` atomically (temp + rename). An
    /// existing file at the same address is replaced — a released
    /// artifact is a pure function of its key, so a replacement can only
    /// repair a corrupt file.
    ///
    /// Refuses (as [`StoreError::Inconsistent`]) an artifact whose own
    /// provenance does not reproduce `key`: the cache only ever pairs a
    /// key with the artifact it identifies.
    pub fn save(&self, key: &ReleaseKey, artifact: &ReleaseArtifact) -> Result<(), StoreError> {
        if ReleaseKey::of(&artifact.request, key.dataset_digest).as_ref() != Some(key) {
            return Err(StoreError::Inconsistent {
                detail: format!(
                    "released-artifact cache refused a save: the artifact's provenance ({}) \
                     does not reproduce the supplied key",
                    artifact.request.description
                ),
            });
        }
        let file = CacheFile {
            format: CACHE_FORMAT_VERSION,
            key: key.clone(),
            content_digest: Self::artifact_digest(artifact),
            artifact: artifact.clone(),
        };
        write_json_atomic(&self.path_for(key), &file)
    }

    /// Number of cached artifacts currently in the directory.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the directory holds no cached artifacts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ReleaseEngine, ReleaseRequest};
    use crate::store::dataset_digest;
    use lodes::{Generator, GeneratorConfig, Sex};
    use std::fs;
    use tabulate::workload1;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eree-public-cache-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn release(seed: u64) -> (u64, ReleaseArtifact) {
        let d = Generator::new(GeneratorConfig::test_small(31)).generate();
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 8.0));
        let artifact = engine
            .execute(
                &d,
                &ReleaseRequest::marginal(workload1())
                    .mechanism(MechanismKind::LogLaplace)
                    .budget(PrivacyParams::pure(0.1, 2.0))
                    .filter_expr(FilterExpr::sex(Sex::Female))
                    .seed(seed),
            )
            .unwrap();
        (dataset_digest(&d), artifact)
    }

    #[test]
    fn save_load_round_trips_and_keys_discriminate() {
        let dir = tmp_dir("roundtrip");
        let cache = ReleaseCache::open(&dir).unwrap();
        let (digest, artifact) = release(7);
        let key = ReleaseKey::of(&artifact.request, digest).unwrap();
        cache.save(&key, &artifact).unwrap();
        assert_eq!(cache.load(&key).unwrap(), artifact);
        assert_eq!(cache.len(), 1);
        // A different seed is a different release: a miss.
        let other = ReleaseKey {
            seed: 8,
            ..key.clone()
        };
        assert!(cache.load(&other).is_none());
        // A different dataset is a different release too.
        let other = ReleaseKey {
            dataset_digest: digest ^ 1,
            ..key.clone()
        };
        assert!(cache.load(&other).is_none());
        // The description is display-only: identical requests differing
        // only in description share one key.
        let mut relabeled = artifact.request.clone();
        relabeled.description = "some other label".to_string();
        assert_eq!(ReleaseKey::of(&relabeled, digest).unwrap(), key);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_mismatched_entries_read_as_miss() {
        let dir = tmp_dir("tamper");
        let cache = ReleaseCache::open(&dir).unwrap();
        let (digest, artifact) = release(9);
        let key = ReleaseKey::of(&artifact.request, digest).unwrap();
        cache.save(&key, &artifact).unwrap();
        let path = cache.path_for(&key);

        // Outright garbage reads as a miss.
        fs::write(&path, "{not json").unwrap();
        assert!(cache.load(&key).is_none());
        // Recompute-and-save self-heals the address.
        cache.save(&key, &artifact).unwrap();
        assert_eq!(cache.load(&key).unwrap(), artifact);

        // A tampered payload value breaks the content digest.
        let json = fs::read_to_string(&path).unwrap();
        let digest_field = format!(
            "\"content_digest\": {}",
            ReleaseCache::artifact_digest(&artifact)
        );
        let tampered = json.replacen(
            &digest_field,
            &format!(
                "\"content_digest\": {}",
                ReleaseCache::artifact_digest(&artifact) ^ 1
            ),
            1,
        );
        assert_ne!(tampered, json);
        fs::write(&path, tampered).unwrap();
        assert!(cache.load(&key).is_none());

        // Pairing the key with a different release's artifact is refused
        // on save and (if forged on disk) on load.
        let (_, other_artifact) = release(10);
        assert!(matches!(
            cache.save(&key, &other_artifact),
            Err(StoreError::Inconsistent { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn closure_filtered_releases_are_not_cacheable() {
        let (digest, artifact) = release(11);
        let mut opaque = artifact.request.clone();
        opaque.filter = None;
        opaque.filtered = true;
        assert!(ReleaseKey::of(&opaque, digest).is_none());
    }
}
