//! Machine-checkable encodings of the statutory privacy requirements
//! (Definitions 4.1–4.3) in the Pufferfish framework.
//!
//! The paper's Theorems 7.1/7.2 reduce the three Bayes-factor requirements
//! to indistinguishability on α-neighbor databases: for an adversary in Θ
//! (independent priors across workers and establishments, but possibly
//! exact knowledge of all-but-one entity), the posterior-to-prior odds
//! ratio for any secret pair is bounded by the worst-case output-density
//! ratio over the corresponding neighbor pair. This module implements the
//! requirement checks in exactly that reduced form:
//!
//! * **Employee requirement** (Def 4.1) — secret pair "worker in / out of a
//!   cell's population": counts differ by 1; covered by the `+1` branch of
//!   strong α-neighbors.
//! * **Employer-size requirement** (Def 4.2) — secret pair `|e| = x` vs
//!   `|e| = y`, `x ≤ y ≤ ⌈(1+α)x⌉`: the full α-growth branch.
//! * **Employer-shape requirement** (Def 4.3) — sub-population counts `p·z`
//!   vs `q·z` with `q ≤ (1+α)p` at fixed total: an α-growth step on the
//!   sub-count.
//!
//! In addition, [`ExhaustiveBayesCheck`] builds a *tiny discrete world* and
//! verifies the Bayes-factor bound of Def 4.1 directly — priors, posterior
//! odds and all — against a discretized mechanism, with no reliance on the
//! paper's reduction.

use crate::mechanisms::{CellQuery, CountMechanism};

/// Maximum log Bayes factor observed over a grid of outputs for the secret
/// pair "cell count is `x`" vs "cell count is `y`" — for an informed
/// attacker who knows everything else, this equals the log output-density
/// ratio.
pub fn max_log_bayes_factor(
    mechanism: &dyn CountMechanism,
    x: CellQuery,
    y: CellQuery,
    grid: usize,
) -> f64 {
    let hi = 4.0 * (x.count.max(y.count) as f64 + 10.0);
    let lo = -hi;
    let mut worst: f64 = 0.0;
    for i in 0..=grid {
        let omega = lo + (hi - lo) * i as f64 / grid as f64;
        let px = mechanism.output_pdf(&x, omega);
        let py = mechanism.output_pdf(&y, omega);
        if px > 1e-290 && py > 1e-290 {
            worst = worst.max((px / py).ln().abs());
        }
    }
    worst
}

/// Check Definition 4.1 (employee privacy) for a mechanism at loss `ε`:
/// adding one worker to any cell shifts the output distribution by a log
/// Bayes factor of at most ε.
pub fn check_employee_requirement(
    mechanism: &dyn CountMechanism,
    epsilon: f64,
    counts: &[u64],
) -> bool {
    counts.iter().all(|&n| {
        let x = CellQuery {
            count: n,
            max_establishment: n.min(u32::MAX as u64) as u32,
        };
        let y = CellQuery {
            count: n + 1,
            max_establishment: (n + 1).min(u32::MAX as u64) as u32,
        };
        max_log_bayes_factor(mechanism, x, y, 2000) <= epsilon * (1.0 + 1e-6) + 1e-9
    })
}

/// Check Definition 4.2 (employer size) at `(ε, α)`: sizes within a
/// `(1+α)` factor are indistinguishable up to log Bayes factor ε.
pub fn check_employer_size_requirement(
    mechanism: &dyn CountMechanism,
    epsilon: f64,
    alpha: f64,
    sizes: &[u64],
) -> bool {
    sizes.iter().all(|&n| {
        let grown = ((1.0 + alpha) * n as f64).floor() as u64;
        let x = CellQuery {
            count: n,
            max_establishment: n as u32,
        };
        let y = CellQuery {
            count: grown.max(n + 1),
            max_establishment: grown.max(n + 1) as u32,
        };
        max_log_bayes_factor(mechanism, x, y, 2000) <= epsilon * (1.0 + 1e-6) + 1e-9
    })
}

/// Check Definition 4.3 (employer shape) at `(ε, α)`: for a fixed
/// establishment size `z`, sub-population fractions `p` vs `q ≤ (1+α)p`
/// are indistinguishable from the sub-count's release.
pub fn check_employer_shape_requirement(
    mechanism: &dyn CountMechanism,
    epsilon: f64,
    alpha: f64,
    z: u64,
    fractions: &[f64],
) -> bool {
    fractions.iter().all(|&p| {
        let x_count = (p * z as f64).round() as u64;
        // A sub-population already filling the establishment has no room
        // to grow: every (1+α)-larger neighbor would need a sub-count
        // above z, which no database of size z realizes. The requirement
        // is vacuous for this fraction, not violated.
        if x_count >= z {
            return true;
        }
        let q = (1.0 + alpha) * p;
        // Grow to at least x+1, but never beyond the establishment size z
        // (clamping to z must come *after* the x+1 floor, or x_count == z
        // would yield the infeasible pair y = z + 1 > z).
        let y_count = ((q * z as f64).round() as u64).max(x_count + 1).min(z);
        let x = CellQuery {
            count: x_count,
            max_establishment: x_count as u32,
        };
        let y = CellQuery {
            count: y_count,
            max_establishment: y_count as u32,
        };
        max_log_bayes_factor(mechanism, x, y, 2000) <= epsilon * (1.0 + 1e-6) + 1e-9
    })
}

/// A tiny discrete world for *direct* verification of the Pufferfish
/// Bayes-factor bound (Def 4.1), independent of the neighbor reduction.
///
/// World model: `n_others` workers are known to the attacker to be in the
/// queried cell; the secret worker is in the cell with prior probability
/// `prior_in`. The mechanism releases a noisy count of the cell. For every
/// output (on a discretized grid) the posterior odds of "in" vs "out" are
/// computed by Bayes' rule, and the log ratio of posterior to prior odds is
/// the realized privacy loss.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveBayesCheck {
    /// Workers known (to the attacker) to be in the cell.
    pub n_others: u64,
    /// Attacker's prior that the secret worker is in the cell.
    pub prior_in: f64,
}

impl ExhaustiveBayesCheck {
    /// Maximum |log Bayes factor| over a discretized output grid.
    pub fn max_abs_log_bayes_factor(&self, mechanism: &dyn CountMechanism) -> f64 {
        assert!(self.prior_in > 0.0 && self.prior_in < 1.0);
        let d_out = CellQuery {
            count: self.n_others,
            max_establishment: self.n_others as u32,
        };
        let d_in = CellQuery {
            count: self.n_others + 1,
            max_establishment: (self.n_others + 1) as u32,
        };
        let prior_odds = self.prior_in / (1.0 - self.prior_in);
        let hi = 4.0 * (self.n_others as f64 + 10.0);
        let lo = -hi;
        let grid = 4000;
        let mut worst: f64 = 0.0;
        for i in 0..=grid {
            let omega = lo + (hi - lo) * i as f64 / grid as f64;
            let p_in = mechanism.output_pdf(&d_in, omega);
            let p_out = mechanism.output_pdf(&d_out, omega);
            if p_in > 1e-290 && p_out > 1e-290 {
                // Posterior odds = likelihood ratio * prior odds; the Bayes
                // factor (posterior odds / prior odds) is the likelihood
                // ratio — the prior cancels, as Pufferfish predicts for
                // this secret pair.
                let posterior_odds = (p_in * self.prior_in) / (p_out * (1.0 - self.prior_in));
                let bf = posterior_odds / prior_odds;
                worst = worst.max(bf.ln().abs());
            }
        }
        worst
    }
}

/// Semantics of the Table 1 `Yes*` entry: weak (α,ε)-ER-EE privacy bounds
/// the *strong* adversary's size inference only up to the weak-neighbor
/// **distance** between the competing worlds, which can exceed 1.
///
/// The paper's Sec 7.1 example: the attacker knows the exact counts of
/// every age group except the 19-year-olds (sub-count `φ`, bounded below
/// by `phi_known`). Distinguishing establishment totals `x` vs `y`
/// requires moving the *19-year-old sub-count* from `x − rest` to
/// `y − rest`. Under weak neighbors each step multiplies a sub-population
/// by at most `(1+α)` (or +1), so the number of steps — and with it the
/// adversary's permitted Bayes factor `k·ε` — grows as the attacker's
/// side knowledge pins down more of the workforce.
///
/// Returns the weak-neighbor step count `k` between the two worlds.
pub fn weak_regime_size_distance(total_x: u64, total_y: u64, known_rest: u64, alpha: f64) -> u32 {
    assert!(total_x >= known_rest && total_y >= known_rest);
    // The only free sub-population is the unknown group.
    let phi_x = total_x - known_rest;
    let phi_y = total_y - known_rest;
    crate::neighbors::size_distance(phi_x.max(1), phi_y.max(1), alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::{LogLaplaceMechanism, SmoothGammaMechanism};

    const COUNTS: [u64; 4] = [0, 5, 100, 5_000];

    #[test]
    fn log_laplace_meets_all_three_requirements() {
        let (alpha, eps) = (0.1, 1.0);
        let mech = LogLaplaceMechanism::new(alpha, eps);
        assert!(check_employee_requirement(&mech, eps, &COUNTS));
        assert!(check_employer_size_requirement(
            &mech,
            eps,
            alpha,
            &[10, 200, 3_000]
        ));
        assert!(check_employer_shape_requirement(
            &mech,
            eps,
            alpha,
            1_000,
            &[0.05, 0.2, 0.5]
        ));
    }

    #[test]
    fn smooth_gamma_meets_all_three_requirements() {
        let (alpha, eps) = (0.1, 2.0);
        let mech = SmoothGammaMechanism::new(alpha, eps).unwrap();
        assert!(check_employee_requirement(&mech, eps, &COUNTS));
        assert!(check_employer_size_requirement(
            &mech,
            eps,
            alpha,
            &[10, 200, 3_000]
        ));
        assert!(check_employer_shape_requirement(
            &mech,
            eps,
            alpha,
            1_000,
            &[0.05, 0.2, 0.5]
        ));
    }

    /// Regression: the old clamp order `.min(z).max(x_count + 1)` turned
    /// the saturated fraction `p = 1` into the infeasible neighbor pair
    /// `(z, z + 1)` — a sub-count exceeding the establishment size — and
    /// small-z checks flunked mechanisms that actually satisfy Def 4.3.
    /// The case is vacuous (a full sub-population has no larger neighbor)
    /// and must be skipped, not tested against an impossible database.
    #[test]
    fn shape_requirement_skips_saturated_fractions() {
        let (alpha, eps) = (0.1, 1.0);
        let mech = LogLaplaceMechanism::new(alpha, eps);
        // z = 1, p = 1: the old code compared counts 1 vs 2 — a doubling,
        // far outside the (1+α) band, so the check spuriously failed.
        assert!(check_employer_shape_requirement(
            &mech,
            eps,
            alpha,
            1,
            &[1.0]
        ));
        // Mixed feasible + saturated fractions: the feasible ones are
        // still genuinely checked.
        assert!(check_employer_shape_requirement(
            &mech,
            eps,
            alpha,
            40,
            &[0.2, 0.5, 1.0]
        ));
        // And the checker is not vacuous: a much smaller claimed ε still
        // fails on the feasible fractions.
        assert!(!check_employer_shape_requirement(
            &mech,
            eps / 8.0,
            alpha,
            1_000,
            &[0.5]
        ));
    }

    #[test]
    fn requirements_fail_at_tighter_epsilon() {
        // The bound is tight enough that claiming a much smaller epsilon
        // must fail — guards against a vacuous checker.
        let (alpha, eps) = (0.1, 1.0);
        let mech = LogLaplaceMechanism::new(alpha, eps);
        assert!(!check_employer_size_requirement(
            &mech,
            eps / 4.0,
            alpha,
            &[1_000]
        ));
    }

    #[test]
    fn exhaustive_bayes_factor_bounded_for_any_prior() {
        // Def 4.1 quantifies over all priors; the factor must not depend on
        // the prior (it cancels), so check several.
        let (alpha, eps) = (0.1, 1.0);
        let mech = LogLaplaceMechanism::new(alpha, eps);
        for prior in [0.01, 0.3, 0.9] {
            let check = ExhaustiveBayesCheck {
                n_others: 50,
                prior_in: prior,
            };
            let bf = check.max_abs_log_bayes_factor(&mech);
            assert!(
                bf <= eps * (1.0 + 1e-6),
                "prior {prior}: log BF {bf} exceeds eps {eps}"
            );
        }
    }

    #[test]
    fn exhaustive_check_detects_a_leaky_mechanism() {
        // A mechanism with too little noise must blow the claimed bound:
        // use Log-Laplace instantiated at eps = 4 but *claim* eps = 1.
        let mech = LogLaplaceMechanism::new(0.1, 4.0);
        let check = ExhaustiveBayesCheck {
            n_others: 5,
            prior_in: 0.5,
        };
        let bf = check.max_abs_log_bayes_factor(&mech);
        assert!(bf > 1.0, "claimed eps=1 must be violated, got {bf}");
    }

    #[test]
    fn weak_regime_size_protection_degrades_with_side_knowledge() {
        // Table 1's Yes* entry, quantified. Distinguishing totals 1000 vs
        // 1100 (one alpha=0.1 step under STRONG neighbors) through a
        // sub-population the attacker has pinned down to 10 workers takes
        // many weak-neighbor steps: the permitted Bayes factor is k*eps,
        // not eps.
        let alpha = 0.1;
        // Strong regime: a single step.
        assert_eq!(crate::neighbors::size_distance(1000, 1100, alpha), 1);
        // Weak regime, no side knowledge (rest = 0): same single step.
        assert_eq!(weak_regime_size_distance(1000, 1100, 0, alpha), 1);
        // Weak regime, attacker knows 990 of the 1000: the free group must
        // grow 10 -> 110, which takes many (1+alpha) steps.
        let k = weak_regime_size_distance(1000, 1100, 990, alpha);
        assert!(k >= 10, "weak distance should blow up, got {k}");
        // And the degradation is monotone in the attacker's knowledge.
        let k_less = weak_regime_size_distance(1000, 1100, 900, alpha);
        assert!(k_less < k, "less knowledge, fewer steps: {k_less} vs {k}");
    }
}
