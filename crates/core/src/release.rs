//! High-level private marginal release.
//!
//! Ties together the tabulation engine, the mechanisms, and the
//! composition accounting: given a dataset, a marginal spec, and a total
//! `(α, ε[, δ])` budget, release every nonzero cell with the correct
//! per-cell parameters:
//!
//! * workplace-only marginals release each cell at the full ε (parallel
//!   composition over establishments, Thm 7.4);
//! * marginals with worker attributes are released under **weak**
//!   (α,ε)-ER-EE privacy with the per-cell budget `ε/d` so the total
//!   sequential cost over the worker domain equals ε (Sec 8).
//!
//! Like the SDL baseline, only nonzero-true-count cells are published —
//! matching LODES practice and the evaluation protocol (see
//! EXPERIMENTS.md).

use crate::accountant::ReleaseCost;
use crate::definitions::PrivacyParams;
use crate::mechanisms::{CellQuery, MechanismKind};
use crate::neighbors::NeighborKind;
use lodes::{Dataset, Worker};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use tabulate::{compute_marginal_filtered, CellKey, Marginal, MarginalSpec};

/// Configuration of a private marginal release.
#[derive(Debug, Clone, Copy)]
pub struct ReleaseConfig {
    /// Which mechanism to use.
    pub mechanism: MechanismKind,
    /// The *total* privacy budget for the marginal.
    pub budget: PrivacyParams,
    /// RNG seed.
    pub seed: u64,
}

/// A completed private release.
#[derive(Debug)]
pub struct PrivateRelease {
    /// Noisy published value per nonzero-true-count cell.
    pub published: BTreeMap<CellKey, f64>,
    /// The underlying true marginal (never released in production; kept for
    /// evaluation).
    pub truth: Marginal,
    /// Neighbor regime the guarantee holds under (strong for workplace-only
    /// marginals, weak otherwise).
    pub regime: NeighborKind,
    /// The accounting of the release.
    pub cost: ReleaseCost,
    /// Mechanism display name.
    pub mechanism_name: &'static str,
}

impl PrivateRelease {
    /// Total L1 error over published cells.
    pub fn l1_error(&self) -> f64 {
        self.truth
            .iter()
            .map(|(key, stats)| (stats.count as f64 - self.published[&key]).abs())
            .sum()
    }

    /// Mean per-cell L1 error.
    pub fn mean_l1_error(&self) -> f64 {
        if self.truth.num_cells() == 0 {
            return 0.0;
        }
        self.l1_error() / self.truth.num_cells() as f64
    }
}

/// Errors from [`release_marginal`].
#[derive(Debug, Clone, PartialEq)]
pub enum ReleaseError {
    /// The mechanism's validity constraint rejects the per-cell
    /// parameters (e.g. Smooth Gamma needs `α+1 < e^{ε/5}`).
    InvalidParameters {
        /// The mechanism that rejected them.
        mechanism: MechanismKind,
        /// Per-cell ε after composition accounting.
        per_cell_epsilon: f64,
        /// α.
        alpha: f64,
        /// δ.
        delta: f64,
    },
}

impl std::fmt::Display for ReleaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReleaseError::InvalidParameters {
                mechanism,
                per_cell_epsilon,
                alpha,
                delta,
            } => write!(
                f,
                "{} rejects per-cell parameters (alpha={alpha}, epsilon={per_cell_epsilon}, delta={delta})",
                mechanism.label()
            ),
        }
    }
}

impl std::error::Error for ReleaseError {}

/// Release the marginal `spec` over `dataset` under `config`.
pub fn release_marginal(
    dataset: &Dataset,
    spec: &MarginalSpec,
    config: &ReleaseConfig,
) -> Result<PrivateRelease, ReleaseError> {
    let regime = if spec.has_worker_attrs() {
        NeighborKind::Weak
    } else {
        NeighborKind::Strong
    };
    release_inner(dataset, spec, config, regime, |_| true)
}

/// Release a filtered marginal (single-query workloads like Ranking 2).
///
/// A filtered marginal answers counts over both establishment and worker
/// attributes — even when `spec` itself has no worker attributes — so the
/// guarantee is always **weak** (α,ε)-ER-EE privacy. Cells of a
/// workplace-only spec still parallel-compose over establishments
/// (Thm 7.4 holds for the weak variant), so the cost multiplier stays 1.
pub fn release_marginal_filtered<F>(
    dataset: &Dataset,
    spec: &MarginalSpec,
    config: &ReleaseConfig,
    filter: F,
) -> Result<PrivateRelease, ReleaseError>
where
    F: Fn(&Worker) -> bool,
{
    release_inner(dataset, spec, config, NeighborKind::Weak, filter)
}

fn release_inner<F>(
    dataset: &Dataset,
    spec: &MarginalSpec,
    config: &ReleaseConfig,
    regime: NeighborKind,
    filter: F,
) -> Result<PrivateRelease, ReleaseError>
where
    F: Fn(&Worker) -> bool,
{
    let per_cell = ReleaseCost::per_cell_for_total(spec, &config.budget, regime);
    let cost = ReleaseCost::for_marginal(spec, &per_cell, regime);

    let mechanism =
        config
            .mechanism
            .build(&per_cell)
            .ok_or(ReleaseError::InvalidParameters {
                mechanism: config.mechanism,
                per_cell_epsilon: per_cell.epsilon,
                alpha: per_cell.alpha,
                delta: per_cell.delta,
            })?;

    let truth = compute_marginal_filtered(dataset, spec, filter);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let published = truth
        .iter()
        .map(|(key, stats)| {
            let q = CellQuery::from_stats(stats);
            (key, mechanism.release(&q, &mut rng))
        })
        .collect();

    Ok(PrivateRelease {
        published,
        truth,
        regime,
        cost,
        mechanism_name: mechanism.name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};
    use tabulate::{workload1, workload3};

    fn dataset() -> Dataset {
        Generator::new(GeneratorConfig::test_small(51)).generate()
    }

    #[test]
    fn workplace_marginal_uses_full_budget_per_cell() {
        let d = dataset();
        let cfg = ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.1, 2.0),
            seed: 1,
        };
        let rel = release_marginal(&d, &workload1(), &cfg).unwrap();
        assert_eq!(rel.regime, NeighborKind::Strong);
        assert_eq!(rel.cost.multiplier, 1);
        assert!((rel.cost.per_cell_epsilon - 2.0).abs() < 1e-12);
        assert_eq!(rel.published.len(), rel.truth.num_cells());
    }

    #[test]
    fn worker_marginal_splits_budget() {
        let d = dataset();
        let cfg = ReleaseConfig {
            mechanism: MechanismKind::LogLaplace,
            budget: PrivacyParams::pure(0.1, 8.0),
            seed: 2,
        };
        let rel = release_marginal(&d, &workload3(), &cfg).unwrap();
        assert_eq!(rel.regime, NeighborKind::Weak);
        assert_eq!(rel.cost.multiplier, 8);
        assert!((rel.cost.per_cell_epsilon - 1.0).abs() < 1e-12);
        assert!((rel.cost.epsilon - 8.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_are_rejected_not_fudged() {
        let d = dataset();
        // Smooth Gamma at alpha=0.2 needs eps > 5 ln(1.2) ≈ 0.91 per cell;
        // with the /8 split an 8.0 total gives 1.0 per cell (valid), while
        // 4.0 total gives 0.5 per cell (invalid).
        let ok = ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.2, 8.0),
            seed: 3,
        };
        assert!(release_marginal(&d, &workload3(), &ok).is_ok());
        let bad = ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.2, 4.0),
            seed: 3,
        };
        let err = release_marginal(&d, &workload3(), &bad).unwrap_err();
        assert!(matches!(err, ReleaseError::InvalidParameters { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn smooth_laplace_requires_positive_delta() {
        let d = dataset();
        let cfg = ReleaseConfig {
            mechanism: MechanismKind::SmoothLaplace,
            budget: PrivacyParams::pure(0.1, 2.0), // delta = 0
            seed: 4,
        };
        assert!(release_marginal(&d, &workload1(), &cfg).is_err());
        let cfg = ReleaseConfig {
            mechanism: MechanismKind::SmoothLaplace,
            budget: PrivacyParams::approximate(0.1, 2.0, 0.05),
            seed: 4,
        };
        assert!(release_marginal(&d, &workload1(), &cfg).is_ok());
    }

    #[test]
    fn release_is_deterministic_in_seed() {
        let d = dataset();
        let cfg = ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.1, 2.0),
            seed: 42,
        };
        let a = release_marginal(&d, &workload1(), &cfg).unwrap();
        let b = release_marginal(&d, &workload1(), &cfg).unwrap();
        assert_eq!(a.published, b.published);
        let c = release_marginal(
            &d,
            &workload1(),
            &ReleaseConfig {
                seed: 43,
                ..cfg
            },
        )
        .unwrap();
        assert_ne!(a.published, c.published);
    }

    #[test]
    fn error_grows_as_epsilon_shrinks() {
        let d = dataset();
        let errors: Vec<f64> = [8.0, 2.0, 1.0]
            .iter()
            .map(|&eps| {
                let cfg = ReleaseConfig {
                    mechanism: MechanismKind::SmoothLaplace,
                    budget: PrivacyParams::approximate(0.1, eps, 0.05),
                    seed: 7,
                };
                release_marginal(&d, &workload1(), &cfg).unwrap().l1_error()
            })
            .collect();
        assert!(
            errors[0] < errors[2],
            "eps=8 error {} should be below eps=1 error {}",
            errors[0],
            errors[2]
        );
    }
}
