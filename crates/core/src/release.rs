//! Legacy free-function release API.
//!
//! These entry points predate the [`crate::engine`] redesign and survive
//! as thin **deprecated** wrappers: each one builds a [`ReleaseRequest`],
//! runs it through a single-use [`ReleaseEngine`] whose ledger holds
//! exactly the request's cost, and converts the result back to the legacy
//! [`PrivateRelease`] shape. New code should use the engine directly — it
//! adds multi-release budget enforcement (Thms 7.3–7.5 composed across a
//! whole publication season), batch execution, and durable artifacts.

use crate::accountant::{Ledger, ReleaseCost};
use crate::definitions::PrivacyParams;
use crate::engine::{ArtifactPayload, ReleaseEngine, ReleaseRequest};
use crate::error::EngineError;
use crate::mechanisms::MechanismKind;
use crate::neighbors::NeighborKind;
use lodes::{Dataset, Worker};
use std::collections::BTreeMap;
use tabulate::{compute_marginal, compute_marginal_filtered, CellKey, Marginal, MarginalSpec};

/// Configuration of a private marginal release.
#[derive(Debug, Clone, Copy)]
pub struct ReleaseConfig {
    /// Which mechanism to use.
    pub mechanism: MechanismKind,
    /// The *total* privacy budget for the marginal.
    pub budget: PrivacyParams,
    /// RNG seed.
    pub seed: u64,
}

/// A completed private release.
#[derive(Debug)]
pub struct PrivateRelease {
    /// Noisy published value per nonzero-true-count cell.
    pub published: BTreeMap<CellKey, f64>,
    /// The underlying true marginal (never released in production; kept for
    /// evaluation).
    pub truth: Marginal,
    /// Neighbor regime the guarantee holds under (strong for workplace-only
    /// marginals, weak otherwise).
    pub regime: NeighborKind,
    /// The accounting of the release.
    pub cost: ReleaseCost,
    /// Mechanism display name.
    pub mechanism_name: &'static str,
}

impl PrivateRelease {
    /// Total L1 error over published cells.
    ///
    /// Cells present in the truth but absent from `published` are
    /// *skipped* (a complete release publishes every nonzero cell, so
    /// nothing is skipped on the happy path); use
    /// [`try_l1_error`](Self::try_l1_error) to treat absence as an error.
    pub fn l1_error(&self) -> f64 {
        self.truth
            .iter()
            .filter_map(|(key, stats)| {
                self.published
                    .get(&key)
                    .map(|noisy| (stats.count as f64 - noisy).abs())
            })
            .sum()
    }

    /// Total L1 error, failing with [`EngineError::MissingCell`] if any
    /// truth cell is missing from the published release.
    pub fn try_l1_error(&self) -> Result<f64, EngineError> {
        let mut total = 0.0;
        for (key, stats) in self.truth.iter() {
            let noisy = self
                .published
                .get(&key)
                .ok_or(EngineError::MissingCell { key: key.0 })?;
            total += (stats.count as f64 - noisy).abs();
        }
        Ok(total)
    }

    /// Mean per-cell L1 error.
    pub fn mean_l1_error(&self) -> f64 {
        if self.truth.num_cells() == 0 {
            return 0.0;
        }
        self.l1_error() / self.truth.num_cells() as f64
    }
}

/// Errors from [`release_marginal`].
#[derive(Debug, Clone, PartialEq)]
pub enum ReleaseError {
    /// The mechanism's validity constraint rejects the per-cell
    /// parameters (e.g. Smooth Gamma needs `α+1 < e^{ε/5}`).
    InvalidParameters {
        /// The mechanism that rejected them.
        mechanism: MechanismKind,
        /// Per-cell ε after composition accounting.
        per_cell_epsilon: f64,
        /// α.
        alpha: f64,
        /// δ.
        delta: f64,
    },
}

impl std::fmt::Display for ReleaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReleaseError::InvalidParameters {
                mechanism,
                per_cell_epsilon,
                alpha,
                delta,
            } => write!(
                f,
                "{} rejects per-cell parameters (alpha={alpha}, epsilon={per_cell_epsilon}, delta={delta})",
                mechanism.label()
            ),
        }
    }
}

impl std::error::Error for ReleaseError {}

/// Release the marginal `spec` over `dataset` under `config`.
#[deprecated(
    since = "0.1.0",
    note = "use ReleaseEngine::execute with ReleaseRequest::marginal"
)]
pub fn release_marginal(
    dataset: &Dataset,
    spec: &MarginalSpec,
    config: &ReleaseConfig,
) -> Result<PrivateRelease, ReleaseError> {
    let truth = compute_marginal(dataset, spec);
    let request = ReleaseRequest::marginal(spec.clone())
        .mechanism(config.mechanism)
        .budget(config.budget)
        .seed(config.seed);
    run_single(truth, request)
}

/// Release a filtered marginal (single-query workloads like Ranking 2).
///
/// A filtered marginal answers counts over both establishment and worker
/// attributes — even when `spec` itself has no worker attributes — so the
/// guarantee is always **weak** (α,ε)-ER-EE privacy. Cells of a
/// workplace-only spec still parallel-compose over establishments
/// (Thm 7.4 holds for the weak variant), so the cost multiplier stays 1.
#[deprecated(
    since = "0.1.0",
    note = "use ReleaseEngine::execute with ReleaseRequest::marginal(..).filter_expr(..)"
)]
pub fn release_marginal_filtered<F>(
    dataset: &Dataset,
    spec: &MarginalSpec,
    config: &ReleaseConfig,
    filter: F,
) -> Result<PrivateRelease, ReleaseError>
where
    F: Fn(&Worker) -> bool + Send + Sync + 'static,
{
    let truth = compute_marginal_filtered(dataset, spec, &filter);
    #[allow(deprecated)] // closure-filter wrapper stays on the closure API
    let request = ReleaseRequest::marginal(spec.clone())
        .mechanism(config.mechanism)
        .budget(config.budget)
        .filter(filter)
        .seed(config.seed);
    run_single(truth, request)
}

/// Execute one request against a ledger holding exactly its cost, then
/// repackage as the legacy [`PrivateRelease`].
fn run_single(truth: Marginal, request: ReleaseRequest) -> Result<PrivateRelease, ReleaseError> {
    let plan = request.plan().map_err(demote)?;
    let mut engine = ReleaseEngine::with_ledger(Ledger::new(PrivacyParams {
        alpha: plan.per_cell.alpha,
        epsilon: plan.cost.epsilon,
        delta: plan.cost.delta,
    }));
    let artifact = engine
        .execute_precomputed(&truth, &request)
        .map_err(demote)?;
    let mechanism_name = plan
        .mechanism
        .build(&plan.per_cell)
        .expect("plan() validated mechanism parameters")
        .name();
    let published = match artifact.payload {
        ArtifactPayload::Cells(cells) => cells,
        ArtifactPayload::Shapes(_) | ArtifactPayload::Flows(_) => {
            unreachable!("marginal request yields a cell payload")
        }
    };
    Ok(PrivateRelease {
        published,
        truth,
        regime: artifact.regime,
        cost: artifact.cost,
        mechanism_name,
    })
}

/// Map engine errors onto the legacy error type. The wrapper's private
/// ledger always covers the request, so only parameter validation can
/// fail here.
fn demote(e: EngineError) -> ReleaseError {
    match e {
        EngineError::InvalidParameters {
            mechanism,
            per_cell_epsilon,
            alpha,
            delta,
        } => ReleaseError::InvalidParameters {
            mechanism,
            per_cell_epsilon,
            alpha,
            delta,
        },
        other => unreachable!("single-release wrapper cannot fail with {other}"),
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};
    use tabulate::{workload1, workload3};

    fn dataset() -> Dataset {
        Generator::new(GeneratorConfig::test_small(51)).generate()
    }

    #[test]
    fn workplace_marginal_uses_full_budget_per_cell() {
        let d = dataset();
        let cfg = ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.1, 2.0),
            seed: 1,
        };
        let rel = release_marginal(&d, &workload1(), &cfg).unwrap();
        assert_eq!(rel.regime, NeighborKind::Strong);
        assert_eq!(rel.cost.multiplier, 1);
        assert!((rel.cost.per_cell_epsilon - 2.0).abs() < 1e-12);
        assert_eq!(rel.published.len(), rel.truth.num_cells());
    }

    #[test]
    fn worker_marginal_splits_budget() {
        let d = dataset();
        let cfg = ReleaseConfig {
            mechanism: MechanismKind::LogLaplace,
            budget: PrivacyParams::pure(0.1, 8.0),
            seed: 2,
        };
        let rel = release_marginal(&d, &workload3(), &cfg).unwrap();
        assert_eq!(rel.regime, NeighborKind::Weak);
        assert_eq!(rel.cost.multiplier, 8);
        assert!((rel.cost.per_cell_epsilon - 1.0).abs() < 1e-12);
        assert!((rel.cost.epsilon - 8.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_parameters_are_rejected_not_fudged() {
        let d = dataset();
        // Smooth Gamma at alpha=0.2 needs eps > 5 ln(1.2) ≈ 0.91 per cell;
        // with the /8 split an 8.0 total gives 1.0 per cell (valid), while
        // 4.0 total gives 0.5 per cell (invalid).
        let ok = ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.2, 8.0),
            seed: 3,
        };
        assert!(release_marginal(&d, &workload3(), &ok).is_ok());
        let bad = ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.2, 4.0),
            seed: 3,
        };
        let err = release_marginal(&d, &workload3(), &bad).unwrap_err();
        assert!(matches!(err, ReleaseError::InvalidParameters { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn smooth_laplace_requires_positive_delta() {
        let d = dataset();
        let cfg = ReleaseConfig {
            mechanism: MechanismKind::SmoothLaplace,
            budget: PrivacyParams::pure(0.1, 2.0), // delta = 0
            seed: 4,
        };
        assert!(release_marginal(&d, &workload1(), &cfg).is_err());
        let cfg = ReleaseConfig {
            mechanism: MechanismKind::SmoothLaplace,
            budget: PrivacyParams::approximate(0.1, 2.0, 0.05),
            seed: 4,
        };
        assert!(release_marginal(&d, &workload1(), &cfg).is_ok());
    }

    #[test]
    fn release_is_deterministic_in_seed() {
        let d = dataset();
        let cfg = ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.1, 2.0),
            seed: 42,
        };
        let a = release_marginal(&d, &workload1(), &cfg).unwrap();
        let b = release_marginal(&d, &workload1(), &cfg).unwrap();
        assert_eq!(a.published, b.published);
        let c = release_marginal(&d, &workload1(), &ReleaseConfig { seed: 43, ..cfg }).unwrap();
        assert_ne!(a.published, c.published);
    }

    #[test]
    fn error_grows_as_epsilon_shrinks() {
        let d = dataset();
        let errors: Vec<f64> = [8.0, 2.0, 1.0]
            .iter()
            .map(|&eps| {
                let cfg = ReleaseConfig {
                    mechanism: MechanismKind::SmoothLaplace,
                    budget: PrivacyParams::approximate(0.1, eps, 0.05),
                    seed: 7,
                };
                release_marginal(&d, &workload1(), &cfg).unwrap().l1_error()
            })
            .collect();
        assert!(
            errors[0] < errors[2],
            "eps=8 error {} should be below eps=1 error {}",
            errors[0],
            errors[2]
        );
    }

    #[test]
    fn l1_error_skips_missing_cells_instead_of_panicking() {
        // Regression: `published[&key]` used to panic when a cell was
        // absent (e.g. a partially archived release).
        let d = dataset();
        let cfg = ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.1, 2.0),
            seed: 9,
        };
        let mut rel = release_marginal(&d, &workload1(), &cfg).unwrap();
        let full = rel.try_l1_error().expect("complete release");
        assert!((full - rel.l1_error()).abs() < 1e-12);
        // Drop one cell: l1_error degrades gracefully, try_l1_error errors.
        let dropped = *rel.published.keys().next().expect("nonempty release");
        rel.published.remove(&dropped);
        let partial = rel.l1_error();
        assert!(partial.is_finite() && partial <= full);
        let err = rel.try_l1_error().unwrap_err();
        assert_eq!(err, EngineError::MissingCell { key: dropped.0 });
    }

    #[test]
    fn wrapper_matches_engine_output() {
        // The deprecated wrapper must be a pure repackaging of the engine.
        let d = dataset();
        let cfg = ReleaseConfig {
            mechanism: MechanismKind::SmoothGamma,
            budget: PrivacyParams::pure(0.1, 2.0),
            seed: 77,
        };
        let legacy = release_marginal(&d, &workload1(), &cfg).unwrap();
        let mut engine = ReleaseEngine::new(PrivacyParams::pure(0.1, 2.0));
        let artifact = engine
            .execute(
                &d,
                &ReleaseRequest::marginal(workload1())
                    .mechanism(cfg.mechanism)
                    .budget(cfg.budget)
                    .seed(cfg.seed),
            )
            .unwrap();
        assert_eq!(&legacy.published, artifact.cells().unwrap());
        assert_eq!(legacy.cost, artifact.cost);
    }
}
