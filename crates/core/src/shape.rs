//! Private release of establishment-class *shapes* — workforce
//! compositions over a worker-attribute partition.
//!
//! Definition 4.3 protects the *distribution* of an establishment's
//! workforce over worker characteristics ("shape"), not just its
//! magnitude. Data users, conversely, often want exactly that
//! distribution — e.g. the education mix of manufacturing employment in a
//! place. Shape releases carry the weak (α,ε)-ER-EE guarantee: every
//! sub-count of the partition is released with a mechanism at budget
//! `ε/d` (sequential composition over the `d` partition classes, Sec 8),
//! then normalized. Normalization is post-processing, so the composition
//! bound is the entire privacy cost.
//!
//! Released fractions are clamped to `[0, 1]` and renormalized; the
//! released total is the sum of the noisy sub-counts (consistent by
//! construction — the fractions and total always agree, unlike releasing
//! them from separate budgets).
//!
//! The sampling logic lives in [`crate::engine`]
//! ([`ReleaseRequest::shapes`](crate::engine::ReleaseRequest::shapes));
//! the free function here is a deprecated single-release wrapper.

use crate::accountant::Ledger;
use crate::definitions::PrivacyParams;
use crate::engine::{ArtifactPayload, ReleaseEngine, ReleaseRequest};
use crate::error::EngineError;
use crate::mechanisms::MechanismKind;
use serde::{Deserialize, Serialize};
use tabulate::{CellKey, Marginal};

/// A privately released shape for one workplace-attribute cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShapeRelease {
    /// The workplace cell (keyed in the *worker-free* layout, matching the
    /// corresponding workplace-only marginal).
    pub cell: CellKey,
    /// Released fraction per worker-partition class (sums to 1 unless the
    /// released total collapses to 0, in which case all fractions are 0).
    pub fractions: Vec<f64>,
    /// Released (noisy, non-negative) sub-count per class.
    pub sub_counts: Vec<f64>,
    /// Released total (sum of sub-counts).
    pub total: f64,
}

/// Errors from shape release.
#[derive(Debug, Clone, PartialEq)]
pub enum ShapeError {
    /// The marginal must group by at least one worker attribute to define
    /// a partition.
    NoWorkerAttributes,
    /// The per-class mechanism rejected the split budget.
    InvalidParameters {
        /// Per-class ε after the d-way split.
        per_class_epsilon: f64,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::NoWorkerAttributes => {
                write!(f, "shape release needs worker attributes in the marginal")
            }
            ShapeError::InvalidParameters { per_class_epsilon } => write!(
                f,
                "mechanism rejects per-class epsilon {per_class_epsilon} after the d-way split"
            ),
        }
    }
}

impl std::error::Error for ShapeError {}

/// Release the shapes of every workplace cell of a worker×workplace
/// marginal under weak (α, ε_total[, δ_total])-ER-EE privacy.
///
/// `truth` must be the marginal over workplace attributes × the partition
/// attributes (e.g. Workload 3 for sex×education shapes). The budget is
/// split `d` ways across the worker domain.
#[deprecated(
    since = "0.1.0",
    note = "use ReleaseEngine::execute with ReleaseRequest::shapes"
)]
pub fn release_shapes(
    truth: &Marginal,
    mechanism: MechanismKind,
    total_budget: &PrivacyParams,
    seed: u64,
) -> Result<Vec<ShapeRelease>, ShapeError> {
    let request = ReleaseRequest::shapes(truth.spec().clone())
        .mechanism(mechanism)
        .budget(*total_budget)
        .seed(seed);
    let plan = request.plan().map_err(demote)?;
    let mut engine = ReleaseEngine::with_ledger(Ledger::new(PrivacyParams {
        alpha: plan.per_cell.alpha,
        epsilon: plan.cost.epsilon,
        delta: plan.cost.delta,
    }));
    let artifact = engine
        .execute_precomputed(truth, &request)
        .map_err(demote)?;
    match artifact.payload {
        ArtifactPayload::Shapes(shapes) => Ok(shapes),
        ArtifactPayload::Cells(_) | ArtifactPayload::Flows(_) => {
            unreachable!("shapes request yields a shapes payload")
        }
    }
}

/// Map engine errors onto the legacy error type; the wrapper's private
/// ledger always covers the request.
fn demote(e: EngineError) -> ShapeError {
    match e {
        EngineError::Shape(e) => e,
        EngineError::InvalidParameters {
            per_cell_epsilon, ..
        } => ShapeError::InvalidParameters {
            per_class_epsilon: per_cell_epsilon,
        },
        other => unreachable!("single-release shape wrapper cannot fail with {other}"),
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};
    use tabulate::{compute_marginal, workload1, workload3};

    fn truth() -> Marginal {
        let d = Generator::new(GeneratorConfig::test_small(71)).generate();
        compute_marginal(&d, &workload3())
    }

    #[test]
    fn fractions_are_normalized() {
        let truth = truth();
        let shapes = release_shapes(
            &truth,
            MechanismKind::SmoothLaplace,
            &PrivacyParams::approximate(0.1, 16.0, 0.05),
            3,
        )
        .unwrap();
        assert!(!shapes.is_empty());
        for s in &shapes {
            let sum: f64 = s.fractions.iter().sum();
            if s.total > 0.0 {
                assert!((sum - 1.0).abs() < 1e-9, "fractions sum {sum}");
            }
            assert!(s.fractions.iter().all(|&f| (0.0..=1.0).contains(&f)));
            assert_eq!(s.fractions.len(), 8, "sex x education partition");
            let total_check: f64 = s.sub_counts.iter().sum();
            assert!(
                (total_check - s.total).abs() < 1e-9,
                "internally consistent"
            );
        }
    }

    #[test]
    fn shapes_approach_truth_at_high_epsilon() {
        let truth = truth();
        let shapes = release_shapes(
            &truth,
            MechanismKind::SmoothLaplace,
            &PrivacyParams::approximate(0.1, 400.0, 0.05),
            4,
        )
        .unwrap();
        // Compare released female share against truth for large cells.
        let spec = truth.spec();
        let schema = truth.schema();
        let n_wp = spec.workplace_attrs.len();
        let mut true_groups: std::collections::BTreeMap<u64, (f64, f64)> =
            std::collections::BTreeMap::new();
        for (key, stats) in truth.iter() {
            let mut wp_key: u64 = 0;
            for pos in 0..n_wp {
                wp_key = wp_key * schema.cardinality_of(pos) + schema.value_of(key, pos) as u64;
            }
            let sex = schema.value_of(key, n_wp); // first worker attr = sex
            let entry = true_groups.entry(wp_key).or_insert((0.0, 0.0));
            entry.1 += stats.count as f64;
            if sex == 1 {
                entry.0 += stats.count as f64;
            }
        }
        let mut checked = 0;
        for s in &shapes {
            let (female, total) = true_groups[&s.cell.0];
            if total < 200.0 {
                continue;
            }
            // Classes 4..8 are female x education (sex index 1).
            let released_female: f64 = s.fractions[4..8].iter().sum();
            assert!(
                (released_female - female / total).abs() < 0.1,
                "female share {released_female} vs true {}",
                female / total
            );
            checked += 1;
        }
        assert!(checked > 3, "need large cells to check");
    }

    #[test]
    fn rejects_marginals_without_worker_attributes() {
        let d = Generator::new(GeneratorConfig::test_small(72)).generate();
        let truth = compute_marginal(&d, &workload1());
        let err = release_shapes(
            &truth,
            MechanismKind::SmoothLaplace,
            &PrivacyParams::approximate(0.1, 8.0, 0.05),
            1,
        )
        .unwrap_err();
        assert_eq!(err, ShapeError::NoWorkerAttributes);
    }

    #[test]
    fn rejects_insufficient_budget() {
        let truth = truth();
        // Smooth Gamma per-class budget 4/8 = 0.5 < 5 ln(1.2) = 0.91 at
        // alpha = 0.2: invalid.
        let err = release_shapes(
            &truth,
            MechanismKind::SmoothGamma,
            &PrivacyParams::pure(0.2, 4.0),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, ShapeError::InvalidParameters { .. }));
        assert!(!err.to_string().is_empty());
    }
}
