//! The extended smooth-sensitivity framework (Sec 8.2 of the paper).
//!
//! Global sensitivity of a count under (α,ε)-ER-EE privacy is unbounded —
//! a count of `x` can change by `αx`. The framework of Nissim,
//! Raskhodnikova and Smith instead adds noise proportional to a *smooth
//! upper bound* on local sensitivity. The paper extends their notion of
//! admissible noise distributions to allow an uneven split of the privacy
//! budget between the *sliding* (shift) and *dilation* (scale) properties
//! (Def 8.3), which buys a better constant for the Gamma-poly noise.
//!
//! Key results implemented/encoded here:
//!
//! * Lemma 8.5 — for a count query with largest per-establishment
//!   contribution `x_v`, the `b`-smooth sensitivity is `max(x_v·α, 1)` when
//!   `e^b ≥ 1+α` and unbounded otherwise ([`smooth_sensitivity_count`]).
//! * Lemma 8.6 — `h(z) ∝ 1/(1+|z|^γ)` is `(ε₁/(1+γ), ε₂/(1+γ))`-admissible
//!   with δ = 0 ([`AdmissibilityBudget::gamma_poly`]).
//! * Lemma 9.1 — the Laplace density is `(ε/2, ε/(2·ln(1/δ)))`-admissible
//!   ([`AdmissibilityBudget::laplace`]).
//! * Theorem 8.4 — adding admissible noise scaled by `S(x)/a` yields an
//!   (α,ε)-ER-EE-private mechanism; the concrete mechanisms live in
//!   [`crate::mechanisms`].

/// Lemma 8.5: the `b`-smooth sensitivity of a count query at a database
/// where the largest single-establishment contribution to the cell is
/// `x_v`, under strong or weak α-neighbors.
///
/// Returns `None` (unbounded) when `e^b < 1 + α`: local sensitivity at
/// distance `j` grows like `x_v·α·(1+α)^j`, which the `e^{-jb}` smoothing
/// discount can only tame when `b ≥ ln(1+α)`.
pub fn smooth_sensitivity_count(x_v: u32, alpha: f64, b: f64) -> Option<f64> {
    assert!(alpha > 0.0, "alpha must be positive");
    assert!(b >= 0.0, "smoothing parameter must be non-negative");
    if b.exp() < (1.0 + alpha) * (1.0 - 1e-12) {
        return None;
    }
    Some((x_v as f64 * alpha).max(1.0))
}

/// Local sensitivity of a count query at distance `j` from the database
/// (the `A^{(j)}` of Def 8.2): `x_v·α·(1+α)^j`, floored at 1 to account for
/// the ±1-worker neighbor branch.
pub fn local_sensitivity_at_distance(x_v: u32, alpha: f64, j: u32) -> f64 {
    (x_v as f64 * alpha * (1.0 + alpha).powi(j as i32)).max(1.0)
}

/// An (a, b)-admissibility certificate: noise `Z ~ h` supports releasing
/// `q(x) + S(x)/a · Z` privately when `S` is a `b`-smooth upper bound on
/// local sensitivity (Theorem 8.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissibilityBudget {
    /// Sliding allowance: shifts up to `a` (in noise units) cost `ε₁`.
    pub a: f64,
    /// Dilation allowance: log-scalings up to `b` cost `ε₂`.
    pub b: f64,
    /// Failure probability (0 for Gamma-poly, >0 for Laplace).
    pub delta: f64,
    /// Budget spent on sliding.
    pub epsilon_1: f64,
    /// Budget spent on dilation.
    pub epsilon_2: f64,
}

impl AdmissibilityBudget {
    /// Lemma 8.6 with γ = 4: the Gamma-poly density is
    /// `(ε₁/5, ε₂/5)`-admissible with δ = 0. Algorithm 2 fixes
    /// `ε₂ = 5·ln(1+α)` — the smallest dilation budget for which the smooth
    /// sensitivity is finite — leaving `ε₁ = ε − ε₂` for sliding.
    ///
    /// Returns `None` when `α + 1 ≥ e^{ε/5}` (no budget left for sliding).
    pub fn gamma_poly(alpha: f64, epsilon: f64) -> Option<Self> {
        assert!(alpha > 0.0 && epsilon > 0.0, "parameters must be positive");
        let epsilon_2 = 5.0 * (1.0 + alpha).ln();
        let epsilon_1 = epsilon - epsilon_2;
        if epsilon_1 <= 0.0 {
            return None;
        }
        Some(Self {
            a: epsilon_1 / 5.0,
            b: epsilon_2 / 5.0,
            delta: 0.0,
            epsilon_1,
            epsilon_2,
        })
    }

    /// Lemma 9.1: the Laplace density is `(ε/2, ε/(2·ln(1/δ)))`-admissible.
    /// Algorithm 3 requires `α + 1 ≤ e^{ε/(2·ln(1/δ))}` so the smooth
    /// sensitivity stays finite; returns `None` otherwise.
    pub fn laplace(alpha: f64, epsilon: f64, delta: f64) -> Option<Self> {
        assert!(alpha > 0.0 && epsilon > 0.0, "parameters must be positive");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let b = epsilon / (2.0 * (1.0 / delta).ln());
        if (1.0 + alpha) > b.exp() * (1.0 + 1e-12) {
            return None;
        }
        Some(Self {
            a: epsilon / 2.0,
            b,
            delta,
            epsilon_1: epsilon / 2.0,
            epsilon_2: epsilon / 2.0,
        })
    }

    /// Noise scale for a cell with smooth sensitivity `s_star`:
    /// `S(x)/a` per Theorem 8.4.
    pub fn noise_scale(&self, s_star: f64) -> f64 {
        s_star / self.a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_sensitivity_formula() {
        // e^b >= 1+alpha: bounded, equals max(x_v*alpha, 1).
        let s = smooth_sensitivity_count(500, 0.1, 0.1f64.ln_1p()).unwrap();
        assert!((s - 50.0).abs() < 1e-12);
        // Floor at 1 for small x_v.
        let s = smooth_sensitivity_count(3, 0.1, 0.2).unwrap();
        assert!((s - 1.0).abs() < 1e-12);
        // e^b < 1+alpha: unbounded.
        assert!(smooth_sensitivity_count(500, 0.3, 0.1).is_none());
    }

    #[test]
    fn smooth_bound_dominates_discounted_local_sensitivity() {
        // Def 8.2: S*(x) = max_j e^{-jb} A^(j)(x). With b = ln(1+alpha) the
        // products e^{-jb} * x_v*alpha*(1+alpha)^j are constant in j, so the
        // formula value must match every term.
        let (x_v, alpha) = (120u32, 0.15);
        let b = (1.0f64 + alpha).ln();
        let s_star = smooth_sensitivity_count(x_v, alpha, b).unwrap();
        for j in 0..30 {
            let term = (-(j as f64) * b).exp() * local_sensitivity_at_distance(x_v, alpha, j);
            assert!(
                term <= s_star + 1e-9,
                "j={j}: discounted term {term} exceeds S* {s_star}"
            );
        }
        // With b strictly larger, terms decay and S* still dominates.
        let b2 = b * 1.5;
        let s2 = smooth_sensitivity_count(x_v, alpha, b2).unwrap();
        for j in 0..30 {
            let term = (-(j as f64) * b2).exp() * local_sensitivity_at_distance(x_v, alpha, j);
            assert!(term <= s2 + 1e-9);
        }
    }

    #[test]
    fn gamma_poly_budget_split() {
        let alpha = 0.1;
        let eps = 2.0;
        let budget = AdmissibilityBudget::gamma_poly(alpha, eps).unwrap();
        assert!((budget.epsilon_2 - 5.0 * 1.1f64.ln()).abs() < 1e-12);
        assert!((budget.epsilon_1 + budget.epsilon_2 - eps).abs() < 1e-12);
        assert!((budget.b.exp() - 1.1).abs() < 1e-9, "e^b = 1+alpha exactly");
        assert_eq!(budget.delta, 0.0);
        // Constraint violated: alpha+1 >= e^{eps/5}.
        assert!(AdmissibilityBudget::gamma_poly(0.3, 1.0).is_none());
        // Boundary: eps = 5 ln(1+alpha) leaves nothing for sliding.
        assert!(AdmissibilityBudget::gamma_poly(0.3, 5.0 * 1.3f64.ln()).is_none());
    }

    #[test]
    fn laplace_budget_constraint_matches_table_2() {
        // Minimum eps for (alpha, delta) solves alpha+1 = e^{eps/(2 ln(1/delta))}.
        let alpha: f64 = 0.1;
        let delta: f64 = 5e-4;
        let eps_min = 2.0 * (1.0 / delta).ln() * (1.0 + alpha).ln();
        assert!(AdmissibilityBudget::laplace(alpha, eps_min * 1.001, delta).is_some());
        assert!(AdmissibilityBudget::laplace(alpha, eps_min * 0.99, delta).is_none());
        // Paper Table 2 delta=5e-4 column: alpha=.01 -> ~.15, alpha=.10 -> ~1.45.
        let e1 = 2.0 * (1.0f64 / 5e-4).ln() * 1.01f64.ln();
        assert!((e1 - 0.15).abs() < 0.01, "alpha=.01: {e1}");
        let e2 = 2.0 * (1.0f64 / 5e-4).ln() * 1.10f64.ln();
        assert!((e2 - 1.45).abs() < 0.01, "alpha=.10: {e2}");
    }

    #[test]
    fn noise_scale_is_sensitivity_over_a() {
        let budget = AdmissibilityBudget::gamma_poly(0.1, 2.0).unwrap();
        let s_star = 50.0;
        let scale = budget.noise_scale(s_star);
        assert!((scale - s_star / budget.a).abs() < 1e-12);
    }
}
