//! On-disk persistence for publication seasons.
//!
//! A *publication season* is an agency's ordered plan of releases spending
//! one season-long [`Ledger`] budget — the operational reading of the
//! paper's composition theorems (Thms 7.3–7.5). A season runs for hours at
//! national scale, so the process executing it will eventually be killed
//! partway; what must never happen on restart is a request being noised
//! (and its ε spent) twice. The [`SeasonStore`] makes a season durable:
//!
//! * every completed [`ReleaseArtifact`] is written to its own JSON file
//!   under `<season>/artifacts/`, atomically (temp file + rename);
//! * after each artifact, the ledger snapshot in `<season>/ledger.json` is
//!   refreshed the same way;
//! * [`SeasonStore::open`] reloads both, **replaying** the ledger entries
//!   through the same compensated budget arithmetic the live
//!   [`Ledger::charge`] uses, and refuses a store whose entries overdraw
//!   the budget, whose artifacts disagree with its entries, or whose files
//!   are corrupt — a tampered snapshot can never resume with more budget
//!   than was actually left;
//! * every open store holds an exclusive **write lease** (`season.lock`,
//!   a [`DirLease`]): the whole protocol assumes one writer per season
//!   directory, so a second concurrent writer is refused with
//!   [`StoreError::Locked`] instead of silently risking corruption, and a
//!   stale lease left by a dead process is reclaimed automatically.
//!
//! The write protocol is artifact-first. A crash in the window between an
//! artifact landing and its ledger snapshot leaves the store one entry
//! behind its artifacts; [`SeasonStore::open`] detects exactly that state
//! and rolls the ledger forward from the artifact's recorded
//! [`cost`](ReleaseArtifact::cost) (which is bit-for-bit what the engine
//! charged). Any other disagreement is refused as
//! [`StoreError::Inconsistent`].
//!
//! # Resuming a season
//!
//! [`SeasonStore::run`] is the resumable driver: given the season's full
//! request list, it verifies the already-persisted artifacts came from the
//! same plan — request-by-request provenance comparison, with declarative
//! filters checked by content digest (`FilterId`), so a plan whose
//! sub-population definition changed is refused; artifacts persisted
//! before the filter AST existed fall back to the legacy boolean-flag
//! check — then executes
//! only the remainder through a [`ReleaseEngine`] opened on the restored
//! ledger, sharing tabulations via a [`TabulationCache`] — which also
//! builds the dataset's columnar `TabulationIndex` exactly once per run,
//! so a resumed season re-tabulates over the shared CSR index instead of
//! from scratch. Because per-cell noise streams derive from
//! `(request seed, cell key)` and tabulation's sharded merge is
//! order-insensitive, the artifacts a resumed run produces are
//! bit-identical to an uninterrupted run's at any thread count.
//!
//! ```
//! use eree_core::store::SeasonStore;
//! use eree_core::{MechanismKind, PrivacyParams, ReleaseRequest};
//! use lodes::{Generator, GeneratorConfig};
//! use tabulate::{workload1, workload3};
//!
//! let dataset = Generator::new(GeneratorConfig::test_small(7)).generate();
//! let season = vec![
//!     ReleaseRequest::marginal(workload1())
//!         .mechanism(MechanismKind::SmoothGamma)
//!         .budget(PrivacyParams::pure(0.1, 2.0))
//!         .seed(1),
//!     ReleaseRequest::marginal(workload3())
//!         .mechanism(MechanismKind::LogLaplace)
//!         .budget(PrivacyParams::pure(0.1, 8.0))
//!         .seed(2),
//! ];
//! let dir = std::env::temp_dir().join("eree-doctest-season");
//! let _ = std::fs::remove_dir_all(&dir);
//!
//! // First run: killed (here: stopped) after one release.
//! let mut store = SeasonStore::create(&dir, PrivacyParams::pure(0.1, 10.0)).unwrap();
//! store.run(&dataset, &season[..1]).unwrap();
//! drop(store);
//!
//! // Resume: only the second release executes; ε is not re-spent.
//! let mut store = SeasonStore::open(&dir).unwrap();
//! let report = store.run(&dataset, &season).unwrap();
//! assert_eq!(report.resumed_from, 1);
//! assert_eq!(report.executed, 1);
//! assert!(store.ledger().remaining_epsilon() < 1e-9);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::accountant::{Ledger, LedgerEntry};
use crate::definitions::PrivacyParams;
use crate::engine::{ReleaseArtifact, ReleaseEngine, ReleaseRequest, TabulationCache};
use crate::error::EngineError;
use crate::metrics::MetricsRegistry;
use lodes::Dataset;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Store format version, recorded in the season manifest so a future
/// layout change can refuse (or migrate) old directories explicitly.
const FORMAT_VERSION: u32 = 1;

/// Manifest file name under the season directory.
const MANIFEST_FILE: &str = "season.json";
/// Ledger snapshot file name under the season directory.
const LEDGER_FILE: &str = "ledger.json";
/// Artifact subdirectory name under the season directory.
const ARTIFACTS_DIR: &str = "artifacts";
/// Write-lease file name under the season directory.
const LEASE_FILE: &str = "season.lock";

/// Chaos-aware filesystem wrappers.
///
/// Every durable mutation the store layers perform — temp-file create,
/// write, fsync, rename, directory create, repair/sweep removal — goes
/// through these, so the default-off `chaos` feature can count every
/// syscall boundary and inject an error or a kill at any one of them
/// (see [`crate::chaos`]). Without the feature each wrapper is exactly
/// its `std::fs` counterpart: the `hit` probe compiles to nothing.
pub(crate) mod cfs {
    use std::fs;
    use std::io;
    use std::path::Path;

    #[cfg(feature = "chaos")]
    fn hit(op: &str, path: &Path) -> io::Result<()> {
        crate::chaos::hit(op, path)
    }

    #[cfg(not(feature = "chaos"))]
    #[inline(always)]
    fn hit(_op: &str, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
        hit("rename", to)?;
        fs::rename(from, to)
    }

    pub fn create_dir_all(path: &Path) -> io::Result<()> {
        hit("create_dir_all", path)?;
        fs::create_dir_all(path)
    }

    pub fn remove_file(path: &Path) -> io::Result<()> {
        hit("remove_file", path)?;
        fs::remove_file(path)
    }

    /// `O_EXCL` create — the lease-acquisition primitive.
    pub fn create_new(path: &Path) -> io::Result<fs::File> {
        hit("create_new", path)?;
        fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
    }

    pub fn file_create(path: &Path) -> io::Result<fs::File> {
        hit("create", path)?;
        fs::File::create(path)
    }

    pub fn write_all(file: &mut fs::File, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use io::Write as _;
        hit("write", path)?;
        file.write_all(bytes)
    }

    pub fn sync_all(file: &fs::File, path: &Path) -> io::Result<()> {
        hit("sync", path)?;
        file.sync_all()
    }
}

/// A failure opening, verifying, or writing a [`SeasonStore`].
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem I/O failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A store file exists but does not parse as what it must be.
    Corrupt {
        /// The unparseable file.
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
    /// The store's files parse individually but contradict each other
    /// (ledger vs artifacts, manifest vs ledger, store vs resume plan).
    /// An inconsistent store is never partially trusted: nothing resumes.
    Inconsistent {
        /// The contradiction.
        detail: String,
    },
    /// [`SeasonStore::create`] on a directory that already holds a season.
    AlreadyExists {
        /// The occupied directory.
        path: PathBuf,
    },
    /// [`SeasonStore::open`] on a directory with no season manifest.
    NotAStore {
        /// The directory.
        path: PathBuf,
    },
    /// The engine refused a request during [`SeasonStore::run`] (over
    /// budget or invalid); nothing was recorded for it.
    Refused {
        /// Index of the refused request in the season plan.
        index: usize,
        /// The request's description.
        description: String,
        /// The engine's refusal.
        source: EngineError,
    },
    /// The agency meta-ledger refused a season: reserving its budget would
    /// overspend the global cap, the name is already reserved, or its α
    /// differs from the cap's. Refused before any directory is created or
    /// any sampling happens.
    AgencyBudget {
        /// The season whose reservation was refused.
        season: String,
        /// The meta-ledger's refusal.
        source: crate::accountant::LedgerError,
    },
    /// Another live process (or another handle in this process) holds the
    /// store's write lease. Two concurrent writers against one season
    /// directory would race the artifact-first protocol into corruption,
    /// so the second acquirer is refused loudly instead. Stale leases —
    /// whose holder PID no longer exists — are reclaimed automatically.
    Locked {
        /// The lease file.
        path: PathBuf,
        /// PID recorded in the live lease.
        holder_pid: u32,
    },
    /// A charge-bearing operation against a season that has been closed:
    /// its unspent remainder was refunded to the agency cap, so admitting
    /// another charge would spend budget the agency already reclaimed.
    SeasonClosed {
        /// The closed season's name (its directory name).
        name: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store I/O failed at {}: {source}", path.display())
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "corrupt store file {}: {detail}", path.display())
            }
            StoreError::Inconsistent { detail } => {
                write!(f, "inconsistent season store: {detail}")
            }
            StoreError::AlreadyExists { path } => {
                write!(f, "season store already exists at {}", path.display())
            }
            StoreError::NotAStore { path } => {
                write!(f, "no season store at {}", path.display())
            }
            StoreError::Refused {
                index,
                description,
                source,
            } => {
                write!(
                    f,
                    "season request {index} ({description}) refused: {source}"
                )
            }
            StoreError::AgencyBudget { season, source } => {
                write!(f, "agency meta-ledger refused season `{season}`: {source}")
            }
            StoreError::Locked { path, holder_pid } => {
                write!(
                    f,
                    "store is write-locked by live process {holder_pid} (lease {})",
                    path.display()
                )
            }
            StoreError::SeasonClosed { name } => {
                write!(
                    f,
                    "season `{name}` is closed: its unspent budget was refunded \
                     to the agency cap and it can never charge again"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Refused { source, .. } => Some(source),
            StoreError::AgencyBudget { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The on-disk form of a write lease: who holds the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct LeaseFile {
    pid: u32,
}

/// An exclusive write lease on a store directory, embodied as a lease
/// file created with `O_EXCL` semantics and removed on [`Drop`].
///
/// The season store's crash protocol (artifact-first atomic writes,
/// replay-verified open) assumes **one writer at a time** per directory;
/// a second concurrent writer could interleave `ledger.json` renames and
/// leave a store that verifies but under-reports spending. The lease
/// makes that assumption explicit and enforced: acquiring a directory
/// that a *live* process already holds fails with [`StoreError::Locked`],
/// while a stale lease — its recorded PID no longer running — is
/// reclaimed automatically, so a crashed season never needs manual
/// cleanup before resuming.
///
/// Liveness is judged by `/proc/<pid>` on Linux; on platforms without
/// `/proc` the holder is conservatively presumed alive (a stale lease
/// then needs manual removal — fail-closed, never fail-open).
#[derive(Debug)]
pub struct DirLease {
    path: PathBuf,
}

impl DirLease {
    /// Acquire the lease file at `path`, reclaiming it first if its
    /// recorded holder is provably dead.
    pub fn acquire(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let lease = LeaseFile { pid: lease_pid() };
        let json = serde_json::to_string_pretty(&lease).expect("lease serialization is infallible");
        // Bounded retry: between observing a dead holder and reclaiming,
        // another acquirer may win the exclusive create; re-examine rather
        // than spin forever.
        for _ in 0..4 {
            match cfs::create_new(&path) {
                Ok(mut file) => {
                    cfs::write_all(&mut file, &path, json.as_bytes())
                        .and_then(|()| cfs::sync_all(&file, &path))
                        .map_err(|source| StoreError::Io {
                            path: path.clone(),
                            source,
                        })?;
                    return Ok(Self { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match read_json::<LeaseFile>(&path) {
                        Ok(holder) if pid_is_alive(holder.pid) => {
                            return Err(StoreError::Locked {
                                path,
                                holder_pid: holder.pid,
                            });
                        }
                        // Dead holder, or a torn/vanished lease file (the
                        // holder died mid-write, or released between our
                        // create and read): stale either way. Reclaim —
                        // serialized through the reclaim marker — and
                        // retry the exclusive create.
                        Ok(_) | Err(_) => Self::reclaim_stale(&path),
                    }
                }
                Err(source) => return Err(StoreError::Io { path, source }),
            }
        }
        Err(StoreError::Inconsistent {
            detail: format!(
                "lease {} could not be acquired after repeated reclaim attempts",
                path.display()
            ),
        })
    }

    /// Remove a lease file judged stale, without ever racing another
    /// acquirer into removing a *live* lease.
    ///
    /// A remove-in-place reclaim has a classic TOCTOU hole: racer B reads
    /// the stale lease, racer A reclaims it and writes its own live
    /// lease, then B's remove deletes A's lease — and the next exclusive
    /// create admits a second writer. Reclaim therefore serializes
    /// through an `O_EXCL` *reclaim marker* (`<lease>.reclaim`): only the
    /// marker holder may remove the lease, and it re-verifies under the
    /// marker that the lease is still stale — `create_new` never replaces
    /// an existing file, so a lease that still parses to a dead PID under
    /// the marker cannot be a racer's fresh live lease. A marker left by
    /// a holder that died mid-reclaim is itself judged by PID liveness
    /// and cleared. Failures here are deliberately swallowed: reclaim is
    /// best-effort, and the caller's bounded acquire loop re-judges the
    /// world on every iteration.
    fn reclaim_stale(path: &Path) {
        let marker = path.with_file_name(format!(
            "{}.reclaim",
            path.file_name()
                .map(|n| n.to_string_lossy())
                .unwrap_or_default()
        ));
        match cfs::create_new(&marker) {
            Ok(mut file) => {
                let claim = serde_json::to_string_pretty(&LeaseFile { pid: lease_pid() })
                    .expect("lease serialization is infallible");
                let _ = cfs::write_all(&mut file, &marker, claim.as_bytes());
                // Re-judge under the marker: remove only what is still
                // provably stale. A torn read could be a live acquirer
                // between its exclusive create and its first write, so
                // give it one grace period to finish before treating the
                // tear as a crashed writer's leavings.
                let still_stale = match read_json::<LeaseFile>(path) {
                    Ok(holder) => !pid_is_alive(holder.pid),
                    Err(_) => {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        match read_json::<LeaseFile>(path) {
                            Ok(holder) => !pid_is_alive(holder.pid),
                            Err(_) => true,
                        }
                    }
                };
                if still_stale {
                    let _ = cfs::remove_file(path);
                }
                let _ = cfs::remove_file(&marker);
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                // Another reclaimer holds the marker: clear it if its
                // holder died mid-reclaim, otherwise give way and let the
                // acquire loop re-judge.
                match read_json::<LeaseFile>(&marker) {
                    Ok(holder) if pid_is_alive(holder.pid) => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Ok(_) | Err(_) => {
                        let _ = cfs::remove_file(&marker);
                    }
                }
            }
            Err(_) => {}
        }
    }

    /// The lease file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DirLease {
    fn drop(&mut self) {
        // A simulated kill means this "process" is dead: it never runs
        // its own cleanup, exactly like a real SIGKILL. The lease file
        // stays behind for the next opener's stale-reclaim path.
        #[cfg(feature = "chaos")]
        if crate::chaos::crashed() {
            return;
        }
        let _ = fs::remove_file(&self.path);
    }
}

/// The PID recorded into acquired leases: the real process id, unless the
/// chaos layer is simulating another process identity.
fn lease_pid() -> u32 {
    #[cfg(feature = "chaos")]
    if let Some(pid) = crate::chaos::lease_pid_override() {
        return pid;
    }
    std::process::id()
}

/// Is the process with this PID still running?
///
/// The current process always reads as alive (so a second handle inside
/// one process is correctly refused). Elsewhere, `/proc/<pid>` decides on
/// Linux; platforms without `/proc` presume alive — conservative, since a
/// false "alive" can only refuse a writer, never admit two. The chaos
/// layer may override the verdict for its simulated process identities.
fn pid_is_alive(pid: u32) -> bool {
    #[cfg(feature = "chaos")]
    if let Some(alive) = crate::chaos::pid_alive_override(pid) {
        return alive;
    }
    if pid == std::process::id() {
        return true;
    }
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

/// The season manifest: identifies the directory as a store, pins the
/// budget the ledger must carry, and — once the first [`SeasonStore::run`]
/// has seen the confidential database — pins the dataset fingerprint so a
/// season can never silently resume against different data.
#[derive(Debug, Clone, PartialEq, Serialize)]
struct SeasonManifest {
    format: u32,
    budget: PrivacyParams,
    /// [`dataset_digest`] of the season's database; `None` until the
    /// first `run` binds it.
    dataset_digest: Option<u64>,
    /// Whether the season has been closed (sealed by
    /// [`AgencyStore::close_season`](crate::agency::AgencyStore::close_season)):
    /// its unspent budget was refunded to the agency cap, so no further
    /// charge may ever be recorded.
    closed: bool,
}

impl serde::Deserialize for SeasonManifest {
    /// Hand-written so manifests from before the close-season protocol
    /// (no `closed` field) keep deserializing: a season that predates
    /// closure is by definition not closed.
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            format: u32::from_value(serde::get_field(v, "format")?)?,
            budget: PrivacyParams::from_value(serde::get_field(v, "budget")?)?,
            dataset_digest: match v.get("dataset_digest") {
                None | Some(serde::Value::Null) => None,
                Some(value) => Some(u64::from_value(value)?),
            },
            closed: match v.get("closed") {
                None | Some(serde::Value::Null) => false,
                Some(value) => bool::from_value(value)?,
            },
        })
    }
}

/// What one [`SeasonStore::run`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeasonReport {
    /// Artifacts already persisted before this run (requests skipped).
    pub resumed_from: usize,
    /// Requests newly executed (and persisted) by this run.
    pub executed: usize,
    /// Truth marginals tabulated (fully computed) by this run.
    pub tabulations_computed: u64,
    /// Requests served from a shared in-memory tabulation instead.
    pub tabulation_hits: u64,
    /// Requests served from a persistent truth store (digest-verified
    /// load, zero recomputation). Always 0 for [`SeasonStore::run`], which
    /// uses an in-memory cache; [`run_cached`](SeasonStore::run_cached)
    /// with a store-backed cache — e.g. through an
    /// [`AgencyStore`](crate::agency::AgencyStore) — reports them here.
    pub tabulation_disk_hits: u64,
}

/// The in-memory summary of one persisted release: what was asked and
/// what it cost. The payload (published cells) stays on disk — a season
/// holds the full artifact in memory only while writing or verifying it,
/// so resident state is O(releases), not O(total published cells).
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedRelease {
    /// The persisted artifact's request provenance.
    pub request: crate::engine::RequestProvenance,
    /// The cost its release charged the ledger.
    pub cost: crate::accountant::ReleaseCost,
}

impl CompletedRelease {
    fn of(artifact: &ReleaseArtifact) -> Self {
        Self {
            request: artifact.request.clone(),
            cost: artifact.cost,
        }
    }
}

/// A durable publication season: ledger snapshot + artifact files under
/// one directory. See the [module docs](self) for the layout and crash
/// protocol.
#[derive(Debug)]
pub struct SeasonStore {
    root: PathBuf,
    manifest: SeasonManifest,
    ledger: Ledger,
    completed: Vec<CompletedRelease>,
    /// Exclusive write lease on the season directory, held for the
    /// store's lifetime and released (the file removed) on drop.
    _lease: DirLease,
    /// Registry the season's engines record into (set by the owning
    /// agency; `None` for standalone seasons). Runtime-only, never
    /// persisted.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl SeasonStore {
    /// Whether `dir` holds a season store: its manifest — the commit
    /// point of [`create`](Self::create) — exists. A directory without
    /// one (e.g. left by a crash between `create_dir_all` and the
    /// manifest write) is *not* a season; re-issuing `create` finishes
    /// it.
    pub fn exists_at(dir: impl AsRef<Path>) -> bool {
        dir.as_ref().join(MANIFEST_FILE).exists()
    }

    /// Start a fresh season under `root` (created if absent) with the
    /// given season budget. Refuses a directory that already holds one.
    pub fn create(root: impl AsRef<Path>, budget: PrivacyParams) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        let manifest_path = root.join(MANIFEST_FILE);
        if manifest_path.exists() {
            return Err(StoreError::AlreadyExists { path: root });
        }
        cfs::create_dir_all(&root.join(ARTIFACTS_DIR)).map_err(|source| StoreError::Io {
            path: root.join(ARTIFACTS_DIR),
            source,
        })?;
        // Lease before the manifest: once the directory is a season (the
        // manifest exists), it is never touched without the lease held.
        let lease = DirLease::acquire(root.join(LEASE_FILE))?;
        let manifest = SeasonManifest {
            format: FORMAT_VERSION,
            budget,
            dataset_digest: None,
            closed: false,
        };
        let ledger = Ledger::new(budget);
        // Ledger before manifest: the manifest's presence is the commit
        // point (`open` demands it, `create` refuses it), so every file
        // it vouches for must already exist. A crash between the two
        // leaves a manifest-less directory that a re-issued `create`
        // simply finishes.
        write_json_atomic(&root.join(LEDGER_FILE), &ledger)?;
        write_json_atomic(&manifest_path, &manifest)?;
        Ok(Self {
            root,
            manifest,
            ledger,
            completed: Vec::new(),
            _lease: lease,
            metrics: None,
        })
    }

    /// Reload a persisted season, verifying it end to end:
    ///
    /// 1. the manifest parses and its format is supported;
    /// 2. the ledger snapshot parses, and its entries **replay** within the
    ///    budget (the deserializer re-runs the compensated arithmetic and
    ///    cross-checks the recorded totals);
    /// 3. the ledger's budget matches the manifest's;
    /// 4. artifact files are contiguous (`000000.json … N.json`, no gaps)
    ///    and each parses;
    /// 5. artifact `i`'s recorded cost and description agree bit-for-bit
    ///    with ledger entry `i`.
    ///
    /// The one tolerated asymmetry is the crash window of the
    /// artifact-first write protocol: exactly one more artifact than
    /// ledger entries, repaired by rolling the ledger forward from that
    /// artifact's recorded cost.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        let manifest_path = root.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            return Err(StoreError::NotAStore { path: root });
        }
        // Exclusive writer from here on: verification reads (and the
        // crash-window repair write below) happen under the lease too, so
        // a concurrent writer can never shear the files being verified.
        let lease = DirLease::acquire(root.join(LEASE_FILE))?;
        // With the lease held, sweep temp files orphaned by a crashed
        // atomic write (their renames never happened, so they were never
        // part of the store). The artifacts directory is swept by
        // `scan_artifact_files` below.
        sweep_tmp_files(&root);
        let manifest: SeasonManifest = read_json(&manifest_path)?;
        if manifest.format != FORMAT_VERSION {
            return Err(StoreError::Corrupt {
                path: manifest_path,
                detail: format!(
                    "unsupported store format {} (this build reads {FORMAT_VERSION})",
                    manifest.format
                ),
            });
        }
        let ledger_path = root.join(LEDGER_FILE);
        let mut ledger: Ledger = read_json(&ledger_path)?;
        if ledger.budget() != &manifest.budget {
            return Err(StoreError::Inconsistent {
                detail: format!(
                    "ledger budget {:?} disagrees with season manifest {:?}",
                    ledger.budget(),
                    manifest.budget
                ),
            });
        }
        let artifacts_dir = root.join(ARTIFACTS_DIR);
        let artifact_count = scan_artifact_files(&artifacts_dir)?;

        // Crash window: the last artifact landed but its ledger snapshot
        // did not. Roll forward from the artifact's recorded cost — the
        // exact value the engine charged — through the same replay
        // arithmetic. The repaired snapshot is persisted only after the
        // whole store verifies: a refused open never modifies the store.
        let mut rolled_forward: Option<ReleaseArtifact> = None;
        if ledger.entries().len() + 1 == artifact_count {
            let last: ReleaseArtifact =
                read_json(&artifact_file(&artifacts_dir, artifact_count - 1))?;
            let mut entries = ledger.entries().to_vec();
            entries.push(LedgerEntry {
                description: last.request.description.clone(),
                epsilon: last.cost.epsilon,
                delta: last.cost.delta,
            });
            ledger = Ledger::replay(manifest.budget, &entries).map_err(|e| {
                StoreError::Inconsistent {
                    detail: format!("rolling the ledger forward over the last artifact: {e}"),
                }
            })?;
            rolled_forward = Some(last);
        } else if ledger.entries().len() != artifact_count {
            return Err(StoreError::Inconsistent {
                detail: format!(
                    "{} ledger entries vs {artifact_count} artifacts \
                     (only artifacts = entries + 1 is repairable)",
                    ledger.entries().len(),
                ),
            });
        }

        // Verify artifact-by-artifact (one in memory at a time), keeping
        // only the provenance + cost summary of each. The rolled-forward
        // artifact was already parsed above; don't read it twice.
        let mut completed = Vec::with_capacity(artifact_count);
        for (i, entry) in ledger.entries().iter().enumerate() {
            let artifact: ReleaseArtifact = match &rolled_forward {
                Some(last) if i + 1 == artifact_count => last.clone(),
                _ => read_json(&artifact_file(&artifacts_dir, i))?,
            };
            if entry.epsilon.to_bits() != artifact.cost.epsilon.to_bits()
                || entry.delta.to_bits() != artifact.cost.delta.to_bits()
                || entry.description != artifact.request.description
            {
                return Err(StoreError::Inconsistent {
                    detail: format!(
                        "ledger entry {i} ({}, eps {}, delta {}) disagrees with artifact {i} \
                         ({}, eps {}, delta {})",
                        entry.description,
                        entry.epsilon,
                        entry.delta,
                        artifact.request.description,
                        artifact.cost.epsilon,
                        artifact.cost.delta
                    ),
                });
            }
            completed.push(CompletedRelease::of(&artifact));
        }
        if rolled_forward.is_some() {
            write_json_atomic(&ledger_path, &ledger)?;
        }
        Ok(Self {
            root,
            manifest,
            ledger,
            completed,
            _lease: lease,
            metrics: None,
        })
    }

    /// [`open`](Self::open) if `root` holds a season (whose budget must
    /// equal `budget`), else [`create`](Self::create).
    pub fn open_or_create(
        root: impl AsRef<Path>,
        budget: PrivacyParams,
    ) -> Result<Self, StoreError> {
        let root = root.as_ref();
        if root.join(MANIFEST_FILE).exists() {
            let store = Self::open(root)?;
            if store.ledger.budget() != &budget {
                return Err(StoreError::Inconsistent {
                    detail: format!(
                        "existing season budget {:?} differs from requested {:?}",
                        store.ledger.budget(),
                        budget
                    ),
                });
            }
            Ok(store)
        } else {
            Self::create(root, budget)
        }
    }

    /// The season directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The season's name: its directory name.
    fn season_name(&self) -> String {
        self.root
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| self.root.display().to_string())
    }

    /// The dataset fingerprint this season is pinned to (`None` until the
    /// first [`run`](Self::run) binds one).
    pub fn dataset_digest(&self) -> Option<u64> {
        self.manifest.dataset_digest
    }

    /// Whether this season has been closed (sealed): its unspent budget
    /// was refunded to the agency cap and no further charge is admitted.
    pub fn is_closed(&self) -> bool {
        self.manifest.closed
    }

    /// Seal the season: durably mark it closed, after which
    /// [`record`](Self::record) and every `run` variant refuse with
    /// [`StoreError::SeasonClosed`]. Idempotent. This is phase two of the
    /// agency's close-season protocol — callers must have durably frozen
    /// the refund (the meta-ledger's close-begin) *first*, so a crash
    /// between that record and this seal rolls forward instead of losing
    /// the refund.
    pub fn seal(&mut self) -> Result<(), StoreError> {
        if self.manifest.closed {
            return Ok(());
        }
        let mut sealed = self.manifest.clone();
        sealed.closed = true;
        write_json_atomic(&self.root.join(MANIFEST_FILE), &sealed)?;
        self.manifest = sealed;
        Ok(())
    }

    /// The restored (or live) ledger snapshot.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Provenance + cost of every persisted release, in publication order
    /// (the audit view; payloads stay on disk — see
    /// [`load_artifact`](Self::load_artifact)).
    pub fn releases(&self) -> &[CompletedRelease] {
        &self.completed
    }

    /// Load the full artifact of release `index` from disk.
    pub fn load_artifact(&self, index: usize) -> Result<ReleaseArtifact, StoreError> {
        if index >= self.completed.len() {
            return Err(StoreError::Inconsistent {
                detail: format!(
                    "artifact index {index} out of range ({} completed)",
                    self.completed.len()
                ),
            });
        }
        read_json(&artifact_file(&self.root.join(ARTIFACTS_DIR), index))
    }

    /// How many releases this season has completed.
    pub fn completed(&self) -> usize {
        self.completed.len()
    }

    /// A [`ReleaseEngine`] opened on this season's ledger — the resume
    /// path of [`ReleaseEngine::with_ledger`] — recording into the
    /// season's attached [`MetricsRegistry`], if any.
    pub fn engine(&self) -> ReleaseEngine {
        let engine = ReleaseEngine::with_ledger(self.ledger.clone());
        match &self.metrics {
            Some(registry) => engine.with_metrics(Arc::clone(registry)),
            None => engine,
        }
    }

    /// Attach the registry this season's engines record into (admissions,
    /// denials, spend, latency). The owning agency calls this on every
    /// season handle it returns; standalone seasons record nothing.
    pub fn set_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.metrics = Some(registry);
    }

    /// Persist one completed release: the artifact file first (atomic),
    /// then the ledger snapshot.
    ///
    /// `ledger` must be the charging engine's ledger *after* this release:
    /// exactly one entry beyond the store's, matching the artifact's cost.
    /// Anything else is refused as [`StoreError::Inconsistent`] before a
    /// byte is written.
    pub fn record(
        &mut self,
        ledger: &Ledger,
        artifact: &ReleaseArtifact,
    ) -> Result<(), StoreError> {
        if self.manifest.closed {
            return Err(StoreError::SeasonClosed {
                name: self.season_name(),
            });
        }
        if ledger.budget() != self.ledger.budget() {
            return Err(StoreError::Inconsistent {
                detail: "recording ledger carries a different budget than the season".to_string(),
            });
        }
        if ledger.entries().len() != self.completed.len() + 1 {
            return Err(StoreError::Inconsistent {
                detail: format!(
                    "recording ledger has {} entries; store expects {}",
                    ledger.entries().len(),
                    self.completed.len() + 1
                ),
            });
        }
        // Mirror open()'s entry-vs-artifact checks exactly: anything
        // record() admits must be reopenable.
        let entry = ledger.entries().last().expect("len >= 1");
        if entry.epsilon.to_bits() != artifact.cost.epsilon.to_bits()
            || entry.delta.to_bits() != artifact.cost.delta.to_bits()
            || entry.description != artifact.request.description
        {
            return Err(StoreError::Inconsistent {
                detail: format!(
                    "ledger's newest entry ({}, eps {}, delta {}) is not the artifact's \
                     charge ({}, eps {}, delta {})",
                    entry.description,
                    entry.epsilon,
                    entry.delta,
                    artifact.request.description,
                    artifact.cost.epsilon,
                    artifact.cost.delta
                ),
            });
        }
        let path = artifact_file(&self.root.join(ARTIFACTS_DIR), self.completed.len());
        write_json_atomic(&path, artifact)?;
        write_json_atomic(&self.root.join(LEDGER_FILE), ledger)?;
        self.completed.push(CompletedRelease::of(artifact));
        self.ledger = ledger.clone();
        Ok(())
    }

    /// Execute (the rest of) a season plan, persisting as it goes.
    ///
    /// `requests` is the season's *full* ordered plan. The
    /// already-persisted prefix is verified request-by-request — each
    /// stored artifact's provenance must equal what the corresponding
    /// request would produce — so a store can never be silently resumed
    /// under a different plan; and the season's first `run` binds a
    /// [`dataset_digest`] into the manifest, so it can never be silently
    /// resumed against a *different database* either. Remaining requests
    /// then execute on a [`ReleaseEngine`] over the restored ledger,
    /// sharing truth tabulations (and one columnar tabulation index of
    /// the dataset) through a [`TabulationCache`].
    ///
    /// A refused request (over budget, invalid parameters) aborts the run
    /// with [`StoreError::Refused`] and records nothing for it: the season
    /// plan needs revising, and the store stays consistent and resumable.
    pub fn run(
        &mut self,
        dataset: &Dataset,
        requests: &[ReleaseRequest],
    ) -> Result<SeasonReport, StoreError> {
        self.run_cached(dataset, requests, &mut TabulationCache::new())
    }

    /// [`run`](Self::run) over a caller-owned [`TabulationCache`] — the
    /// agency path: a cache backed by a persistent truth store
    /// (`TabulationCache::with_store`) lets a resumed season, or a sibling
    /// season sharing a `(spec, filter)`, reuse digest-verified truths
    /// from disk instead of re-tabulating. The cache must belong to this
    /// season's dataset.
    pub fn run_cached(
        &mut self,
        dataset: &Dataset,
        requests: &[ReleaseRequest],
        cache: &mut TabulationCache,
    ) -> Result<SeasonReport, StoreError> {
        self.run_cached_with_digest(dataset, dataset_digest(dataset), requests, cache)
    }

    /// [`run_cached`](Self::run_cached) with the dataset's digest already
    /// in hand — drivers that computed it for their own pins (the agency
    /// layer, the release service's per-season workers) pass it through
    /// so one run costs exactly one full-dataset scan, not three. The
    /// digest must be [`dataset_digest`]`(dataset)`; handing a digest of
    /// different data voids every pin this store enforces.
    pub fn run_cached_with_digest(
        &mut self,
        dataset: &Dataset,
        digest: u64,
        requests: &[ReleaseRequest],
        cache: &mut TabulationCache,
    ) -> Result<SeasonReport, StoreError> {
        self.run_panel_cached_with_digest(None, dataset, digest, requests, cache)
    }

    /// [`run_cached_with_digest`](Self::run_cached_with_digest) for a
    /// season that publishes one quarter of a panel: `before` supplies the
    /// previous quarter's snapshot (and its [`dataset_digest`]), which
    /// [`RequestKind::Flows`](crate::engine::RequestKind) requests
    /// tabulate against. Level requests see only `dataset` — the season
    /// stays pinned to its own quarter's digest exactly as before; flow
    /// truths are content-addressed by the pair digest instead.
    ///
    /// A flow request in a plan run without a `before` snapshot (the base
    /// quarter, or a non-panel season) is refused as
    /// [`StoreError::Refused`] without recording or charging anything.
    pub fn run_panel_cached_with_digest(
        &mut self,
        before: Option<(&Dataset, u64)>,
        dataset: &Dataset,
        digest: u64,
        requests: &[ReleaseRequest],
        cache: &mut TabulationCache,
    ) -> Result<SeasonReport, StoreError> {
        if self.manifest.closed {
            return Err(StoreError::SeasonClosed {
                name: self.season_name(),
            });
        }
        // Re-check a store-backed cache against *this* dataset on every
        // run — and hand the digest over, so the cache never pays for a
        // second full-dataset scan of its own.
        cache
            .verify_dataset_digest(digest)
            .map_err(|e| StoreError::Inconsistent {
                detail: e.to_string(),
            })?;
        if let Some((_, before_digest)) = before {
            cache.set_flow_pair_digest(dataset_pair_digest(before_digest, digest));
        }
        match self.manifest.dataset_digest {
            Some(bound) if bound != digest => {
                return Err(StoreError::Inconsistent {
                    detail: format!(
                        "season is bound to dataset {bound:016x} but was asked to run \
                         against dataset {digest:016x} — refusing to mix databases"
                    ),
                });
            }
            Some(_) => {}
            None => {
                self.manifest.dataset_digest = Some(digest);
                write_json_atomic(&self.root.join(MANIFEST_FILE), &self.manifest)?;
            }
        }
        if requests.len() < self.completed.len() {
            return Err(StoreError::Inconsistent {
                detail: format!(
                    "season plan has {} requests but {} artifacts are already persisted",
                    requests.len(),
                    self.completed.len()
                ),
            });
        }
        for (i, (release, request)) in self.completed.iter().zip(requests).enumerate() {
            let plan = request.plan().map_err(|e| StoreError::Refused {
                index: i,
                description: request.description(),
                source: e,
            })?;
            if let Err(why) = provenance_matches(&release.request, &request.provenance(&plan)) {
                return Err(StoreError::Inconsistent {
                    detail: format!(
                        "persisted artifact {i} ({}) does not match the season plan's \
                         request {i} ({}): {why} — refusing to resume under a different plan",
                        release.request.description,
                        request.description()
                    ),
                });
            }
        }
        let resumed_from = self.completed.len();
        let mut engine = self.engine();
        for (i, request) in requests.iter().enumerate().skip(resumed_from) {
            let outcome = if request.kind() == crate::engine::RequestKind::Flows {
                match before {
                    Some((before_dataset, _)) => {
                        engine.execute_flows_cached(before_dataset, dataset, request, cache)
                    }
                    None => Err(crate::error::EngineError::Flow {
                        detail: "season has no before-quarter snapshot — flow requests \
                                 need a panel season past its base quarter",
                    }),
                }
            } else {
                engine.execute_cached(dataset, request, cache)
            };
            let artifact = outcome.map_err(|e| StoreError::Refused {
                index: i,
                description: request.description(),
                source: e,
            })?;
            self.record(engine.ledger(), &artifact)?;
        }
        let stats = engine.tabulation_stats();
        Ok(SeasonReport {
            resumed_from,
            executed: requests.len() - resumed_from,
            tabulations_computed: stats.computed,
            tabulation_hits: stats.hits,
            tabulation_disk_hits: stats.disk_hits,
        })
    }
}

/// The canonical path of artifact `index`.
fn artifact_file(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("{index:06}.json"))
}

/// Does a persisted release's provenance match what the resume plan's
/// request would produce?
///
/// Filters are compared **structurally, in normalized form**: a stored
/// expression must equal the plan's (membership sets canonicalized), so
/// a season can never silently resume under a filter whose *population*
/// definition changed — something the pre-AST boolean `filtered` flag
/// could not see. The [`FilterId`] digests appear only in the error
/// message; equality never rests on a 64-bit fingerprint.
///
/// One asymmetry is tolerated for compatibility: artifacts persisted
/// before the filter AST existed (and closure-filtered requests, whose
/// expression was never representable) record `filter: None` while still
/// flagging `filtered: true`. When the *stored* side has no expression,
/// the expression cannot be checked and verification falls back to the
/// flag and every other provenance field. The reverse is never
/// tolerated: a stored expression that the plan no longer carries is a
/// plan change.
fn provenance_matches(
    stored: &crate::engine::RequestProvenance,
    fresh: &crate::engine::RequestProvenance,
) -> Result<(), String> {
    match (&stored.filter, &fresh.filter) {
        (Some(s), Some(f)) if s.normalized() != f.normalized() => {
            return Err(format!(
                "stored filter (digest {}) differs from the plan's filter (digest {})",
                s.id(),
                f.id()
            ));
        }
        (Some(s), None) => {
            return Err(format!(
                "stored artifact records a filter (digest {}) but the plan's request \
                 carries no filter expression",
                s.id()
            ));
        }
        // Pre-AST artifact (or closure escape hatch): no expression to
        // check; the `filtered` flag is still compared below with the
        // rest.
        (None, _) | (Some(_), Some(_)) => {}
    }
    // Compare every remaining field by neutralizing the (already
    // structurally checked) expression.
    let mut fresh_rest = fresh.clone();
    fresh_rest.filter = stored.filter.clone();
    if stored != &fresh_rest {
        return Err("request parameters differ".to_string());
    }
    Ok(())
}

/// FNV-1a over a byte string — the workspace's one content-address hash
/// (dataset digests, truth-store keys, released-artifact cache keys all
/// fold through it). A digest only ever *names* things; every store that
/// uses one re-verifies the full key structurally on load.
pub(crate) fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A stable FNV-1a fingerprint of the confidential database: table sizes,
/// every workplace's attributes, every worker's attributes, and the job
/// edge list, folded in table order.
///
/// [`SeasonStore::run`] binds this into the manifest on a season's first
/// run and refuses any later run against a database that hashes
/// differently — a resumed season's remaining releases must come from the
/// same data as its persisted ones. One linear pass over the dataset per
/// `run` call (cheap next to a single tabulation).
pub fn dataset_digest(dataset: &Dataset) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    fold(dataset.num_workplaces() as u64);
    fold(dataset.num_workers() as u64);
    fold(dataset.num_jobs() as u64);
    for wp in dataset.workplaces() {
        fold(
            (wp.state.0 as u64)
                | ((wp.county.0 as u64) << 16)
                | ((wp.naics.index() as u64) << 32)
                | ((wp.ownership.index() as u64) << 40),
        );
        fold((wp.place.0 as u64) | ((wp.block.0 as u64) << 32));
    }
    for w in dataset.workers() {
        fold(
            (w.sex.index() as u64)
                | ((w.age.index() as u64) << 8)
                | ((w.race.index() as u64) << 16)
                | ((w.ethnicity.index() as u64) << 24)
                | ((w.education.index() as u64) << 32),
        );
    }
    for job in dataset.jobs() {
        fold((job.worker.0 as u64) | ((job.workplace.0 as u64) << 32));
    }
    hash
}

/// The content address of an ordered `(before, after)` dataset pair — the
/// digest that names flow truths and flow release-cache entries, folded
/// (FNV-1a) from the two snapshots' [`dataset_digest`]s **in order**.
/// Flows are directional (job creation from `t` to `t+1` is job
/// destruction in the reverse direction), so swapping the arguments
/// yields a different address.
pub fn dataset_pair_digest(before: u64, after: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [before, after] {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    hash
}

/// The content address of a whole quarterly panel: FNV-1a over the
/// quarter count followed by each quarter's [`dataset_digest`] in order.
/// A panel-mode agency pins this digest instead of a single dataset's —
/// its per-quarter seasons each pin their own quarter — so reopening the
/// agency against a panel with any quarter changed, added, or reordered
/// is refused.
pub fn panel_digest(quarter_digests: &[u64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    fold(quarter_digests.len() as u64);
    for &digest in quarter_digests {
        fold(digest);
    }
    hash
}

/// Write `value` as pretty JSON via a temp file + rename, fsyncing the
/// temp file before the rename and the parent directory after it, so a
/// crash (or power loss) leaves either the old file or the new one — never
/// a torn write — and the artifact-first ordering [`SeasonStore::record`]
/// relies on survives to disk in order.
///
/// This is the workspace's one durable-write primitive: the season and
/// agency stores, the truth store, the public artifact cache, and the
/// release service's registries all persist through it, so the chaos
/// harness (the `chaos` feature) can fault every durable write in the
/// system by instrumenting exactly this path.
pub fn write_json_atomic<T: Serialize>(path: &Path, value: &T) -> Result<(), StoreError> {
    let json = serde_json::to_string_pretty(value).map_err(|e| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail: format!("serialization failed: {e}"),
    })?;
    // The temp name must be unique per writer: concurrent writers of the
    // same target (two season workers persisting the same truth identity)
    // would otherwise share one temp file, and whoever renames second
    // finds it already gone. Keep the `.tmp` suffix — interrupted writes
    // are swept by that suffix.
    let tmp = {
        use std::sync::atomic::{AtomicU64, Ordering};
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy())
            .unwrap_or_default();
        path.with_file_name(format!("{name}.{}.{seq}.tmp", std::process::id()))
    };
    let io_err = |source: std::io::Error| StoreError::Io {
        path: tmp.clone(),
        source,
    };
    let mut file = cfs::file_create(&tmp).map_err(io_err)?;
    cfs::write_all(&mut file, &tmp, json.as_bytes()).map_err(io_err)?;
    cfs::sync_all(&file, &tmp).map_err(io_err)?;
    drop(file);
    cfs::rename(&tmp, path).map_err(|source| StoreError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    if let Some(parent) = path.parent() {
        let dir = fs::File::open(parent).map_err(|source| StoreError::Io {
            path: parent.to_path_buf(),
            source,
        })?;
        cfs::sync_all(&dir, parent).map_err(|source| StoreError::Io {
            path: parent.to_path_buf(),
            source,
        })?;
    }
    Ok(())
}

/// Sweep `dir` (non-recursively) for `*.tmp` files orphaned by a crash
/// mid-[`write_json_atomic`] (or a failed lease reclaim): their renames
/// never happened, so they were never part of any store. Best-effort by
/// design — a sweep failure must never refuse an open — and callers hold
/// the directory's write lease, so no live writer's in-flight temp file
/// can be swept (a writer's temp exists only while the lease holder is
/// inside `write_json_atomic`).
pub(crate) fn sweep_tmp_files(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        if entry.file_name().to_string_lossy().ends_with(".tmp") {
            let _ = cfs::remove_file(&entry.path());
        }
    }
}

pub(crate) fn read_json<T: Deserialize>(path: &Path) -> Result<T, StoreError> {
    let text = fs::read_to_string(path).map_err(|source| StoreError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    serde_json::from_str(&text).map_err(|e| StoreError::Corrupt {
        path: path.to_path_buf(),
        detail: e.to_string(),
    })
}

/// Scan the artifacts directory, returning how many artifacts it holds.
/// File names must be exactly the canonical zero-padded `NNNNNN.json` and
/// the indexes contiguous from 0 — gaps and stray files are refused.
/// Leftover `*.tmp` files from an interrupted atomic write are swept away
/// (their renames never happened, so they were never part of the store).
fn scan_artifact_files(dir: &Path) -> Result<usize, StoreError> {
    let mut indexes: Vec<usize> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|source| StoreError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| StoreError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.ends_with(".tmp") {
            let _ = cfs::remove_file(&entry.path());
            continue;
        }
        let index = name
            .strip_suffix(".json")
            .and_then(|stem| stem.parse::<usize>().ok())
            // Exactly the canonical zero-padded name, so every index maps
            // to one possible file and reads re-derive paths exactly.
            .filter(|&index| name == format!("{index:06}.json"))
            .ok_or_else(|| StoreError::Corrupt {
                path: entry.path(),
                detail: "artifact files must be named NNNNNN.json (zero-padded)".to_string(),
            })?;
        indexes.push(index);
    }
    indexes.sort_unstable();
    for (expect, &got) in indexes.iter().enumerate() {
        if got != expect {
            return Err(StoreError::Inconsistent {
                detail: format!(
                    "artifact files are not contiguous: expected index {expect}, found {got}"
                ),
            });
        }
    }
    Ok(indexes.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanisms::MechanismKind;
    use lodes::{Generator, GeneratorConfig};
    use tabulate::workload1;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eree-store-unit-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn request(seed: u64, epsilon: f64) -> ReleaseRequest {
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, epsilon))
            .seed(seed)
    }

    #[test]
    fn create_then_open_round_trips_empty_season() {
        let dir = tmp_dir("empty");
        let budget = PrivacyParams::pure(0.1, 4.0);
        let store = SeasonStore::create(&dir, budget).unwrap();
        assert_eq!(store.completed(), 0);
        drop(store);
        let store = SeasonStore::open(&dir).unwrap();
        assert_eq!(store.completed(), 0);
        assert_eq!(store.ledger().budget(), &budget);
        assert!(matches!(
            SeasonStore::create(&dir, budget),
            Err(StoreError::AlreadyExists { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_concurrent_writer_is_refused_and_stale_leases_reclaim() {
        let dir = tmp_dir("lease");
        let budget = PrivacyParams::pure(0.1, 4.0);
        let store = SeasonStore::create(&dir, budget).unwrap();
        // A second writer on the same directory — same process counts —
        // is refused with Locked while the first store lives.
        match SeasonStore::open(&dir) {
            Err(StoreError::Locked { holder_pid, .. }) => {
                assert_eq!(holder_pid, std::process::id());
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        // Releasing the store (dropping it) releases the lease.
        drop(store);
        assert!(!dir.join(LEASE_FILE).exists());
        let store = SeasonStore::open(&dir).unwrap();
        drop(store);
        // A stale lease from a dead process is reclaimed on open. PID 0 is
        // the kernel's; no user process ever holds it.
        fs::write(
            dir.join(LEASE_FILE),
            serde_json::to_string(&LeaseFile { pid: 0 }).unwrap(),
        )
        .unwrap();
        let store = SeasonStore::open(&dir).unwrap();
        drop(store);
        // A torn (unparseable) lease file reads as stale too.
        fs::write(dir.join(LEASE_FILE), "{not json").unwrap();
        let store = SeasonStore::open(&dir).unwrap();
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_refuses_non_store_directories() {
        let dir = tmp_dir("not-a-store");
        fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            SeasonStore::open(&dir),
            Err(StoreError::NotAStore { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_rejects_out_of_step_ledgers() {
        let dir = tmp_dir("out-of-step");
        let dataset = Generator::new(GeneratorConfig::test_small(5)).generate();
        let mut store = SeasonStore::create(&dir, PrivacyParams::pure(0.1, 4.0)).unwrap();
        let mut engine = store.engine();
        let mut cache = TabulationCache::new();
        let a1 = engine
            .execute_cached(&dataset, &request(1, 1.0), &mut cache)
            .unwrap();
        let a2 = engine
            .execute_cached(&dataset, &request(2, 1.0), &mut cache)
            .unwrap();
        // Two charges but the store saw neither: entry count is off by 2.
        assert!(matches!(
            store.record(engine.ledger(), &a2),
            Err(StoreError::Inconsistent { .. })
        ));
        // A ledger whose newest entry was charged under a different
        // description than the artifact's would persist a store that
        // open() must refuse — record() refuses it up front instead.
        let mut renamed = store.ledger().clone();
        renamed
            .charge(
                "not the artifact's description",
                &PrivacyParams::pure(0.1, 1.0),
                &a1.cost,
            )
            .unwrap();
        assert!(matches!(
            store.record(&renamed, &a1),
            Err(StoreError::Inconsistent { .. })
        ));
        // Recording in order works.
        let mut engine = store.engine();
        let mut cache = TabulationCache::new();
        let b1 = engine
            .execute_cached(&dataset, &request(1, 1.0), &mut cache)
            .unwrap();
        assert_eq!(b1, a1);
        store.record(engine.ledger(), &b1).unwrap();
        assert_eq!(store.completed(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}
