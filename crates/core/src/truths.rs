//! Persistent, content-addressed truth tabulations.
//!
//! Tabulating a truth marginal is the engine's dominant cost at national
//! scale, and the truth for a given `(dataset, spec, filter)` triple never
//! changes — it is a pure function of confidential data that is itself
//! pinned by digest. The [`TruthStore`] makes tabulated truths durable and
//! shareable: a season that resumes, or a *sibling* season publishing the
//! same marginal under a different mechanism or budget, loads the truth
//! from disk instead of re-scanning millions of job records.
//!
//! # Addressing
//!
//! Every truth file is addressed by a stable FNV-1a digest of its full
//! identity — the **dataset digest** (the same fingerprint
//! [`SeasonStore`](crate::store::SeasonStore) pins into season manifests),
//! the [`MarginalSpec`], and the **normalized** [`FilterExpr`] (so
//! structurally equal filters share one truth, exactly like the in-memory
//! cache). The digest only names the file; it is never the last word on
//! identity — the full key is stored *inside* the file and compared
//! structurally on every load, so a digest collision can alias nothing.
//!
//! # Integrity
//!
//! Files are written atomically (temp + rename, fsynced) and verified on
//! load: format version, dataset digest, structural key equality, the
//! marginal's own invariants (strict key order, in-domain keys, nonzero
//! counts — re-checked by `Marginal`'s deserializer), and a recorded
//! [`content digest`](Marginal::content_digest) that must reproduce from
//! the loaded cells. Any failure makes the load a miss: the truth is
//! recomputed from the index and the file rewritten — self-healing, and
//! always correct, because the store is a cache of a pure function, never
//! the source of record. (Like the season store, the directory is trusted
//! infrastructure: the digest defends against corruption and drift, not
//! against an adversary who can rewrite the file *and* its digest.)
//!
//! Only declaratively filtered (or unfiltered) tabulations are
//! persistable; closure-filtered truths have no serializable identity and
//! stay in the in-memory [`TabulationCache`](crate::engine::TabulationCache).

use crate::metrics::MetricsRegistry;
use crate::store::{read_json, write_json_atomic, StoreError};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tabulate::{FilterExpr, FlowMarginal, Marginal, MarginalSpec};

/// Truth-file format version, recorded in every file so a future layout
/// change invalidates (rather than misreads) old truths.
const TRUTH_FORMAT_VERSION: u32 = 1;

/// The on-disk form of one persisted truth: the full identity key, the
/// serialized marginal, and its content digest.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TruthFile {
    format: u32,
    dataset_digest: u64,
    spec: MarginalSpec,
    /// The normalized filter expression, `None` for unfiltered truths.
    filter: Option<FilterExpr>,
    content_digest: u64,
    marginal: Marginal,
}

/// The on-disk form of one persisted *flow* truth. Flow truths are
/// functions of a `(before, after)` snapshot **pair**, so they are
/// addressed by the pair's digest
/// ([`dataset_pair_digest`](crate::store::dataset_pair_digest)) rather
/// than the store handle's single-dataset pin — any handle over a shared
/// `truths/` directory can serve them, and the pair digest inside the file
/// is verified on every load.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FlowTruthFile {
    format: u32,
    pair_digest: u64,
    spec: MarginalSpec,
    /// The normalized filter expression, `None` for unfiltered truths.
    filter: Option<FilterExpr>,
    content_digest: u64,
    flows: FlowMarginal,
}

/// A directory of content-addressed truth marginals, pinned to one
/// confidential dataset by digest. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct TruthStore {
    dir: PathBuf,
    dataset_digest: u64,
    /// Registry self-heals are counted into (`None` outside an agency).
    metrics: Option<Arc<MetricsRegistry>>,
}

impl TruthStore {
    /// Open (creating if absent) the truth directory `dir`, pinned to the
    /// dataset whose [`dataset_digest`](crate::store::dataset_digest) is
    /// `dataset_digest`. Truths of other datasets stored in the same
    /// directory are invisible to this handle — the digest is part of
    /// every address and every verification.
    pub fn open(dir: impl AsRef<Path>, dataset_digest: u64) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        crate::store::cfs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            path: dir.clone(),
            source,
        })?;
        Ok(Self {
            dir,
            dataset_digest,
            metrics: None,
        })
    }

    /// The same store counting corrupt-on-load truths (self-heals) into
    /// `registry`.
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Count one truth file that existed but failed verification — the
    /// caller recomputes and overwrites it (the self-heal path).
    fn note_self_heal(&self) {
        if let Some(registry) = &self.metrics {
            registry.caches.truth_self_heals.inc();
        }
    }

    /// The digest of the dataset this handle serves truths for.
    pub fn dataset_digest(&self) -> u64 {
        self.dataset_digest
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The content address of `(dataset, spec, filter)`: FNV-1a over the
    /// canonical JSON of the normalized key. Names the file only; loads
    /// always re-verify the full key structurally.
    pub fn key_digest(&self, spec: &MarginalSpec, filter: Option<&FilterExpr>) -> u64 {
        let key = (
            self.dataset_digest,
            spec.clone(),
            filter.map(FilterExpr::normalized),
        );
        let json = serde_json::to_string(&key).expect("key serialization is infallible");
        crate::store::fnv1a_bytes(json.as_bytes())
    }

    fn path_for(&self, spec: &MarginalSpec, filter: Option<&FilterExpr>) -> PathBuf {
        self.dir
            .join(format!("{:016x}.json", self.key_digest(spec, filter)))
    }

    /// Load the persisted truth for `(spec, filter)`, or `None` when it is
    /// absent or fails any verification (format, dataset digest,
    /// structural key equality, marginal invariants, content digest) — a
    /// failed verification reads as a miss so the caller recomputes and
    /// overwrites the bad file.
    pub fn load(&self, spec: &MarginalSpec, filter: Option<&FilterExpr>) -> Option<Marginal> {
        let path = self.path_for(spec, filter);
        if !path.exists() {
            return None;
        }
        let verified = (|| {
            let file: TruthFile = read_json(&path).ok()?;
            if file.format != TRUTH_FORMAT_VERSION || file.dataset_digest != self.dataset_digest {
                return None;
            }
            if &file.spec != spec || file.marginal.spec() != spec {
                return None;
            }
            match (&file.filter, filter) {
                (None, None) => {}
                (Some(stored), Some(requested)) if *stored == requested.normalized() => {}
                _ => return None,
            }
            if file.marginal.content_digest() != file.content_digest {
                return None;
            }
            Some(file.marginal)
        })();
        if verified.is_none() {
            self.note_self_heal();
        }
        verified
    }

    /// Persist the truth for `(spec, filter)` atomically (temp + rename).
    /// An existing file at the same address is replaced — the truth of a
    /// pure function has exactly one value, so a replacement can only
    /// repair a corrupt file.
    pub fn save(
        &self,
        spec: &MarginalSpec,
        filter: Option<&FilterExpr>,
        marginal: &Marginal,
    ) -> Result<(), StoreError> {
        let file = TruthFile {
            format: TRUTH_FORMAT_VERSION,
            dataset_digest: self.dataset_digest,
            spec: spec.clone(),
            filter: filter.map(FilterExpr::normalized),
            content_digest: marginal.content_digest(),
            marginal: marginal.clone(),
        };
        write_json_atomic(&self.path_for(spec, filter), &file)
    }

    /// The content address of a flow truth: FNV-1a over the canonical
    /// JSON of `("flows", pair_digest, spec, filter)`. The `"flows"`
    /// marker keeps flow addresses disjoint from level-marginal addresses
    /// even in a shared directory; the pair digest replaces the handle's
    /// single-dataset pin.
    pub fn flow_key_digest(
        &self,
        pair_digest: u64,
        spec: &MarginalSpec,
        filter: Option<&FilterExpr>,
    ) -> u64 {
        let key = (
            ("flows", pair_digest),
            spec.clone(),
            filter.map(FilterExpr::normalized),
        );
        let json = serde_json::to_string(&key).expect("key serialization is infallible");
        crate::store::fnv1a_bytes(json.as_bytes())
    }

    fn flow_path_for(
        &self,
        pair_digest: u64,
        spec: &MarginalSpec,
        filter: Option<&FilterExpr>,
    ) -> PathBuf {
        self.dir.join(format!(
            "{:016x}.json",
            self.flow_key_digest(pair_digest, spec, filter)
        ))
    }

    /// Load the persisted flow truth for `(pair, spec, filter)`, or `None`
    /// when absent or failing any verification (format, pair digest,
    /// structural key equality, the flow marginal's own invariants —
    /// re-checked by its deserializer — and the recorded
    /// [`content digest`](FlowMarginal::content_digest)). A failed
    /// verification reads as a miss, so the caller recomputes and repairs.
    pub fn load_flows(
        &self,
        pair_digest: u64,
        spec: &MarginalSpec,
        filter: Option<&FilterExpr>,
    ) -> Option<FlowMarginal> {
        let path = self.flow_path_for(pair_digest, spec, filter);
        if !path.exists() {
            return None;
        }
        let verified = (|| {
            let file: FlowTruthFile = read_json(&path).ok()?;
            if file.format != TRUTH_FORMAT_VERSION || file.pair_digest != pair_digest {
                return None;
            }
            if &file.spec != spec || file.flows.spec() != spec {
                return None;
            }
            match (&file.filter, filter) {
                (None, None) => {}
                (Some(stored), Some(requested)) if *stored == requested.normalized() => {}
                _ => return None,
            }
            if file.flows.content_digest() != file.content_digest {
                return None;
            }
            Some(file.flows)
        })();
        if verified.is_none() {
            self.note_self_heal();
        }
        verified
    }

    /// Persist the flow truth for `(pair, spec, filter)` atomically.
    pub fn save_flows(
        &self,
        pair_digest: u64,
        spec: &MarginalSpec,
        filter: Option<&FilterExpr>,
        flows: &FlowMarginal,
    ) -> Result<(), StoreError> {
        let file = FlowTruthFile {
            format: TRUTH_FORMAT_VERSION,
            pair_digest,
            spec: spec.clone(),
            filter: filter.map(FilterExpr::normalized),
            content_digest: flows.content_digest(),
            flows: flows.clone(),
        };
        write_json_atomic(&self.flow_path_for(pair_digest, spec, filter), &file)
    }

    /// Number of truth files currently in the directory (all datasets).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the directory holds no truth files.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::dataset_digest;
    use lodes::{Generator, GeneratorConfig, Sex};
    use std::fs;
    use tabulate::{compute_marginal, compute_marginal_expr, workload1, workload3};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("eree-truths-unit-{name}"));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips_bit_identically() {
        let dir = tmp_dir("roundtrip");
        let d = Generator::new(GeneratorConfig::test_small(11)).generate();
        let store = TruthStore::open(&dir, dataset_digest(&d)).unwrap();

        let plain = compute_marginal(&d, &workload3());
        store.save(&workload3(), None, &plain).unwrap();
        assert_eq!(store.load(&workload3(), None).unwrap(), plain);

        let expr = FilterExpr::sex(Sex::Female);
        let filtered = compute_marginal_expr(&d, &workload1(), &expr);
        store.save(&workload1(), Some(&expr), &filtered).unwrap();
        assert_eq!(store.load(&workload1(), Some(&expr)).unwrap(), filtered);
        // The filtered and unfiltered truths are distinct addresses.
        assert!(store.load(&workload1(), None).is_none());
        assert_eq!(store.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_dataset_spec_or_filter_reads_as_miss() {
        let dir = tmp_dir("mismatch");
        let d = Generator::new(GeneratorConfig::test_small(12)).generate();
        let store = TruthStore::open(&dir, dataset_digest(&d)).unwrap();
        let truth = compute_marginal(&d, &workload1());
        store.save(&workload1(), None, &truth).unwrap();

        // A handle pinned to a different dataset cannot see the truth.
        let other = TruthStore::open(&dir, dataset_digest(&d) ^ 1).unwrap();
        assert!(other.load(&workload1(), None).is_none());
        // Different spec / filter: different address, a miss.
        assert!(store.load(&workload3(), None).is_none());
        assert!(store
            .load(&workload1(), Some(&FilterExpr::sex(Sex::Male)))
            .is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flow_truths_round_trip_and_verify_by_pair_digest() {
        use crate::store::dataset_pair_digest;
        use lodes::{DatasetPanel, PanelConfig};
        use tabulate::compute_flows;

        let dir = tmp_dir("flows");
        let panel = DatasetPanel::generate(
            &GeneratorConfig::test_small(14),
            &PanelConfig {
                quarters: 2,
                growth_sigma: 0.1,
                death_rate: 0.02,
                seed: 3,
            },
        );
        let (q0, q1) = (panel.quarter(0), panel.quarter(1));
        let pair = dataset_pair_digest(dataset_digest(q0), dataset_digest(q1));
        let store = TruthStore::open(&dir, dataset_digest(q1)).unwrap();

        let spec = workload1();
        let flows = compute_flows(q0, q1, &spec);
        store.save_flows(pair, &spec, None, &flows).unwrap();
        assert_eq!(store.load_flows(pair, &spec, None).unwrap(), flows);
        // The wrong pair digest is a miss, even via the same handle.
        assert!(store.load_flows(pair ^ 1, &spec, None).is_none());
        // Flow and level addresses never collide: the level slot for the
        // same spec is still empty.
        assert!(store.load(&spec, None).is_none());
        // Tampering the recorded digest reads as a miss and self-heals.
        let path = store.flow_path_for(pair, &spec, None);
        let json = fs::read_to_string(&path).unwrap();
        let tampered = json.replacen(
            &format!("\"content_digest\": {}", flows.content_digest()),
            &format!("\"content_digest\": {}", flows.content_digest() ^ 1),
            1,
        );
        assert_ne!(tampered, json);
        fs::write(&path, &tampered).unwrap();
        assert!(store.load_flows(pair, &spec, None).is_none());
        store.save_flows(pair, &spec, None, &flows).unwrap();
        assert_eq!(store.load_flows(pair, &spec, None).unwrap(), flows);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_tampered_truths_read_as_miss() {
        let dir = tmp_dir("tamper");
        let d = Generator::new(GeneratorConfig::test_small(13)).generate();
        let store = TruthStore::open(&dir, dataset_digest(&d)).unwrap();
        let truth = compute_marginal(&d, &workload1());
        store.save(&workload1(), None, &truth).unwrap();
        let path = store.path_for(&workload1(), None);

        // Tamper the recorded digest: the loaded cells no longer reproduce
        // it (equivalently: any cell edit breaks the digest the other way).
        let json = fs::read_to_string(&path).unwrap();
        let recorded = format!("\"content_digest\": {}", truth.content_digest());
        let tampered = json.replacen(
            &recorded,
            &format!("\"content_digest\": {}", truth.content_digest() ^ 1),
            1,
        );
        assert_ne!(tampered, json);
        fs::write(&path, &tampered).unwrap();
        assert!(store.load(&workload1(), None).is_none());

        // Outright garbage also reads as a miss.
        fs::write(&path, "{not json").unwrap();
        assert!(store.load(&workload1(), None).is_none());

        // Recompute-and-save repairs the address.
        store.save(&workload1(), None, &truth).unwrap();
        assert_eq!(store.load(&workload1(), None).unwrap(), truth);
        fs::remove_dir_all(&dir).unwrap();
    }
}
