//! The chaos sweep: fault-inject **every** syscall boundary of the full
//! durability protocol and prove the global invariant.
//!
//! The scenario is the whole lifecycle — create agency → reserve season →
//! release (persist artifacts + truths) → cache-publish → resume from a
//! fresh handle → close the season with a meta-ledger refund. Pass one
//! runs it fault-free under [`chaos::arm_count`] to *count* the syscall
//! boundaries it crosses (coverage is the counted denominator, not a
//! hand-picked list). Pass two re-runs it once per boundary × fault mode:
//! an injected I/O error (destructors run) and an injected kill (the
//! process "dies" holding its leases, like `kill -9`).
//!
//! After every fault, a recovery run — the "next process" — must complete
//! the identical scenario, and the resulting store must satisfy:
//!
//! * it opens cleanly, repairing whatever the fault left behind:
//!   half-written temp files, stale leases, an artifact ahead of its
//!   ledger, a refund frozen between close-begin and close-seal;
//! * replayed budget totals equal the fault-free baseline — never above
//!   the cap, never missing an admitted charge, refund credited exactly
//!   once;
//! * every released artifact is bit-identical to the baseline's;
//! * no orphaned `.tmp` file survives anywhere in the tree.

use eree_core::chaos::{self, FaultMode};
use eree_core::store::StoreError;
use eree_core::{AgencyStore, MechanismKind, PrivacyParams, ReleaseKey, ReleaseRequest};
use lodes::{Dataset, Generator, GeneratorConfig};
use std::collections::BTreeMap;
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use tabulate::{workload1, workload3};

const SEASON: &str = "s";

fn tmp_dir(name: &str) -> PathBuf {
    // Keyed by PID so two sweeps (e.g. debug and release profiles) can
    // run concurrently without clobbering each other's directories.
    let dir = std::env::temp_dir().join(format!("eree-chaos-sweep-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn plan() -> Vec<ReleaseRequest> {
    vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .seed(7),
        ReleaseRequest::marginal(workload3())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .seed(8),
    ]
}

/// One full lifecycle, written to be re-runnable: every step either makes
/// progress or recognizes the progress a previous (possibly killed) run
/// already made — exactly the recovery discipline a real operator retry
/// loop follows.
fn scenario(root: &Path, dataset: &Dataset) -> Result<f64, StoreError> {
    let cap = PrivacyParams::pure(0.1, 8.0);
    let mut agency = AgencyStore::open_or_create(root, cap)?;
    if agency.meta_ledger().closure(SEASON).is_none() {
        drop(agency.open_or_create_season(SEASON, PrivacyParams::pure(0.1, 5.0))?);
        agency.run_season(SEASON, dataset, &plan())?;
        // Cache-publish every completed artifact (what the service does
        // after a release lands).
        let digest = agency
            .dataset_digest()
            .expect("run_season binds the dataset");
        let cache = agency.release_cache()?;
        let season = agency.open_season(SEASON)?;
        for index in 0..season.releases().len() {
            let artifact = season.load_artifact(index)?;
            if let Some(key) = ReleaseKey::of(&artifact.request, digest) {
                cache.save(&key, &artifact)?;
            }
        }
    }
    // Resume from a fresh handle — the reopen path is part of the swept
    // surface — then close the season, refunding the unspent remainder.
    drop(agency);
    let mut agency = AgencyStore::open(root)?;
    let receipt = agency.close_season(SEASON)?;
    Ok(receipt.refund_epsilon)
}

/// The durable end state a completed scenario must always reach,
/// independent of what faults happened along the way.
#[derive(Debug)]
struct EndState {
    remaining_epsilon: f64,
    refunded_epsilon: f64,
    spent_epsilon: f64,
    artifacts: BTreeMap<String, Vec<u8>>,
    truth_entries: usize,
    cache_entries: usize,
    /// Replay-derived metrics: total accepted releases and family-summed
    /// ε spend from the durable `MetricsSnapshot`. Counted once per
    /// admitted release however many faults and resumes happened — never
    /// double-counted, never lost.
    metrics_accepted: u64,
    metrics_epsilon_spent: f64,
}

fn walk_tmp_files(dir: &Path, found: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            walk_tmp_files(&path, found);
        } else if path.to_string_lossy().ends_with(".tmp") {
            found.push(path);
        }
    }
}

fn inspect(root: &Path) -> EndState {
    let agency = AgencyStore::open(root).expect("recovered agency must open cleanly");
    let summary = agency
        .seasons()
        .iter()
        .find(|s| s.name == SEASON)
        .expect("the season is reserved")
        .clone();
    assert!(summary.closed, "the season must end closed");
    assert!(
        agency.spent_epsilon() <= agency.cap().epsilon,
        "spent ε exceeds the cap"
    );
    let truth_entries = agency
        .truth_store()
        .expect("truth store opens")
        .expect("dataset is bound")
        .len();
    let cache_entries = agency.release_cache().expect("cache opens").len();
    let mut artifacts = BTreeMap::new();
    let artifacts_dir = root.join("seasons").join(SEASON).join("artifacts");
    for entry in fs::read_dir(&artifacts_dir)
        .expect("artifacts dir exists")
        .filter_map(Result::ok)
    {
        artifacts.insert(
            entry.file_name().to_string_lossy().into_owned(),
            fs::read(entry.path()).expect("artifact readable"),
        );
    }
    // The restored metrics snapshot must agree with the ledgers it
    // mirrors, bit for bit — the gauges are refreshed from the replayed
    // meta-ledger, the accepted totals from the persisted releases.
    let snapshot = agency.metrics_snapshot();
    assert_eq!(
        snapshot.epsilon_remaining.to_bits(),
        agency.remaining_epsilon().to_bits(),
        "metrics remaining-ε gauge disagrees with the meta-ledger replay"
    );
    assert_eq!(
        snapshot.epsilon_refunded.to_bits(),
        agency.refunded_epsilon().to_bits(),
        "metrics refunded-ε gauge disagrees with the meta-ledger replay"
    );
    let metrics_accepted: u64 = snapshot.families.iter().map(|f| f.accepted_total).sum();
    assert_eq!(
        metrics_accepted as usize,
        artifacts.len(),
        "metrics accepted totals disagree with the persisted artifacts"
    );
    assert!(
        root.join("metrics.json").exists(),
        "the durable metrics snapshot is missing after recovery"
    );
    let state = EndState {
        remaining_epsilon: agency.remaining_epsilon(),
        refunded_epsilon: agency.refunded_epsilon(),
        spent_epsilon: summary.spent_epsilon,
        artifacts,
        truth_entries,
        cache_entries,
        metrics_accepted,
        metrics_epsilon_spent: snapshot.epsilon_spent,
    };
    drop(agency);
    // Opening swept every orphaned temp file; none may survive anywhere.
    let mut stray = Vec::new();
    walk_tmp_files(root, &mut stray);
    assert!(stray.is_empty(), "orphaned temp files survived: {stray:?}");
    state
}

fn assert_matches_baseline(end: &EndState, baseline: &EndState, context: &str) {
    let close = |a: f64, b: f64| (a - b).abs() < 1e-9;
    assert!(
        close(end.remaining_epsilon, baseline.remaining_epsilon),
        "{context}: remaining ε {} != baseline {}",
        end.remaining_epsilon,
        baseline.remaining_epsilon
    );
    assert!(
        close(end.refunded_epsilon, baseline.refunded_epsilon),
        "{context}: refunded ε {} != baseline {}",
        end.refunded_epsilon,
        baseline.refunded_epsilon
    );
    assert!(
        close(end.spent_epsilon, baseline.spent_epsilon),
        "{context}: an admitted charge was lost or double-counted \
         (spent {} vs baseline {})",
        end.spent_epsilon,
        baseline.spent_epsilon
    );
    assert_eq!(
        end.artifacts.keys().collect::<Vec<_>>(),
        baseline.artifacts.keys().collect::<Vec<_>>(),
        "{context}: artifact set diverged"
    );
    for (name, bytes) in &end.artifacts {
        assert_eq!(
            bytes, &baseline.artifacts[name],
            "{context}: artifact {name} is not bit-identical to the baseline"
        );
    }
    assert_eq!(
        end.truth_entries, baseline.truth_entries,
        "{context}: truth store diverged"
    );
    assert_eq!(
        end.cache_entries, baseline.cache_entries,
        "{context}: release cache diverged"
    );
    assert_eq!(
        end.metrics_accepted, baseline.metrics_accepted,
        "{context}: a metrics admission count was lost or double-counted"
    );
    assert!(
        close(end.metrics_epsilon_spent, baseline.metrics_epsilon_spent),
        "{context}: metrics ε-spend {} != baseline {}",
        end.metrics_epsilon_spent,
        baseline.metrics_epsilon_spent
    );
}

#[test]
fn every_boundary_errors_and_kills_recover_to_the_baseline() {
    chaos::silence_kill_panics();
    let dataset = Generator::new(GeneratorConfig::test_small(17)).generate();

    // Pass one: count the boundaries of a fault-free run, and capture the
    // end state every faulted run must recover to.
    let base_root = tmp_dir("baseline");
    chaos::arm_count();
    let refund = scenario(&base_root, &dataset).expect("fault-free scenario");
    let census = chaos::disarm();
    assert!(!census.tripped);
    let boundaries = census.boundaries;
    // Counted coverage, not a hand-picked list: the denominator is what
    // the code actually crossed, and it must span every layer and every
    // kind of durable mutation in the protocol.
    assert!(
        boundaries >= 40,
        "expected a rich boundary census, counted {boundaries}: {:?}",
        census.sites
    );
    assert_eq!(boundaries as usize, census.sites.len());
    for needle in [
        "agency.json",      // agency manifest
        "meta_ledger.json", // reservation + refund records
        "season.json",      // season manifest (incl. the close seal)
        "ledger.json",      // season spend ledger
        "000000.json",      // a persisted release artifact
        "truths/",          // persisted confidential truths
        "public/",          // released-artifact cache entries
        "agency.lock",      // agency write lease
        "season.lock",      // season write lease
        "metrics.json",     // durable cumulative-metrics snapshot
    ] {
        assert!(
            census.sites.iter().any(|s| s.contains(needle)),
            "no syscall boundary touches {needle}; sites: {:?}",
            census.sites
        );
    }
    for op in [
        "rename:",
        "create_dir_all:",
        "create:",
        "create_new:",
        "write:",
        "sync:",
    ] {
        assert!(
            census.sites.iter().any(|s| s.starts_with(op)),
            "no boundary of kind {op}; sites: {:?}",
            census.sites
        );
    }
    let baseline = inspect(&base_root);
    assert!((baseline.refunded_epsilon - refund).abs() < 1e-9);
    fs::remove_dir_all(&base_root).unwrap();

    // Pass two: for every boundary k, inject each fault mode at exactly
    // the k-th boundary, then recover as the "next process".
    for k in 1..=boundaries {
        for (mode_ix, mode) in [FaultMode::Error, FaultMode::Kill].into_iter().enumerate() {
            let context = format!("boundary {k}/{boundaries} {mode:?}");
            let root = tmp_dir(&format!("k{k}-m{mode_ix}"));
            // The faulted run gets a fake process identity so a kill can
            // leave provably-dead leases behind inside this one test
            // process.
            let pid = 0x4000_0000 + (k as u32) * 2 + mode_ix as u32;
            chaos::set_lease_pid(pid);
            chaos::arm(k, mode);
            let outcome = catch_unwind(AssertUnwindSafe(|| scenario(&root, &dataset)));
            let report = chaos::disarm();
            chaos::clear_lease_pid();
            assert!(report.tripped, "{context}: the armed fault never fired");
            match (mode, &outcome) {
                // A kill always unwinds out of the scenario, leaving the
                // crashed flag set (leases stay behind).
                (FaultMode::Kill, Ok(_)) => panic!("{context}: scenario survived a kill"),
                (FaultMode::Kill, Err(_)) => assert!(chaos::crashed()),
                // An injected error must surface as a typed error (or be
                // absorbed by a best-effort cleanup such as the tmp
                // sweep) — never as a panic.
                (FaultMode::Error, Err(_)) => {
                    panic!("{context}: injected error caused a panic")
                }
                (FaultMode::Error, Ok(_)) => {}
            }
            chaos::clear_crashed();
            // Recovery: a fresh "process" (real PID, no faults armed)
            // re-runs the identical scenario to completion.
            let recovered = scenario(&root, &dataset)
                .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
            assert!(
                (recovered - refund).abs() < 1e-9,
                "{context}: recovered refund {recovered} != baseline {refund}"
            );
            let end = inspect(&root);
            assert_matches_baseline(&end, &baseline, &context);
            fs::remove_dir_all(&root).unwrap();
        }
    }
}
