//! Property tests: the metrics layer's accounting reconciles exactly
//! with the ledgers it mirrors.
//!
//! For any interleaving of season creates, admitted releases, denied
//! releases (over-budget or α-mismatched), audited closes (refunds), and
//! full agency reopens:
//!
//! * per family, `accepted_total + denied_total` equals the submissions
//!   that reached the engine, and the per-reason denial counts sum to
//!   `denied_total`;
//! * after a reopen, every budget gauge is **bit-identical** to the
//!   meta-ledger replay value, and every family's `accepted_total` /
//!   `epsilon_spent` / `delta_spent` is bit-identical to a tally over
//!   the durably persisted releases in replay order;
//! * volatile counters (denials) survive the reopen too, because every
//!   `run_season` flushes the durable snapshot.

use eree_core::agency::AgencyStore;
use eree_core::metrics::{FamilySnapshot, MetricsSnapshot};
use eree_core::{MechanismKind, PrivacyParams, ReleaseRequest, RequestKind, StoreError};
use lodes::{Generator, GeneratorConfig};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tabulate::{workload1, workload3};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tmp_dir(prefix: &str) -> PathBuf {
    let id = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "eree-metrics-prop-{prefix}-{}-{id}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn marginal(seed: u64, alpha: f64, epsilon: f64) -> ReleaseRequest {
    ReleaseRequest::marginal(workload1())
        .mechanism(MechanismKind::LogLaplace)
        .budget(PrivacyParams::pure(alpha, epsilon))
        .seed(seed)
}

/// A shapes release at the (α, ε, δ) point the engine's own tests use;
/// admitted whenever the season has the headroom, refused otherwise.
fn shapes(seed: u64) -> ReleaseRequest {
    ReleaseRequest::shapes(workload3())
        .mechanism(MechanismKind::SmoothLaplace)
        .budget(PrivacyParams::approximate(0.1, 16.0, 0.05))
        .seed(seed)
}

fn family<'a>(snapshot: &'a MetricsSnapshot, label: &str) -> &'a FamilySnapshot {
    snapshot
        .families
        .iter()
        .find(|f| f.family == label)
        .expect("snapshot carries every family")
}

/// Per-family `(accepted, Σε, Σδ)` tallied from the durably persisted
/// releases, in the same order `AgencyStore::open` replays them
/// (reservation order, then release order) — the reference the restored
/// snapshot must match bit-for-bit.
fn replay_tally(agency: &AgencyStore) -> [(u64, f64, f64); 3] {
    let mut tallies = [(0u64, 0.0f64, 0.0f64); 3];
    let names: Vec<String> = agency
        .meta_ledger()
        .reservations()
        .iter()
        .map(|r| r.name.clone())
        .collect();
    for name in names {
        let Ok(season) = agency.open_season(&name) else {
            // An unmaterialized reservation holds budget but no releases.
            continue;
        };
        for release in season.releases() {
            let slot = match release.request.kind {
                RequestKind::Marginal => 0,
                RequestKind::Shapes => 1,
                RequestKind::Flows => 2,
            };
            tallies[slot].0 += 1;
            tallies[slot].1 += release.cost.epsilon;
            tallies[slot].2 += release.cost.delta;
        }
    }
    tallies
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline reconciliation property of the metrics layer. Ops
    /// pack into `raw_ops` as (kind = v % 6, fraction = v / 6 scaled).
    #[test]
    fn metrics_snapshot_reconciles_with_meta_ledger_replay(
        cap_eps in 40.0f64..80.0,
        raw_ops in prop::collection::vec(0u32..6000, 2..9),
        data_seed in 0u64..20,
    ) {
        let ops: Vec<(u8, f64)> = raw_ops
            .iter()
            .map(|&v| ((v % 6) as u8, 0.05 + 0.85 * ((v / 6) as f64 / 1000.0)))
            .collect();
        let dir = tmp_dir("reconcile");
        let dataset = Generator::new(GeneratorConfig::test_small(data_seed)).generate();
        let cap = PrivacyParams::approximate(0.1, cap_eps, 0.5);
        let mut agency = AgencyStore::create(&dir, cap).unwrap();
        // Each open season's full release plan so far: resuming a season
        // re-verifies the persisted prefix, so every run passes the whole
        // plan (exactly as the service worker does) and a refused request
        // is popped back off.
        let mut plans: Vec<(String, Vec<ReleaseRequest>)> = Vec::new();
        let mut seed = 0u64;
        // Test-side ground truth: per-family submissions that reached the
        // engine, and how many of them were admitted.
        let mut submitted = [0u64; 3];
        let mut accepted = [0u64; 3];

        for (i, &(kind, frac)) in ops.iter().enumerate() {
            match kind {
                // Create a season taking `frac` of the cap's ε.
                0 => {
                    let name = format!("s{i}");
                    let budget = PrivacyParams::approximate(0.1, frac * cap_eps, 0.05);
                    match agency.create_season(&name, budget) {
                        Ok(_) => plans.push((name, Vec::new())),
                        Err(StoreError::AgencyBudget { .. }) => {}
                        Err(e) => panic!("unexpected store error: {e}"),
                    }
                }
                // An admitted marginal: ε sized inside the remainder.
                1 if !plans.is_empty() => {
                    let slot = i % plans.len();
                    let name = plans[slot].0.clone();
                    let eps = {
                        let season = agency.open_season(&name).unwrap();
                        (frac * season.ledger().remaining_epsilon()).max(0.01)
                    };
                    seed += 1;
                    submitted[0] += 1;
                    plans[slot].1.push(marginal(seed, 0.1, eps));
                    match agency.run_season(&name, &dataset, &plans[slot].1) {
                        Ok(_) => accepted[0] += 1,
                        Err(StoreError::Refused { .. }) => {
                            plans[slot].1.pop();
                        }
                        Err(e) => panic!("unexpected store error: {e}"),
                    }
                }
                // A denied marginal: over the season's whole remainder.
                2 if !plans.is_empty() => {
                    let slot = i % plans.len();
                    let name = plans[slot].0.clone();
                    let eps = {
                        let season = agency.open_season(&name).unwrap();
                        season.ledger().remaining_epsilon() * 2.0 + 1.0
                    };
                    seed += 1;
                    submitted[0] += 1;
                    plans[slot].1.push(marginal(seed, 0.1, eps));
                    let result = agency.run_season(&name, &dataset, &plans[slot].1);
                    prop_assert!(matches!(result, Err(StoreError::Refused { .. })));
                    plans[slot].1.pop();
                }
                // A denied marginal via α-mismatch against the season.
                3 if !plans.is_empty() => {
                    let slot = i % plans.len();
                    let name = plans[slot].0.clone();
                    seed += 1;
                    submitted[0] += 1;
                    plans[slot].1.push(marginal(seed, 0.2, 0.01));
                    let result = agency.run_season(&name, &dataset, &plans[slot].1);
                    prop_assert!(matches!(result, Err(StoreError::Refused { .. })));
                    plans[slot].1.pop();
                }
                // A shapes submission: admitted iff the season still has
                // the (ε = 16, δ = 0.05) headroom.
                4 if !plans.is_empty() => {
                    let slot = i % plans.len();
                    let name = plans[slot].0.clone();
                    seed += 1;
                    submitted[1] += 1;
                    plans[slot].1.push(shapes(seed));
                    match agency.run_season(&name, &dataset, &plans[slot].1) {
                        Ok(_) => accepted[1] += 1,
                        Err(StoreError::Refused { .. }) => {
                            plans[slot].1.pop();
                        }
                        Err(e) => panic!("unexpected store error: {e}"),
                    }
                }
                // An audited close: refund the remainder to the cap.
                5 if !plans.is_empty() => {
                    let (name, _) = plans.remove(i % plans.len());
                    agency.close_season(&name).unwrap();
                }
                // No season yet (or op out of range): reopen instead.
                _ => {
                    drop(agency);
                    agency = AgencyStore::open(&dir).unwrap();
                }
            }
            // Accepted counts are integers and reconcile exactly, live,
            // after every single operation.
            let snapshot = agency.metrics_snapshot();
            prop_assert_eq!(family(&snapshot, "marginal").accepted_total, accepted[0]);
            prop_assert_eq!(family(&snapshot, "shapes").accepted_total, accepted[1]);
        }

        // Reopen from disk: everything below must hold on the restored
        // snapshot, not just the live registry.
        drop(agency);
        let agency = AgencyStore::open(&dir).unwrap();
        let snapshot = agency.metrics_snapshot();
        let meta = agency.meta_ledger();

        // Budget gauges mirror the meta-ledger replay bit-for-bit.
        prop_assert_eq!(snapshot.epsilon_cap.to_bits(), cap.epsilon.to_bits());
        prop_assert_eq!(
            snapshot.epsilon_reserved.to_bits(),
            meta.reserved_epsilon().to_bits()
        );
        prop_assert_eq!(
            snapshot.epsilon_remaining.to_bits(),
            meta.remaining_epsilon().to_bits()
        );
        prop_assert_eq!(
            snapshot.epsilon_refunded.to_bits(),
            meta.refunded_epsilon().to_bits()
        );

        // Per family: accepted/denied totals reconcile with submissions,
        // per-reason counts sum to the denials, and the ε/δ spend is
        // bit-identical to the replay tally over persisted releases.
        let tallies = replay_tally(&agency);
        for (slot, label) in ["marginal", "shapes", "flows"].iter().enumerate() {
            let fam = family(&snapshot, label);
            prop_assert_eq!(fam.accepted_total, accepted[slot]);
            prop_assert_eq!(fam.accepted_total + fam.denied_total, submitted[slot]);
            let by_reason: u64 = fam.denied_by_reason.iter().map(|r| r.denied).sum();
            prop_assert_eq!(by_reason, fam.denied_total);
            prop_assert_eq!(fam.accepted_total, tallies[slot].0);
            prop_assert_eq!(fam.epsilon_spent.to_bits(), tallies[slot].1.to_bits());
            prop_assert_eq!(fam.delta_spent.to_bits(), tallies[slot].2.to_bits());
        }
        // The roll-up gauge is the family sum, in family order.
        let rollup: f64 = ["marginal", "shapes", "flows"]
            .iter()
            .fold(0.0, |acc, label| acc + family(&snapshot, label).epsilon_spent);
        prop_assert_eq!(snapshot.epsilon_spent.to_bits(), rollup.to_bits());

        // And the snapshot round-trips through its own JSON bit-exactly.
        let json = serde_json::to_string(&snapshot).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, snapshot);
        fs::remove_dir_all(&dir).unwrap();
    }
}
