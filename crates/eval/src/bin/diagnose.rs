//! Diagnostic: per-stratum cell anatomy of the Workload 1 marginal —
//! counts, establishment concentration (`x_v/count`), SDL error, and the
//! smooth-sensitivity error drivers. Explains *why* the error ratios of
//! Figure 1 land where they do on a given synthetic universe.
//!
//! Usage: `cargo run -p eval --release --bin diagnose`

use eree_core::{MechanismKind, PrivacyParams};
use eval::experiments::release_cells;
use eval::metrics::fraction_within_relative_tolerance;
use eval::runner::{EvalScale, ExperimentContext, TrialSpec};
use tabulate::stratify_by_place_size;

fn main() {
    let scale = EvalScale::from_env();
    let ctx = ExperimentContext::new(scale);
    let truth = &ctx.sdl_w1.truth;
    let strata = stratify_by_place_size(truth, &ctx.dataset);

    println!(
        "{:<20} {:>7} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "stratum", "cells", "mean_cnt", "mean_x_v", "xv/cnt", "sdl_L1", "sl_L1@2", "ratio"
    );
    for (class, keys) in &strata {
        if keys.is_empty() {
            continue;
        }
        let mut count_sum = 0.0;
        let mut xv_sum = 0.0;
        let mut sdl_err = 0.0;
        let mut ours_expected = 0.0;
        for key in keys {
            let stats = truth.cell(*key).expect("stratified keys are nonzero");
            count_sum += stats.count as f64;
            xv_sum += stats.max_establishment as f64;
            let published = ctx.sdl_w1.published.get(key).copied().unwrap_or(0.0);
            sdl_err += (stats.count as f64 - published).abs();
            // Smooth Laplace at (alpha=.1, eps=2): E|noise| = 2 S*/eps.
            ours_expected += (stats.max_establishment as f64 * 0.1).max(1.0);
        }
        let n = keys.len() as f64;
        println!(
            "{:<20} {:>7} {:>10.1} {:>10.1} {:>8.3} {:>10.1} {:>10.1} {:>8.2}",
            class.label(),
            keys.len(),
            count_sum / n,
            xv_sum / n,
            xv_sum / count_sum,
            sdl_err / n,
            ours_expected / n,
            ours_expected / sdl_err
        );
    }

    // Finding 1's relative-error concentration statistic: fraction of cells
    // whose relative L1 is within 10 percentage points of SDL's, at the
    // paper's baseline alpha = 0.1, epsilon = 2 (delta = .05 for Smooth
    // Laplace), averaged over trials.
    println!("\nfraction of cells within 10pp of SDL relative error (alpha=.1, eps=2):");
    let trials = TrialSpec::default();
    for kind in MechanismKind::ALL {
        let params = match kind {
            MechanismKind::SmoothLaplace => PrivacyParams::approximate(0.1, 2.0, 0.05),
            _ => PrivacyParams::pure(0.1, 2.0),
        };
        let frac = trials.average(|seed| {
            let published = release_cells(truth, kind, &params, seed)
                .expect("baseline parameters are valid for all mechanisms");
            fraction_within_relative_tolerance(truth, &published, &ctx.sdl_w1.published, 0.10)
        });
        println!(
            "  {:<16} {:>5.1}%   (paper: Log-Laplace 65%, Smooth Laplace 75%, Smooth Gamma 29%)",
            kind.label(),
            frac * 100.0
        );
    }
}
