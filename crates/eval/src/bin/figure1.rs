//! Regenerate Figure 1: L1 error ratio of Workload 1 vs the SDL system.
//!
//! Usage: `cargo run -p eval --release --bin figure1`
//! (set `EREE_SCALE=small|default|paper` to change the universe size).

use eval::experiments::figure1;
use eval::report::{pivot_markdown, results_dir, to_csv, write_results, Point};
use eval::runner::{EvalScale, ExperimentContext, TrialSpec};

fn main() {
    let scale = EvalScale::from_env();
    eprintln!("figure1: building context at {scale:?} scale...");
    let ctx = ExperimentContext::new(scale);
    eprintln!(
        "figure1: dataset has {} jobs / {} establishments; {} W1 cells",
        ctx.dataset.num_jobs(),
        ctx.dataset.num_workplaces(),
        ctx.sdl_w1.truth.num_cells()
    );
    let trials = TrialSpec::default();
    let rows = figure1::run(&ctx, &trials);

    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.l1_ratio,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 1: L1 error ratio, place x industry x ownership (vs SDL)",
        "L1 ratio",
        &points,
    );
    let csv = to_csv("l1_ratio", &points);
    let printed =
        write_results(&results_dir(), "figure1", &md, &csv, &rows).expect("write results");
    println!("{printed}");
}
