//! Regenerate Figure 2: Spearman rank correlation of Ranking 1
//! (Workload 1 cells ordered by employment count) vs the SDL ordering.
//!
//! Usage: `cargo run -p eval --release --bin figure2`

use eval::experiments::figure2;
use eval::report::{pivot_markdown, results_dir, to_csv, write_results, Point};
use eval::runner::{EvalScale, ExperimentContext, TrialSpec};

fn main() {
    let scale = EvalScale::from_env();
    eprintln!("figure2: building context at {scale:?} scale...");
    let ctx = ExperimentContext::new(scale);
    let trials = TrialSpec::default();
    let rows = figure2::run(&ctx, &trials);

    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.spearman,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 2: Spearman correlation of employment-count ranking (vs SDL ordering)",
        "rho",
        &points,
    );
    let csv = to_csv("spearman", &points);
    let printed =
        write_results(&results_dir(), "figure2", &md, &csv, &rows).expect("write results");
    println!("{printed}");
}
