//! Regenerate Figure 3: single (sex × education) query L1 error ratio on
//! the workplace marginal (Workload 2) vs the SDL system.
//!
//! Usage: `cargo run -p eval --release --bin figure3`

use eval::experiments::figure3;
use eval::report::{pivot_markdown, results_dir, to_csv, write_results, Point};
use eval::runner::{EvalScale, ExperimentContext, TrialSpec};

fn main() {
    let scale = EvalScale::from_env();
    eprintln!("figure3: building context at {scale:?} scale...");
    let ctx = ExperimentContext::new(scale);
    eprintln!(
        "figure3: W3 marginal has {} cells",
        ctx.sdl_w3.truth.num_cells()
    );
    let trials = TrialSpec::default();
    let rows = figure3::run(&ctx, &trials);

    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.l1_ratio,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 3: L1 error ratio for single (sex x education) queries (vs SDL)",
        "L1 ratio",
        &points,
    );
    let csv = to_csv("l1_ratio", &points);
    let printed =
        write_results(&results_dir(), "figure3", &md, &csv, &rows).expect("write results");
    println!("{printed}");
}
