//! Regenerate Figure 4: L1 error ratio for the full worker × workplace
//! marginal (Workload 3) vs the SDL system, with the total budget split
//! across the sex × education domain under weak composition.
//!
//! Usage: `cargo run -p eval --release --bin figure4`

use eval::experiments::figure4;
use eval::report::{pivot_markdown, results_dir, to_csv, write_results, Point};
use eval::runner::{EvalScale, ExperimentContext, TrialSpec};

fn main() {
    let scale = EvalScale::from_env();
    eprintln!("figure4: building context at {scale:?} scale...");
    let ctx = ExperimentContext::new(scale);
    let trials = TrialSpec::default();
    let rows = figure4::run(&ctx, &trials);

    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.l1_ratio,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 4: L1 error ratio for the full (sex x education) marginal (vs SDL)",
        "L1 ratio",
        &points,
    );
    let csv = to_csv("l1_ratio", &points);
    let printed =
        write_results(&results_dir(), "figure4", &md, &csv, &rows).expect("write results");
    println!("{printed}");
}
