//! Regenerate Figure 5: Spearman rank correlation of Ranking 2 (Workload 1
//! cells ordered by the count of female workers with a bachelor's degree
//! or higher) vs the SDL ordering.
//!
//! Usage: `cargo run -p eval --release --bin figure5`

use eval::experiments::figure5;
use eval::report::{pivot_markdown, results_dir, to_csv, write_results, Point};
use eval::runner::{EvalScale, ExperimentContext, TrialSpec};

fn main() {
    let scale = EvalScale::from_env();
    eprintln!("figure5: building context at {scale:?} scale...");
    let ctx = ExperimentContext::new(scale);
    let trials = TrialSpec::default();
    let rows = figure5::run(&ctx, &trials);

    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.spearman,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 5: Spearman correlation, females with college degree ranking (vs SDL ordering)",
        "rho",
        &points,
    );
    let csv = to_csv("spearman", &points);
    let printed =
        write_results(&results_dir(), "figure5", &md, &csv, &rows).expect("write results");
    println!("{printed}");
}
