//! Regenerate the paper's six Findings (Sec 10) as a checklist with
//! measured evidence from the current synthetic universe.
//!
//! Usage: `cargo run -p eval --release --bin findings`
//! (respects `EREE_SCALE`; use `small` for a fast check).

use eval::experiments::{figure1, figure2, figure3, figure4};
use eval::runner::{EvalScale, ExperimentContext, TrialSpec};
use std::fmt::Write as _;

fn main() {
    let scale = EvalScale::from_env();
    eprintln!("findings: building context at {scale:?} scale...");
    let ctx = ExperimentContext::new(scale);
    let trials = TrialSpec::default();

    let f1 = figure1::run(&ctx, &trials);
    let f2 = figure2::run(&ctx, &trials);
    let f3 = figure3::run(&ctx, &trials);
    let f4 = figure4::run(&ctx, &trials);

    let pick1 = |series: &str, alpha: f64, eps: f64| {
        f1.iter()
            .find(|r| {
                r.series == series
                    && (r.alpha - alpha).abs() < 1e-9
                    && (r.epsilon - eps).abs() < 1e-9
                    && r.stratum == "overall"
            })
            .map(|r| r.l1_ratio)
    };

    let mut out = String::new();
    let _ = writeln!(out, "# Findings checklist (measured at {scale:?} scale)\n");

    // Finding 1: establishment-only marginals comparable to SDL.
    let ll = pick1("Log-Laplace", 0.1, 2.0).unwrap_or(f64::NAN);
    let sg = pick1("Smooth Gamma", 0.1, 2.0).unwrap_or(f64::NAN);
    let sl = pick1("Smooth Laplace", 0.1, 2.0).unwrap_or(f64::NAN);
    let _ = writeln!(
        out,
        "**Finding 1** (W1 marginal comparable to SDL at eps=2, alpha=.1): \
         Log-Laplace {ll:.2}x, Smooth Gamma {sg:.2}x, Smooth Laplace {sl:.2}x SDL. \
         [{}]",
        if sg < 3.5 && sl < 1.5 {
            "REPRODUCED"
        } else {
            "CHECK"
        }
    );

    // Finding 2: single queries + rankings competitive.
    let f3_sl = f3
        .iter()
        .find(|r| {
            r.series == "Smooth Laplace"
                && r.alpha == 0.1
                && r.epsilon == 4.0
                && r.stratum == "overall"
        })
        .map(|r| r.l1_ratio)
        .unwrap_or(f64::NAN);
    let _ = writeln!(
        out,
        "**Finding 2** (single worker-attribute queries at eps=4): Smooth Laplace \
         {f3_sl:.2}x SDL. [{}]",
        if f3_sl < 1.5 { "REPRODUCED" } else { "CHECK" }
    );

    // Finding 3: full worker marginal within factor ~10 at high eps/low alpha.
    let f4_sl = f4
        .iter()
        .find(|r| {
            r.series == "Smooth Laplace"
                && r.alpha == 0.01
                && r.epsilon == 4.0
                && r.stratum == "overall"
        })
        .map(|r| r.l1_ratio)
        .unwrap_or(f64::NAN);
    let _ = writeln!(
        out,
        "**Finding 3** (full sex x education marginal, alpha=.01, total eps=4): \
         Smooth Laplace {f4_sl:.2}x SDL. [{}]",
        if f4_sl < 10.0 { "REPRODUCED" } else { "CHECK" }
    );

    // Finding 4: improvement with place size (smooth mechanisms).
    let strata_vals: Vec<f64> = [
        "0 <= pop < 100",
        "100 <= pop < 10k",
        "10k <= pop < 100k",
        "pop >= 100k",
    ]
    .iter()
    .filter_map(|s| {
        f1.iter()
            .find(|r| {
                r.series == "Smooth Laplace"
                    && r.alpha == 0.1
                    && r.epsilon == 2.0
                    && &r.stratum == s
            })
            .map(|r| r.l1_ratio)
    })
    .collect();
    let monotone = strata_vals.windows(2).all(|w| w[1] <= w[0] * 1.05);
    let _ = writeln!(
        out,
        "**Finding 4** (Smooth Laplace ratio falls with place size at eps=2): \
         {} . [{}]",
        strata_vals
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
            .join(" -> "),
        if monotone {
            "REPRODUCED"
        } else {
            "CHECK (see EXPERIMENTS.md on Log-Laplace)"
        }
    );

    // Finding 5: Smooth Laplace dominates; LL/SG crossover.
    let dominance = f1
        .iter()
        .filter(|r| r.series == "Smooth Laplace" && r.stratum == "overall")
        .all(|r| {
            pick1("Smooth Gamma", r.alpha, r.epsilon)
                .map(|sg| r.l1_ratio <= sg * 1.05)
                .unwrap_or(true)
        });
    let ll_small = pick1("Log-Laplace", 0.05, 0.25);
    let sg_small = pick1("Smooth Gamma", 0.05, 0.25);
    let ll_large = pick1("Log-Laplace", 0.05, 4.0);
    let sg_large = pick1("Smooth Gamma", 0.05, 4.0);
    let crossover = match (ll_small, sg_small, ll_large, sg_large) {
        (Some(a), Some(b), Some(c), Some(d)) => a < b && c > d,
        _ => false,
    };
    let _ = writeln!(
        out,
        "**Finding 5** (Smooth Laplace best everywhere: {}; Log-Laplace/Smooth Gamma \
         crossover in eps: {}). [{}]",
        dominance,
        crossover,
        if dominance && crossover {
            "REPRODUCED"
        } else {
            "CHECK"
        }
    );

    // Finding 6: Truncated Laplace >= 10x at eps=4, flat in eps.
    let tl_at_4: Vec<f64> = f1
        .iter()
        .filter(|r| r.series.starts_with("Truncated") && r.epsilon == 4.0 && r.stratum == "overall")
        .map(|r| r.l1_ratio)
        .collect();
    let min_tl = tl_at_4.iter().copied().fold(f64::INFINITY, f64::min);
    let tl2_small = f1
        .iter()
        .find(|r| {
            r.series == "Truncated Laplace (theta=2)" && r.epsilon == 0.25 && r.stratum == "overall"
        })
        .map(|r| r.l1_ratio)
        .unwrap_or(f64::NAN);
    let tl2_large = f1
        .iter()
        .find(|r| {
            r.series == "Truncated Laplace (theta=2)" && r.epsilon == 4.0 && r.stratum == "overall"
        })
        .map(|r| r.l1_ratio)
        .unwrap_or(f64::NAN);
    let tl2_rho_max = f2
        .iter()
        .filter(|r| r.series.starts_with("Truncated") && r.stratum == "overall")
        .map(|r| r.spearman)
        .fold(f64::NEG_INFINITY, f64::max);
    let _ = writeln!(
        out,
        "**Finding 6** (Truncated Laplace): min ratio over theta at eps=4 is {min_tl:.1}x \
         (paper: >=10x); theta=2 ratio {tl2_small:.1} -> {tl2_large:.1} across 16x more eps \
         (bias-dominated); best ranking rho {tl2_rho_max:.2} (paper: <=0.7). [{}]",
        if min_tl >= 10.0 && (tl2_small / tl2_large) < 1.5 && tl2_rho_max < 0.75 {
            "REPRODUCED"
        } else {
            "CHECK"
        }
    );

    std::fs::create_dir_all(eval::report::results_dir()).expect("results dir");
    std::fs::write(eval::report::results_dir().join("findings.md"), &out).expect("write");
    println!("{out}");
}
