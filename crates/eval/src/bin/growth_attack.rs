//! Time-series growth-rate disclosure: SDL vs the formally private
//! mechanisms across the ε grid.
//!
//! For a quarterly panel, measures (a) the fraction of singleton-cell
//! growth rates an attacker recovers *exactly* from the published series,
//! and (b) the median relative error of the recovered rates — for the
//! dynamically consistent SDL baseline and for fresh-noise private
//! releases at each ε.
//!
//! Usage: `cargo run -p eval --release --bin growth_attack`

use eree_core::{MechanismKind, PrivacyParams};
use eval::experiments::release_cells;
use eval::runner::EvalScale;
use lodes::{DatasetPanel, PanelConfig};
use sdl::{growth_rate_attack, PanelPublisher, SdlConfig, SdlRelease};
use std::fmt::Write as _;
use tabulate::{compute_marginal, workload1};

fn main() {
    let scale = EvalScale::from_env();
    let base = scale.generator_config(0xEEE5_2017);
    let panel = DatasetPanel::generate(
        &base,
        &PanelConfig {
            quarters: 4,
            growth_sigma: 0.08,
            death_rate: 0.0,
            seed: 23,
        },
    );
    eprintln!(
        "growth_attack: {} establishments x {} quarters",
        panel.quarter(0).num_workplaces(),
        panel.quarters()
    );

    let mut out = String::from(
        "# Growth-rate disclosure from quarterly releases\n\n\
         | release | exact recoveries | median rel. error |\n|---|---|---|\n",
    );

    // SDL with dynamically consistent factors.
    let cfg = SdlConfig {
        round_output: false,
        ..SdlConfig::default()
    };
    let publisher = PanelPublisher::new(&panel, cfg);
    let sdl_releases = publisher.publish_all(&panel, &workload1());
    let sdl_results = growth_rate_attack(&panel, &sdl_releases, cfg.small_cell.limit);
    let (frac, median) = summarize(&sdl_results);
    let _ = writeln!(
        out,
        "| SDL (dynamically consistent) | {:.1}% of {} | {:.2}% |",
        frac * 100.0,
        sdl_results.len(),
        median * 100.0
    );

    // Private releases at each epsilon: fresh noise per quarter. Epsilon
    // values below the Smooth Laplace validity frontier (~0.571 at
    // alpha=0.1, delta=0.05; Table 2) are skipped, as in the figures.
    for &epsilon in &[1.0, 2.0, 4.0] {
        if !eval::experiments::plottable(MechanismKind::SmoothLaplace, 0.1, epsilon, 0.05) {
            continue;
        }
        let params = PrivacyParams::approximate(0.1, epsilon, 0.05);
        let releases: Vec<SdlRelease> = panel
            .snapshots()
            .iter()
            .enumerate()
            .map(|(q, snap)| {
                let truth = compute_marginal(snap, &workload1());
                let published = release_cells(
                    &truth,
                    MechanismKind::SmoothLaplace,
                    &params,
                    1000 + q as u64,
                )
                .expect("valid parameters");
                SdlRelease { published, truth }
            })
            .collect();
        let results = growth_rate_attack(&panel, &releases, cfg.small_cell.limit);
        let (frac, median) = summarize(&results);
        let _ = writeln!(
            out,
            "| Smooth Laplace eps={epsilon}/quarter | {:.1}% of {} | {:.2}% |",
            frac * 100.0,
            results.len(),
            median * 100.0
        );
    }

    out.push_str(
        "\nDynamic consistency cancels the confidential factor in quarter-over-quarter \
         ratios,\ndisclosing exact growth rates of singleton-establishment cells with no \
         background\nknowledge; fresh per-release noise bounds the same inference through \
         sequential\ncomposition (total quarterly cost tracked by the ledger).\n",
    );

    std::fs::create_dir_all(eval::report::results_dir()).expect("results dir");
    std::fs::write(eval::report::results_dir().join("growth_attack.md"), &out).expect("write");
    println!("{out}");
}

fn summarize(results: &[sdl::GrowthAttackResult]) -> (f64, f64) {
    if results.is_empty() {
        return (0.0, 0.0);
    }
    let exact = results
        .iter()
        .filter(|r| (r.recovered_growth - r.true_growth).abs() < 1e-9)
        .count();
    let mut rel: Vec<f64> = results
        .iter()
        .map(|r| ((r.recovered_growth - r.true_growth) / r.true_growth).abs())
        .collect();
    rel.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (exact as f64 / results.len() as f64, rel[rel.len() / 2])
}
