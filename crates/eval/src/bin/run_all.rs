//! Regenerate every table and figure in one run.
//!
//! Usage: `cargo run -p eval --release --bin run_all`
//! (set `EREE_SCALE=small` for a fast smoke regeneration).

use eval::experiments::{figure1, figure2, figure3, figure4, figure5, table1, table2};
use eval::report::{pivot_markdown, results_dir, to_csv, write_results, Point};
use eval::runner::{EvalScale, ExperimentContext, TrialSpec};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let scale = EvalScale::from_env();
    let start = Instant::now();
    eprintln!("run_all: building context at {scale:?} scale...");
    let ctx = ExperimentContext::new(scale);
    eprintln!(
        "run_all: {} jobs / {} establishments ({:.1?})",
        ctx.dataset.num_jobs(),
        ctx.dataset.num_workplaces(),
        start.elapsed()
    );
    let trials = TrialSpec::default();
    let dir = results_dir();

    // Figure 1.
    let t = Instant::now();
    let rows = figure1::run(&ctx, &trials);
    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.l1_ratio,
        })
        .collect();
    let md = pivot_markdown("Figure 1: L1 error ratio (W1 vs SDL)", "L1 ratio", &points);
    write_results(&dir, "figure1", &md, &to_csv("l1_ratio", &points), &rows).unwrap();
    eprintln!("run_all: figure1 done ({:.1?})", t.elapsed());

    // Figure 2.
    let t = Instant::now();
    let rows = figure2::run(&ctx, &trials);
    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.spearman,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 2: Ranking 1 Spearman (vs SDL ordering)",
        "rho",
        &points,
    );
    write_results(&dir, "figure2", &md, &to_csv("spearman", &points), &rows).unwrap();
    eprintln!("run_all: figure2 done ({:.1?})", t.elapsed());

    // Figure 3.
    let t = Instant::now();
    let rows = figure3::run(&ctx, &trials);
    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.l1_ratio,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 3: single (sex x education) query L1 ratio (vs SDL)",
        "L1 ratio",
        &points,
    );
    write_results(&dir, "figure3", &md, &to_csv("l1_ratio", &points), &rows).unwrap();
    eprintln!("run_all: figure3 done ({:.1?})", t.elapsed());

    // Figure 4.
    let t = Instant::now();
    let rows = figure4::run(&ctx, &trials);
    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.l1_ratio,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 4: full (sex x education) marginal L1 ratio (vs SDL)",
        "L1 ratio",
        &points,
    );
    write_results(&dir, "figure4", &md, &to_csv("l1_ratio", &points), &rows).unwrap();
    eprintln!("run_all: figure4 done ({:.1?})", t.elapsed());

    // Figure 5.
    let t = Instant::now();
    let rows = figure5::run(&ctx, &trials);
    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.spearman,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 5: Ranking 2 Spearman (vs SDL ordering)",
        "rho",
        &points,
    );
    write_results(&dir, "figure5", &md, &to_csv("spearman", &points), &rows).unwrap();
    eprintln!("run_all: figure5 done ({:.1?})", t.elapsed());

    // Tables.
    let rows = table1::run();
    let mut md = String::from(
        "# Table 1\n\n| Name | Individuals | Emp. Size | Emp. Shape |\n|---|---|---|---|\n",
    );
    for r in &rows {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} |",
            r.method, r.individuals, r.employer_size, r.employer_shape
        );
    }
    write_results(&dir, "table1", &md, "", &rows).unwrap();

    let rows = table2::run();
    let mut md =
        String::from("# Table 2\n\n| delta | alpha | eps_min | eps (paper) |\n|---|---|---|---|\n");
    for r in &rows {
        let _ = writeln!(
            md,
            "| {} | {} | {:.3} | {} |",
            r.delta, r.alpha, r.epsilon_min, r.paper_epsilon
        );
    }
    write_results(&dir, "table2", &md, "", &rows).unwrap();

    // Publication season: execute (or resume) the canonical composed
    // release plan under a persistent SeasonStore. A run_all killed during
    // this step picks up exactly where it stopped on the next invocation,
    // without re-spending any of the season's ε.
    let t = Instant::now();
    let season_dir = dir.join("season");
    match eval::season::run_or_resume(&season_dir, &ctx.dataset) {
        Ok((report, store)) => eprintln!(
            "run_all: season done — resumed at {}, executed {}, {} tabulations ({} shared), \
             eps remaining {:.3} ({:.1?}; store at {})",
            report.resumed_from,
            report.executed,
            report.tabulations_computed,
            report.tabulation_hits,
            store.ledger().remaining_epsilon(),
            t.elapsed(),
            season_dir.display()
        ),
        Err(e) => eprintln!(
            "run_all: season store at {} refused: {e} (delete the directory to restart the season)",
            season_dir.display()
        ),
    }

    eprintln!(
        "run_all: complete in {:.1?}; results under {}",
        start.elapsed(),
        dir.display()
    );
    println!(
        "Regenerated figures 1-5 and tables 1-2 under {} at {scale:?} scale.",
        dir.display()
    );
}
