//! Regenerate every table and figure in one run.
//!
//! Usage: `cargo run -p eval --release --bin run_all`
//! (set `EREE_SCALE=small` for a fast smoke regeneration).

use eval::experiments::{figure1, figure2, figure3, figure4, figure5, flows, table1, table2};
use eval::report::{pivot_markdown, results_dir, to_csv, write_results, Point};
use eval::runner::{EvalScale, ExperimentContext, TrialSpec};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let scale = EvalScale::from_env();
    let start = Instant::now();
    eprintln!("run_all: building context at {scale:?} scale...");
    let ctx = ExperimentContext::new(scale);
    eprintln!(
        "run_all: {} jobs / {} establishments ({:.1?})",
        ctx.dataset.num_jobs(),
        ctx.dataset.num_workplaces(),
        start.elapsed()
    );
    let trials = TrialSpec::default();
    let dir = results_dir();

    // Figure 1.
    let t = Instant::now();
    let rows = figure1::run(&ctx, &trials);
    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.l1_ratio,
        })
        .collect();
    let md = pivot_markdown("Figure 1: L1 error ratio (W1 vs SDL)", "L1 ratio", &points);
    write_results(&dir, "figure1", &md, &to_csv("l1_ratio", &points), &rows).unwrap();
    eprintln!("run_all: figure1 done ({:.1?})", t.elapsed());

    // Figure 2.
    let t = Instant::now();
    let rows = figure2::run(&ctx, &trials);
    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.spearman,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 2: Ranking 1 Spearman (vs SDL ordering)",
        "rho",
        &points,
    );
    write_results(&dir, "figure2", &md, &to_csv("spearman", &points), &rows).unwrap();
    eprintln!("run_all: figure2 done ({:.1?})", t.elapsed());

    // Figure 3.
    let t = Instant::now();
    let rows = figure3::run(&ctx, &trials);
    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.l1_ratio,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 3: single (sex x education) query L1 ratio (vs SDL)",
        "L1 ratio",
        &points,
    );
    write_results(&dir, "figure3", &md, &to_csv("l1_ratio", &points), &rows).unwrap();
    eprintln!("run_all: figure3 done ({:.1?})", t.elapsed());

    // Figure 4.
    let t = Instant::now();
    let rows = figure4::run(&ctx, &trials);
    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.l1_ratio,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 4: full (sex x education) marginal L1 ratio (vs SDL)",
        "L1 ratio",
        &points,
    );
    write_results(&dir, "figure4", &md, &to_csv("l1_ratio", &points), &rows).unwrap();
    eprintln!("run_all: figure4 done ({:.1?})", t.elapsed());

    // Figure 5.
    let t = Instant::now();
    let rows = figure5::run(&ctx, &trials);
    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.stratum.clone(),
            value: r.spearman,
        })
        .collect();
    let md = pivot_markdown(
        "Figure 5: Ranking 2 Spearman (vs SDL ordering)",
        "rho",
        &points,
    );
    write_results(&dir, "figure5", &md, &to_csv("spearman", &points), &rows).unwrap();
    eprintln!("run_all: figure5 done ({:.1?})", t.elapsed());

    // QWI flows: engine-released B/JC/JD over a two-quarter panel.
    let t = Instant::now();
    let rows = flows::run(&ctx, &trials);
    let points: Vec<Point> = rows
        .iter()
        .map(|r| Point {
            series: r.series.clone(),
            alpha: r.alpha,
            epsilon: r.epsilon,
            stratum: r.statistic.clone(),
            value: r.rel_l1,
        })
        .collect();
    let md = pivot_markdown(
        "QWI flows: B/JC/JD relative L1 error (engine flow releases)",
        "rel L1",
        &points,
    );
    write_results(&dir, "flows", &md, &to_csv("rel_l1", &points), &rows).unwrap();
    eprintln!("run_all: flows done ({:.1?})", t.elapsed());

    // Tables.
    let rows = table1::run();
    let mut md = String::from(
        "# Table 1\n\n| Name | Individuals | Emp. Size | Emp. Shape |\n|---|---|---|---|\n",
    );
    for r in &rows {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} |",
            r.method, r.individuals, r.employer_size, r.employer_shape
        );
    }
    write_results(&dir, "table1", &md, "", &rows).unwrap();

    let rows = table2::run();
    let mut md =
        String::from("# Table 2\n\n| delta | alpha | eps_min | eps (paper) |\n|---|---|---|---|\n");
    for r in &rows {
        let _ = writeln!(
            md,
            "| {} | {} | {:.3} | {} |",
            r.delta, r.alpha, r.epsilon_min, r.paper_epsilon
        );
    }
    write_results(&dir, "table2", &md, "", &rows).unwrap();

    // Publication agency: execute (or resume) the canonical two-season
    // release program under a persistent AgencyStore — one global ε cap
    // governing both seasons, truths shared across them through the
    // persistent truth store. A run_all killed during this step picks up
    // exactly where it stopped on the next invocation, without re-spending
    // any ε or re-tabulating any truth.
    let t = Instant::now();
    let agency_dir = dir.join("agency");
    match eval::season::run_or_resume(&agency_dir, &ctx.dataset) {
        Ok((report, agency)) => eprintln!(
            "run_all: agency done — annual resumed at {} / executed {} ({} tabulated, {} memory-\
             shared, {} from truth store); followup resumed at {} / executed {} ({} tabulated, \
             {} from truth store); cap remaining {:.3} ({:.1?}; agency at {})",
            report.annual.resumed_from,
            report.annual.executed,
            report.annual.tabulations_computed,
            report.annual.tabulation_hits,
            report.annual.tabulation_disk_hits,
            report.followup.resumed_from,
            report.followup.executed,
            report.followup.tabulations_computed,
            report.followup.tabulation_disk_hits,
            agency.remaining_epsilon(),
            t.elapsed(),
            agency_dir.display()
        ),
        Err(e) => eprintln!(
            "run_all: agency store at {} refused: {e} (delete the directory to restart the \
             release program)",
            agency_dir.display()
        ),
    }

    eprintln!(
        "run_all: complete in {:.1?}; results under {}",
        start.elapsed(),
        dir.display()
    );
    println!(
        "Regenerated figures 1-5 and tables 1-2 under {} at {scale:?} scale.",
        dir.display()
    );
}
