//! Sensitivity of the headline error ratios to the synthetic SDL fuzz
//! parameters (s, t).
//!
//! The production distortion parameters are confidential, so DESIGN.md §2
//! substitutes `s = 0.05, t = 0.15`. This analysis sweeps (s, t) and shows
//! how the Figure-1 baseline ratios move: the SDL denominator scales
//! roughly with `E|f − 1|`, so ratios scale inversely — orderings and
//! trends are unaffected, which is what makes the substitution safe for
//! shape-level reproduction.
//!
//! Usage: `cargo run -p eval --release --bin sdl_sensitivity`

use eree_core::{MechanismKind, PrivacyParams};
use eval::experiments::release_cells;
use eval::metrics::l1_error;
use eval::runner::{EvalScale, TrialSpec};
use lodes::Generator;
use sdl::{DistortionParams, FuzzDistribution, SdlConfig, SdlPublisher};
use std::fmt::Write as _;
use tabulate::workload1;

fn main() {
    let scale = EvalScale::from_env();
    let dataset = Generator::new(scale.generator_config(0xEEE5_2017)).generate();
    let trials = TrialSpec {
        trials: 10,
        base_seed: 0x5E45,
    };

    let grid: [(f64, f64); 5] = [
        (0.01, 0.03),
        (0.02, 0.08),
        (0.05, 0.15), // DESIGN.md default
        (0.10, 0.25),
        (0.15, 0.40),
    ];

    let mut out = String::from(
        "# SDL fuzz-parameter sensitivity (Workload 1, alpha=0.1, eps=2)\n\n\
         | s | t | E|f-1| | SDL L1 | LL ratio | SG ratio | SL ratio |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for (s, t) in grid {
        let params = DistortionParams::new(s, t, FuzzDistribution::Ramp);
        let publisher = SdlPublisher::new(
            &dataset,
            SdlConfig {
                distortion: params,
                ..SdlConfig::default()
            },
        );
        let release = publisher.publish(&dataset, &workload1());
        let sdl_l1 = release.l1_error();
        let truth = &release.truth;

        let ratio = |kind: MechanismKind, p: PrivacyParams| {
            trials.average(|seed| {
                let published =
                    release_cells(truth, kind, &p, seed).expect("baseline parameters valid");
                l1_error(truth, &published)
            }) / sdl_l1
        };
        let ll = ratio(MechanismKind::LogLaplace, PrivacyParams::pure(0.1, 2.0));
        let sg = ratio(MechanismKind::SmoothGamma, PrivacyParams::pure(0.1, 2.0));
        let sl = ratio(
            MechanismKind::SmoothLaplace,
            PrivacyParams::approximate(0.1, 2.0, 0.05),
        );
        let _ = writeln!(
            out,
            "| {s} | {t} | {:.3} | {sdl_l1:.0} | {ll:.2} | {sg:.2} | {sl:.2} |",
            params.expected_magnitude()
        );
    }
    out.push_str(
        "\nRatios scale inversely with the SDL noise level, preserving the ordering \
         Smooth Laplace < Smooth Gamma < Log-Laplace at the baseline point for every \
         (s, t); the paper's qualitative findings are insensitive to the confidential \
         parameter substitution.\n",
    );

    std::fs::create_dir_all(eval::report::results_dir()).expect("results dir");
    std::fs::write(eval::report::results_dir().join("sdl_sensitivity.md"), &out).expect("write");
    println!("{out}");
}
