//! Regenerate Table 1: privacy definitions and the requirements they
//! satisfy, with numeric spot-verification of the load-bearing entries.
//!
//! Usage: `cargo run -p eval --release --bin table1`

use eval::experiments::table1;
use eval::report::{results_dir, write_results};
use std::fmt::Write as _;

fn main() {
    let rows = table1::run();
    let mut md = String::from(
        "# Table 1: Privacy definitions and requirements they satisfy\n\n\
         | Name | Individuals | Emp. Size | Emp. Shape |\n|---|---|---|---|\n",
    );
    for r in &rows {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {} |",
            r.method, r.individuals, r.employer_size, r.employer_shape
        );
    }
    md.push_str("\n`Yes*` = requirement satisfied under weak adversaries.\n");

    md.push_str("\n## Numeric spot-verification\n\n");
    let mut all_ok = true;
    for (claim, ok) in table1::verify() {
        let _ = writeln!(md, "- [{}] {claim}", if ok { "x" } else { " " });
        all_ok &= ok;
    }
    assert!(table1::matches_paper(), "matrix deviates from the paper");
    assert!(all_ok, "a verification claim failed");

    let mut csv = String::from("method,individuals,employer_size,employer_shape\n");
    for r in &rows {
        let _ = writeln!(
            csv,
            "{},{},{},{}",
            r.method.replace(',', ";"),
            r.individuals,
            r.employer_size,
            r.employer_shape
        );
    }
    let printed = write_results(&results_dir(), "table1", &md, &csv, &rows).expect("write");
    println!("{printed}");
}
