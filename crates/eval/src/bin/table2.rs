//! Regenerate Table 2: minimum ε given α and δ for the Smooth Laplace
//! mechanism, side-by-side with the paper's printed values.
//!
//! Usage: `cargo run -p eval --release --bin table2`

use eval::experiments::table2;
use eval::report::{results_dir, write_results};
use std::fmt::Write as _;

fn main() {
    let rows = table2::run();
    let mut md = String::from(
        "# Table 2: Minimum epsilon given alpha and delta (Smooth Laplace validity)\n\n\
         | delta | alpha | eps_min (constraint: 2 ln(1/delta) ln(1+alpha)) | eps (paper) |\n\
         |---|---|---|---|\n",
    );
    for r in &rows {
        let _ = writeln!(
            md,
            "| {} | {} | {:.3} | {} |",
            r.delta, r.alpha, r.epsilon_min, r.paper_epsilon
        );
    }
    md.push_str(
        "\nSee DESIGN.md section 6: the constraint-derived values match the paper's \
         delta = 5e-4 column for alpha in {.01, .10}; the delta = .05 column of the \
         paper appears to use a different convention.\n",
    );

    let mut csv = String::from("delta,alpha,epsilon_min,paper_epsilon\n");
    for r in &rows {
        let _ = writeln!(
            csv,
            "{},{},{},{}",
            r.delta, r.alpha, r.epsilon_min, r.paper_epsilon
        );
    }
    let printed = write_results(&results_dir(), "table2", &md, &csv, &rows).expect("write");
    println!("{printed}");
}
