//! Figure 1: average L1 error ratio of releasing the Workload 1 marginal
//! (Census place × NAICS sector × ownership) compared to the current SDL
//! system — overall and stratified by place population — plus the
//! Truncated Laplace series of Finding 6.

use super::{grid_params, plottable, release_cells, Series};
use crate::metrics::{l1_error, l1_error_over};
use crate::runner::{ExperimentContext, TrialSpec};
use eree_core::MechanismKind;
use graphdp::TruncatedTabulation;
use lodes::PlaceSizeClass;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tabulate::stratify_by_place_size;

/// One plotted point of Figure 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure1Row {
    /// Mechanism series label.
    pub series: String,
    /// α (0 for the Truncated Laplace rows, which have no α).
    pub alpha: f64,
    /// Privacy-loss parameter ε.
    pub epsilon: f64,
    /// Stratum label; `"overall"` for the headline panel.
    pub stratum: String,
    /// Average (over trials) total L1 error of the mechanism divided by
    /// the SDL release's total L1 error on the same cells.
    pub l1_ratio: f64,
}

/// Run the Figure 1 experiment.
pub fn run(ctx: &ExperimentContext, trials: &TrialSpec) -> Vec<Figure1Row> {
    let truth = &ctx.sdl_w1.truth;
    let strata = stratify_by_place_size(truth, &ctx.dataset);

    // SDL denominators: overall and per stratum.
    let sdl_overall = l1_error(truth, &ctx.sdl_w1.published);
    let sdl_by_stratum: Vec<(PlaceSizeClass, f64)> = strata
        .iter()
        .map(|(&class, keys)| (class, l1_error_over(truth, &ctx.sdl_w1.published, keys)))
        .collect();

    let mut rows = Vec::new();
    // Average per-trial errors (overall + strata) for one series point and
    // append the resulting ratio rows.
    #[allow(clippy::too_many_arguments)]
    fn push_ratios<F>(
        series: &Series,
        alpha: f64,
        epsilon: f64,
        rows: &mut Vec<Figure1Row>,
        trials: &TrialSpec,
        truth: &tabulate::Marginal,
        strata: &std::collections::BTreeMap<PlaceSizeClass, Vec<tabulate::CellKey>>,
        sdl_overall: f64,
        sdl_by_stratum: &[(PlaceSizeClass, f64)],
        mut release: F,
    ) where
        F: FnMut(u64) -> std::collections::BTreeMap<tabulate::CellKey, f64>,
    {
        let mut acc_overall = 0.0;
        let mut acc_strata = vec![0.0; sdl_by_stratum.len()];
        for t in 0..trials.trials {
            let published = release(trials.seed(t));
            acc_overall += l1_error(truth, &published);
            for (i, (class, _)) in sdl_by_stratum.iter().enumerate() {
                acc_strata[i] += l1_error_over(truth, &published, &strata[class]);
            }
        }
        let n = trials.trials as f64;
        rows.push(Figure1Row {
            series: series.label(),
            alpha,
            epsilon,
            stratum: "overall".to_string(),
            l1_ratio: (acc_overall / n) / sdl_overall,
        });
        for (i, (class, sdl_err)) in sdl_by_stratum.iter().enumerate() {
            if *sdl_err > 0.0 {
                rows.push(Figure1Row {
                    series: series.label(),
                    alpha,
                    epsilon,
                    stratum: class.label().to_string(),
                    l1_ratio: (acc_strata[i] / n) / sdl_err,
                });
            }
        }
    }

    // The three ER-EE mechanisms over the (α, ε) grid.
    for kind in MechanismKind::ALL {
        for &alpha in &ExperimentContext::ALPHA_GRID {
            for &epsilon in &ExperimentContext::EPSILON_GRID {
                if !plottable(kind, alpha, epsilon, ExperimentContext::DELTA) {
                    continue;
                }
                let params = grid_params(kind, alpha, epsilon, ExperimentContext::DELTA);
                push_ratios(
                    &Series::Mechanism(kind),
                    alpha,
                    epsilon,
                    &mut rows,
                    trials,
                    truth,
                    &strata,
                    sdl_overall,
                    &sdl_by_stratum,
                    |seed| {
                        release_cells(truth, kind, &params, seed)
                            .expect("plottable() pre-checked validity")
                    },
                );
            }
        }
    }

    // Truncated Laplace (Finding 6): θ sweep, no α. The projection and
    // tabulation are precomputed once per θ; trials only redraw noise.
    for &theta in &ExperimentContext::THETA_GRID {
        let tabulation = TruncatedTabulation::new(&ctx.dataset, &tabulate::workload1(), theta);
        for &epsilon in &ExperimentContext::EPSILON_GRID {
            push_ratios(
                &Series::TruncatedLaplace(theta),
                0.0,
                epsilon,
                &mut rows,
                trials,
                truth,
                &strata,
                sdl_overall,
                &sdl_by_stratum,
                |seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    tabulation.release_counts(epsilon, &mut rng)
                },
            );
        }
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EvalScale;

    fn quick_rows() -> Vec<Figure1Row> {
        let ctx = ExperimentContext::with_seed(EvalScale::Small, 5);
        let trials = TrialSpec {
            trials: 3,
            base_seed: 11,
        };
        run(&ctx, &trials)
    }

    #[test]
    fn produces_expected_grid_shape() {
        let rows = quick_rows();
        // Every row has a positive finite ratio.
        for r in &rows {
            assert!(r.l1_ratio.is_finite() && r.l1_ratio > 0.0, "{r:?}");
        }
        // Overall rows exist for each mechanism at the baseline point.
        for label in ["Log-Laplace", "Smooth Laplace", "Smooth Gamma"] {
            assert!(
                rows.iter().any(|r| r.series == label
                    && r.alpha == 0.1
                    && r.epsilon == 2.0
                    && r.stratum == "overall"),
                "missing {label} baseline point"
            );
        }
        // Truncated Laplace series present.
        assert!(rows.iter().any(|r| r.series.starts_with("Truncated")));
    }

    #[test]
    fn smooth_laplace_beats_truncated_laplace() {
        // Finding 6's qualitative claim at the paper's baseline (eps=4).
        let rows = quick_rows();
        let ours = rows
            .iter()
            .filter(|r| {
                r.series == "Smooth Laplace"
                    && r.epsilon == 4.0
                    && r.alpha == 0.1
                    && r.stratum == "overall"
            })
            .map(|r| r.l1_ratio)
            .next()
            .expect("smooth laplace at eps=4");
        for theta_row in rows.iter().filter(|r| {
            r.series.starts_with("Truncated") && r.epsilon == 4.0 && r.stratum == "overall"
        }) {
            assert!(
                theta_row.l1_ratio > ours,
                "Truncated Laplace ({}) ratio {} should exceed Smooth Laplace {}",
                theta_row.series,
                theta_row.l1_ratio,
                ours
            );
        }
    }

    #[test]
    fn error_ratio_decreases_with_epsilon() {
        let rows = quick_rows();
        let series: Vec<f64> = ExperimentContext::EPSILON_GRID
            .iter()
            .filter_map(|&eps| {
                rows.iter()
                    .find(|r| {
                        r.series == "Smooth Laplace"
                            && r.alpha == 0.1
                            && (r.epsilon - eps).abs() < 1e-9
                            && r.stratum == "overall"
                    })
                    .map(|r| r.l1_ratio)
            })
            .collect();
        assert!(series.len() >= 2);
        assert!(
            series.first().unwrap() > series.last().unwrap(),
            "ratio should fall with epsilon: {series:?}"
        );
    }
}
