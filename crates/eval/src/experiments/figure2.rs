//! Figure 2: Spearman rank correlation between the ordering of Workload 1
//! cells by our mechanisms' noisy counts and the ordering by the current
//! SDL system's published counts (Ranking 1), overall and by place-size
//! stratum, plus the Truncated Laplace series.

use super::{grid_params, plottable, release_cells, Series};
use crate::metrics::spearman;
use crate::runner::{ExperimentContext, TrialSpec};
use eree_core::MechanismKind;
use graphdp::TruncatedTabulation;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tabulate::{stratify_by_place_size, CellKey};

/// One plotted point of Figure 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure2Row {
    /// Mechanism series label.
    pub series: String,
    /// α (0 for Truncated Laplace rows).
    pub alpha: f64,
    /// Privacy-loss parameter ε.
    pub epsilon: f64,
    /// Stratum label; `"overall"` for the headline panel.
    pub stratum: String,
    /// Average (over trials) Spearman correlation with the SDL ordering.
    pub spearman: f64,
}

fn correlation_for(
    sdl: &BTreeMap<CellKey, f64>,
    ours: &BTreeMap<CellKey, f64>,
    keys: &[CellKey],
) -> Option<f64> {
    let a: Vec<f64> = keys
        .iter()
        .map(|k| sdl.get(k).copied().unwrap_or(0.0))
        .collect();
    let b: Vec<f64> = keys
        .iter()
        .map(|k| ours.get(k).copied().unwrap_or(0.0))
        .collect();
    spearman(&a, &b)
}

/// Run the Figure 2 experiment.
pub fn run(ctx: &ExperimentContext, trials: &TrialSpec) -> Vec<Figure2Row> {
    let truth = &ctx.sdl_w1.truth;
    let strata = stratify_by_place_size(truth, &ctx.dataset);
    let all_keys: Vec<CellKey> = truth.iter().map(|(k, _)| k).collect();

    let mut panels: Vec<(String, Vec<CellKey>)> = vec![("overall".to_string(), all_keys)];
    for (class, keys) in &strata {
        if keys.len() >= 3 {
            panels.push((class.label().to_string(), keys.clone()));
        }
    }

    let mut rows = Vec::new();
    // Average per-trial Spearman correlations for one series point and
    // append the resulting rows.
    #[allow(clippy::too_many_arguments)]
    fn push_correlations<F>(
        series: &Series,
        alpha: f64,
        epsilon: f64,
        rows: &mut Vec<Figure2Row>,
        trials: &TrialSpec,
        sdl: &BTreeMap<CellKey, f64>,
        panels: &[(String, Vec<CellKey>)],
        mut release: F,
    ) where
        F: FnMut(u64) -> BTreeMap<CellKey, f64>,
    {
        let mut acc = vec![0.0; panels.len()];
        let mut counts = vec![0usize; panels.len()];
        for t in 0..trials.trials {
            let published = release(trials.seed(t));
            for (i, (_, keys)) in panels.iter().enumerate() {
                if let Some(rho) = correlation_for(sdl, &published, keys) {
                    acc[i] += rho;
                    counts[i] += 1;
                }
            }
        }
        for (i, (label, _)) in panels.iter().enumerate() {
            if counts[i] > 0 {
                rows.push(Figure2Row {
                    series: series.label(),
                    alpha,
                    epsilon,
                    stratum: label.clone(),
                    spearman: acc[i] / counts[i] as f64,
                });
            }
        }
    }

    for kind in MechanismKind::ALL {
        for &alpha in &ExperimentContext::ALPHA_GRID {
            for &epsilon in &ExperimentContext::EPSILON_GRID {
                if !plottable(kind, alpha, epsilon, ExperimentContext::DELTA) {
                    continue;
                }
                let params = grid_params(kind, alpha, epsilon, ExperimentContext::DELTA);
                push_correlations(
                    &Series::Mechanism(kind),
                    alpha,
                    epsilon,
                    &mut rows,
                    trials,
                    &ctx.sdl_w1.published,
                    &panels,
                    |seed| {
                        release_cells(truth, kind, &params, seed)
                            .expect("plottable() pre-checked validity")
                    },
                );
            }
        }
    }

    for &theta in &ExperimentContext::THETA_GRID {
        let tabulation = TruncatedTabulation::new(&ctx.dataset, &tabulate::workload1(), theta);
        for &epsilon in &ExperimentContext::EPSILON_GRID {
            push_correlations(
                &Series::TruncatedLaplace(theta),
                0.0,
                epsilon,
                &mut rows,
                trials,
                &ctx.sdl_w1.published,
                &panels,
                |seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    tabulation.release_counts(epsilon, &mut rng)
                },
            );
        }
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EvalScale;

    fn quick_rows() -> Vec<Figure2Row> {
        let ctx = ExperimentContext::with_seed(EvalScale::Small, 5);
        let trials = TrialSpec {
            trials: 3,
            base_seed: 21,
        };
        run(&ctx, &trials)
    }

    #[test]
    fn correlations_are_valid_and_improve_with_epsilon() {
        let rows = quick_rows();
        for r in &rows {
            assert!(
                (-1.0..=1.0).contains(&r.spearman),
                "correlation out of range: {r:?}"
            );
        }
        // Smooth Laplace overall: eps=4 must beat eps=0.25 handily.
        let get = |eps: f64| {
            rows.iter()
                .find(|r| {
                    r.series == "Smooth Laplace"
                        && r.alpha == 0.1
                        && (r.epsilon - eps).abs() < 1e-9
                        && r.stratum == "overall"
                })
                .map(|r| r.spearman)
        };
        let low = get(0.25);
        let high = get(4.0).expect("eps=4 point");
        if let Some(low) = low {
            assert!(high > low, "rho(eps=4)={high} vs rho(eps=0.25)={low}");
        }
        // High-epsilon Smooth Laplace correlation approaches 1 (Finding 1).
        assert!(high > 0.8, "rho at eps=4: {high}");
    }

    #[test]
    fn truncated_laplace_ranks_poorly() {
        // Finding 6: correlation no better than ~0.7 for theta=2 even at
        // large epsilon.
        let rows = quick_rows();
        let tl2 = rows
            .iter()
            .filter(|r| r.series == "Truncated Laplace (theta=2)" && r.stratum == "overall")
            .map(|r| r.spearman)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            tl2 < 0.85,
            "theta=2 best correlation {tl2} should stay well below 1"
        );
    }
}
