//! Figure 3: average L1 error ratio for releasing *single* (sex ×
//! education) queries on the workplace marginal (Workload 2), compared to
//! the current SDL system.
//!
//! Each cell of the place × industry × ownership × sex × education
//! marginal is treated as an individually-released single count under weak
//! (α,ε)-ER-EE privacy — so the mechanism is instantiated at the full
//! per-query ε, with no sequential-composition multiplier.

use super::{grid_params, plottable, release_cells, Series};
use crate::metrics::{l1_error, l1_error_over};
use crate::runner::{ExperimentContext, TrialSpec};
use eree_core::MechanismKind;
use lodes::PlaceSizeClass;
use serde::{Deserialize, Serialize};
use tabulate::stratify_by_place_size;

/// One plotted point of Figure 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure3Row {
    /// Mechanism series label.
    pub series: String,
    /// α.
    pub alpha: f64,
    /// Per-query privacy-loss parameter ε.
    pub epsilon: f64,
    /// Stratum label; `"overall"` for the headline panel.
    pub stratum: String,
    /// Average single-query L1 error divided by the SDL system's.
    pub l1_ratio: f64,
}

/// Run the Figure 3 experiment.
pub fn run(ctx: &ExperimentContext, trials: &TrialSpec) -> Vec<Figure3Row> {
    let truth = &ctx.sdl_w3.truth;
    let strata = stratify_by_place_size(truth, &ctx.dataset);

    let sdl_overall = l1_error(truth, &ctx.sdl_w3.published);
    let sdl_by_stratum: Vec<(PlaceSizeClass, f64)> = strata
        .iter()
        .map(|(&class, keys)| (class, l1_error_over(truth, &ctx.sdl_w3.published, keys)))
        .collect();

    let mut rows = Vec::new();
    for kind in MechanismKind::ALL {
        for &alpha in &ExperimentContext::ALPHA_GRID {
            for &epsilon in &ExperimentContext::EPSILON_GRID {
                if !plottable(kind, alpha, epsilon, ExperimentContext::DELTA) {
                    continue;
                }
                let params = grid_params(kind, alpha, epsilon, ExperimentContext::DELTA);
                let mut acc_overall = 0.0;
                let mut acc_strata = vec![0.0; sdl_by_stratum.len()];
                for t in 0..trials.trials {
                    let published = release_cells(truth, kind, &params, trials.seed(t))
                        .expect("plottable() pre-checked validity");
                    acc_overall += l1_error(truth, &published);
                    for (i, (class, _)) in sdl_by_stratum.iter().enumerate() {
                        acc_strata[i] += l1_error_over(truth, &published, &strata[class]);
                    }
                }
                let n = trials.trials as f64;
                let series = Series::Mechanism(kind);
                rows.push(Figure3Row {
                    series: series.label(),
                    alpha,
                    epsilon,
                    stratum: "overall".to_string(),
                    l1_ratio: (acc_overall / n) / sdl_overall,
                });
                for (i, (class, sdl_err)) in sdl_by_stratum.iter().enumerate() {
                    if *sdl_err > 0.0 {
                        rows.push(Figure3Row {
                            series: series.label(),
                            alpha,
                            epsilon,
                            stratum: class.label().to_string(),
                            l1_ratio: (acc_strata[i] / n) / sdl_err,
                        });
                    }
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EvalScale;

    #[test]
    fn single_queries_are_cheap_at_high_epsilon() {
        let ctx = ExperimentContext::with_seed(EvalScale::Small, 5);
        let trials = TrialSpec {
            trials: 3,
            base_seed: 31,
        };
        let rows = run(&ctx, &trials);
        assert!(!rows.is_empty());
        // Finding 2: at eps = 4, Smooth Laplace outperforms SDL for all
        // alpha values tested — ratio below ~1.
        for r in rows
            .iter()
            .filter(|r| r.series == "Smooth Laplace" && r.epsilon == 4.0 && r.stratum == "overall")
        {
            assert!(
                r.l1_ratio < 1.5,
                "Smooth Laplace at eps=4 should be near or below SDL: {r:?}"
            );
        }
        // Ratios fall with epsilon for Log-Laplace too.
        let ll: Vec<f64> = ExperimentContext::EPSILON_GRID
            .iter()
            .filter_map(|&eps| {
                rows.iter()
                    .find(|r| {
                        r.series == "Log-Laplace"
                            && r.alpha == 0.05
                            && (r.epsilon - eps).abs() < 1e-9
                            && r.stratum == "overall"
                    })
                    .map(|r| r.l1_ratio)
            })
            .collect();
        assert!(ll.len() >= 2);
        assert!(ll.first().unwrap() > ll.last().unwrap(), "{ll:?}");
    }
}
