//! Figure 4 (Appendix C): average L1 error ratio of releasing the *full*
//! worker-and-workplace marginal (Workload 3: place × industry × ownership
//! × sex × education) compared to the current SDL system.
//!
//! Releasing all cells requires weak (α,ε)-ER-EE privacy with sequential
//! composition over the d = |sex×education| = 8 worker cells (Sec 8), so a
//! total budget ε funds each cell at ε/8 — which is why this figure's ε
//! axis extends to 20 and why errors are an order of magnitude above
//! Figure 3's single queries (Finding 3).

use super::{grid_params, plottable, release_cells, Series};
use crate::metrics::{l1_error, l1_error_over};
use crate::runner::{ExperimentContext, TrialSpec};
use eree_core::accountant::ReleaseCost;
use eree_core::neighbors::NeighborKind;
use eree_core::{MechanismKind, PrivacyParams};
use lodes::PlaceSizeClass;
use serde::{Deserialize, Serialize};
use tabulate::{stratify_by_place_size, workload3};

/// One plotted point of Figure 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure4Row {
    /// Mechanism series label.
    pub series: String,
    /// α.
    pub alpha: f64,
    /// Total privacy-loss budget ε for the whole marginal (the per-cell
    /// budget is ε divided by the worker-domain size 8).
    pub epsilon: f64,
    /// Per-cell ε after the weak-composition split.
    pub per_cell_epsilon: f64,
    /// Stratum label; `"overall"` for the headline panel.
    pub stratum: String,
    /// Average total L1 error divided by the SDL system's.
    pub l1_ratio: f64,
}

/// Run the Figure 4 experiment.
pub fn run(ctx: &ExperimentContext, trials: &TrialSpec) -> Vec<Figure4Row> {
    let spec = workload3();
    let truth = &ctx.sdl_w3.truth;
    let strata = stratify_by_place_size(truth, &ctx.dataset);

    let sdl_overall = l1_error(truth, &ctx.sdl_w3.published);
    let sdl_by_stratum: Vec<(PlaceSizeClass, f64)> = strata
        .iter()
        .map(|(&class, keys)| (class, l1_error_over(truth, &ctx.sdl_w3.published, keys)))
        .collect();

    let mut rows = Vec::new();
    for kind in MechanismKind::ALL {
        for &alpha in &ExperimentContext::ALPHA_GRID {
            for &epsilon in &ExperimentContext::EPSILON_GRID_WIDE {
                // Split the total budget across the worker domain (weak
                // regime), then check validity at the per-cell parameters.
                let total = match kind {
                    MechanismKind::SmoothLaplace => {
                        PrivacyParams::approximate(alpha, epsilon, ExperimentContext::DELTA)
                    }
                    _ => PrivacyParams::pure(alpha, epsilon),
                };
                let per_cell = ReleaseCost::per_cell_for_total(&spec, &total, NeighborKind::Weak);
                if !plottable(kind, alpha, per_cell.epsilon, per_cell.delta) {
                    continue;
                }
                let params = grid_params(kind, alpha, per_cell.epsilon, per_cell.delta);
                let mut acc_overall = 0.0;
                let mut acc_strata = vec![0.0; sdl_by_stratum.len()];
                for t in 0..trials.trials {
                    let published = release_cells(truth, kind, &params, trials.seed(t))
                        .expect("plottable() pre-checked validity");
                    acc_overall += l1_error(truth, &published);
                    for (i, (class, _)) in sdl_by_stratum.iter().enumerate() {
                        acc_strata[i] += l1_error_over(truth, &published, &strata[class]);
                    }
                }
                let n = trials.trials as f64;
                let series = Series::Mechanism(kind);
                rows.push(Figure4Row {
                    series: series.label(),
                    alpha,
                    epsilon,
                    per_cell_epsilon: per_cell.epsilon,
                    stratum: "overall".to_string(),
                    l1_ratio: (acc_overall / n) / sdl_overall,
                });
                for (i, (class, sdl_err)) in sdl_by_stratum.iter().enumerate() {
                    if *sdl_err > 0.0 {
                        rows.push(Figure4Row {
                            series: series.label(),
                            alpha,
                            epsilon,
                            per_cell_epsilon: per_cell.epsilon,
                            stratum: class.label().to_string(),
                            l1_ratio: (acc_strata[i] / n) / sdl_err,
                        });
                    }
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EvalScale;

    #[test]
    fn marginal_release_is_costlier_than_single_queries() {
        let ctx = ExperimentContext::with_seed(EvalScale::Small, 5);
        let trials = TrialSpec {
            trials: 3,
            base_seed: 41,
        };
        let f4 = run(&ctx, &trials);
        assert!(!f4.is_empty());
        // Per-cell budget is total/8.
        for r in &f4 {
            assert!((r.per_cell_epsilon - r.epsilon / 8.0).abs() < 1e-12);
        }
        // Finding 3: Smooth Laplace within a factor ~10 at eps >= 4 for
        // the smallest alpha. (Loose bound: small-scale data is noisy.)
        let sl = f4
            .iter()
            .find(|r| {
                r.series == "Smooth Laplace"
                    && r.alpha == 0.01
                    && r.epsilon == 8.0
                    && r.stratum == "overall"
            })
            .expect("smooth laplace point");
        assert!(sl.l1_ratio < 30.0, "ratio {}", sl.l1_ratio);

        // Compare with figure 3 at matched (mech, alpha, per-cell eps):
        // the figure-4 ratio must be at least as large (same mechanism,
        // same per-cell budget, identical workload) — they are in fact
        // equal by construction here; the *total* budget differs 8x.
        let f3 = crate::experiments::figure3::run(&ctx, &trials);
        let f3_point = f3
            .iter()
            .find(|r| {
                r.series == "Smooth Laplace"
                    && r.alpha == 0.01
                    && (r.epsilon - 1.0).abs() < 1e-9
                    && r.stratum == "overall"
            })
            .expect("figure 3 point");
        let f4_point = f4
            .iter()
            .find(|r| {
                r.series == "Smooth Laplace"
                    && r.alpha == 0.01
                    && (r.epsilon - 8.0).abs() < 1e-9
                    && r.stratum == "overall"
            })
            .expect("figure 4 point");
        // Same per-cell epsilon (1.0): ratios should agree closely.
        assert!(
            (f3_point.l1_ratio - f4_point.l1_ratio).abs() / f3_point.l1_ratio < 0.5,
            "f3 {} vs f4 {}",
            f3_point.l1_ratio,
            f4_point.l1_ratio
        );
    }
}
