//! Figure 5: Spearman rank correlation for Ranking 2 — ordering the
//! Workload 1 cells by their count of female workers holding a bachelor's
//! degree or higher, our mechanisms vs the current SDL system.
//!
//! The ranked quantity is a *filtered* count (establishment attributes plus
//! a worker predicate), so the formal guarantee is weak (α,ε)-ER-EE
//! privacy; each cell is a single query at the full per-query ε, and the
//! cells parallel-compose across establishments (Thm 7.4).

use super::{grid_params, plottable, release_cells, Series};
use crate::metrics::spearman;
use crate::runner::{ExperimentContext, TrialSpec};
use eree_core::MechanismKind;
use sdl::{SdlConfig, SdlPublisher};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tabulate::{ranking2_expr, stratify_by_place_size, workload1, CellKey};

/// One plotted point of Figure 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure5Row {
    /// Mechanism series label.
    pub series: String,
    /// α.
    pub alpha: f64,
    /// Per-query privacy-loss parameter ε.
    pub epsilon: f64,
    /// Stratum label; `"overall"` for the headline panel.
    pub stratum: String,
    /// Average Spearman correlation with the SDL ordering.
    pub spearman: f64,
}

/// Run the Figure 5 experiment.
pub fn run(ctx: &ExperimentContext, trials: &TrialSpec) -> Vec<Figure5Row> {
    // Truth: female × bachelor's+ counts per Workload 1 cell, tabulated
    // over the context's shared columnar index. The population is the
    // declarative `ranking2_expr()` filter, so this experiment exercises
    // the same filter definition a release pipeline would record in
    // provenance.
    let filter = ranking2_expr();
    let truth = ctx.index.marginal_expr(&workload1(), &filter);
    // SDL baseline on the same filtered population (sharing the index).
    let sdl = SdlPublisher::new(&ctx.dataset, SdlConfig::default()).publish_expr_on(
        &ctx.index,
        &ctx.dataset,
        &workload1(),
        &filter,
    );

    let strata = stratify_by_place_size(&truth, &ctx.dataset);
    let all_keys: Vec<CellKey> = truth.iter().map(|(k, _)| k).collect();
    let mut panels: Vec<(String, Vec<CellKey>)> = vec![("overall".to_string(), all_keys)];
    for (class, keys) in &strata {
        if keys.len() >= 3 {
            panels.push((class.label().to_string(), keys.clone()));
        }
    }

    let mut rows = Vec::new();
    for kind in MechanismKind::ALL {
        for &alpha in &ExperimentContext::ALPHA_GRID {
            for &epsilon in &ExperimentContext::EPSILON_GRID {
                if !plottable(kind, alpha, epsilon, ExperimentContext::DELTA) {
                    continue;
                }
                let params = grid_params(kind, alpha, epsilon, ExperimentContext::DELTA);
                let mut acc = vec![0.0; panels.len()];
                let mut counts = vec![0usize; panels.len()];
                for t in 0..trials.trials {
                    let published: BTreeMap<CellKey, f64> =
                        release_cells(&truth, kind, &params, trials.seed(t))
                            .expect("plottable() pre-checked validity");
                    for (i, (_, keys)) in panels.iter().enumerate() {
                        let a: Vec<f64> = keys
                            .iter()
                            .map(|k| sdl.published.get(k).copied().unwrap_or(0.0))
                            .collect();
                        let b: Vec<f64> = keys
                            .iter()
                            .map(|k| published.get(k).copied().unwrap_or(0.0))
                            .collect();
                        if let Some(rho) = spearman(&a, &b) {
                            acc[i] += rho;
                            counts[i] += 1;
                        }
                    }
                }
                let series = Series::Mechanism(kind);
                for (i, (label, _)) in panels.iter().enumerate() {
                    if counts[i] > 0 {
                        rows.push(Figure5Row {
                            series: series.label(),
                            alpha,
                            epsilon,
                            stratum: label.clone(),
                            spearman: acc[i] / counts[i] as f64,
                        });
                    }
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EvalScale;

    #[test]
    fn female_college_ranking_improves_with_epsilon() {
        let ctx = ExperimentContext::with_seed(EvalScale::Small, 5);
        let trials = TrialSpec {
            trials: 3,
            base_seed: 51,
        };
        let rows = run(&ctx, &trials);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!((-1.0..=1.0).contains(&r.spearman), "{r:?}");
        }
        // Smooth Laplace approaches good correlation at eps = 4
        // (Finding 2: "only the Smooth Laplace algorithm approaches
        // relative error of 1 for eps at least 4" for the overall panel).
        let high = rows
            .iter()
            .find(|r| {
                r.series == "Smooth Laplace"
                    && r.alpha == 0.1
                    && r.epsilon == 4.0
                    && r.stratum == "overall"
            })
            .expect("smooth laplace eps=4");
        let low = rows.iter().find(|r| {
            r.series == "Smooth Laplace"
                && r.alpha == 0.1
                && r.epsilon == 0.25
                && r.stratum == "overall"
        });
        if let Some(low) = low {
            assert!(high.spearman > low.spearman);
        }
        assert!(high.spearman > 0.5, "rho {}", high.spearman);
    }
}
