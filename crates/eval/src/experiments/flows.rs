//! QWI job-flow release accuracy: relative L1 error of engine-released
//! B / JC / JD statistics over a two-quarter panel, across the
//! (mechanism, ε) grid.
//!
//! This is the flow counterpart of the level figures: every released
//! number goes end-to-end through
//! [`ReleaseRequest::flows`](eree_core::engine::ReleaseRequest::flows) and a
//! ledger-checked engine, pricing B + JC + JD per cell and deriving
//! E = B + JC − JD as free post-processing. The flow noise scale is
//! driven by the per-flow maximum establishment *contribution* (largest
//! single-establishment gain/loss), not the establishment's level size —
//! the reason flow releases stay accurate even where levels are
//! concentrated.

use super::{grid_params, plottable, release_flow_cells, Series};
use crate::runner::{ExperimentContext, TrialSpec};
use eree_core::MechanismKind;
use lodes::{DatasetPanel, PanelConfig};
use serde::{Deserialize, Serialize};
use tabulate::{compute_flows, workload1, FlowMarginal};

/// One plotted point of the flows exhibit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlowsRow {
    /// Mechanism series label.
    pub series: String,
    /// α of the release.
    pub alpha: f64,
    /// Per-cell privacy-loss parameter ε.
    pub epsilon: f64,
    /// Which flow statistic: `"beginning"`, `"job_creation"`, or
    /// `"job_destruction"`.
    pub statistic: String,
    /// Average (over trials) total L1 error of the released statistic,
    /// divided by the statistic's true total.
    pub rel_l1: f64,
}

/// The fixed α of the flows exhibit (the paper's headline α).
pub const ALPHA: f64 = 0.1;

/// The two-quarter panel the flows are tabulated over, derived from the
/// context's scale with the canonical data seed.
pub fn panel(ctx: &ExperimentContext) -> DatasetPanel {
    DatasetPanel::generate(
        &ctx.scale.generator_config(0xEEE5_2017),
        &PanelConfig {
            quarters: 2,
            growth_sigma: 0.08,
            death_rate: 0.02,
            seed: 0x0F10,
        },
    )
}

/// Run the flows experiment.
pub fn run(ctx: &ExperimentContext, trials: &TrialSpec) -> Vec<FlowsRow> {
    let panel = panel(ctx);
    let truth = compute_flows(panel.quarter(0), panel.quarter(1), &workload1());
    let totals = truth.totals();
    let denominators = [
        ("beginning", totals.beginning as f64),
        ("job_creation", totals.job_creation as f64),
        ("job_destruction", totals.job_destruction as f64),
    ];

    let mut rows = Vec::new();
    for kind in MechanismKind::ALL {
        for &epsilon in &ExperimentContext::EPSILON_GRID {
            if !plottable(kind, ALPHA, epsilon, ExperimentContext::DELTA) {
                continue;
            }
            let params = grid_params(kind, ALPHA, epsilon, ExperimentContext::DELTA);
            let mut acc = [0.0f64; 3];
            for t in 0..trials.trials {
                let released = release_flow_cells(&truth, kind, &params, trials.seed(t))
                    .expect("plottable() pre-checked validity");
                for (key, stats) in truth.iter() {
                    let cell = &released[&key];
                    acc[0] += (cell.beginning - stats.beginning as f64).abs();
                    acc[1] += (cell.job_creation - stats.job_creation as f64).abs();
                    acc[2] += (cell.job_destruction - stats.job_destruction as f64).abs();
                }
            }
            let n = trials.trials as f64;
            for (i, (statistic, denom)) in denominators.iter().enumerate() {
                if *denom > 0.0 {
                    rows.push(FlowsRow {
                        series: Series::Mechanism(kind).label(),
                        alpha: ALPHA,
                        epsilon,
                        statistic: statistic.to_string(),
                        rel_l1: (acc[i] / n) / denom,
                    });
                }
            }
        }
    }
    rows
}

/// Sanity anchor exposed for tests: the truth the experiment releases.
pub fn truth(ctx: &ExperimentContext) -> FlowMarginal {
    let panel = panel(ctx);
    compute_flows(panel.quarter(0), panel.quarter(1), &workload1())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::EvalScale;

    #[test]
    fn produces_finite_rows_that_improve_with_epsilon() {
        let ctx = ExperimentContext::with_seed(EvalScale::Small, 5);
        let trials = TrialSpec {
            trials: 3,
            base_seed: 11,
        };
        let rows = run(&ctx, &trials);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.rel_l1.is_finite() && r.rel_l1 > 0.0, "{r:?}");
        }
        // All three statistics present for Log-Laplace at the baseline.
        for statistic in ["beginning", "job_creation", "job_destruction"] {
            assert!(
                rows.iter().any(|r| r.series == "Log-Laplace"
                    && r.epsilon == 2.0
                    && r.statistic == statistic),
                "missing {statistic} baseline point"
            );
        }
        // More budget, less error (Log-Laplace job creation).
        let jc = |eps: f64| {
            rows.iter()
                .find(|r| {
                    r.series == "Log-Laplace"
                        && (r.epsilon - eps).abs() < 1e-9
                        && r.statistic == "job_creation"
                })
                .map(|r| r.rel_l1)
                .expect("grid point")
        };
        assert!(
            jc(0.25) > jc(4.0),
            "relative error should fall with epsilon: {} vs {}",
            jc(0.25),
            jc(4.0)
        );
    }
}
