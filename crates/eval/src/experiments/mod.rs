//! One module per paper exhibit.
//!
//! | Module | Paper exhibit | Workload |
//! |---|---|---|
//! | [`figure1`] | Fig. 1 + Finding 6 | W1 L1 error ratio vs SDL (incl. Truncated Laplace) |
//! | [`figure2`] | Fig. 2 | Ranking 1 Spearman correlation |
//! | [`figure3`] | Fig. 3 | W2 single-query L1 error ratio |
//! | [`figure4`] | Fig. 4 | W3 full-marginal L1 error ratio |
//! | [`figure5`] | Fig. 5 | Ranking 2 Spearman correlation |
//! | [`table1`]  | Table 1 | Requirement-satisfaction matrix |
//! | [`table2`]  | Table 2 | Minimum ε given (α, δ) |
//! | [`flows`]   | QWI flows | B/JC/JD relative L1 over a quarter pair |

pub mod figure1;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod flows;
pub mod table1;
pub mod table2;

use eree_core::engine::{ArtifactPayload, FlowRelease, ReleaseEngine, ReleaseRequest};
use eree_core::{Ledger, MechanismKind, PrivacyParams};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tabulate::{CellKey, FlowMarginal, Marginal};

/// A mechanism series in a figure: the three ER-EE mechanisms, or a
/// Truncated Laplace baseline at a given θ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Series {
    /// One of the paper's mechanisms.
    Mechanism(MechanismKind),
    /// Node-DP Truncated Laplace with degree bound θ.
    TruncatedLaplace(u32),
}

impl Series {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Series::Mechanism(kind) => kind.label().to_string(),
            Series::TruncatedLaplace(theta) => format!("Truncated Laplace (theta={theta})"),
        }
    }
}

/// Release every nonzero cell of a precomputed `truth` marginal with the
/// mechanism `kind` instantiated at *per-cell* parameters `params`.
///
/// This is the hot inner loop of the figures. Each call runs one
/// [`ReleaseRequest`] through a single-use [`ReleaseEngine`] whose ledger
/// holds exactly the request's induced total cost, so even the evaluation
/// sweeps exercise ledger-enforced composition accounting end to end; the
/// precomputed `truth` skips re-tabulating the marginal for every trial.
/// Returns `None` when the mechanism's validity constraint rejects the
/// parameters — the gaps in the paper's plots.
pub fn release_cells(
    truth: &Marginal,
    kind: MechanismKind,
    params: &PrivacyParams,
    seed: u64,
) -> Option<BTreeMap<CellKey, f64>> {
    let request = ReleaseRequest::marginal(truth.spec().clone())
        .mechanism(kind)
        .budget_per_cell(*params)
        .seed(seed);
    // Invalid per-cell parameters surface here, before any budget moves.
    let plan = request.plan().ok()?;
    let mut engine = ReleaseEngine::with_ledger(Ledger::new(PrivacyParams {
        alpha: params.alpha,
        epsilon: plan.cost.epsilon,
        delta: plan.cost.delta,
    }));
    let artifact = engine
        .execute_precomputed(truth, &request)
        .expect("exact ledger covers the request");
    match artifact.payload {
        ArtifactPayload::Cells(cells) => Some(cells),
        ArtifactPayload::Shapes(_) | ArtifactPayload::Flows(_) => {
            unreachable!("marginal request yields cells")
        }
    }
}

/// Release every cell of a precomputed `truth` flow marginal with the
/// mechanism `kind` at *per-cell* parameters `params` — the flow
/// counterpart of [`release_cells`], pricing B + JC + JD per cell on a
/// ledger holding exactly the request's induced cost. Returns `None` when
/// the mechanism's validity constraint rejects the parameters.
pub fn release_flow_cells(
    truth: &FlowMarginal,
    kind: MechanismKind,
    params: &PrivacyParams,
    seed: u64,
) -> Option<BTreeMap<CellKey, FlowRelease>> {
    let request = ReleaseRequest::flows(truth.spec().clone())
        .mechanism(kind)
        .budget_per_cell(*params)
        .seed(seed);
    let plan = request.plan().ok()?;
    let mut engine = ReleaseEngine::with_ledger(Ledger::new(PrivacyParams {
        alpha: params.alpha,
        epsilon: plan.cost.epsilon,
        delta: plan.cost.delta,
    }));
    let artifact = engine
        .execute_flows_precomputed(truth, &request)
        .expect("exact ledger covers the request");
    match artifact.payload {
        ArtifactPayload::Flows(cells) => Some(cells),
        ArtifactPayload::Cells(_) | ArtifactPayload::Shapes(_) => {
            unreachable!("flow request yields flows")
        }
    }
}

/// Whether a mechanism/parameter combination should be plotted, following
/// the paper's conventions: Smooth Gamma and Smooth Laplace are skipped
/// when their constraints reject (α, ε[, δ]); Log-Laplace is skipped when
/// its expectation is unbounded (λ ≥ 1, Lemma 8.2).
pub fn plottable(kind: MechanismKind, alpha: f64, epsilon: f64, delta: f64) -> bool {
    match kind {
        MechanismKind::LogLaplace => eree_core::definitions::log_laplace_bounded(alpha, epsilon),
        MechanismKind::SmoothGamma => eree_core::definitions::smooth_gamma_valid(alpha, epsilon),
        MechanismKind::SmoothLaplace => {
            eree_core::definitions::smooth_laplace_valid(alpha, epsilon, delta)
        }
    }
}

/// Parameters for one grid point, with δ applied only to Smooth Laplace.
pub fn grid_params(kind: MechanismKind, alpha: f64, epsilon: f64, delta: f64) -> PrivacyParams {
    match kind {
        MechanismKind::SmoothLaplace => PrivacyParams::approximate(alpha, epsilon, delta),
        _ => PrivacyParams::pure(alpha, epsilon),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{EvalScale, ExperimentContext};

    #[test]
    fn release_cells_respects_validity() {
        let ctx = ExperimentContext::with_seed(EvalScale::Small, 3);
        let truth = &ctx.sdl_w1.truth;
        // Valid: publishes all cells.
        let params = PrivacyParams::pure(0.1, 2.0);
        let rel = release_cells(truth, MechanismKind::SmoothGamma, &params, 1).unwrap();
        assert_eq!(rel.len(), truth.num_cells());
        // Invalid Smooth Gamma parameters.
        let bad = PrivacyParams::pure(0.3, 1.0);
        assert!(release_cells(truth, MechanismKind::SmoothGamma, &bad, 1).is_none());
    }

    #[test]
    fn plottable_matches_paper_conventions() {
        // Log-Laplace unbounded at eps=0.25, alpha=0.2.
        assert!(!plottable(MechanismKind::LogLaplace, 0.2, 0.25, 0.0));
        assert!(plottable(MechanismKind::LogLaplace, 0.2, 1.0, 0.0));
        // Smooth Laplace at delta=0.05 needs eps >= ~2 ln(20) ln(1.2) = 1.09
        // for alpha = 0.2.
        assert!(!plottable(MechanismKind::SmoothLaplace, 0.2, 1.0, 0.05));
        assert!(plottable(MechanismKind::SmoothLaplace, 0.2, 2.0, 0.05));
    }

    #[test]
    fn series_labels() {
        assert_eq!(
            Series::Mechanism(MechanismKind::LogLaplace).label(),
            "Log-Laplace"
        );
        assert_eq!(
            Series::TruncatedLaplace(50).label(),
            "Truncated Laplace (theta=50)"
        );
    }
}
