//! Table 1: privacy definitions and the statutory requirements they
//! satisfy.
//!
//! The matrix itself is analytical (encoded in
//! [`eree_core::definitions::requirement_matrix`]); this module renders it
//! and — unlike the paper, which proves the entries — *spot-verifies* the
//! load-bearing ones numerically:
//!
//! * edge-DP (DP over individuals) fails the employer-size requirement —
//!   via the additive disclosure band of Claim B.1;
//! * the ER-EE mechanisms satisfy all three requirements — via the
//!   Bayes-factor checks of `eree_core::pufferfish`.

use eree_core::definitions::{requirement_matrix, PrivacyMethod, Requirement, Satisfaction};
use serde::{Deserialize, Serialize};

/// One row of the rendered Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Privacy definition name.
    pub method: String,
    /// "Yes"/"No"/"Yes*" for the individuals requirement.
    pub individuals: String,
    /// Same for employer size.
    pub employer_size: String,
    /// Same for employer shape.
    pub employer_shape: String,
}

/// Render Table 1.
pub fn run() -> Vec<Table1Row> {
    requirement_matrix()
        .into_iter()
        .map(|(method, cells)| {
            let get = |req: Requirement| -> String {
                cells
                    .iter()
                    .find(|(r, _)| *r == req)
                    .map(|(_, s)| s.cell().to_string())
                    .expect("matrix covers all requirements")
            };
            Table1Row {
                method: method.label().to_string(),
                individuals: get(Requirement::Individuals),
                employer_size: get(Requirement::EmployerSize),
                employer_shape: get(Requirement::EmployerShape),
            }
        })
        .collect()
}

/// Numeric spot-checks of the matrix entries that drive the paper's
/// argument. Returns a list of (claim, verified) pairs.
pub fn verify() -> Vec<(String, bool)> {
    use eree_core::mechanisms::{LogLaplaceMechanism, SmoothGammaMechanism};
    use eree_core::pufferfish::{
        check_employee_requirement, check_employer_shape_requirement,
        check_employer_size_requirement,
    };
    use graphdp::EdgeLaplace;

    let mut results = Vec::new();

    // ER-EE privacy satisfies all three requirements (rows 4-5).
    let (alpha, eps) = (0.1, 1.0);
    let ll = LogLaplaceMechanism::new(alpha, eps);
    results.push((
        "ER-EE (Log-Laplace) satisfies individual requirement".to_string(),
        check_employee_requirement(&ll, eps, &[0, 10, 1000]),
    ));
    results.push((
        "ER-EE (Log-Laplace) satisfies size requirement".to_string(),
        check_employer_size_requirement(&ll, eps, alpha, &[20, 500]),
    ));
    results.push((
        "ER-EE (Log-Laplace) satisfies shape requirement".to_string(),
        check_employer_shape_requirement(&ll, eps, alpha, 500, &[0.1, 0.4]),
    ));
    let sg = SmoothGammaMechanism::new(alpha, 2.0).expect("valid params");
    results.push((
        "ER-EE (Smooth Gamma) satisfies size requirement".to_string(),
        check_employer_size_requirement(&sg, 2.0, alpha, &[20, 500]),
    ));

    // Edge-DP fails the size requirement (row 2): the additive band
    // ln(1/p)/eps is far narrower than alpha*size for large establishments,
    // i.e. the adversary CAN distinguish |e|=x from |e|=(1+alpha)x.
    let edge = EdgeLaplace::new(1.0);
    let band = edge.size_disclosure_band(0.01);
    let big_estab = 10_000.0;
    results.push((
        "Edge-DP fails size requirement for large establishments".to_string(),
        band < 0.1 * big_estab,
    ));

    results
}

/// Assert that the rendered matrix matches the paper's Table 1 exactly.
pub fn matches_paper() -> bool {
    let rows = run();
    let expect = [
        ("Input Noise Infusion", ["No", "No", "No"]),
        ("Differential Privacy (individuals", ["Yes", "No", "No"]),
        (
            "Differential Privacy (establishments",
            ["Yes", "Yes", "Yes"],
        ),
        ("ER-EE-privacy", ["Yes", "Yes", "Yes"]),
        ("Weak ER-EE privacy", ["Yes", "Yes*", "Yes"]),
    ];
    rows.len() == expect.len()
        && rows
            .iter()
            .zip(expect.iter())
            .all(|(row, (prefix, cells))| {
                row.method.starts_with(prefix)
                    && row.individuals == cells[0]
                    && row.employer_size == cells[1]
                    && row.employer_shape == cells[2]
            })
}

/// The satisfaction level of one matrix entry (re-exported convenience for
/// the binary).
pub fn entry(method: PrivacyMethod, requirement: Requirement) -> Satisfaction {
    requirement_matrix()
        .into_iter()
        .find(|(m, _)| *m == method)
        .and_then(|(_, cells)| {
            cells
                .iter()
                .find(|(r, _)| *r == requirement)
                .map(|(_, s)| *s)
        })
        .expect("matrix covers all pairs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        assert!(matches_paper());
    }

    #[test]
    fn verification_claims_all_pass() {
        for (claim, ok) in verify() {
            assert!(ok, "failed claim: {claim}");
        }
    }

    #[test]
    fn entry_lookup() {
        assert_eq!(
            entry(PrivacyMethod::InputNoiseInfusion, Requirement::Individuals),
            Satisfaction::No
        );
        assert_eq!(
            entry(PrivacyMethod::WeakEreePrivacy, Requirement::EmployerSize),
            Satisfaction::WeakAdversariesOnly
        );
    }
}
