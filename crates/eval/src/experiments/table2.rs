//! Table 2 (Appendix C): minimum values of ε given α and δ for the Smooth
//! Laplace mechanism.
//!
//! The minimum solves Algorithm 3's validity constraint
//! `α + 1 ≤ e^{ε/(2·ln(1/δ))}`, giving `ε_min = 2·ln(1/δ)·ln(1+α)`.
//! DESIGN.md §6 records how these constraint-derived values compare with
//! the numbers printed in the paper (they match the δ = 5×10⁻⁴ column for
//! α ∈ {.01, .10}; the δ = .05 column appears to use a different
//! convention). Both are emitted so EXPERIMENTS.md can show them side by
//! side.

use eree_core::definitions::min_epsilon_smooth_laplace;
use serde::{Deserialize, Serialize};

/// One row of the regenerated Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// δ.
    pub delta: f64,
    /// α.
    pub alpha: f64,
    /// Our constraint-derived ε minimum.
    pub epsilon_min: f64,
    /// The value printed in the paper, for comparison.
    pub paper_epsilon: f64,
}

/// The paper's printed grid.
const PAPER_VALUES: [(f64, f64, f64); 6] = [
    (0.05, 0.01, 0.105),
    (0.05, 0.10, 1.01),
    (0.05, 0.20, 1.932),
    (5e-4, 0.01, 0.15),
    (5e-4, 0.10, 1.45),
    (5e-4, 0.20, 2.13),
];

/// Regenerate Table 2.
pub fn run() -> Vec<Table2Row> {
    PAPER_VALUES
        .iter()
        .map(|&(delta, alpha, paper_epsilon)| Table2Row {
            delta,
            alpha,
            epsilon_min: min_epsilon_smooth_laplace(alpha, delta),
            paper_epsilon,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eree_core::mechanisms::SmoothLaplaceMechanism;

    #[test]
    fn minimums_are_tight_against_the_mechanism() {
        for row in run() {
            // Just above the minimum: mechanism constructs.
            assert!(
                SmoothLaplaceMechanism::new(row.alpha, row.epsilon_min * 1.001, row.delta)
                    .is_some(),
                "{row:?}"
            );
            // Just below: rejected.
            assert!(
                SmoothLaplaceMechanism::new(row.alpha, row.epsilon_min * 0.98, row.delta).is_none(),
                "{row:?}"
            );
        }
    }

    #[test]
    fn delta_5e4_column_matches_paper_for_small_alpha() {
        let rows = run();
        for row in rows.iter().filter(|r| r.delta == 5e-4 && r.alpha < 0.15) {
            assert!(
                (row.epsilon_min - row.paper_epsilon).abs() < 0.01,
                "constraint-derived {} vs paper {} at alpha={}",
                row.epsilon_min,
                row.paper_epsilon,
                row.alpha
            );
        }
    }

    #[test]
    fn epsilon_grows_with_alpha_within_each_delta() {
        let rows = run();
        for delta in [0.05, 5e-4] {
            let col: Vec<f64> = rows
                .iter()
                .filter(|r| r.delta == delta)
                .map(|r| r.epsilon_min)
                .collect();
            for pair in col.windows(2) {
                assert!(pair[0] < pair[1], "column must increase: {col:?}");
            }
        }
    }
}
