//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (Sec 10 + Appendix C).
//!
//! Layout:
//!
//! * [`metrics`] — L1 error, error ratios, Spearman rank correlation.
//! * [`runner`] — shared experiment context (dataset + SDL baseline) and
//!   multi-trial orchestration with pinned seeds.
//! * [`experiments`] — one module per paper exhibit: `figure1` … `figure5`,
//!   `table1`, `table2`.
//! * [`report`] — markdown/CSV rendering of experiment results.
//! * [`season`] — the canonical two-season publication agency (a
//!   five-release annual season plus a truth-sharing followup season),
//!   persisted and resumable through the core
//!   [`AgencyStore`](eree_core::AgencyStore) under one global ε cap.
//!
//! Each exhibit also has a binary (`cargo run -p eval --release --bin
//! figure1`) that prints the regenerated rows/series and writes them under
//! `results/`. The `run_all` binary regenerates everything.
//!
//! Scale control: the `EREE_SCALE` environment variable selects the
//! synthetic universe (`small` ≈ 2 k establishments for smoke runs,
//! `default` ≈ 60 k, `paper` ≈ 527 k matching the paper's sample).

pub mod experiments;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod season;

pub use metrics::{l1_error, mean_l1_error, spearman};
pub use runner::{EvalScale, ExperimentContext, TrialSpec};
