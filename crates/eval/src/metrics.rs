//! Error and ranking metrics.
//!
//! The paper quantifies utility two ways: the L1 error of released counts
//! (motivated by the FEMA resource-allocation scenario of Sec 3.2, where
//! each job in error has a net social cost of $3.50), and the Spearman
//! rank-order correlation for ranking workloads (the OnTheMap area
//! comparison scenario).

use std::collections::BTreeMap;
use tabulate::{CellKey, Marginal};

/// Total L1 error `Σ_v |q(v) − q̃(v)|` over the truth's nonzero cells.
/// Cells missing from `published` are treated as released zeros.
pub fn l1_error(truth: &Marginal, published: &BTreeMap<CellKey, f64>) -> f64 {
    truth
        .iter()
        .map(|(key, stats)| {
            let noisy = published.get(&key).copied().unwrap_or(0.0);
            (stats.count as f64 - noisy).abs()
        })
        .sum()
}

/// Mean per-cell L1 error.
pub fn mean_l1_error(truth: &Marginal, published: &BTreeMap<CellKey, f64>) -> f64 {
    if truth.num_cells() == 0 {
        return 0.0;
    }
    l1_error(truth, published) / truth.num_cells() as f64
}

/// L1 error restricted to a subset of cells (a place-size stratum).
pub fn l1_error_over(
    truth: &Marginal,
    published: &BTreeMap<CellKey, f64>,
    cells: &[CellKey],
) -> f64 {
    cells
        .iter()
        .map(|key| {
            let true_count = truth.cell(*key).map_or(0, |s| s.count) as f64;
            let noisy = published.get(key).copied().unwrap_or(0.0);
            (true_count - noisy).abs()
        })
        .sum()
}

/// Fraction of cells whose *relative* error is within `tolerance`
/// percentage points of the baseline's relative error (the paper's
/// "within 10 percentage points of the relative error of SDL for 65% of
/// the counts" statistic in Finding 1).
pub fn fraction_within_relative_tolerance(
    truth: &Marginal,
    ours: &BTreeMap<CellKey, f64>,
    baseline: &BTreeMap<CellKey, f64>,
    tolerance: f64,
) -> f64 {
    let mut within = 0usize;
    let mut total = 0usize;
    for (key, stats) in truth.iter() {
        if stats.count == 0 {
            continue;
        }
        let t = stats.count as f64;
        let ours_rel = (ours.get(&key).copied().unwrap_or(0.0) - t).abs() / t;
        let base_rel = (baseline.get(&key).copied().unwrap_or(0.0) - t).abs() / t;
        total += 1;
        if ours_rel - base_rel <= tolerance {
            within += 1;
        }
    }
    if total == 0 {
        return 1.0;
    }
    within as f64 / total as f64
}

/// Average ranks with ties sharing the mean of their positions (the
/// standard "fractional ranking" Spearman uses).
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("NaN in ranking input")
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j share the average rank (1-based).
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank-order correlation between two paired samples, with
/// average-rank tie handling. Returns `None` for fewer than 2 points or
/// zero variance in either ranking.
pub fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "paired samples must have equal length");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    let mean = (n as f64 + 1.0) / 2.0;
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for i in 0..n {
        let da = ra[i] - mean;
        let db = rb[i] - mean;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va * vb).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spearman_perfect_and_reversed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [9.0, 7.0, 5.0, 3.0];
        assert!((spearman(&a, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&a, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_is_rank_invariant() {
        // Monotone transforms leave Spearman unchanged.
        let a: [f64; 5] = [3.0, 1.0, 4.0, 1.5, 9.0];
        let b = [0.2, 0.9, 0.1, 0.5, 0.05];
        let a_exp: Vec<f64> = a.iter().map(|x| x.exp()).collect();
        let s1 = spearman(&a, &b).unwrap();
        let s2 = spearman(&a_exp, &b).unwrap();
        assert!((s1 - s2).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        // All-equal input has zero rank variance.
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert!(spearman(&flat, &b).is_none());
    }

    #[test]
    fn spearman_known_value() {
        // Classic example: one transposition among 5.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 2.0, 3.0, 5.0, 4.0];
        // rho = 1 - 6*sum(d^2)/(n(n^2-1)) = 1 - 6*2/120 = 0.9.
        assert!((spearman(&a, &b).unwrap() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn average_ranks_with_ties() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn l1_metrics_on_real_marginal() {
        use lodes::{Generator, GeneratorConfig};
        use tabulate::{compute_marginal, workload1};
        let d = Generator::new(GeneratorConfig::test_small(61)).generate();
        let truth = compute_marginal(&d, &workload1());
        // Perfect release: zero error.
        let perfect: BTreeMap<CellKey, f64> =
            truth.iter().map(|(k, s)| (k, s.count as f64)).collect();
        assert_eq!(l1_error(&truth, &perfect), 0.0);
        // Off-by-one everywhere: error = #cells.
        let off: BTreeMap<CellKey, f64> = truth
            .iter()
            .map(|(k, s)| (k, s.count as f64 + 1.0))
            .collect();
        assert_eq!(l1_error(&truth, &off), truth.num_cells() as f64);
        assert!((mean_l1_error(&truth, &off) - 1.0).abs() < 1e-12);
        // Restricted version agrees on the full set.
        let keys: Vec<CellKey> = truth.iter().map(|(k, _)| k).collect();
        assert_eq!(l1_error_over(&truth, &off, &keys), truth.num_cells() as f64);
    }

    #[test]
    fn relative_tolerance_fraction() {
        use lodes::{Generator, GeneratorConfig};
        use tabulate::{compute_marginal, workload1};
        let d = Generator::new(GeneratorConfig::test_small(62)).generate();
        let truth = compute_marginal(&d, &workload1());
        let exact: BTreeMap<CellKey, f64> =
            truth.iter().map(|(k, s)| (k, s.count as f64)).collect();
        // Ours exact, baseline exact: everything within tolerance.
        assert_eq!(
            fraction_within_relative_tolerance(&truth, &exact, &exact, 0.1),
            1.0
        );
        // Ours 50% off, baseline exact, tolerance 10pp: nothing within.
        let off: BTreeMap<CellKey, f64> = truth
            .iter()
            .map(|(k, s)| (k, s.count as f64 * 1.5))
            .collect();
        assert_eq!(
            fraction_within_relative_tolerance(&truth, &off, &exact, 0.1),
            0.0
        );
    }
}
