//! Markdown / CSV / JSON rendering of experiment results.
//!
//! Each figure binary calls [`write_results`] to drop three files under
//! `results/` (`<name>.md`, `<name>.csv`, `<name>.json`) and prints the
//! markdown to stdout. Series are pivoted the way the paper plots them:
//! one row per (series, α), one column per ε.

use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A generic experiment point for pivoting: series × α × ε × stratum → value.
#[derive(Debug, Clone)]
pub struct Point {
    /// Series label (mechanism name).
    pub series: String,
    /// α (0 when not applicable).
    pub alpha: f64,
    /// ε.
    pub epsilon: f64,
    /// Stratum label.
    pub stratum: String,
    /// The plotted value (L1 ratio or Spearman ρ).
    pub value: f64,
}

/// Pivot points into one markdown table per stratum: rows are
/// (series, α), columns are the ε grid.
pub fn pivot_markdown(title: &str, value_name: &str, points: &[Point]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}\n");

    // Collect strata in first-appearance order, with "overall" first.
    let mut strata: Vec<String> = Vec::new();
    for p in points {
        if !strata.contains(&p.stratum) {
            strata.push(p.stratum.clone());
        }
    }
    strata.sort_by_key(|s| (s != "overall", s.clone()));

    for stratum in &strata {
        let sub: Vec<&Point> = points.iter().filter(|p| &p.stratum == stratum).collect();
        if sub.is_empty() {
            continue;
        }
        let _ = writeln!(out, "## {stratum}\n");
        // Epsilon columns in ascending order.
        let mut epsilons: Vec<f64> = sub.iter().map(|p| p.epsilon).collect();
        epsilons.sort_by(|a, b| a.partial_cmp(b).unwrap());
        epsilons.dedup();
        let mut header = format!("| series ({value_name}) | alpha |");
        let mut rule = "|---|---|".to_string();
        for e in &epsilons {
            let _ = write!(header, " eps={e} |");
            rule.push_str("---|");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");

        // Row keys: (series, alpha) in appearance order.
        let mut keys: Vec<(String, String)> = Vec::new();
        let mut values: BTreeMap<(String, String, String), f64> = BTreeMap::new();
        for p in &sub {
            let a = format!("{:.2}", p.alpha);
            let key = (p.series.clone(), a.clone());
            if !keys.contains(&key) {
                keys.push(key.clone());
            }
            values.insert((p.series.clone(), a, format!("{}", p.epsilon)), p.value);
        }
        for (series, alpha) in keys {
            let mut row = format!("| {series} | {alpha} |");
            for e in &epsilons {
                match values.get(&(series.clone(), alpha.clone(), format!("{e}"))) {
                    Some(v) => {
                        let _ = write!(row, " {v:.3} |");
                    }
                    None => row.push_str(" – |"),
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out.push('\n');
    }
    out
}

/// Render points as CSV.
pub fn to_csv(value_name: &str, points: &[Point]) -> String {
    let mut out = format!("series,alpha,epsilon,stratum,{value_name}\n");
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            p.series.replace(',', ";"),
            p.alpha,
            p.epsilon,
            p.stratum,
            p.value
        );
    }
    out
}

/// Default output directory (`results/` under the workspace root, or the
/// `EREE_RESULTS_DIR` environment variable).
pub fn results_dir() -> PathBuf {
    std::env::var("EREE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Write `<name>.md`, `<name>.csv`, and `<name>.json` under `dir`, and
/// return the markdown for printing.
pub fn write_results<T: Serialize>(
    dir: &Path,
    name: &str,
    markdown: &str,
    csv: &str,
    raw: &T,
) -> std::io::Result<String> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{name}.md")), markdown)?;
    fs::write(dir.join(format!("{name}.csv")), csv)?;
    let json = serde_json::to_string_pretty(raw).expect("results serialize");
    fs::write(dir.join(format!("{name}.json")), json)?;
    Ok(markdown.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<Point> {
        vec![
            Point {
                series: "Log-Laplace".into(),
                alpha: 0.1,
                epsilon: 1.0,
                stratum: "overall".into(),
                value: 2.5,
            },
            Point {
                series: "Log-Laplace".into(),
                alpha: 0.1,
                epsilon: 2.0,
                stratum: "overall".into(),
                value: 1.5,
            },
            Point {
                series: "Smooth Laplace".into(),
                alpha: 0.1,
                epsilon: 1.0,
                stratum: "0 <= pop < 100".into(),
                value: 3.0,
            },
        ]
    }

    #[test]
    fn markdown_pivot_structure() {
        let md = pivot_markdown("Figure X", "L1 ratio", &sample_points());
        assert!(md.contains("# Figure X"));
        assert!(md.contains("## overall"));
        assert!(md.contains("eps=1 |"));
        assert!(md.contains("eps=2 |"));
        assert!(md.contains("| Log-Laplace | 0.10 | 2.500 | 1.500 |"));
        // Overall section comes before strata.
        let overall_pos = md.find("## overall").unwrap();
        let stratum_pos = md.find("## 0 <= pop < 100").unwrap();
        assert!(overall_pos < stratum_pos);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv("value", &sample_points());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "series,alpha,epsilon,stratum,value");
    }

    #[test]
    fn pivot_handles_missing_grid_points_and_many_series() {
        // Series with different valid epsilon sets (the real figures have
        // gaps): missing cells render as dashes, not zeros.
        let points = vec![
            Point {
                series: "Smooth Gamma".into(),
                alpha: 0.2,
                epsilon: 4.0,
                stratum: "overall".into(),
                value: 2.0,
            },
            Point {
                series: "Smooth Laplace".into(),
                alpha: 0.2,
                epsilon: 2.0,
                stratum: "overall".into(),
                value: 1.0,
            },
            Point {
                series: "Truncated Laplace (theta=2)".into(),
                alpha: 0.0,
                epsilon: 2.0,
                stratum: "overall".into(),
                value: 46.0,
            },
        ];
        let md = pivot_markdown("T", "r", &points);
        assert!(md.contains("| Smooth Gamma | 0.20 | – | 2.000 |"));
        assert!(md.contains("| Smooth Laplace | 0.20 | 1.000 | – |"));
        assert!(md.contains("Truncated Laplace (theta=2) | 0.00 | 46.000 | – |"));
    }

    #[test]
    fn csv_escapes_commas_in_series_labels() {
        let points = vec![Point {
            series: "weird, label".into(),
            alpha: 0.1,
            epsilon: 1.0,
            stratum: "overall".into(),
            value: 1.5,
        }];
        let csv = to_csv("v", &points);
        assert!(csv.contains("weird; label"), "{csv}");
        // Still exactly 5 fields.
        let row = csv.lines().nth(1).unwrap();
        assert_eq!(row.split(',').count(), 5);
    }

    #[test]
    fn results_dir_respects_env_override() {
        std::env::set_var("EREE_RESULTS_DIR", "/tmp/eree_custom_results");
        assert_eq!(
            results_dir(),
            std::path::PathBuf::from("/tmp/eree_custom_results")
        );
        std::env::remove_var("EREE_RESULTS_DIR");
        assert_eq!(results_dir(), std::path::PathBuf::from("results"));
    }

    #[test]
    fn write_results_creates_files() {
        let dir = std::env::temp_dir().join(format!("eree_report_test_{}", std::process::id()));
        let points = sample_points();
        let md = pivot_markdown("T", "v", &points);
        let csv = to_csv("v", &points);
        #[derive(Serialize)]
        struct Raw {
            n: usize,
        }
        write_results(&dir, "test", &md, &csv, &Raw { n: 3 }).unwrap();
        assert!(dir.join("test.md").exists());
        assert!(dir.join("test.csv").exists());
        assert!(dir.join("test.json").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
