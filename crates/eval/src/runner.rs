//! Shared experiment context and trial orchestration.
//!
//! Every figure needs the same ingredients: a synthetic dataset, the SDL
//! baseline release, and repeated (20-trial, per the paper) mechanism
//! releases across the (mechanism, α, ε) grid. This module builds those
//! once and exposes deterministic per-trial seeds so any single number in
//! any figure can be regenerated in isolation.

use lodes::{Dataset, Generator, GeneratorConfig};
use sdl::{SdlConfig, SdlPublisher, SdlRelease};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tabulate::{workload1, workload3, MarginalSpec, TabulationIndex};

/// Universe scale for experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalScale {
    /// ≈ 2 k establishments — smoke tests and CI.
    Small,
    /// ≈ 60 k establishments — the default for figure regeneration.
    Default,
    /// ≈ 527 k establishments / ≈ 10.9 M jobs — the paper's sample size.
    Paper,
}

impl EvalScale {
    /// Read from the `EREE_SCALE` environment variable
    /// (`small`/`default`/`paper`), defaulting to `Default`.
    pub fn from_env() -> Self {
        match std::env::var("EREE_SCALE").as_deref() {
            Ok("small") => EvalScale::Small,
            Ok("paper") => EvalScale::Paper,
            _ => EvalScale::Default,
        }
    }

    /// Generator configuration for this scale.
    pub fn generator_config(&self, seed: u64) -> GeneratorConfig {
        match self {
            EvalScale::Small => GeneratorConfig::test_small(seed),
            EvalScale::Default => GeneratorConfig {
                seed,
                ..GeneratorConfig::default()
            },
            EvalScale::Paper => GeneratorConfig::paper_scale(seed),
        }
    }
}

/// Trial plan: how many independent releases to average, and the base seed
/// from which per-trial seeds derive.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrialSpec {
    /// Number of independent trials (paper: 20).
    pub trials: usize,
    /// Base seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
}

impl Default for TrialSpec {
    fn default() -> Self {
        Self {
            trials: 20,
            base_seed: 0xF160,
        }
    }
}

impl TrialSpec {
    /// The seed of trial `i`.
    pub fn seed(&self, trial: usize) -> u64 {
        self.base_seed.wrapping_add(trial as u64)
    }

    /// Average a per-trial statistic over all trials.
    pub fn average<F>(&self, mut f: F) -> f64
    where
        F: FnMut(u64) -> f64,
    {
        let total: f64 = (0..self.trials).map(|i| f(self.seed(i))).sum();
        total / self.trials as f64
    }

    /// Average a per-trial statistic with trials executed on worker
    /// threads. Per-trial values are collected into a seed-ordered vector
    /// and summed sequentially, so the result is bit-identical to
    /// [`TrialSpec::average`] regardless of scheduling.
    pub fn average_parallel<F>(&self, f: F) -> f64
    where
        F: Fn(u64) -> f64 + Sync,
    {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(self.trials.max(1));
        if threads <= 1 || self.trials <= 1 {
            let total: f64 = (0..self.trials).map(|i| f(self.seed(i))).sum();
            return total / self.trials as f64;
        }
        let mut values = vec![0.0f64; self.trials];
        let next = std::sync::atomic::AtomicUsize::new(0);
        let values_mutex = std::sync::Mutex::new(&mut values);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= self.trials {
                        break;
                    }
                    let v = f(self.seed(i));
                    values_mutex.lock().expect("trial collection")[i] = v;
                });
            }
        });
        values.iter().sum::<f64>() / self.trials as f64
    }
}

/// Everything the figures share: the dataset, the workload marginals'
/// SDL baseline releases, and the parameter grids.
pub struct ExperimentContext {
    /// The synthetic universe.
    pub dataset: Dataset,
    /// Shared columnar tabulation index of [`dataset`](Self::dataset),
    /// built once so every experiment's truth marginals reuse it.
    pub index: Arc<TabulationIndex>,
    /// SDL release of Workload 1 (place × industry × ownership).
    pub sdl_w1: SdlRelease,
    /// SDL release of Workload 2/3 (… × sex × education).
    pub sdl_w3: SdlRelease,
    /// Scale this context was built at.
    pub scale: EvalScale,
}

impl ExperimentContext {
    /// Build the context at the given scale with the canonical data seed.
    pub fn new(scale: EvalScale) -> Self {
        Self::with_seed(scale, 0xEEE5_2017)
    }

    /// Build with an explicit data seed (exposed so tests can vary data).
    pub fn with_seed(scale: EvalScale, seed: u64) -> Self {
        let dataset = Generator::new(scale.generator_config(seed)).generate();
        let index = Arc::new(TabulationIndex::build(&dataset));
        let publisher = SdlPublisher::new(&dataset, SdlConfig::default());
        let sdl_w1 = publisher.publish_on(&index, &dataset, &workload1());
        let sdl_w3 = publisher.publish_on(&index, &dataset, &workload3());
        Self {
            dataset,
            index,
            sdl_w1,
            sdl_w3,
            scale,
        }
    }

    /// SDL release of an arbitrary spec (for workloads beyond W1/W3).
    pub fn sdl_release(&self, spec: &MarginalSpec) -> SdlRelease {
        SdlPublisher::new(&self.dataset, SdlConfig::default()).publish_on(
            &self.index,
            &self.dataset,
            spec,
        )
    }

    /// The ε grid of Figures 1–3 and 5.
    pub const EPSILON_GRID: [f64; 6] = [0.25, 0.5, 0.67, 1.0, 2.0, 4.0];

    /// The extended ε grid of Figure 4.
    pub const EPSILON_GRID_WIDE: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 10.0, 16.0, 20.0];

    /// The α grid of all figures.
    pub const ALPHA_GRID: [f64; 5] = [0.01, 0.05, 0.1, 0.15, 0.2];

    /// The θ grid for the Truncated Laplace comparison (Finding 6).
    pub const THETA_GRID: [u32; 6] = [2, 20, 50, 100, 200, 500];

    /// δ used for Smooth Laplace throughout the figures (the paper reports
    /// the δ = 0.05 feasibility frontier and notes smaller δ just removes
    /// (α, ε) points).
    pub const DELTA: f64 = 0.05;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_seeds_are_distinct_and_deterministic() {
        let spec = TrialSpec {
            trials: 5,
            base_seed: 100,
        };
        let seeds: Vec<u64> = (0..spec.trials).map(|i| spec.seed(i)).collect();
        assert_eq!(seeds, vec![100, 101, 102, 103, 104]);
        let avg = spec.average(|s| s as f64);
        assert!((avg - 102.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_average_is_bit_identical_to_sequential() {
        let spec = TrialSpec {
            trials: 17,
            base_seed: 999,
        };
        // A nontrivial deterministic function of the seed.
        let f = |s: u64| ((s as f64).sin() * 1e6).fract() + s as f64 * 0.5;
        let sequential = spec.average(f);
        let parallel = spec.average_parallel(f);
        assert_eq!(sequential.to_bits(), parallel.to_bits());
    }

    #[test]
    fn small_context_builds_consistently() {
        let ctx = ExperimentContext::with_seed(EvalScale::Small, 7);
        assert!(ctx.dataset.num_jobs() > 10_000);
        assert_eq!(ctx.sdl_w1.published.len(), ctx.sdl_w1.truth.num_cells());
        assert!(ctx.sdl_w3.truth.num_cells() > ctx.sdl_w1.truth.num_cells());
        // SDL error is positive but small relative to total jobs.
        let err = ctx.sdl_w1.l1_error();
        assert!(err > 0.0);
        assert!(err < 0.2 * ctx.dataset.num_jobs() as f64);
    }

    #[test]
    fn scale_from_env_defaults() {
        // Not setting the variable in tests: default expected.
        std::env::remove_var("EREE_SCALE");
        assert_eq!(EvalScale::from_env(), EvalScale::Default);
    }
}
