//! The evaluation pipeline's canonical two-season agency.
//!
//! The figures measure single releases; this module exercises the *other*
//! half of the paper's story — Sec 7.3–7.5 composition across ordered
//! sequences of publications — at the level a statistical agency actually
//! operates: **many seasons over one confidential snapshot, governed by
//! one global privacy-loss cap** (the social choice of Abowd & Schmutte,
//! 2018). `run_all` (and the agency CI smoke step) call [`run_or_resume`]:
//!
//! * the **annual** season is the canonical five-release plan (two
//!   releases sharing the Workload 1 tabulation, an approximate-DP county
//!   release, and a declaratively filtered sub-population release);
//! * the **followup** season re-publishes the Workload 1 marginal *and*
//!   the filtered county marginal under fresh mechanisms/seeds — both
//!   truths are served from the agency's persistent truth store with
//!   **zero recomputation**, the cross-season cache hit the
//!   [`AgencyStore`] exists to provide;
//! * a kill at any point resumes bit-identically without re-spending ε,
//!   and the two season budgets exhaust the agency cap exactly, so any
//!   further season is refused up front.

use eree_core::agency::AgencyStore;
use eree_core::store::{SeasonReport, StoreError};
use eree_core::{MechanismKind, PrivacyParams, ReleaseRequest};
use lodes::Dataset;
use std::path::Path;
use tabulate::{ranking2_expr, workload1, workload3, MarginalSpec, WorkplaceAttr};

/// Name of the canonical five-release season.
pub const ANNUAL_SEASON: &str = "annual";
/// Name of the truth-sharing re-release season.
pub const FOLLOWUP_SEASON: &str = "followup";

/// The agency-wide cap: the two canonical seasons exhaust it exactly.
pub fn agency_cap() -> PrivacyParams {
    PrivacyParams::approximate(0.1, 16.0, 0.05)
}

/// The annual season's budget: covers its five releases exactly.
pub fn season_budget() -> PrivacyParams {
    PrivacyParams::approximate(0.1, 13.0, 0.05)
}

/// The followup season's budget: covers its two releases exactly.
pub fn followup_budget() -> PrivacyParams {
    PrivacyParams::pure(0.1, 3.0)
}

/// The canonical annual plan, in publication order. The first two
/// requests share the Workload 1 tabulation (exercising the in-memory
/// tabulation cache); the fourth is an approximate-DP county release;
/// the last is a declaratively filtered sub-population release whose
/// `FilterExpr` is persisted in provenance and digest-verified on resume.
pub fn season_requests() -> Vec<ReleaseRequest> {
    let county = MarginalSpec::new(vec![WorkplaceAttr::County], vec![]);
    vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .describe("S1: place x naics x ownership (Smooth Gamma)")
            .seed(0xA1),
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .describe("S2: place x naics x ownership (Log-Laplace re-release)")
            .seed(0xA2),
        ReleaseRequest::marginal(workload3())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 8.0))
            .describe("S3: ... x sex x education")
            .seed(0xA3),
        ReleaseRequest::marginal(county.clone())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 1.0, 0.05))
            .describe("S4: county marginal (Smooth Laplace)")
            .seed(0xA4),
        ReleaseRequest::marginal(county)
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .filter_expr(ranking2_expr())
            .describe("S5: county marginal, female x bachelor's+ (Ranking 2 population)")
            .seed(0xA5),
    ]
}

/// The followup plan: re-releases of two marginals the annual season
/// already tabulated — same `(spec, normalized filter)` identities, fresh
/// mechanisms and seeds — so both truths come from the persistent truth
/// store, never a re-tabulation.
pub fn followup_requests() -> Vec<ReleaseRequest> {
    let county = MarginalSpec::new(vec![WorkplaceAttr::County], vec![]);
    vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .describe("F1: place x naics x ownership (followup re-release, shared truth)")
            .seed(0xB1),
        ReleaseRequest::marginal(county)
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .filter_expr(ranking2_expr())
            .describe("F2: filtered county marginal (followup re-release, shared truth)")
            .seed(0xB2),
    ]
}

/// What one [`run_or_resume`] call did, season by season.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgencyRunReport {
    /// The annual season's run report.
    pub annual: SeasonReport,
    /// The followup season's run report.
    pub followup: SeasonReport,
}

/// Open (or start) the agency under `dir` and execute whatever remains of
/// both canonical seasons, returning the per-season reports and the
/// agency for inspection. An agency left behind by a killed run resumes;
/// one from a different plan, cap, or dataset — or a corrupted one — is
/// refused.
pub fn run_or_resume(
    dir: impl AsRef<Path>,
    dataset: &Dataset,
) -> Result<(AgencyRunReport, AgencyStore), StoreError> {
    let mut agency = AgencyStore::open_or_create(dir, agency_cap())?;
    agency.open_or_create_season(ANNUAL_SEASON, season_budget())?;
    let annual = agency.run_season(ANNUAL_SEASON, dataset, &season_requests())?;
    agency.open_or_create_season(FOLLOWUP_SEASON, followup_budget())?;
    let followup = agency.run_season(FOLLOWUP_SEASON, dataset, &followup_requests())?;
    Ok((AgencyRunReport { annual, followup }, agency))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};

    #[test]
    fn canonical_plans_fit_their_budgets_and_cap_exactly() {
        let annual: f64 = season_requests()
            .iter()
            .map(|r| r.plan().expect("canonical requests are valid").cost.epsilon)
            .sum();
        assert!((annual - season_budget().epsilon).abs() < 1e-12);
        let followup: f64 = followup_requests()
            .iter()
            .map(|r| r.plan().expect("canonical requests are valid").cost.epsilon)
            .sum();
        assert!((followup - followup_budget().epsilon).abs() < 1e-12);
        assert!(
            (season_budget().epsilon + followup_budget().epsilon - agency_cap().epsilon).abs()
                < 1e-12
        );
    }

    #[test]
    fn run_or_resume_shares_truths_and_is_idempotent() {
        let dir = std::env::temp_dir().join("eree-eval-agency-idempotent");
        let _ = std::fs::remove_dir_all(&dir);
        let dataset = Generator::new(GeneratorConfig::test_small(3)).generate();
        let (first, agency) = run_or_resume(&dir, &dataset).unwrap();
        assert_eq!(first.annual.executed, 5);
        // Four distinct (spec, filter) identities in the annual plan; the
        // fifth request shares in memory.
        assert_eq!(first.annual.tabulations_computed, 4);
        assert_eq!(first.annual.tabulation_hits, 1);
        // The followup season re-publishes two of them: both truths come
        // from the persistent store, nothing is recomputed.
        assert_eq!(first.followup.executed, 2);
        assert_eq!(first.followup.tabulations_computed, 0);
        assert_eq!(first.followup.tabulation_disk_hits, 2);
        // The cap is exhausted and both ledgers are fully spent.
        assert!(agency.remaining_epsilon() < 1e-9);
        // Scoped peek: the handle holds the season's write lease, which
        // must be free before run_or_resume reopens the season below.
        {
            let annual = agency.open_season(ANNUAL_SEASON).unwrap();
            assert_eq!(annual.completed(), 5);
            assert_eq!(
                annual.releases()[4].request.filter_id(),
                Some(ranking2_expr().id())
            );
        }
        drop(agency);
        let (second, agency) = run_or_resume(&dir, &dataset).unwrap();
        assert_eq!(second.annual.resumed_from, 5);
        assert_eq!(second.annual.executed, 0);
        assert_eq!(second.followup.resumed_from, 2);
        assert_eq!(second.followup.executed, 0);
        assert!(agency.remaining_epsilon() < 1e-9);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
