//! The evaluation pipeline's canonical publication season.
//!
//! The figures measure single releases; this module exercises the *other*
//! half of the paper's story — Sec 7.3–7.5 composition across an ordered
//! sequence of publications spending one season budget — through the
//! durable [`SeasonStore`]. `run_all` (and the store-resume CI smoke step)
//! call [`run_or_resume`]: the first invocation executes and persists the
//! whole plan; an invocation after a kill resumes from the last persisted
//! artifact without re-spending ε, producing bit-identical artifacts.

use eree_core::store::{SeasonReport, SeasonStore, StoreError};
use eree_core::{MechanismKind, PrivacyParams, ReleaseRequest};
use lodes::Dataset;
use std::path::Path;
use tabulate::{ranking2_expr, workload1, workload3, MarginalSpec, WorkplaceAttr};

/// The season-long budget: covers the five canonical releases exactly.
pub fn season_budget() -> PrivacyParams {
    PrivacyParams::approximate(0.1, 13.0, 0.05)
}

/// The canonical season plan, in publication order. The first two
/// requests share the Workload 1 tabulation (exercising the engine's
/// tabulation cache); the fourth is an approximate-DP county release;
/// the last is a declaratively filtered sub-population release whose
/// `FilterExpr` is persisted in provenance and digest-verified on resume.
pub fn season_requests() -> Vec<ReleaseRequest> {
    let county = MarginalSpec::new(vec![WorkplaceAttr::County], vec![]);
    vec![
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 2.0))
            .describe("S1: place x naics x ownership (Smooth Gamma)")
            .seed(0xA1),
        ReleaseRequest::marginal(workload1())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .describe("S2: place x naics x ownership (Log-Laplace re-release)")
            .seed(0xA2),
        ReleaseRequest::marginal(workload3())
            .mechanism(MechanismKind::LogLaplace)
            .budget(PrivacyParams::pure(0.1, 8.0))
            .describe("S3: ... x sex x education")
            .seed(0xA3),
        ReleaseRequest::marginal(county.clone())
            .mechanism(MechanismKind::SmoothLaplace)
            .budget(PrivacyParams::approximate(0.1, 1.0, 0.05))
            .describe("S4: county marginal (Smooth Laplace)")
            .seed(0xA4),
        ReleaseRequest::marginal(county)
            .mechanism(MechanismKind::SmoothGamma)
            .budget(PrivacyParams::pure(0.1, 1.0))
            .filter_expr(ranking2_expr())
            .describe("S5: county marginal, female x bachelor's+ (Ranking 2 population)")
            .seed(0xA5),
    ]
}

/// Open (or start) the season under `dir` and execute whatever remains of
/// the canonical plan, returning the run report and the store for
/// inspection. A store left behind by a killed run resumes; a store from
/// a *different* plan or budget, or a corrupted one, is refused.
pub fn run_or_resume(
    dir: impl AsRef<Path>,
    dataset: &Dataset,
) -> Result<(SeasonReport, SeasonStore), StoreError> {
    let mut store = SeasonStore::open_or_create(dir, season_budget())?;
    let report = store.run(dataset, &season_requests())?;
    Ok((report, store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};

    #[test]
    fn canonical_plan_fits_its_budget_exactly() {
        let total: f64 = season_requests()
            .iter()
            .map(|r| r.plan().expect("canonical requests are valid").cost.epsilon)
            .sum();
        assert!((total - season_budget().epsilon).abs() < 1e-12);
    }

    #[test]
    fn run_or_resume_is_idempotent_once_complete() {
        let dir = std::env::temp_dir().join("eree-eval-season-idempotent");
        let _ = std::fs::remove_dir_all(&dir);
        let dataset = Generator::new(GeneratorConfig::test_small(3)).generate();
        let (first, store) = run_or_resume(&dir, &dataset).unwrap();
        assert_eq!(first.executed, 5);
        assert_eq!(store.completed(), 5);
        // The filtered release's expression is in the persisted provenance.
        assert_eq!(
            store.releases()[4].request.filter_id(),
            Some(ranking2_expr().id())
        );
        drop(store);
        let (second, store) = run_or_resume(&dir, &dataset).unwrap();
        assert_eq!(second.resumed_from, 5);
        assert_eq!(second.executed, 0);
        assert!(store.ledger().remaining_epsilon() < 1e-9);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
