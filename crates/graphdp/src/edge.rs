//! Edge-differential-privacy baseline: the Laplace mechanism with
//! sensitivity 1.
//!
//! Under edge-DP, neighboring databases differ in a single job. A marginal
//! query changes by at most 1 in a single cell, so adding independent
//! `Laplace(1/ε)` noise to every cell releases the full marginal at
//! privacy loss ε (cells partition jobs, so parallel composition applies).
//!
//! This mechanism satisfies the employee requirement (Def 4.1) but not the
//! establishment requirements (Defs 4.2/4.3): the demonstration helpers at
//! the bottom quantify how tightly an adversary pins down an
//! establishment's total employment.

use lodes::Dataset;
use noise::{ContinuousDistribution, Laplace};
use rand::Rng;
use std::collections::BTreeMap;
use tabulate::{compute_marginal, CellKey, Marginal, MarginalSpec};

/// Edge-DP Laplace releaser.
#[derive(Debug, Clone, Copy)]
pub struct EdgeLaplace {
    epsilon: f64,
}

impl EdgeLaplace {
    /// Create with privacy-loss parameter `ε > 0`.
    ///
    /// # Panics
    /// Panics unless `ε` is positive and finite.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive, got {epsilon}"
        );
        Self { epsilon }
    }

    /// The privacy-loss parameter.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Release one count at privacy loss ε.
    pub fn release_count<R: Rng + ?Sized>(&self, count: u64, rng: &mut R) -> f64 {
        let lap = Laplace::new(1.0 / self.epsilon).expect("validated scale");
        count as f64 + lap.sample(rng)
    }

    /// Release every nonzero cell of the marginal `spec`; each cell gets
    /// independent `Laplace(1/ε)` noise (parallel composition over the
    /// disjoint job partition).
    pub fn release_marginal<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        spec: &MarginalSpec,
        rng: &mut R,
    ) -> (BTreeMap<CellKey, f64>, Marginal) {
        let truth = compute_marginal(dataset, spec);
        let released = truth
            .iter()
            .map(|(key, stats)| (key, self.release_count(stats.count, rng)))
            .collect();
        (released, truth)
    }

    /// Claim B.1 quantification: with probability `1 − p`, the released
    /// size of an establishment is within `ln(1/p)/ε` of the truth — an
    /// additive band independent of establishment size, so the
    /// multiplicative α-protection of Definition 4.2 fails for large
    /// establishments.
    pub fn size_disclosure_band(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");
        (1.0 / p).ln() / self.epsilon
    }

    /// The largest establishment size at which the edge-DP band still
    /// provides the (ε′, α) multiplicative protection: above
    /// `band/α`, the additive band is narrower than `α·size`, and the
    /// adversary distinguishes sizes the ER-EE definition requires to be
    /// indistinguishable.
    pub fn alpha_protection_breaks_at(&self, p: f64, alpha: f64) -> f64 {
        assert!(alpha > 0.0, "alpha must be positive");
        self.size_disclosure_band(p) / alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabulate::workload1;

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_bad_epsilon() {
        EdgeLaplace::new(0.0);
    }

    #[test]
    fn release_is_unbiased() {
        let m = EdgeLaplace::new(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| m.release_count(500, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 500.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn marginal_release_covers_truth() {
        let d = Generator::new(GeneratorConfig::test_small(31)).generate();
        let m = EdgeLaplace::new(2.0);
        let mut rng = StdRng::seed_from_u64(2);
        let (released, truth) = m.release_marginal(&d, &workload1(), &mut rng);
        assert_eq!(released.len(), truth.num_cells());
        // Mean |noise| should be near 1/eps = 0.5.
        let mean_err: f64 = truth
            .iter()
            .map(|(k, s)| (released[&k] - s.count as f64).abs())
            .sum::<f64>()
            / truth.num_cells() as f64;
        assert!(mean_err > 0.3 && mean_err < 0.8, "mean error {mean_err}");
    }

    #[test]
    fn disclosure_band_matches_paper_example() {
        // Paper Sec 6: at eps = 1, p = 0.01 the band is at most ~5
        // (ln(100) = 4.6).
        let m = EdgeLaplace::new(1.0);
        let band = m.size_disclosure_band(0.01);
        assert!((band - 100f64.ln()).abs() < 1e-12);
        assert!(band < 5.0);
        // "Knowing total employment is 10,000 +/- 5 is almost as good as
        // knowing the true count": the alpha=0.1 protection breaks for any
        // establishment larger than band/alpha = ~46.
        assert!(m.alpha_protection_breaks_at(0.01, 0.1) < 50.0);
    }

    #[test]
    fn band_holds_empirically() {
        let m = EdgeLaplace::new(1.0);
        let band = m.size_disclosure_band(0.01);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let outside = (0..n)
            .filter(|_| (m.release_count(10_000, &mut rng) - 10_000.0).abs() > band)
            .count();
        let frac = outside as f64 / n as f64;
        assert!(frac < 0.015, "outside fraction {frac} should be ~0.01");
    }
}
