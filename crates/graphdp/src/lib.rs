//! Differential privacy baselines on the bipartite ER-EE graph (Sec 6).
//!
//! The linked data form a bipartite graph: establishments and workers are
//! nodes, jobs are edges. Two classical notions apply:
//!
//! * **Edge differential privacy** — neighbors differ in one edge (one
//!   job). Counting queries have sensitivity 1, so the Laplace mechanism
//!   with scale `1/ε` applies ([`edge::EdgeLaplace`]). Edge-DP satisfies the
//!   *employee* requirement but **fails** the establishment-size requirement
//!   (Claim B.1): the adversary learns any establishment's size to within
//!   `±ln(1/p)/ε` with probability `1−p` — a fixed additive band, so the
//!   multiplicative protection of Definition 4.2 degrades as establishments
//!   grow.
//! * **Node differential privacy** — neighbors differ in one establishment
//!   *and all its jobs*. Unbounded degree forces projection: the
//!   "Truncated Laplace" baseline ([`node::TruncatedLaplace`]) removes every
//!   establishment with `θ` or more employees, then adds `Laplace(θ/ε)`
//!   noise. It satisfies all three requirements but with crushing utility
//!   cost (Finding 6): truncation bias does not shrink as ε grows.

pub mod edge;
pub mod node;

pub use edge::EdgeLaplace;
pub use node::{TruncatedLaplace, TruncatedTabulation};
