//! Node-differential-privacy baseline: truncation projection + Laplace —
//! the paper's "Truncated Laplace" comparator.
//!
//! Node-DP neighbors differ in one establishment together with all its
//! jobs. Since establishment degree is unbounded, counting queries have
//! unbounded sensitivity; the standard remedy projects the graph to bounded
//! degree first. The truncation projection of Kasiviswanathan et al. removes
//! every node with degree ≥ θ; counting queries on the truncated graph have
//! sensitivity θ and are released via `Laplace(θ/ε)`.
//!
//! The paper's Finding 6: at every tested θ ∈ {2, 20, 50, 100, 200, 500}
//! this baseline is at least 10× worse than SDL on Workload 1 at ε = 4, and
//! raising ε barely helps — the dominant error is the *bias* from deleting
//! large establishments, which noise scale does not touch.

use lodes::Dataset;
use noise::{ContinuousDistribution, Laplace};
use rand::Rng;
use std::collections::BTreeMap;
use tabulate::{compute_marginal, CellKey, Marginal, MarginalSpec};

/// Node-DP truncation + Laplace releaser.
#[derive(Debug, Clone, Copy)]
pub struct TruncatedLaplace {
    theta: u32,
    epsilon: f64,
}

/// A released marginal together with its truncation diagnostics.
#[derive(Debug, Clone)]
pub struct TruncatedRelease {
    /// Noisy published value per original nonzero cell.
    pub published: BTreeMap<CellKey, f64>,
    /// The true (untruncated) marginal, for error measurement.
    pub truth: Marginal,
    /// Number of establishments deleted by the projection.
    pub establishments_removed: usize,
    /// Number of jobs deleted by the projection (the bias mass).
    pub jobs_removed: u64,
}

impl TruncatedLaplace {
    /// Create with degree bound `θ ≥ 1` and privacy loss `ε > 0`.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(theta: u32, epsilon: f64) -> Self {
        assert!(theta >= 1, "theta must be at least 1");
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive, got {epsilon}"
        );
        Self { theta, epsilon }
    }

    /// The degree bound θ.
    pub fn theta(&self) -> u32 {
        self.theta
    }

    /// The privacy-loss parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Laplace scale applied per cell, `θ/ε`.
    pub fn noise_scale(&self) -> f64 {
        self.theta as f64 / self.epsilon
    }

    /// Release the marginal `spec`: truncate, tabulate, then add
    /// `Laplace(θ/ε)` per cell. Published cells are the *original*
    /// marginal's nonzero cells, so error is measured on the same support
    /// as the other mechanisms; cells entirely wiped out by truncation
    /// publish pure noise around zero.
    pub fn release_marginal<R: Rng + ?Sized>(
        &self,
        dataset: &Dataset,
        spec: &MarginalSpec,
        rng: &mut R,
    ) -> TruncatedRelease {
        let truth = compute_marginal(dataset, spec);
        let (truncated, establishments_removed) = dataset.truncate_establishments(self.theta);
        let jobs_removed = (dataset.num_jobs() - truncated.num_jobs()) as u64;
        let trunc_marginal = compute_marginal(&truncated, spec);

        // Key layouts agree because geography (and thus cardinalities) is
        // shared between the original and truncated datasets.
        let lap = Laplace::new(self.noise_scale()).expect("validated scale");
        let published = truth
            .iter()
            .map(|(key, _)| {
                let trunc_count = trunc_marginal.cell(key).map_or(0, |s| s.count);
                (key, trunc_count as f64 + lap.sample(rng))
            })
            .collect();

        TruncatedRelease {
            published,
            truth,
            establishments_removed,
            jobs_removed,
        }
    }
}

impl TruncatedRelease {
    /// Total L1 error against the untruncated truth.
    pub fn l1_error(&self) -> f64 {
        self.truth
            .iter()
            .map(|(key, stats)| (stats.count as f64 - self.published[&key]).abs())
            .sum()
    }

    /// Mean per-cell L1 error.
    pub fn mean_l1_error(&self) -> f64 {
        if self.truth.num_cells() == 0 {
            return 0.0;
        }
        self.l1_error() / self.truth.num_cells() as f64
    }
}

/// A precomputed truncation of one marginal: the expensive projection and
/// tabulation are done once, after which releases at any ε are cheap
/// (noise only). Used by the experiment harness, which sweeps ε and trial
/// seeds over a fixed θ.
#[derive(Debug, Clone)]
pub struct TruncatedTabulation {
    theta: u32,
    truth: Marginal,
    /// Truncated count per original nonzero cell (0 when wiped out).
    truncated_counts: Vec<(CellKey, u64)>,
    establishments_removed: usize,
    jobs_removed: u64,
}

impl TruncatedTabulation {
    /// Truncate `dataset` at `theta` and tabulate `spec` once.
    pub fn new(dataset: &Dataset, spec: &MarginalSpec, theta: u32) -> Self {
        assert!(theta >= 1, "theta must be at least 1");
        let truth = compute_marginal(dataset, spec);
        let (truncated, establishments_removed) = dataset.truncate_establishments(theta);
        let jobs_removed = (dataset.num_jobs() - truncated.num_jobs()) as u64;
        let trunc_marginal = compute_marginal(&truncated, spec);
        let truncated_counts = truth
            .iter()
            .map(|(key, _)| (key, trunc_marginal.cell(key).map_or(0, |s| s.count)))
            .collect();
        Self {
            theta,
            truth,
            truncated_counts,
            establishments_removed,
            jobs_removed,
        }
    }

    /// The degree bound θ.
    pub fn theta(&self) -> u32 {
        self.theta
    }

    /// The untruncated truth.
    pub fn truth(&self) -> &Marginal {
        &self.truth
    }

    /// Jobs deleted by the projection.
    pub fn jobs_removed(&self) -> u64 {
        self.jobs_removed
    }

    /// Release at privacy loss ε: truncated counts plus `Laplace(θ/ε)`.
    pub fn release<R: Rng + ?Sized>(&self, epsilon: f64, rng: &mut R) -> TruncatedRelease {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive, got {epsilon}"
        );
        let lap = Laplace::new(self.theta as f64 / epsilon).expect("positive scale");
        let published = self
            .truncated_counts
            .iter()
            .map(|&(key, count)| (key, count as f64 + lap.sample(rng)))
            .collect();
        TruncatedRelease {
            published,
            truth: self.truth.clone(),
            establishments_removed: self.establishments_removed,
            jobs_removed: self.jobs_removed,
        }
    }

    /// Release just the noisy cell map (no truth clone) — the hot path for
    /// repeated trials.
    pub fn release_counts<R: Rng + ?Sized>(
        &self,
        epsilon: f64,
        rng: &mut R,
    ) -> BTreeMap<CellKey, f64> {
        let lap = Laplace::new(self.theta as f64 / epsilon).expect("positive scale");
        self.truncated_counts
            .iter()
            .map(|&(key, count)| (key, count as f64 + lap.sample(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabulate::workload1;

    fn dataset() -> Dataset {
        Generator::new(GeneratorConfig::test_small(41)).generate()
    }

    #[test]
    fn truncation_removes_expected_mass() {
        let d = dataset();
        let m = TruncatedLaplace::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let rel = m.release_marginal(&d, &workload1(), &mut rng);
        let expected_removed = d
            .establishment_sizes()
            .iter()
            .filter(|&&s| s >= 100)
            .count();
        assert_eq!(rel.establishments_removed, expected_removed);
        let expected_jobs: u64 = d
            .establishment_sizes()
            .iter()
            .filter(|&&s| s >= 100)
            .map(|&s| s as u64)
            .sum();
        assert_eq!(rel.jobs_removed, expected_jobs);
    }

    #[test]
    fn small_theta_destroys_utility() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let tiny = TruncatedLaplace::new(2, 4.0).release_marginal(&d, &workload1(), &mut rng);
        // With theta = 2 nearly all employment is deleted.
        assert!(
            tiny.jobs_removed as f64 > 0.8 * d.num_jobs() as f64,
            "theta=2 removed only {} of {} jobs",
            tiny.jobs_removed,
            d.num_jobs()
        );
    }

    #[test]
    fn error_is_dominated_by_bias_not_noise() {
        // Finding 6: increasing epsilon does not significantly reduce error
        // because truncation bias dominates.
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(3);
        let theta = 50;
        let low_eps =
            TruncatedLaplace::new(theta, 1.0).release_marginal(&d, &workload1(), &mut rng);
        let high_eps =
            TruncatedLaplace::new(theta, 16.0).release_marginal(&d, &workload1(), &mut rng);
        let ratio = high_eps.l1_error() / low_eps.l1_error();
        assert!(
            ratio > 0.5,
            "16x epsilon should give far less than 2x improvement, got ratio {ratio}"
        );
    }

    #[test]
    fn large_theta_keeps_everything_but_noise_scales_with_theta() {
        let d = dataset();
        let theta = 1_000_000;
        let m = TruncatedLaplace::new(theta, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let rel = m.release_marginal(&d, &workload1(), &mut rng);
        assert_eq!(rel.establishments_removed, 0);
        // All error is Laplace(theta/eps) noise: huge.
        let mean_err = rel.mean_l1_error();
        assert!(
            mean_err > 0.2 * m.noise_scale(),
            "mean error {mean_err} vs scale {}",
            m.noise_scale()
        );
    }

    #[test]
    fn published_support_matches_truth() {
        let d = dataset();
        let m = TruncatedLaplace::new(20, 2.0);
        let mut rng = StdRng::seed_from_u64(5);
        let rel = m.release_marginal(&d, &workload1(), &mut rng);
        assert_eq!(rel.published.len(), rel.truth.num_cells());
    }
}
