//! Flat-file (CSV) export and import of the three-table schema.
//!
//! Statistical agencies exchange extracts as flat files; this module
//! round-trips a [`Dataset`] through the LODES-style layout so synthetic
//! universes can be inspected with standard tools, shared between runs, or
//! fed to external analyses. The format is self-contained: a geography
//! section plus the three tables, all in one reader/writer pass.
//!
//! No external CSV crate is used — the fields are all integers/enum
//! indices, so hand-rolled serialization is both dependency-free and
//! unambiguous (no quoting/escaping cases arise).

use crate::geo::{Block, BlockId, CountyId, Geography, Place, PlaceId, StateId};
use crate::naics::NaicsSector;
use crate::ownership::Ownership;
use crate::schema::{Dataset, Job, Worker, WorkerId, Workplace, WorkplaceId};
use crate::worker::{AgeGroup, Education, Ethnicity, Race, Sex};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Errors from CSV import.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Write a dataset to `out` in the sectioned CSV layout.
pub fn write_dataset<W: Write>(dataset: &Dataset, out: &mut W) -> io::Result<()> {
    let mut buf = String::new();
    let geo = dataset.geography();

    let _ = writeln!(buf, "#geography,states={}", geo.num_states());
    let _ = writeln!(buf, "#counties");
    let _ = writeln!(buf, "county,state");
    for c in 0..geo.num_counties() {
        let _ = writeln!(buf, "{},{}", c, geo.state_of_county(CountyId(c as u16)).0);
    }
    let _ = writeln!(buf, "#places");
    let _ = writeln!(buf, "place,county,state,population");
    for p in geo.places() {
        let _ = writeln!(
            buf,
            "{},{},{},{}",
            p.id.0, p.county.0, p.state.0, p.population
        );
    }
    let _ = writeln!(buf, "#blocks");
    let _ = writeln!(buf, "block,place");
    for b in geo.blocks() {
        let _ = writeln!(buf, "{},{}", b.id.0, b.place.0);
    }

    let _ = writeln!(buf, "#workplaces");
    let _ = writeln!(buf, "workplace,block,naics,ownership");
    for w in dataset.workplaces() {
        let _ = writeln!(
            buf,
            "{},{},{},{}",
            w.id.0,
            w.block.0,
            w.naics.index(),
            w.ownership.index()
        );
    }

    let _ = writeln!(buf, "#workers");
    let _ = writeln!(buf, "worker,sex,age,race,ethnicity,education,workplace");
    for w in dataset.workers() {
        let _ = writeln!(
            buf,
            "{},{},{},{},{},{},{}",
            w.id.0,
            w.sex.index(),
            w.age.index(),
            w.race.index(),
            w.ethnicity.index(),
            w.education.index(),
            dataset.employer_of(w.id).0
        );
    }
    out.write_all(buf.as_bytes())
}

/// Read a dataset back from the sectioned CSV layout.
pub fn read_dataset<R: BufRead>(input: R) -> Result<Dataset, CsvError> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Counties,
        Places,
        Blocks,
        Workplaces,
        Workers,
    }
    let mut section = Section::None;
    let mut states: u16 = 0;
    let mut counties: Vec<StateId> = Vec::new();
    let mut places: Vec<Place> = Vec::new();
    let mut blocks: Vec<Block> = Vec::new();
    let mut workplaces_raw: Vec<(u32, u32, usize, usize)> = Vec::new();
    let mut workers: Vec<Worker> = Vec::new();
    let mut jobs: Vec<Job> = Vec::new();

    let parse_err = |line: usize, message: &str| CsvError::Parse {
        line,
        message: message.to_string(),
    };

    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            section = match rest.split(',').next().unwrap_or("") {
                "geography" => {
                    let states_field = rest
                        .split(',')
                        .nth(1)
                        .and_then(|f| f.strip_prefix("states="))
                        .ok_or_else(|| parse_err(line_no, "missing states= field"))?;
                    states = states_field
                        .parse()
                        .map_err(|_| parse_err(line_no, "bad state count"))?;
                    Section::None
                }
                "counties" => Section::Counties,
                "places" => Section::Places,
                "blocks" => Section::Blocks,
                "workplaces" => Section::Workplaces,
                "workers" => Section::Workers,
                other => return Err(parse_err(line_no, &format!("unknown section '{other}'"))),
            };
            continue;
        }
        // Header rows (non-numeric first field) are skipped.
        let fields: Vec<&str> = line.split(',').collect();
        if fields[0].parse::<u64>().is_err() {
            continue;
        }
        let num = |i: usize| -> Result<u64, CsvError> {
            fields
                .get(i)
                .ok_or_else(|| parse_err(line_no, "missing field"))?
                .parse()
                .map_err(|_| parse_err(line_no, "non-numeric field"))
        };
        match section {
            Section::Counties => counties.push(StateId(num(1)? as u16)),
            Section::Places => places.push(Place {
                id: PlaceId(num(0)? as u32),
                county: CountyId(num(1)? as u16),
                state: StateId(num(2)? as u16),
                population: num(3)?,
            }),
            Section::Blocks => blocks.push(Block {
                id: BlockId(num(0)? as u32),
                place: PlaceId(num(1)? as u32),
            }),
            Section::Workplaces => workplaces_raw.push((
                num(0)? as u32,
                num(1)? as u32,
                num(2)? as usize,
                num(3)? as usize,
            )),
            Section::Workers => {
                let id = WorkerId(num(0)? as u32);
                workers.push(Worker {
                    id,
                    sex: Sex::from_index(num(1)? as usize)
                        .ok_or_else(|| parse_err(line_no, "bad sex index"))?,
                    age: AgeGroup::from_index(num(2)? as usize)
                        .ok_or_else(|| parse_err(line_no, "bad age index"))?,
                    race: Race::from_index(num(3)? as usize)
                        .ok_or_else(|| parse_err(line_no, "bad race index"))?,
                    ethnicity: Ethnicity::from_index(num(4)? as usize)
                        .ok_or_else(|| parse_err(line_no, "bad ethnicity index"))?,
                    education: Education::from_index(num(5)? as usize)
                        .ok_or_else(|| parse_err(line_no, "bad education index"))?,
                });
                jobs.push(Job {
                    worker: id,
                    workplace: WorkplaceId(num(6)? as u32),
                });
            }
            Section::None => return Err(parse_err(line_no, "data before any section")),
        }
    }

    let geography = Geography::new(states, counties, places, blocks);
    let workplaces: Vec<Workplace> = workplaces_raw
        .into_iter()
        .map(|(id, block, naics, ownership)| {
            let block = BlockId(block);
            let place = geography.place_of_block(block);
            let place_rec = geography.place(place);
            Ok(Workplace {
                id: WorkplaceId(id),
                block,
                place,
                county: place_rec.county,
                state: place_rec.state,
                naics: NaicsSector::from_index(naics)
                    .ok_or_else(|| parse_err(0, "bad naics index"))?,
                ownership: Ownership::from_index(ownership)
                    .ok_or_else(|| parse_err(0, "bad ownership index"))?,
            })
        })
        .collect::<Result<_, CsvError>>()?;

    Ok(Dataset::new(geography, workplaces, workers, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};
    use std::io::BufReader;

    #[test]
    fn roundtrip_preserves_everything() {
        let original = Generator::new(GeneratorConfig::test_small(55)).generate();
        let mut buf = Vec::new();
        write_dataset(&original, &mut buf).unwrap();
        let restored = read_dataset(BufReader::new(&buf[..])).unwrap();

        assert_eq!(restored.num_jobs(), original.num_jobs());
        assert_eq!(restored.num_workplaces(), original.num_workplaces());
        assert_eq!(
            restored.geography().num_places(),
            original.geography().num_places()
        );
        assert_eq!(
            restored.establishment_sizes(),
            original.establishment_sizes()
        );
        // Spot-check record-level equality.
        for i in (0..original.num_workers()).step_by(997) {
            let id = WorkerId(i as u32);
            let (a, b) = (original.worker(id), restored.worker(id));
            assert_eq!(a.sex, b.sex);
            assert_eq!(a.education, b.education);
            assert_eq!(original.employer_of(id), restored.employer_of(id));
        }
        for i in (0..original.num_workplaces()).step_by(101) {
            let id = WorkplaceId(i as u32);
            let (a, b) = (original.workplace(id), restored.workplace(id));
            assert_eq!(a.naics, b.naics);
            assert_eq!(a.place, b.place);
        }
    }

    #[test]
    fn tabulations_agree_after_roundtrip() {
        let original = Generator::new(GeneratorConfig::test_small(56)).generate();
        let mut buf = Vec::new();
        write_dataset(&original, &mut buf).unwrap();
        let restored = read_dataset(BufReader::new(&buf[..])).unwrap();
        // The ultimate consumer check: identical marginal output.
        let a = crate::stats::DatasetStats::compute(&original);
        let b = crate::stats::DatasetStats::compute(&restored);
        assert_eq!(a.jobs, b.jobs);
        assert_eq!(a.over_1000, b.over_1000);
        assert_eq!(a.jobs_by_stratum, b.jobs_by_stratum);
    }

    #[test]
    fn rejects_malformed_input() {
        // Data before a section header.
        let bad = "1,2,3\n";
        let err = read_dataset(BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(matches!(err, CsvError::Parse { line: 1, .. }), "{err}");

        // Bad enum index.
        let bad = "#geography,states=1\n#counties\ncounty,state\n0,0\n#places\n\
                   place,county,state,population\n0,0,0,100\n#blocks\nblock,place\n0,0\n\
                   #workplaces\nworkplace,block,naics,ownership\n0,0,99,0\n#workers\n";
        let err = read_dataset(BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("naics"), "{err}");

        // Unknown section.
        let bad = "#mystery\n";
        let err = read_dataset(BufReader::new(bad.as_bytes())).unwrap_err();
        assert!(err.to_string().contains("unknown section"), "{err}");
    }
}
