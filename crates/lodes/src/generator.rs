//! Seeded synthetic ER-EE generator calibrated to the paper's aggregates.
//!
//! The paper's evaluation sample (Sec 10): a 2011 3-state LODES snapshot
//! with 10.9 M beginning-of-quarter jobs across ~527 k establishments —
//! mean ≈ 20.7 jobs per establishment — with employment "highly right
//! skewed" at the establishment level, and (per Sec 6) roughly 740–815
//! establishments above 1 000 employees (≈0.15 % of establishments).
//!
//! The generator reproduces those stylized facts with:
//!
//! * **Place populations** drawn from a Pareto distribution (many villages,
//!   few metros), covering all four strata used in the figures;
//! * **Establishment counts per place** proportional to population (plus a
//!   floor so small places host at least one establishment);
//! * **Establishment sizes** from a discretized log-normal whose `(μ, σ)`
//!   are sector- and ownership-shifted, yielding a long right tail;
//! * **Worker attributes** drawn from national priors *tilted per
//!   establishment* (each establishment gets its own attribute tilts), so
//!   establishment "shape" genuinely varies — required for the shape-privacy
//!   experiments and the SDL shape attack demo.

use crate::geo::{Block, BlockId, CountyId, Geography, Place, PlaceId, StateId};
use crate::naics::NaicsSector;
use crate::ownership::Ownership;
use crate::schema::{Dataset, Job, Worker, WorkerId, Workplace, WorkplaceId};
use crate::worker::{AgeGroup, Education, Ethnicity, Race, Sex};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{LogNormal, Pareto};

/// Configuration of the synthetic universe.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// RNG seed; every dataset is a pure function of the config.
    pub seed: u64,
    /// Number of states (the paper uses a 3-state sample).
    pub states: u16,
    /// Counties per state.
    pub counties_per_state: u16,
    /// Places per county.
    pub places_per_county: u16,
    /// Blocks per place.
    pub blocks_per_place: u16,
    /// Target number of establishments across the whole universe.
    pub target_establishments: usize,
    /// Log-normal `μ` for the establishment-size body. The default, together
    /// with `size_sigma`, yields mean size ≈ 20 jobs.
    pub size_mu: f64,
    /// Log-normal `σ` for the establishment-size body (controls skew).
    pub size_sigma: f64,
    /// Pareto shape for place populations (smaller ⇒ heavier metro tail).
    pub place_pop_shape: f64,
    /// Minimum place population scale.
    pub place_pop_scale: f64,
    /// Dirichlet-style concentration for per-establishment attribute tilts.
    /// Larger ⇒ establishments look more like the national prior; smaller ⇒
    /// more idiosyncratic shapes.
    pub shape_concentration: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            seed: 0xEEE5_2017,
            states: 3,
            counties_per_state: 8,
            places_per_county: 24,
            blocks_per_place: 4,
            target_establishments: 60_000,
            size_mu: 1.55,
            size_sigma: 1.45,
            place_pop_shape: 0.95,
            place_pop_scale: 40.0,
            shape_concentration: 8.0,
        }
    }
}

impl GeneratorConfig {
    /// A small configuration for fast unit/integration tests
    /// (~2 k establishments, ~40 k jobs).
    pub fn test_small(seed: u64) -> Self {
        Self {
            seed,
            states: 2,
            counties_per_state: 3,
            places_per_county: 8,
            blocks_per_place: 2,
            target_establishments: 2_000,
            ..Self::default()
        }
    }

    /// Full paper-scale configuration (~527 k establishments, ~10.9 M jobs).
    /// Heavy: only used when explicitly requested.
    pub fn paper_scale(seed: u64) -> Self {
        Self {
            seed,
            states: 3,
            counties_per_state: 30,
            places_per_county: 40,
            blocks_per_place: 6,
            target_establishments: 527_000,
            ..Self::default()
        }
    }

    /// National-scale configuration: a 51-state universe sized to hit
    /// `target_jobs` total jobs (mean establishment size ≈ 20, so the
    /// establishment target is `target_jobs / 20`). 10–100 M jobs is the
    /// QWI/QCEW production range; datasets this size should be **streamed**
    /// through [`Generator::for_each_establishment`] into a region-sharded
    /// index rather than materialized as one [`Dataset`].
    pub fn national(seed: u64, target_jobs: usize) -> Self {
        Self {
            seed,
            states: 51,
            counties_per_state: 30,
            places_per_county: 12,
            blocks_per_place: 4,
            target_establishments: (target_jobs / 20).max(1),
            ..Self::default()
        }
    }
}

/// The synthetic-data generator.
#[derive(Debug, Clone)]
pub struct Generator {
    config: GeneratorConfig,
}

impl Generator {
    /// Create a generator from a configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        Self { config }
    }

    /// Convenience: default config with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self::new(GeneratorConfig {
            seed,
            ..GeneratorConfig::default()
        })
    }

    /// Generate the complete dataset.
    pub fn generate(&self) -> Dataset {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let geography = self.generate_geography(&mut rng);
        let workplaces = self.generate_workplaces(&geography, &mut rng);
        let (workers, jobs) = self.generate_workforces(&workplaces, &mut rng);
        Dataset::new(geography, workplaces, workers, jobs)
    }

    /// Stream the same universe [`generate`](Self::generate) would build,
    /// one establishment at a time, without materializing the worker or
    /// job tables. Returns the geography once the stream is exhausted.
    ///
    /// The callback receives each workplace with its complete workforce,
    /// in workplace-id order, drawn from the **same RNG stream** as
    /// `generate` — the streamed records are byte-identical to the
    /// materialized dataset's (same ids, same attributes). This is the
    /// national-scale path: at 100 M jobs the flat `Dataset` (workers +
    /// jobs + a counting-sort permutation) costs several GiB that a
    /// streaming index build never allocates; peak memory is one
    /// establishment's workforce plus whatever the consumer keeps.
    pub fn for_each_establishment<F>(&self, mut f: F) -> Geography
    where
        F: FnMut(&Workplace, &[Worker]),
    {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let geography = self.generate_geography(&mut rng);
        let workplaces = self.generate_workplaces(&geography, &mut rng);
        let mut buf: Vec<Worker> = Vec::new();
        let mut next_id = 0u32;
        for wp in &workplaces {
            self.establishment_workforce(wp, next_id, &mut rng, &mut buf);
            next_id += buf.len() as u32;
            f(wp, &buf);
        }
        geography
    }

    /// The geography this generator's universe uses — drawn from the same
    /// RNG prefix as [`generate`](Self::generate) and
    /// [`for_each_establishment`](Self::for_each_establishment), so it is
    /// identical to the geography either of them produces. Cheap relative
    /// to the establishment stream; use it to size a streaming consumer
    /// (e.g. a region-sharded index builder) before the stream starts.
    pub fn geography(&self) -> Geography {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.generate_geography(&mut rng)
    }

    fn generate_geography(&self, rng: &mut StdRng) -> Geography {
        let cfg = &self.config;
        let pop_dist = Pareto::new(cfg.place_pop_scale, cfg.place_pop_shape)
            .expect("place population Pareto parameters");

        let mut counties = Vec::new();
        let mut places = Vec::new();
        let mut blocks = Vec::new();
        for s in 0..cfg.states {
            for c in 0..cfg.counties_per_state {
                let county = CountyId(counties.len() as u16);
                counties.push(StateId(s));
                for p in 0..cfg.places_per_county {
                    let place_id = PlaceId(places.len() as u32);
                    // The first few places in each county are "anchors" that
                    // guarantee every population stratum of the paper's
                    // figures is populated at any generation scale; the rest
                    // follow the Pareto tail (capped at a NYC-scale 4M).
                    let population = match p {
                        0 => rng.gen_range(10..100),
                        1 => rng.gen_range(200..8_000),
                        2 => rng.gen_range(15_000..90_000),
                        3 if c == 0 => rng.gen_range(150_000..800_000),
                        _ => (pop_dist.sample(rng) as u64).min(4_000_000),
                    };
                    places.push(Place {
                        id: place_id,
                        county,
                        state: StateId(s),
                        population,
                    });
                    for _ in 0..cfg.blocks_per_place {
                        blocks.push(Block {
                            id: BlockId(blocks.len() as u32),
                            place: place_id,
                        });
                    }
                }
            }
        }
        Geography::new(cfg.states, counties, places, blocks)
    }

    fn generate_workplaces(&self, geography: &Geography, rng: &mut StdRng) -> Vec<Workplace> {
        let cfg = &self.config;
        // Establishments per place ∝ population, with a floor of 1.
        let total_pop: f64 = geography.places().map(|p| p.population as f64).sum();
        let naics_weights: Vec<f64> = NaicsSector::ALL
            .iter()
            .map(|s| s.establishment_weight())
            .collect();
        let naics_dist = WeightedIndex::new(&naics_weights).expect("naics weights");
        let own_weights: Vec<f64> = Ownership::ALL
            .iter()
            .map(|o| o.establishment_weight())
            .collect();
        let own_dist = WeightedIndex::new(&own_weights).expect("ownership weights");

        // One pass over the block table, grouped by place — a per-place
        // filter scan is O(places × blocks), which matters at national
        // scale (tens of thousands of each).
        let mut blocks_of_place: Vec<Vec<BlockId>> = vec![Vec::new(); geography.num_places()];
        for b in geography.blocks() {
            blocks_of_place[b.place.0 as usize].push(b.id);
        }

        let mut workplaces = Vec::with_capacity(cfg.target_establishments);
        for place in geography.places() {
            let share = place.population as f64 / total_pop;
            let expected = share * cfg.target_establishments as f64;
            // Randomized rounding keeps the total near the target without
            // biasing against small places.
            let n =
                expected.floor() as usize + usize::from(rng.gen::<f64>() < expected.fract()) + 1;
            let place_blocks = &blocks_of_place[place.id.0 as usize];
            for _ in 0..n {
                let id = WorkplaceId(workplaces.len() as u32);
                let block = place_blocks[rng.gen_range(0..place_blocks.len())];
                workplaces.push(Workplace {
                    id,
                    block,
                    place: place.id,
                    county: place.county,
                    state: place.state,
                    naics: NaicsSector::ALL[naics_dist.sample(rng)],
                    ownership: Ownership::ALL[own_dist.sample(rng)],
                });
            }
        }
        workplaces
    }

    fn generate_workforces(
        &self,
        workplaces: &[Workplace],
        rng: &mut StdRng,
    ) -> (Vec<Worker>, Vec<Job>) {
        let mut workers = Vec::new();
        let mut jobs = Vec::new();
        let mut buf: Vec<Worker> = Vec::new();

        for wp in workplaces {
            self.establishment_workforce(wp, workers.len() as u32, rng, &mut buf);
            for w in &buf {
                workers.push(*w);
                jobs.push(Job {
                    worker: w.id,
                    workplace: wp.id,
                });
            }
        }
        (workers, jobs)
    }

    /// Draw one establishment's workforce into `out` (cleared first),
    /// assigning worker ids `base_id..`. The single source of per-
    /// establishment randomness for both the materialized and streaming
    /// paths — they stay byte-identical because both call exactly this,
    /// in the same order, on the same RNG stream.
    fn establishment_workforce(
        &self,
        wp: &Workplace,
        base_id: u32,
        rng: &mut StdRng,
        out: &mut Vec<Worker>,
    ) {
        let cfg = &self.config;
        out.clear();

        // Establishment size: log-normal with sector/ownership-shifted μ.
        let mult = wp.naics.size_multiplier() * wp.ownership.size_multiplier();
        let mu = cfg.size_mu + mult.ln();
        let size_dist = LogNormal::new(mu, cfg.size_sigma).expect("log-normal params");
        let size = (size_dist.sample(rng).round() as u64).clamp(1, 40_000) as u32;

        // Per-establishment attribute tilts: perturb each prior weight by
        // a Gamma(k,1)-style multiplicative factor so shapes differ
        // across establishments (the larger `shape_concentration`, the
        // closer to the national prior).
        let sex_w = tilt(rng, cfg.shape_concentration, &[0.52, 0.48]);
        let age_w = tilt(
            rng,
            cfg.shape_concentration,
            &AgeGroup::ALL.map(|a| a.weight()),
        );
        let race_w = tilt(rng, cfg.shape_concentration, &Race::ALL.map(|r| r.weight()));
        let eth_w = tilt(
            rng,
            cfg.shape_concentration,
            &Ethnicity::ALL.map(|e| e.weight()),
        );
        let edu_w = tilt(
            rng,
            cfg.shape_concentration,
            &Education::ALL.map(|e| e.weight()),
        );
        let sex_dist = WeightedIndex::new(&sex_w).expect("sex weights");
        let age_dist = WeightedIndex::new(&age_w).expect("age weights");
        let race_dist = WeightedIndex::new(&race_w).expect("race weights");
        let eth_dist = WeightedIndex::new(&eth_w).expect("ethnicity weights");
        let edu_dist = WeightedIndex::new(&edu_w).expect("education weights");

        for i in 0..size {
            out.push(Worker {
                id: WorkerId(base_id + i),
                sex: Sex::ALL[sex_dist.sample(rng)],
                age: AgeGroup::ALL[age_dist.sample(rng)],
                race: Race::ALL[race_dist.sample(rng)],
                ethnicity: Ethnicity::ALL[eth_dist.sample(rng)],
                education: Education::ALL[edu_dist.sample(rng)],
            });
        }
    }
}

/// Multiply prior weights by independent positive random factors with mean 1
/// and variance `1/concentration` (a cheap Dirichlet-like tilt built from a
/// sum of uniforms; exact distribution is unimportant, only that tilts are
/// positive, mean-preserving, and controlled by `concentration`).
fn tilt<R: Rng + ?Sized>(rng: &mut R, concentration: f64, priors: &[f64]) -> Vec<f64> {
    let sd = (1.0 / concentration).sqrt();
    priors
        .iter()
        .map(|&p| {
            // Irwin–Hall(12) - 6 approximates a standard normal.
            let z: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
            p * (1.0 + sd * z).max(0.05)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Generator::new(GeneratorConfig::test_small(1)).generate();
        let b = Generator::new(GeneratorConfig::test_small(1)).generate();
        assert_eq!(a.num_jobs(), b.num_jobs());
        assert_eq!(a.num_workplaces(), b.num_workplaces());
        for (x, y) in a.establishment_sizes().iter().zip(b.establishment_sizes()) {
            assert_eq!(x, y);
        }
        // Different seed actually changes the data.
        let c = Generator::new(GeneratorConfig::test_small(2)).generate();
        assert_ne!(
            a.establishment_sizes(),
            c.establishment_sizes(),
            "different seeds must differ"
        );
    }

    #[test]
    fn streaming_generation_is_byte_identical_to_materialized() {
        let gen = Generator::new(GeneratorConfig::test_small(9));
        let d = gen.generate();
        let (offsets, order) = d.workers_by_employer();
        let mut e = 0usize;
        let geography = gen.for_each_establishment(|wp, workers| {
            assert_eq!(wp, &d.workplaces()[e]);
            let range = offsets[e] as usize..offsets[e + 1] as usize;
            assert_eq!(workers.len(), range.len());
            for (w, &id) in workers.iter().zip(&order[range]) {
                assert_eq!(w, d.worker(WorkerId(id)));
            }
            e += 1;
        });
        assert_eq!(e, d.num_workplaces());
        assert_eq!(geography.num_blocks(), d.geography().num_blocks());
    }

    #[test]
    fn national_config_targets_job_count() {
        let cfg = GeneratorConfig::national(1, 10_000_000);
        assert_eq!(cfg.states, 51);
        assert_eq!(cfg.target_establishments, 500_000);
    }

    #[test]
    fn establishment_count_near_target() {
        let d = Generator::new(GeneratorConfig::test_small(7)).generate();
        let n = d.num_workplaces() as f64;
        let target = 2_000.0;
        // The +1 floor per place adds at most places-many extras.
        let places = d.geography().num_places() as f64;
        assert!(n >= target * 0.8, "n={n}");
        assert!(n <= target * 1.2 + places, "n={n}");
    }

    #[test]
    fn sizes_are_right_skewed() {
        let d = Generator::new(GeneratorConfig::test_small(3)).generate();
        let sizes: Vec<f64> = d.establishment_sizes().iter().map(|&s| s as f64).collect();
        let n = sizes.len() as f64;
        let mean = sizes.iter().sum::<f64>() / n;
        let mut sorted = sizes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        // Right skew: mean well above median.
        assert!(
            mean > 1.5 * median,
            "mean {mean} should exceed 1.5x median {median}"
        );
        // Mean establishment size should be near the paper's ~20.7.
        assert!(mean > 8.0 && mean < 45.0, "mean size {mean}");
        // There should exist a heavy tail.
        let max = sorted[sorted.len() - 1];
        assert!(max > 50.0 * median, "max {max} vs median {median}");
    }

    #[test]
    fn all_strata_are_populated() {
        use crate::geo::PlaceSizeClass;
        let d = Generator::new(GeneratorConfig::test_small(5)).generate();
        let mut seen = std::collections::BTreeSet::new();
        for p in d.geography().places() {
            seen.insert(p.size_class());
        }
        for class in PlaceSizeClass::ALL {
            assert!(seen.contains(&class), "missing stratum {class:?}");
        }
    }

    #[test]
    fn default_scale_has_large_establishments() {
        // Sec 6 of the paper: hundreds of establishments above 1000
        // employees out of 527k (~0.1-0.2%). Verify our tail at reduced
        // scale: among 60k establishments expect dozens above 1000.
        let d = Generator::new(GeneratorConfig {
            target_establishments: 20_000,
            ..GeneratorConfig::default()
        })
        .generate();
        let over_1000 = d
            .establishment_sizes()
            .iter()
            .filter(|&&s| s > 1000)
            .count();
        let frac = over_1000 as f64 / d.num_workplaces() as f64;
        assert!(
            frac > 0.0002 && frac < 0.02,
            "fraction above 1000 employees: {frac} ({over_1000})"
        );
    }

    #[test]
    fn shapes_vary_across_establishments() {
        use crate::histogram::DatasetHistograms;
        use crate::worker::Sex;
        let d = Generator::new(GeneratorConfig::test_small(11)).generate();
        let hists = DatasetHistograms::build(&d);
        // Female share should vary across large establishments.
        let mut shares = Vec::new();
        for (_, h) in hists.iter() {
            if h.total() >= 50 {
                let f = h.count_matching(|s, _, _, _, _| s == Sex::Female) as f64;
                shares.push(f / h.total() as f64);
            }
        }
        assert!(shares.len() > 10, "need enough large establishments");
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        let var = shares.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / shares.len() as f64;
        assert!(var > 1e-4, "female share variance {var} too small");
    }
}
