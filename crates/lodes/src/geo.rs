//! Geography hierarchy: state → county → place → census block.
//!
//! LODES tabulates workplace counts at the census-block level, but the
//! paper's headline marginal (Workload 1) aggregates blocks to Census
//! *places* (cities, towns, Census Designated Places) and stratifies results
//! by place population: 0–100, 100–10k, 10k–100k, 100k+. We therefore carry
//! a resident population for each place, distinct from its job count.

use serde::{Deserialize, Serialize};

/// Identifier of a state (0-based dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StateId(pub u16);

/// Identifier of a county within the synthetic universe (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CountyId(pub u16);

/// Identifier of a Census place (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlaceId(pub u32);

/// Identifier of a census block (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// Population-size class of a place — the strata used in Figures 1–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PlaceSizeClass {
    /// Resident population in `[0, 100)`.
    Under100,
    /// Resident population in `[100, 10_000)`.
    To10k,
    /// Resident population in `[10_000, 100_000)`.
    To100k,
    /// Resident population `≥ 100_000`.
    Over100k,
}

impl PlaceSizeClass {
    /// Classify a population count.
    pub fn of(population: u64) -> Self {
        match population {
            0..=99 => PlaceSizeClass::Under100,
            100..=9_999 => PlaceSizeClass::To10k,
            10_000..=99_999 => PlaceSizeClass::To100k,
            _ => PlaceSizeClass::Over100k,
        }
    }

    /// All classes in ascending population order.
    pub const ALL: [PlaceSizeClass; 4] = [
        PlaceSizeClass::Under100,
        PlaceSizeClass::To10k,
        PlaceSizeClass::To100k,
        PlaceSizeClass::Over100k,
    ];

    /// Human-readable label matching the paper's facet titles.
    pub fn label(&self) -> &'static str {
        match self {
            PlaceSizeClass::Under100 => "0 <= pop < 100",
            PlaceSizeClass::To10k => "100 <= pop < 10k",
            PlaceSizeClass::To100k => "10k <= pop < 100k",
            PlaceSizeClass::Over100k => "pop >= 100k",
        }
    }
}

/// A Census place with its containing geography and resident population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Place {
    /// Dense identifier.
    pub id: PlaceId,
    /// Containing county.
    pub county: CountyId,
    /// Containing state.
    pub state: StateId,
    /// Resident population (2010-Census-style `P0010001` analogue), used
    /// only for stratifying evaluation output.
    pub population: u64,
}

impl Place {
    /// Stratum of this place.
    pub fn size_class(&self) -> PlaceSizeClass {
        PlaceSizeClass::of(self.population)
    }
}

/// A census block, the finest workplace geography.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Block {
    /// Dense identifier.
    pub id: BlockId,
    /// Containing place.
    pub place: PlaceId,
}

/// The complete synthetic geography: states, counties, places, and blocks,
/// with parent pointers in dense vectors for O(1) lookup.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Geography {
    states: u16,
    counties: Vec<StateId>,
    places: Vec<Place>,
    blocks: Vec<Block>,
}

impl Geography {
    /// Assemble a geography from parts. Intended to be called by the
    /// generator; validates parent references.
    pub fn new(
        states: u16,
        counties: Vec<StateId>,
        places: Vec<Place>,
        blocks: Vec<Block>,
    ) -> Self {
        for c in &counties {
            assert!(c.0 < states, "county references missing state {}", c.0);
        }
        for (i, p) in places.iter().enumerate() {
            assert_eq!(p.id.0 as usize, i, "place ids must be dense");
            assert!(
                (p.county.0 as usize) < counties.len(),
                "place references missing county"
            );
        }
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.id.0 as usize, i, "block ids must be dense");
            assert!(
                (b.place.0 as usize) < places.len(),
                "block references missing place"
            );
        }
        Self {
            states,
            counties,
            places,
            blocks,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> u16 {
        self.states
    }

    /// Number of counties.
    pub fn num_counties(&self) -> usize {
        self.counties.len()
    }

    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.places.len()
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The place containing `block`.
    pub fn place_of_block(&self, block: BlockId) -> PlaceId {
        self.blocks[block.0 as usize].place
    }

    /// Full place record.
    pub fn place(&self, place: PlaceId) -> &Place {
        &self.places[place.0 as usize]
    }

    /// Iterate over all places.
    pub fn places(&self) -> impl Iterator<Item = &Place> {
        self.places.iter()
    }

    /// Iterate over all blocks.
    pub fn blocks(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// The state containing `county`.
    pub fn state_of_county(&self, county: CountyId) -> StateId {
        self.counties[county.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_geo() -> Geography {
        let counties = vec![StateId(0), StateId(0), StateId(1)];
        let places = vec![
            Place {
                id: PlaceId(0),
                county: CountyId(0),
                state: StateId(0),
                population: 50,
            },
            Place {
                id: PlaceId(1),
                county: CountyId(1),
                state: StateId(0),
                population: 5_000,
            },
            Place {
                id: PlaceId(2),
                county: CountyId(2),
                state: StateId(1),
                population: 250_000,
            },
        ];
        let blocks = vec![
            Block {
                id: BlockId(0),
                place: PlaceId(0),
            },
            Block {
                id: BlockId(1),
                place: PlaceId(1),
            },
            Block {
                id: BlockId(2),
                place: PlaceId(2),
            },
            Block {
                id: BlockId(3),
                place: PlaceId(2),
            },
        ];
        Geography::new(2, counties, places, blocks)
    }

    #[test]
    fn size_class_boundaries() {
        assert_eq!(PlaceSizeClass::of(0), PlaceSizeClass::Under100);
        assert_eq!(PlaceSizeClass::of(99), PlaceSizeClass::Under100);
        assert_eq!(PlaceSizeClass::of(100), PlaceSizeClass::To10k);
        assert_eq!(PlaceSizeClass::of(9_999), PlaceSizeClass::To10k);
        assert_eq!(PlaceSizeClass::of(10_000), PlaceSizeClass::To100k);
        assert_eq!(PlaceSizeClass::of(99_999), PlaceSizeClass::To100k);
        assert_eq!(PlaceSizeClass::of(100_000), PlaceSizeClass::Over100k);
        assert_eq!(PlaceSizeClass::of(u64::MAX), PlaceSizeClass::Over100k);
    }

    #[test]
    fn lookups_resolve_parents() {
        let g = tiny_geo();
        assert_eq!(g.num_states(), 2);
        assert_eq!(g.num_counties(), 3);
        assert_eq!(g.num_places(), 3);
        assert_eq!(g.num_blocks(), 4);
        assert_eq!(g.place_of_block(BlockId(3)), PlaceId(2));
        assert_eq!(g.place(PlaceId(2)).size_class(), PlaceSizeClass::Over100k);
        assert_eq!(g.state_of_county(CountyId(2)), StateId(1));
    }

    #[test]
    #[should_panic(expected = "block references missing place")]
    fn rejects_dangling_block() {
        let mut counties = vec![StateId(0)];
        counties.truncate(1);
        Geography::new(
            1,
            counties,
            vec![],
            vec![Block {
                id: BlockId(0),
                place: PlaceId(7),
            }],
        );
    }

    #[test]
    fn all_classes_cover_labels() {
        for c in PlaceSizeClass::ALL {
            assert!(!c.label().is_empty());
        }
    }
}
