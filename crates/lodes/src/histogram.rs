//! Per-establishment worker-cell histograms `h(w, c)`.
//!
//! Section 5.1 of the paper describes the `WorkplaceFull` table: one row per
//! workplace `w` with a histogram `h(w)` of its workers cross-tabulated over
//! *all* combinations of worker attributes. The SDL input-noise-infusion
//! system perturbs these histograms (`h*(w,c) = f_w · h(w,c)`), and the
//! smooth-sensitivity mechanisms need, per output cell, the largest
//! single-establishment contribution `x_v` — both are computed from this
//! structure.
//!
//! The full worker domain has 768 cells but a typical establishment has ~20
//! workers, so histograms are stored sparsely.

use crate::schema::{Dataset, Worker, WorkplaceId};
use crate::worker::{AgeGroup, Education, Ethnicity, Race, Sex, WORKER_DOMAIN_SIZE};
use std::collections::BTreeMap;

/// Dense index of a full worker-attribute combination in
/// `[0, WORKER_DOMAIN_SIZE)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerCell(pub u16);

impl WorkerCell {
    /// Encode a worker's attribute combination.
    pub fn of(worker: &Worker) -> Self {
        let mut idx = worker.sex.index();
        idx = idx * AgeGroup::COUNT + worker.age.index();
        idx = idx * Race::COUNT + worker.race.index();
        idx = idx * Ethnicity::COUNT + worker.ethnicity.index();
        idx = idx * Education::COUNT + worker.education.index();
        WorkerCell(idx as u16)
    }

    /// Decode back into attribute values `(sex, age, race, ethnicity,
    /// education)`.
    pub fn decode(&self) -> (Sex, AgeGroup, Race, Ethnicity, Education) {
        let mut idx = self.0 as usize;
        let education = Education::from_index(idx % Education::COUNT).unwrap();
        idx /= Education::COUNT;
        let ethnicity = Ethnicity::from_index(idx % Ethnicity::COUNT).unwrap();
        idx /= Ethnicity::COUNT;
        let race = Race::from_index(idx % Race::COUNT).unwrap();
        idx /= Race::COUNT;
        let age = AgeGroup::from_index(idx % AgeGroup::COUNT).unwrap();
        idx /= AgeGroup::COUNT;
        let sex = Sex::from_index(idx).unwrap();
        (sex, age, race, ethnicity, education)
    }

    /// All cells in the worker domain.
    pub fn all() -> impl Iterator<Item = WorkerCell> {
        (0..WORKER_DOMAIN_SIZE as u16).map(WorkerCell)
    }
}

/// Sparse histogram of one establishment's workforce over worker cells.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkplaceHistogram {
    counts: BTreeMap<WorkerCell, u32>,
    total: u32,
}

impl WorkplaceHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one worker.
    pub fn add(&mut self, cell: WorkerCell) {
        *self.counts.entry(cell).or_insert(0) += 1;
        self.total += 1;
    }

    /// Count in a specific cell (`h(w, c)`), zero when absent.
    pub fn count(&self, cell: WorkerCell) -> u32 {
        self.counts.get(&cell).copied().unwrap_or(0)
    }

    /// Total employment of the establishment (`|e|`).
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Iterate over nonzero cells.
    pub fn nonzero(&self) -> impl Iterator<Item = (WorkerCell, u32)> + '_ {
        self.counts.iter().map(|(&c, &n)| (c, n))
    }

    /// Number of distinct nonzero cells.
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }

    /// Sum of counts over an arbitrary predicate on decoded attributes —
    /// the workforce property `φ(E)` of Definition 7.3.
    pub fn count_matching<F>(&self, mut predicate: F) -> u32
    where
        F: FnMut(Sex, AgeGroup, Race, Ethnicity, Education) -> bool,
    {
        self.counts
            .iter()
            .filter(|(cell, _)| {
                let (s, a, r, e, d) = cell.decode();
                predicate(s, a, r, e, d)
            })
            .map(|(_, &n)| n)
            .sum()
    }
}

/// Histograms for every establishment in a dataset, indexed by workplace ID.
#[derive(Debug, Clone)]
pub struct DatasetHistograms {
    histograms: Vec<WorkplaceHistogram>,
}

impl DatasetHistograms {
    /// Build all establishment histograms in one pass over the Job table.
    pub fn build(dataset: &Dataset) -> Self {
        let mut histograms = vec![WorkplaceHistogram::new(); dataset.num_workplaces()];
        for worker in dataset.workers() {
            let wp = dataset.employer_of(worker.id);
            histograms[wp.0 as usize].add(WorkerCell::of(worker));
        }
        Self { histograms }
    }

    /// Histogram of one establishment.
    pub fn of(&self, workplace: WorkplaceId) -> &WorkplaceHistogram {
        &self.histograms[workplace.0 as usize]
    }

    /// Iterate over `(workplace index, histogram)`.
    pub fn iter(&self) -> impl Iterator<Item = (WorkplaceId, &WorkplaceHistogram)> {
        self.histograms
            .iter()
            .enumerate()
            .map(|(i, h)| (WorkplaceId(i as u32), h))
    }

    /// Number of establishments covered.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// True when no establishments are covered.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::*;

    #[test]
    fn cell_roundtrip_entire_domain() {
        for cell in WorkerCell::all() {
            let (s, a, r, e, d) = cell.decode();
            let w = Worker {
                id: crate::schema::WorkerId(0),
                sex: s,
                age: a,
                race: r,
                ethnicity: e,
                education: d,
            };
            assert_eq!(WorkerCell::of(&w), cell);
        }
    }

    #[test]
    fn histogram_counts() {
        let mut h = WorkplaceHistogram::new();
        let c0 = WorkerCell(0);
        let c5 = WorkerCell(5);
        h.add(c0);
        h.add(c0);
        h.add(c5);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(c0), 2);
        assert_eq!(h.count(c5), 1);
        assert_eq!(h.count(WorkerCell(9)), 0);
        assert_eq!(h.support_size(), 2);
    }

    #[test]
    fn count_matching_is_phi() {
        let mut h = WorkplaceHistogram::new();
        // Female with bachelor's.
        let w1 = Worker {
            id: crate::schema::WorkerId(0),
            sex: Sex::Female,
            age: AgeGroup::A25_34,
            race: Race::Asian,
            ethnicity: Ethnicity::NotHispanic,
            education: Education::BachelorOrHigher,
        };
        // Male, high school.
        let w2 = Worker {
            id: crate::schema::WorkerId(1),
            sex: Sex::Male,
            age: AgeGroup::A45_54,
            race: Race::White,
            ethnicity: Ethnicity::Hispanic,
            education: Education::HighSchool,
        };
        h.add(WorkerCell::of(&w1));
        h.add(WorkerCell::of(&w1));
        h.add(WorkerCell::of(&w2));
        let females_college =
            h.count_matching(|s, _, _, _, d| s == Sex::Female && d == Education::BachelorOrHigher);
        assert_eq!(females_college, 2);
        let total = h.count_matching(|_, _, _, _, _| true);
        assert_eq!(total, h.total());
    }

    #[test]
    fn dataset_histograms_match_sizes() {
        let d = crate::schema::tests::tiny_dataset();
        let hs = DatasetHistograms::build(&d);
        assert_eq!(hs.len(), d.num_workplaces());
        for (wp, h) in hs.iter() {
            assert_eq!(h.total(), d.establishment_size(wp));
        }
    }
}
