//! Synthetic LODES-style employer-employee (ER-EE) data substrate.
//!
//! The experiments in Haney et al. (SIGMOD 2017) run on a confidential
//! 3-state extract of the U.S. Census Bureau's LODES infrastructure
//! (10.9 M jobs across ~527 k establishments). That extract cannot leave the
//! Bureau, so this crate builds the closest synthetic equivalent that
//! exercises the same code paths:
//!
//! * the documented three-table schema — [`schema::Workplace`],
//!   [`schema::Worker`], [`schema::Job`] — joined into the `WorkerFull`
//!   universal relation the paper tabulates;
//! * a geography hierarchy (state → county → place → census block) with
//!   power-law place populations, so the paper's stratified results
//!   (place population 0–100, 100–10k, 10k–100k, 100k+) are reproducible;
//! * NAICS two-digit industry sectors and public/private ownership;
//! * a seeded generator ([`generator::Generator`]) whose establishment-size
//!   distribution is right-skewed (log-normal body, Pareto tail) and
//!   calibrated to the paper's published aggregates: mean ≈ 20.7 jobs per
//!   establishment and hundreds of establishments above 1 000 employees.
//!
//! Everything is deterministic given a seed; the evaluation harness pins
//! seeds so figures regenerate bit-identically.

pub mod csv;
pub mod generator;
pub mod geo;
pub mod histogram;
pub mod naics;
pub mod ownership;
pub mod panel;
pub mod schema;
pub mod stats;
pub mod worker;

pub use generator::{Generator, GeneratorConfig};
pub use geo::{BlockId, CountyId, Geography, PlaceId, PlaceSizeClass, StateId};
pub use histogram::WorkplaceHistogram;
pub use naics::NaicsSector;
pub use ownership::Ownership;
pub use panel::{DatasetPanel, PanelConfig};
pub use schema::{Dataset, Job, Worker, WorkerId, Workplace, WorkplaceId};
pub use stats::DatasetStats;
pub use worker::{AgeGroup, Education, Ethnicity, Race, Sex};
