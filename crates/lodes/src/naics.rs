//! NAICS two-digit industry sectors.
//!
//! The Workplace table carries the NAICS code of each establishment; the
//! paper's Workload 1 marginal groups by NAICS *sector* (the two-digit
//! level, 20 sectors). Sector existence/location is public information
//! (Sec 4.1), so sectors never need protection — only the employment counts
//! within them do.

use serde::{Deserialize, Serialize};

/// The 20 two-digit NAICS sectors (2012 vintage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum NaicsSector {
    /// 11 — Agriculture, Forestry, Fishing and Hunting
    Agriculture = 0,
    /// 21 — Mining, Quarrying, and Oil and Gas Extraction
    Mining,
    /// 22 — Utilities
    Utilities,
    /// 23 — Construction
    Construction,
    /// 31-33 — Manufacturing
    Manufacturing,
    /// 42 — Wholesale Trade
    Wholesale,
    /// 44-45 — Retail Trade
    Retail,
    /// 48-49 — Transportation and Warehousing
    Transportation,
    /// 51 — Information
    Information,
    /// 52 — Finance and Insurance
    Finance,
    /// 53 — Real Estate and Rental and Leasing
    RealEstate,
    /// 54 — Professional, Scientific, and Technical Services
    Professional,
    /// 55 — Management of Companies and Enterprises
    Management,
    /// 56 — Administrative and Support and Waste Management
    Administrative,
    /// 61 — Educational Services
    Education,
    /// 62 — Health Care and Social Assistance
    HealthCare,
    /// 71 — Arts, Entertainment, and Recreation
    Arts,
    /// 72 — Accommodation and Food Services
    Accommodation,
    /// 81 — Other Services (except Public Administration)
    OtherServices,
    /// 92 — Public Administration
    PublicAdministration,
}

impl NaicsSector {
    /// All sectors, in code order.
    pub const ALL: [NaicsSector; 20] = [
        NaicsSector::Agriculture,
        NaicsSector::Mining,
        NaicsSector::Utilities,
        NaicsSector::Construction,
        NaicsSector::Manufacturing,
        NaicsSector::Wholesale,
        NaicsSector::Retail,
        NaicsSector::Transportation,
        NaicsSector::Information,
        NaicsSector::Finance,
        NaicsSector::RealEstate,
        NaicsSector::Professional,
        NaicsSector::Management,
        NaicsSector::Administrative,
        NaicsSector::Education,
        NaicsSector::HealthCare,
        NaicsSector::Arts,
        NaicsSector::Accommodation,
        NaicsSector::OtherServices,
        NaicsSector::PublicAdministration,
    ];

    /// Number of sectors.
    pub const COUNT: usize = 20;

    /// Two-digit NAICS code string (ranged sectors use their range label).
    pub fn code(&self) -> &'static str {
        match self {
            NaicsSector::Agriculture => "11",
            NaicsSector::Mining => "21",
            NaicsSector::Utilities => "22",
            NaicsSector::Construction => "23",
            NaicsSector::Manufacturing => "31-33",
            NaicsSector::Wholesale => "42",
            NaicsSector::Retail => "44-45",
            NaicsSector::Transportation => "48-49",
            NaicsSector::Information => "51",
            NaicsSector::Finance => "52",
            NaicsSector::RealEstate => "53",
            NaicsSector::Professional => "54",
            NaicsSector::Management => "55",
            NaicsSector::Administrative => "56",
            NaicsSector::Education => "61",
            NaicsSector::HealthCare => "62",
            NaicsSector::Arts => "71",
            NaicsSector::Accommodation => "72",
            NaicsSector::OtherServices => "81",
            NaicsSector::PublicAdministration => "92",
        }
    }

    /// Sector title.
    pub fn title(&self) -> &'static str {
        match self {
            NaicsSector::Agriculture => "Agriculture, Forestry, Fishing and Hunting",
            NaicsSector::Mining => "Mining, Quarrying, and Oil and Gas Extraction",
            NaicsSector::Utilities => "Utilities",
            NaicsSector::Construction => "Construction",
            NaicsSector::Manufacturing => "Manufacturing",
            NaicsSector::Wholesale => "Wholesale Trade",
            NaicsSector::Retail => "Retail Trade",
            NaicsSector::Transportation => "Transportation and Warehousing",
            NaicsSector::Information => "Information",
            NaicsSector::Finance => "Finance and Insurance",
            NaicsSector::RealEstate => "Real Estate and Rental and Leasing",
            NaicsSector::Professional => "Professional, Scientific, and Technical Services",
            NaicsSector::Management => "Management of Companies and Enterprises",
            NaicsSector::Administrative => "Administrative and Support and Waste Management",
            NaicsSector::Education => "Educational Services",
            NaicsSector::HealthCare => "Health Care and Social Assistance",
            NaicsSector::Arts => "Arts, Entertainment, and Recreation",
            NaicsSector::Accommodation => "Accommodation and Food Services",
            NaicsSector::OtherServices => "Other Services (except Public Administration)",
            NaicsSector::PublicAdministration => "Public Administration",
        }
    }

    /// Dense index in `[0, COUNT)`.
    #[inline]
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Inverse of [`NaicsSector::index`].
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }

    /// Typical establishment-size scale multiplier for the sector, used by
    /// the generator to make size skew industry-dependent (e.g.
    /// manufacturing plants and hospitals are larger than retail shops).
    pub(crate) fn size_multiplier(&self) -> f64 {
        match self {
            NaicsSector::Agriculture => 0.5,
            NaicsSector::Mining => 1.2,
            NaicsSector::Utilities => 1.5,
            NaicsSector::Construction => 0.7,
            NaicsSector::Manufacturing => 2.5,
            NaicsSector::Wholesale => 1.0,
            NaicsSector::Retail => 0.9,
            NaicsSector::Transportation => 1.3,
            NaicsSector::Information => 1.1,
            NaicsSector::Finance => 1.0,
            NaicsSector::RealEstate => 0.5,
            NaicsSector::Professional => 0.8,
            NaicsSector::Management => 1.8,
            NaicsSector::Administrative => 1.2,
            NaicsSector::Education => 2.2,
            NaicsSector::HealthCare => 2.4,
            NaicsSector::Arts => 0.8,
            NaicsSector::Accommodation => 1.1,
            NaicsSector::OtherServices => 0.5,
            NaicsSector::PublicAdministration => 1.6,
        }
    }

    /// Relative frequency of establishments by sector (roughly matching CBP
    /// sector shares; normalized by the generator).
    pub(crate) fn establishment_weight(&self) -> f64 {
        match self {
            NaicsSector::Agriculture => 0.4,
            NaicsSector::Mining => 0.2,
            NaicsSector::Utilities => 0.1,
            NaicsSector::Construction => 9.0,
            NaicsSector::Manufacturing => 4.0,
            NaicsSector::Wholesale => 5.5,
            NaicsSector::Retail => 14.0,
            NaicsSector::Transportation => 3.0,
            NaicsSector::Information => 1.8,
            NaicsSector::Finance => 6.0,
            NaicsSector::RealEstate => 4.5,
            NaicsSector::Professional => 11.0,
            NaicsSector::Management => 0.7,
            NaicsSector::Administrative => 5.0,
            NaicsSector::Education => 1.2,
            NaicsSector::HealthCare => 10.0,
            NaicsSector::Arts => 1.7,
            NaicsSector::Accommodation => 8.5,
            NaicsSector::OtherServices => 9.5,
            NaicsSector::PublicAdministration => 2.9,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_distinct_sectors() {
        assert_eq!(NaicsSector::ALL.len(), NaicsSector::COUNT);
        let mut codes: Vec<&str> = NaicsSector::ALL.iter().map(|s| s.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 20, "codes must be unique");
    }

    #[test]
    fn index_roundtrip() {
        for (i, s) in NaicsSector::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(NaicsSector::from_index(i), Some(*s));
        }
        assert_eq!(NaicsSector::from_index(20), None);
    }

    #[test]
    fn weights_positive() {
        for s in NaicsSector::ALL {
            assert!(s.size_multiplier() > 0.0);
            assert!(s.establishment_weight() > 0.0);
            assert!(!s.title().is_empty());
        }
    }
}
