//! Establishment ownership type.
//!
//! LODES distinguishes private establishments from federal, state, and local
//! government workplaces. The paper treats ownership as a *public* workplace
//! attribute (Sec 4.1: "the existence of an employer business as well as its
//! type (or sector) and location is not confidential").

use serde::{Deserialize, Serialize};

/// Ownership type of an establishment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Ownership {
    /// Privately owned establishment.
    Private = 0,
    /// Federal government workplace.
    Federal,
    /// State government workplace.
    StateGov,
    /// Local government workplace (municipal, county, school district…).
    LocalGov,
}

impl Ownership {
    /// All ownership types.
    pub const ALL: [Ownership; 4] = [
        Ownership::Private,
        Ownership::Federal,
        Ownership::StateGov,
        Ownership::LocalGov,
    ];

    /// Number of ownership categories.
    pub const COUNT: usize = 4;

    /// Dense index in `[0, COUNT)`.
    #[inline]
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// Inverse of [`Ownership::index`].
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Ownership::Private => "Private",
            Ownership::Federal => "Federal",
            Ownership::StateGov => "State government",
            Ownership::LocalGov => "Local government",
        }
    }

    /// Share of establishments with this ownership (generator prior;
    /// private employers dominate establishment counts).
    pub(crate) fn establishment_weight(&self) -> f64 {
        match self {
            Ownership::Private => 0.93,
            Ownership::Federal => 0.01,
            Ownership::StateGov => 0.02,
            Ownership::LocalGov => 0.04,
        }
    }

    /// Size multiplier (government workplaces tend to be larger).
    pub(crate) fn size_multiplier(&self) -> f64 {
        match self {
            Ownership::Private => 1.0,
            Ownership::Federal => 3.0,
            Ownership::StateGov => 2.5,
            Ownership::LocalGov => 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, o) in Ownership::ALL.iter().enumerate() {
            assert_eq!(o.index(), i);
            assert_eq!(Ownership::from_index(i), Some(*o));
        }
        assert_eq!(Ownership::from_index(4), None);
    }

    #[test]
    fn weights_form_distribution() {
        let total: f64 = Ownership::ALL
            .iter()
            .map(|o| o.establishment_weight())
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
