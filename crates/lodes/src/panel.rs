//! Longitudinal panels: quarterly snapshots of the same establishment
//! universe.
//!
//! LODES is an annual cross-section, but the surrounding QWI system
//! publishes *quarterly* workforce indicators from the same establishment
//! frame, and the SDL distortion factor `f_w` is deliberately
//! **time-invariant** ("dynamically consistent noise infusion",
//! Abowd et al. 2012) so that published growth rates are undistorted.
//! That design choice is precisely what the time-series variant of the
//! Sec 5.2 attacks exploits — the ratio of two published quarters of the
//! same cell reveals the establishment's true growth exactly.
//!
//! [`DatasetPanel`] keeps the geography and establishment frame fixed and
//! evolves employment by a multiplicative random walk with establishment
//! births and deaths, regenerating each quarter's workforce at the evolved
//! size.

use crate::generator::{Generator, GeneratorConfig};
use crate::schema::{Dataset, Job, Worker, WorkerId};
use crate::worker::{AgeGroup, Education, Ethnicity, Race, Sex};
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::LogNormal;

/// Evolution parameters for a quarterly panel.
#[derive(Debug, Clone, Copy)]
pub struct PanelConfig {
    /// Number of quarters (snapshots) including the base quarter.
    pub quarters: usize,
    /// Log-scale standard deviation of the quarterly size random walk
    /// (≈ 0.05 gives ±5 % typical quarterly employment changes).
    pub growth_sigma: f64,
    /// Per-quarter probability an establishment closes (size drops to 0
    /// permanently).
    pub death_rate: f64,
    /// Seed for the evolution (independent of the base dataset's seed).
    pub seed: u64,
}

impl Default for PanelConfig {
    fn default() -> Self {
        Self {
            quarters: 4,
            growth_sigma: 0.05,
            death_rate: 0.005,
            seed: 0x9A7E1,
        }
    }
}

/// A sequence of quarterly snapshots over a fixed establishment frame.
///
/// Workplace IDs are stable across quarters (the invariant the
/// time-invariant SDL factor relies on); worker IDs are per-snapshot.
#[derive(Debug, Clone)]
pub struct DatasetPanel {
    snapshots: Vec<Dataset>,
}

impl DatasetPanel {
    /// Generate a panel: quarter 0 is the base generator output; later
    /// quarters evolve establishment sizes and regenerate workforces.
    pub fn generate(base: &GeneratorConfig, panel: &PanelConfig) -> Self {
        assert!(panel.quarters >= 1, "panel needs at least one quarter");
        assert!(
            panel.growth_sigma >= 0.0 && panel.growth_sigma < 1.0,
            "growth sigma must be in [0, 1)"
        );
        assert!(
            (0.0..1.0).contains(&panel.death_rate),
            "death rate must be in [0, 1)"
        );
        let base_dataset = Generator::new(base.clone()).generate();
        let mut rng = StdRng::seed_from_u64(panel.seed);

        let mut snapshots = Vec::with_capacity(panel.quarters);
        let mut sizes: Vec<u32> = base_dataset.establishment_sizes().to_vec();
        let mut alive: Vec<bool> = vec![true; sizes.len()];
        snapshots.push(base_dataset.clone());

        let growth = LogNormal::new(0.0, panel.growth_sigma.max(1e-9)).expect("valid sigma");
        for _q in 1..panel.quarters {
            for i in 0..sizes.len() {
                if !alive[i] {
                    sizes[i] = 0;
                    continue;
                }
                if rng.gen::<f64>() < panel.death_rate {
                    alive[i] = false;
                    sizes[i] = 0;
                    continue;
                }
                // Stochastic rounding so that small establishments still
                // move (1 x 1.03 deterministically rounds back to 1).
                let target = sizes[i] as f64 * growth.sample(&mut rng);
                let next = target.floor() as u32 + u32::from(rng.gen::<f64>() < target.fract());
                sizes[i] = next.max(1);
            }
            snapshots.push(regenerate_workforces(&base_dataset, &sizes, &mut rng));
        }
        Self { snapshots }
    }

    /// Number of quarters.
    pub fn quarters(&self) -> usize {
        self.snapshots.len()
    }

    /// Snapshot of quarter `q` (0-based).
    pub fn quarter(&self, q: usize) -> &Dataset {
        &self.snapshots[q]
    }

    /// All snapshots.
    pub fn snapshots(&self) -> &[Dataset] {
        &self.snapshots
    }

    /// True quarterly growth rate of one establishment between consecutive
    /// quarters, `size(q+1)/size(q)`; `None` if the establishment is dead
    /// in either quarter.
    pub fn growth_rate(&self, workplace: crate::schema::WorkplaceId, q: usize) -> Option<f64> {
        let a = self.snapshots[q].establishment_size(workplace);
        let b = self.snapshots[q + 1].establishment_size(workplace);
        (a > 0 && b > 0).then(|| b as f64 / a as f64)
    }
}

/// Rebuild workers/jobs with new per-establishment sizes, keeping the
/// geography and workplace frame of `base`. Worker attributes are drawn
/// from the national priors (shape persistence across quarters is not
/// modeled — the time-series experiments only use totals).
fn regenerate_workforces(base: &Dataset, sizes: &[u32], rng: &mut StdRng) -> Dataset {
    let sex_dist = WeightedIndex::new([0.52, 0.48]).expect("weights");
    let age_dist = WeightedIndex::new(AgeGroup::ALL.map(|a| a.weight())).expect("weights");
    let race_dist = WeightedIndex::new(Race::ALL.map(|r| r.weight())).expect("weights");
    let eth_dist = WeightedIndex::new(Ethnicity::ALL.map(|e| e.weight())).expect("weights");
    let edu_dist = WeightedIndex::new(Education::ALL.map(|e| e.weight())).expect("weights");

    let mut workers = Vec::new();
    let mut jobs = Vec::new();
    for wp in base.workplaces() {
        let size = sizes[wp.id.0 as usize];
        for _ in 0..size {
            let id = WorkerId(workers.len() as u32);
            workers.push(Worker {
                id,
                sex: Sex::ALL[sex_dist.sample(rng)],
                age: AgeGroup::ALL[age_dist.sample(rng)],
                race: Race::ALL[race_dist.sample(rng)],
                ethnicity: Ethnicity::ALL[eth_dist.sample(rng)],
                education: Education::ALL[edu_dist.sample(rng)],
            });
            jobs.push(Job {
                worker: id,
                workplace: wp.id,
            });
        }
    }
    Dataset::new(
        base.geography().clone(),
        base.workplaces().to_vec(),
        workers,
        jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::WorkplaceId;

    fn panel() -> DatasetPanel {
        DatasetPanel::generate(
            &GeneratorConfig::test_small(31),
            &PanelConfig {
                quarters: 4,
                growth_sigma: 0.05,
                death_rate: 0.01,
                seed: 5,
            },
        )
    }

    #[test]
    fn frame_is_stable_across_quarters() {
        let p = panel();
        assert_eq!(p.quarters(), 4);
        let n = p.quarter(0).num_workplaces();
        for q in 1..p.quarters() {
            assert_eq!(p.quarter(q).num_workplaces(), n, "frame must not change");
            // Workplace attributes identical.
            assert_eq!(
                p.quarter(q).workplace(WorkplaceId(0)).naics,
                p.quarter(0).workplace(WorkplaceId(0)).naics
            );
        }
    }

    #[test]
    fn sizes_evolve_smoothly() {
        let p = panel();
        let mut changed = 0usize;
        let mut total = 0usize;
        for i in 0..p.quarter(0).num_workplaces() {
            let wp = WorkplaceId(i as u32);
            if let Some(rate) = p.growth_rate(wp, 0) {
                total += 1;
                // Tiny establishments legitimately double (1 -> 2) under
                // stochastic rounding; check the range only where the law
                // of large numbers applies.
                if p.quarter(0).establishment_size(wp) >= 10 {
                    assert!(
                        (0.5..2.0).contains(&rate),
                        "quarterly growth {rate} out of plausible range"
                    );
                }
                if (rate - 1.0).abs() > 1e-9 {
                    changed += 1;
                }
            }
        }
        assert!(total > 100);
        assert!(changed > total / 4, "sizes should actually move");
    }

    #[test]
    fn deaths_are_permanent() {
        let p = DatasetPanel::generate(
            &GeneratorConfig::test_small(32),
            &PanelConfig {
                quarters: 6,
                growth_sigma: 0.02,
                death_rate: 0.15,
                seed: 6,
            },
        );
        let n = p.quarter(0).num_workplaces();
        let mut died = 0usize;
        for i in 0..n {
            let wp = WorkplaceId(i as u32);
            let mut dead_at = None;
            for q in 0..p.quarters() {
                let size = p.quarter(q).establishment_size(wp);
                if let Some(dq) = dead_at {
                    assert_eq!(size, 0, "establishment {i} resurrected after quarter {dq}");
                } else if size == 0 && q > 0 {
                    dead_at = Some(q);
                    died += 1;
                }
            }
        }
        assert!(died > 0, "with 15% quarterly deaths some must die");
    }

    #[test]
    fn panel_is_deterministic() {
        let a = panel();
        let b = panel();
        for q in 0..a.quarters() {
            assert_eq!(
                a.quarter(q).establishment_sizes(),
                b.quarter(q).establishment_sizes()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one quarter")]
    fn rejects_empty_panel() {
        DatasetPanel::generate(
            &GeneratorConfig::test_small(1),
            &PanelConfig {
                quarters: 0,
                ..PanelConfig::default()
            },
        );
    }
}
