//! The three-table LODES schema and the joined `Dataset`.
//!
//! Section 3.1 of the paper: the LODES relation has three tables —
//! Workplace (one record per establishment; NAICS code, ownership,
//! geography), Worker (one record per employed individual; age, sex, race,
//! ethnicity, education), and Job (worker-ID × workplace-ID pairs). Each
//! worker holds exactly one job, so the join of the three tables — the
//! `WorkerFull` universal relation — has one record per worker carrying all
//! worker and workplace attributes.
//!
//! [`Dataset`] stores the tables column-oriented-enough for fast marginal
//! tabulation while keeping a simple record API.

use crate::geo::{BlockId, CountyId, Geography, PlaceId, StateId};
use crate::naics::NaicsSector;
use crate::ownership::Ownership;
use crate::worker::{AgeGroup, Education, Ethnicity, Race, Sex};
use serde::{Deserialize, Serialize};

/// Identifier of an establishment (dense index into the Workplace table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkplaceId(pub u32);

/// Identifier of a worker (dense index into the Worker table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

/// One establishment record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workplace {
    /// Dense identifier.
    pub id: WorkplaceId,
    /// Census block where the establishment operates.
    pub block: BlockId,
    /// Census place containing the block (denormalized for tabulation).
    pub place: PlaceId,
    /// County containing the place (denormalized).
    pub county: CountyId,
    /// State containing the county (denormalized).
    pub state: StateId,
    /// Two-digit NAICS sector.
    pub naics: NaicsSector,
    /// Ownership type.
    pub ownership: Ownership,
}

/// One worker record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Worker {
    /// Dense identifier.
    pub id: WorkerId,
    /// Sex.
    pub sex: Sex,
    /// Age group.
    pub age: AgeGroup,
    /// Race.
    pub race: Race,
    /// Ethnicity.
    pub ethnicity: Ethnicity,
    /// Educational attainment.
    pub education: Education,
}

/// One job: worker `worker` is employed at establishment `workplace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    /// The worker.
    pub worker: WorkerId,
    /// The employing establishment.
    pub workplace: WorkplaceId,
}

/// The linked ER-EE database: geography + the three tables.
///
/// Invariants (enforced by [`Dataset::new`]):
/// * workplace and worker IDs are dense (`id == position`);
/// * every job references an existing worker and workplace;
/// * each worker holds exactly one job (the paper's assumption in Sec 3.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    geography: Geography,
    workplaces: Vec<Workplace>,
    workers: Vec<Worker>,
    jobs: Vec<Job>,
    /// `employer_of[w] = workplace of worker w` — the inverted Job table.
    employer_of: Vec<WorkplaceId>,
    /// Number of jobs at each establishment (the degree sequence of the
    /// bipartite graph; establishment *size* in the paper's terminology).
    establishment_size: Vec<u32>,
}

impl Dataset {
    /// Assemble and validate a dataset.
    ///
    /// # Panics
    /// Panics if IDs are not dense, a job dangles, or a worker holds more or
    /// fewer than one job.
    pub fn new(
        geography: Geography,
        workplaces: Vec<Workplace>,
        workers: Vec<Worker>,
        jobs: Vec<Job>,
    ) -> Self {
        for (i, w) in workplaces.iter().enumerate() {
            assert_eq!(w.id.0 as usize, i, "workplace ids must be dense");
            assert!(
                (w.block.0 as usize) < geography.num_blocks(),
                "workplace references missing block"
            );
        }
        for (i, w) in workers.iter().enumerate() {
            assert_eq!(w.id.0 as usize, i, "worker ids must be dense");
        }
        let mut employer_of = vec![None; workers.len()];
        let mut establishment_size = vec![0u32; workplaces.len()];
        for job in &jobs {
            let wi = job.worker.0 as usize;
            let pi = job.workplace.0 as usize;
            assert!(wi < workers.len(), "job references missing worker");
            assert!(pi < workplaces.len(), "job references missing workplace");
            assert!(
                employer_of[wi].is_none(),
                "worker {wi} holds more than one job"
            );
            employer_of[wi] = Some(job.workplace);
            establishment_size[pi] += 1;
        }
        let employer_of: Vec<WorkplaceId> = employer_of
            .into_iter()
            .enumerate()
            .map(|(i, e)| e.unwrap_or_else(|| panic!("worker {i} holds no job")))
            .collect();
        Self {
            geography,
            workplaces,
            workers,
            jobs,
            employer_of,
            establishment_size,
        }
    }

    /// The geography underlying this dataset.
    pub fn geography(&self) -> &Geography {
        &self.geography
    }

    /// Number of jobs (= number of workers, by the one-job assumption).
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Number of establishments.
    pub fn num_workplaces(&self) -> usize {
        self.workplaces.len()
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Workplace record by ID.
    pub fn workplace(&self, id: WorkplaceId) -> &Workplace {
        &self.workplaces[id.0 as usize]
    }

    /// Worker record by ID.
    pub fn worker(&self, id: WorkerId) -> &Worker {
        &self.workers[id.0 as usize]
    }

    /// All workplaces.
    pub fn workplaces(&self) -> &[Workplace] {
        &self.workplaces
    }

    /// All workers.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// All jobs.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The employing establishment of `worker`.
    pub fn employer_of(&self, worker: WorkerId) -> WorkplaceId {
        self.employer_of[worker.0 as usize]
    }

    /// Total employment of establishment `id` (`|e|` in the paper).
    pub fn establishment_size(&self, id: WorkplaceId) -> u32 {
        self.establishment_size[id.0 as usize]
    }

    /// Employment counts for every establishment, indexed by workplace ID.
    pub fn establishment_sizes(&self) -> &[u32] {
        &self.establishment_size
    }

    /// Group workers by employing establishment in CSR (compressed sparse
    /// row) form: returns `(offsets, order)` where
    /// `order[offsets[e] as usize .. offsets[e + 1] as usize]` lists the
    /// worker IDs employed at establishment `e`, in ascending worker ID.
    ///
    /// This is the physical layout fast tabulation wants — one contiguous
    /// worker range per establishment — and it is built in two linear
    /// passes (a counting sort over the inverted Job table), so callers
    /// can afford to rebuild it per dataset. Deterministic: the layout is
    /// a pure function of the Job table.
    pub fn workers_by_employer(&self) -> (Vec<u32>, Vec<u32>) {
        let mut offsets = Vec::with_capacity(self.workplaces.len() + 1);
        let mut acc: u32 = 0;
        offsets.push(0);
        for &size in &self.establishment_size {
            acc += size;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..self.workplaces.len()].to_vec();
        let mut order = vec![0u32; self.workers.len()];
        for (worker, employer) in self.employer_of.iter().enumerate() {
            let slot = &mut cursor[employer.0 as usize];
            order[*slot as usize] = worker as u32;
            *slot += 1;
        }
        (offsets, order)
    }

    /// Iterate over the joined `WorkerFull` relation: each item is a
    /// (worker, workplace) record pair.
    pub fn worker_full(&self) -> impl Iterator<Item = (&Worker, &Workplace)> + '_ {
        self.workers
            .iter()
            .map(move |w| (w, self.workplace(self.employer_of[w.id.0 as usize])))
    }

    /// Remove every establishment whose employment is at least `theta`,
    /// together with all its jobs/workers; returns the truncated dataset and
    /// the number of establishments removed.
    ///
    /// This is the graph-projection step of the node-DP "Truncated Laplace"
    /// baseline (Sec 6): truncation removes whole nodes until every degree is
    /// below the bound.
    pub fn truncate_establishments(&self, theta: u32) -> (Dataset, usize) {
        let keep: Vec<bool> = self.establishment_size.iter().map(|&s| s < theta).collect();
        let removed = keep.iter().filter(|&&k| !k).count();

        // Re-index surviving workplaces.
        let mut new_wp_id = vec![None; self.workplaces.len()];
        let mut workplaces = Vec::with_capacity(self.workplaces.len() - removed);
        for wp in &self.workplaces {
            if keep[wp.id.0 as usize] {
                let id = WorkplaceId(workplaces.len() as u32);
                new_wp_id[wp.id.0 as usize] = Some(id);
                let mut cloned = wp.clone();
                cloned.id = id;
                workplaces.push(cloned);
            }
        }
        // Keep only workers whose employer survives; re-index.
        let mut workers = Vec::new();
        let mut jobs = Vec::new();
        for worker in &self.workers {
            let old_wp = self.employer_of[worker.id.0 as usize];
            if let Some(new_wp) = new_wp_id[old_wp.0 as usize] {
                let id = WorkerId(workers.len() as u32);
                let mut cloned = *worker;
                cloned.id = id;
                workers.push(cloned);
                jobs.push(Job {
                    worker: id,
                    workplace: new_wp,
                });
            }
        }
        (
            Dataset::new(self.geography.clone(), workplaces, workers, jobs),
            removed,
        )
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::geo::{Block, Place};

    pub(crate) fn tiny_dataset() -> Dataset {
        let geography = Geography::new(
            1,
            vec![StateId(0)],
            vec![Place {
                id: PlaceId(0),
                county: CountyId(0),
                state: StateId(0),
                population: 1000,
            }],
            vec![Block {
                id: BlockId(0),
                place: PlaceId(0),
            }],
        );
        let workplaces = vec![
            Workplace {
                id: WorkplaceId(0),
                block: BlockId(0),
                place: PlaceId(0),
                county: CountyId(0),
                state: StateId(0),
                naics: NaicsSector::Retail,
                ownership: Ownership::Private,
            },
            Workplace {
                id: WorkplaceId(1),
                block: BlockId(0),
                place: PlaceId(0),
                county: CountyId(0),
                state: StateId(0),
                naics: NaicsSector::HealthCare,
                ownership: Ownership::LocalGov,
            },
        ];
        let mk_worker = |id: u32, sex: Sex| Worker {
            id: WorkerId(id),
            sex,
            age: AgeGroup::A25_34,
            race: Race::White,
            ethnicity: Ethnicity::NotHispanic,
            education: Education::HighSchool,
        };
        let workers = vec![
            mk_worker(0, Sex::Male),
            mk_worker(1, Sex::Female),
            mk_worker(2, Sex::Female),
        ];
        let jobs = vec![
            Job {
                worker: WorkerId(0),
                workplace: WorkplaceId(0),
            },
            Job {
                worker: WorkerId(1),
                workplace: WorkplaceId(0),
            },
            Job {
                worker: WorkerId(2),
                workplace: WorkplaceId(1),
            },
        ];
        Dataset::new(geography, workplaces, workers, jobs)
    }

    #[test]
    fn sizes_and_joins() {
        let d = tiny_dataset();
        assert_eq!(d.num_jobs(), 3);
        assert_eq!(d.establishment_size(WorkplaceId(0)), 2);
        assert_eq!(d.establishment_size(WorkplaceId(1)), 1);
        assert_eq!(d.employer_of(WorkerId(2)), WorkplaceId(1));
        let joined: Vec<_> = d.worker_full().collect();
        assert_eq!(joined.len(), 3);
        assert_eq!(joined[1].1.id, WorkplaceId(0));
    }

    #[test]
    #[should_panic(expected = "holds more than one job")]
    fn rejects_multiple_jobs() {
        let d = tiny_dataset();
        let mut jobs = d.jobs().to_vec();
        jobs.push(Job {
            worker: WorkerId(0),
            workplace: WorkplaceId(1),
        });
        Dataset::new(
            d.geography().clone(),
            d.workplaces().to_vec(),
            d.workers().to_vec(),
            jobs,
        );
    }

    #[test]
    #[should_panic(expected = "holds no job")]
    fn rejects_jobless_worker() {
        let d = tiny_dataset();
        let mut jobs = d.jobs().to_vec();
        jobs.pop();
        Dataset::new(
            d.geography().clone(),
            d.workplaces().to_vec(),
            d.workers().to_vec(),
            jobs,
        );
    }

    #[test]
    fn csr_grouping_covers_every_worker_once() {
        let d = tiny_dataset();
        let (offsets, order) = d.workers_by_employer();
        assert_eq!(offsets, vec![0, 2, 3]);
        assert_eq!(order, vec![0, 1, 2]);
        for e in 0..d.num_workplaces() {
            let range = offsets[e] as usize..offsets[e + 1] as usize;
            assert_eq!(
                range.len() as u32,
                d.establishment_size(WorkplaceId(e as u32))
            );
            for &w in &order[range] {
                assert_eq!(d.employer_of(WorkerId(w)), WorkplaceId(e as u32));
            }
        }
    }

    #[test]
    fn truncation_removes_large_establishments() {
        let d = tiny_dataset();
        let (t, removed) = d.truncate_establishments(2);
        assert_eq!(removed, 1, "establishment of size 2 must be removed");
        assert_eq!(t.num_workplaces(), 1);
        assert_eq!(t.num_jobs(), 1);
        assert_eq!(t.establishment_size(WorkplaceId(0)), 1);

        // theta larger than every size removes nothing.
        let (t, removed) = d.truncate_establishments(100);
        assert_eq!(removed, 0);
        assert_eq!(t.num_jobs(), d.num_jobs());
    }
}
