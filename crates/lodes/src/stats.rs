//! Dataset summary statistics and skewness diagnostics.
//!
//! These mirror the aggregates the paper reports about its evaluation
//! sample (job count, establishment count, size skew, tail mass), letting
//! users and tests verify a generated universe is calibrated before running
//! experiments.

use crate::geo::PlaceSizeClass;
use crate::schema::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary of a generated ER-EE dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Total jobs (= workers).
    pub jobs: usize,
    /// Total establishments.
    pub establishments: usize,
    /// Mean establishment size.
    pub mean_size: f64,
    /// Median establishment size.
    pub median_size: u32,
    /// Largest establishment.
    pub max_size: u32,
    /// Number of establishments with more than 1 000 employees (the paper
    /// reports 740–815 in its 527 k-establishment sample).
    pub over_1000: usize,
    /// Pearson moment skewness of the size distribution.
    pub size_skewness: f64,
    /// Number of places per population stratum.
    pub places_by_stratum: BTreeMap<String, usize>,
    /// Number of jobs per population stratum.
    pub jobs_by_stratum: BTreeMap<String, usize>,
}

impl DatasetStats {
    /// Compute all summary statistics for `dataset`.
    pub fn compute(dataset: &Dataset) -> Self {
        let sizes = dataset.establishment_sizes();
        let n = sizes.len().max(1) as f64;
        let mean = sizes.iter().map(|&s| s as f64).sum::<f64>() / n;
        let var = sizes
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        let third = sizes
            .iter()
            .map(|&s| (s as f64 - mean).powi(3))
            .sum::<f64>()
            / n;
        let skew = if var > 0.0 {
            third / var.powf(1.5)
        } else {
            0.0
        };

        let mut sorted = sizes.to_vec();
        sorted.sort_unstable();
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
        let max = sorted.last().copied().unwrap_or(0);

        let mut places_by_stratum: BTreeMap<String, usize> = BTreeMap::new();
        for class in PlaceSizeClass::ALL {
            places_by_stratum.insert(class.label().to_string(), 0);
        }
        for p in dataset.geography().places() {
            *places_by_stratum
                .get_mut(p.size_class().label())
                .expect("all strata pre-inserted") += 1;
        }

        let mut jobs_by_stratum: BTreeMap<String, usize> = BTreeMap::new();
        for class in PlaceSizeClass::ALL {
            jobs_by_stratum.insert(class.label().to_string(), 0);
        }
        for wp in dataset.workplaces() {
            let class = dataset.geography().place(wp.place).size_class();
            *jobs_by_stratum
                .get_mut(class.label())
                .expect("all strata pre-inserted") += dataset.establishment_size(wp.id) as usize;
        }

        Self {
            jobs: dataset.num_jobs(),
            establishments: dataset.num_workplaces(),
            mean_size: mean,
            median_size: median,
            max_size: max,
            over_1000: sizes.iter().filter(|&&s| s > 1000).count(),
            size_skewness: skew,
            places_by_stratum,
            jobs_by_stratum,
        }
    }

    /// Render a compact human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs across {} establishments (mean size {:.1}, median {}, max {}, \
             {} establishments > 1000 employees, skewness {:.2})",
            self.jobs,
            self.establishments,
            self.mean_size,
            self.median_size,
            self.max_size,
            self.over_1000,
            self.size_skewness
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Generator, GeneratorConfig};

    #[test]
    fn stats_are_consistent() {
        let d = Generator::new(GeneratorConfig::test_small(9)).generate();
        let s = DatasetStats::compute(&d);
        assert_eq!(s.jobs, d.num_jobs());
        assert_eq!(s.establishments, d.num_workplaces());
        assert!(
            s.mean_size > s.median_size as f64,
            "right-skew: mean>median"
        );
        assert!(s.size_skewness > 1.0, "size skewness {}", s.size_skewness);
        let total_places: usize = s.places_by_stratum.values().sum();
        assert_eq!(total_places, d.geography().num_places());
        let total_jobs: usize = s.jobs_by_stratum.values().sum();
        assert_eq!(total_jobs, s.jobs);
        assert!(!s.summary().is_empty());
    }
}
