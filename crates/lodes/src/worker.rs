//! Worker demographic attributes: sex, age group, race, ethnicity, education.
//!
//! These are the private attributes `A1 … Ak` of Section 4.2: the adversary
//! must not learn whether a worker has particular characteristics, and an
//! establishment's *shape* — its workforce distribution over these
//! attributes — is protected by Definition 4.3.

use serde::{Deserialize, Serialize};

/// Worker sex (LODES publishes two categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Sex {
    /// Male.
    Male = 0,
    /// Female.
    Female,
}

impl Sex {
    /// All categories.
    pub const ALL: [Sex; 2] = [Sex::Male, Sex::Female];
    /// Number of categories.
    pub const COUNT: usize = 2;
    /// Dense index.
    #[inline]
    pub fn index(&self) -> usize {
        *self as usize
    }
    /// Inverse of `index`.
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }
}

/// Worker age group (eight QWI-style buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum AgeGroup {
    /// 14–18.
    A14_18 = 0,
    /// 19–21.
    A19_21,
    /// 22–24.
    A22_24,
    /// 25–34.
    A25_34,
    /// 35–44.
    A35_44,
    /// 45–54.
    A45_54,
    /// 55–64.
    A55_64,
    /// 65 and older.
    A65Plus,
}

impl AgeGroup {
    /// All categories.
    pub const ALL: [AgeGroup; 8] = [
        AgeGroup::A14_18,
        AgeGroup::A19_21,
        AgeGroup::A22_24,
        AgeGroup::A25_34,
        AgeGroup::A35_44,
        AgeGroup::A45_54,
        AgeGroup::A55_64,
        AgeGroup::A65Plus,
    ];
    /// Number of categories.
    pub const COUNT: usize = 8;
    /// Dense index.
    #[inline]
    pub fn index(&self) -> usize {
        *self as usize
    }
    /// Inverse of `index`.
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }
    /// Workforce share prior used by the generator.
    pub(crate) fn weight(&self) -> f64 {
        match self {
            AgeGroup::A14_18 => 0.03,
            AgeGroup::A19_21 => 0.06,
            AgeGroup::A22_24 => 0.08,
            AgeGroup::A25_34 => 0.23,
            AgeGroup::A35_44 => 0.22,
            AgeGroup::A45_54 => 0.21,
            AgeGroup::A55_64 => 0.13,
            AgeGroup::A65Plus => 0.04,
        }
    }
}

/// Worker race (major OMB categories as used in LODES).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Race {
    /// White alone.
    White = 0,
    /// Black or African American alone.
    Black,
    /// American Indian or Alaska Native alone.
    AmericanIndian,
    /// Asian alone.
    Asian,
    /// Native Hawaiian or Other Pacific Islander alone.
    PacificIslander,
    /// Two or more race groups.
    TwoOrMore,
}

impl Race {
    /// All categories.
    pub const ALL: [Race; 6] = [
        Race::White,
        Race::Black,
        Race::AmericanIndian,
        Race::Asian,
        Race::PacificIslander,
        Race::TwoOrMore,
    ];
    /// Number of categories.
    pub const COUNT: usize = 6;
    /// Dense index.
    #[inline]
    pub fn index(&self) -> usize {
        *self as usize
    }
    /// Inverse of `index`.
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }
    /// Workforce share prior used by the generator.
    pub(crate) fn weight(&self) -> f64 {
        match self {
            Race::White => 0.72,
            Race::Black => 0.13,
            Race::AmericanIndian => 0.01,
            Race::Asian => 0.09,
            Race::PacificIslander => 0.01,
            Race::TwoOrMore => 0.04,
        }
    }
}

/// Worker ethnicity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Ethnicity {
    /// Not Hispanic or Latino.
    NotHispanic = 0,
    /// Hispanic or Latino.
    Hispanic,
}

impl Ethnicity {
    /// All categories.
    pub const ALL: [Ethnicity; 2] = [Ethnicity::NotHispanic, Ethnicity::Hispanic];
    /// Number of categories.
    pub const COUNT: usize = 2;
    /// Dense index.
    #[inline]
    pub fn index(&self) -> usize {
        *self as usize
    }
    /// Inverse of `index`.
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }
    /// Workforce share prior used by the generator.
    pub(crate) fn weight(&self) -> f64 {
        match self {
            Ethnicity::NotHispanic => 0.83,
            Ethnicity::Hispanic => 0.17,
        }
    }
}

/// Worker educational attainment (four LODES categories; only tabulated for
/// workers 30 and over in real LODES, a detail we do not model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Education {
    /// Less than high school.
    LessThanHighSchool = 0,
    /// High school or equivalent, no college.
    HighSchool,
    /// Some college or Associate degree.
    SomeCollege,
    /// Bachelor's degree or advanced degree.
    BachelorOrHigher,
}

impl Education {
    /// All categories.
    pub const ALL: [Education; 4] = [
        Education::LessThanHighSchool,
        Education::HighSchool,
        Education::SomeCollege,
        Education::BachelorOrHigher,
    ];
    /// Number of categories.
    pub const COUNT: usize = 4;
    /// Dense index.
    #[inline]
    pub fn index(&self) -> usize {
        *self as usize
    }
    /// Inverse of `index`.
    pub fn from_index(i: usize) -> Option<Self> {
        Self::ALL.get(i).copied()
    }
    /// Workforce share prior used by the generator.
    pub(crate) fn weight(&self) -> f64 {
        match self {
            Education::LessThanHighSchool => 0.11,
            Education::HighSchool => 0.26,
            Education::SomeCollege => 0.30,
            Education::BachelorOrHigher => 0.33,
        }
    }
}

/// Size of the full worker-attribute cross-product domain
/// (2 × 8 × 6 × 2 × 4 = 768 cells).
pub const WORKER_DOMAIN_SIZE: usize =
    Sex::COUNT * AgeGroup::COUNT * Race::COUNT * Ethnicity::COUNT * Education::COUNT;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_size() {
        assert_eq!(WORKER_DOMAIN_SIZE, 768);
    }

    #[test]
    fn weights_sum_to_one() {
        let age: f64 = AgeGroup::ALL.iter().map(|a| a.weight()).sum();
        let race: f64 = Race::ALL.iter().map(|r| r.weight()).sum();
        let eth: f64 = Ethnicity::ALL.iter().map(|e| e.weight()).sum();
        let edu: f64 = Education::ALL.iter().map(|e| e.weight()).sum();
        for (name, total) in [
            ("age", age),
            ("race", race),
            ("ethnicity", eth),
            ("education", edu),
        ] {
            assert!((total - 1.0).abs() < 1e-9, "{name} weights sum to {total}");
        }
    }

    #[test]
    fn index_roundtrips() {
        for (i, v) in Sex::ALL.iter().enumerate() {
            assert_eq!(Sex::from_index(i), Some(*v));
        }
        for (i, v) in AgeGroup::ALL.iter().enumerate() {
            assert_eq!(AgeGroup::from_index(i), Some(*v));
        }
        for (i, v) in Race::ALL.iter().enumerate() {
            assert_eq!(Race::from_index(i), Some(*v));
        }
        for (i, v) in Ethnicity::ALL.iter().enumerate() {
            assert_eq!(Ethnicity::from_index(i), Some(*v));
        }
        for (i, v) in Education::ALL.iter().enumerate() {
            assert_eq!(Education::from_index(i), Some(*v));
        }
    }
}
