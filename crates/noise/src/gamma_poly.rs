//! The polynomial-tail "gamma-poly" distribution `h(z) ∝ 1/(1 + z⁴)`.
//!
//! Lemma 8.6 of Haney et al. shows this density (with γ = 4) is
//! `(ε₁/(1+γ), ε₂/(1+γ))`-admissible, making it a valid noise distribution for
//! the smooth-sensitivity framework with δ = 0 — unlike the Laplace, whose
//! dilation property fails without a δ. Algorithm 2 ("Smooth Gamma") adds
//! noise drawn from this distribution scaled by the smooth sensitivity.
//!
//! Analytic facts used throughout (normalizing constant `Z = π/√2`):
//!
//! * `pdf(z) = √2/π · 1/(1+z⁴)`
//! * `E[Z] = 0` (symmetry), `E|Z| = √2/2`, `E[Z²] = 1`; third absolute
//!   moment diverges.
//! * The paper's Lemma 8.8 proof evaluates the *unnormalized* integral
//!   `∫|z|/(1+z⁴)dz = π/2`; the normalized `E|Z| = (π/2)/(π/√2) = √2/2`.
//!   Either way the expected L1 error of Algorithm 2 is `O(x_v·α/ε)`.
//!
//! Sampling is exact rejection from a Cauchy envelope: the ratio
//! `h(z)/cauchy(z) = √2(1+z²)/(1+z⁴)` is maximized at `z² = √2−1` with value
//! `M = (2+√2)/2 ≈ 1.7071`, giving acceptance probability `1/M ≈ 0.586`.

use crate::{ContinuousDistribution, NoiseError};
use rand::Rng;
use std::f64::consts::{FRAC_1_SQRT_2, PI, SQRT_2};

/// Normalizing constant `Z = ∫ dz/(1+z⁴) = π/√2`.
pub const NORMALIZER: f64 = PI * FRAC_1_SQRT_2;

/// Rejection-sampling envelope constant `M = (2+√2)/2`.
const ENVELOPE_M: f64 = (2.0 + SQRT_2) / 2.0;

/// The distribution of `s·Z` where `Z` has density `∝ 1/(1+z⁴)` and `s > 0`
/// is a scale parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaPoly {
    scale: f64,
}

impl GammaPoly {
    /// Create a gamma-poly distribution with the given scale.
    ///
    /// # Errors
    /// Returns [`NoiseError::NonPositiveScale`] unless `scale` is finite and
    /// strictly positive.
    pub fn new(scale: f64) -> Result<Self, NoiseError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(NoiseError::NonPositiveScale(scale));
        }
        Ok(Self { scale })
    }

    /// Standard (unit-scale) distribution.
    pub fn standard() -> Self {
        Self { scale: 1.0 }
    }

    /// The scale parameter.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draw from the unit-scale distribution by rejection from a Cauchy
    /// envelope. Expected number of iterations is `M ≈ 1.707`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            // Cauchy sample via inverse CDF.
            let u: f64 = rng.gen();
            let z = (PI * (u - 0.5)).tan();
            // Acceptance ratio h(z) / (M * g(z)) where g is standard Cauchy.
            let z2 = z * z;
            let accept = SQRT_2 * (1.0 + z2) / ((1.0 + z2 * z2) * ENVELOPE_M);
            debug_assert!(accept <= 1.0 + 1e-12, "envelope violated at z={z}");
            if rng.gen::<f64>() < accept {
                return z;
            }
        }
    }

    /// Closed-form antiderivative of the *standard* pdf, used by `cdf`.
    ///
    /// `∫ dz/(1+z⁴) = (1/(4√2)) [ ln((z²+√2z+1)/(z²−√2z+1))
    ///                            + 2 atan(√2z+1) + 2 atan(√2z−1) ] + C`
    fn antiderivative(z: f64) -> f64 {
        let s = SQRT_2 * z;
        let log_term = ((z * z + s + 1.0) / (z * z - s + 1.0)).ln();
        let atan_term = 2.0 * ((s + 1.0).atan() + (s - 1.0).atan());
        (log_term + atan_term) / (4.0 * SQRT_2)
    }

    /// Quantile (inverse CDF) by bisection + Newton polish. Exposed for
    /// the inverse-transform sampler ablation; the rejection sampler is
    /// the default because it needs no iteration.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        // Bisection bracket: |Z| > z has mass ~ 2/(3 Z z^3); solve for a
        // generous outer bound.
        let (mut lo, mut hi) = (-1e6, 1e6);
        let mut z = 0.0;
        for _ in 0..200 {
            z = 0.5 * (lo + hi);
            let c = GammaPoly::standard().cdf(z);
            if c < p {
                lo = z;
            } else {
                hi = z;
            }
            if hi - lo < 1e-13 * (1.0 + z.abs()) {
                break;
            }
        }
        // One Newton step for polish: z <- z - (F(z) - p)/f(z).
        let std = GammaPoly::standard();
        let f = std.pdf(z);
        if f > 1e-300 {
            z -= (std.cdf(z) - p) / f;
        }
        self.scale * z
    }

    /// Inverse-transform sampling via [`GammaPoly::quantile`] — exact but
    /// ~50× slower than rejection (see `bench/benches/ablations.rs`).
    pub fn sample_inverse_cdf<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.gen::<f64>().clamp(f64::MIN_POSITIVE, 1.0 - 1e-16);
        self.quantile(u)
    }
}

impl ContinuousDistribution for GammaPoly {
    fn pdf(&self, x: f64) -> f64 {
        let z = x / self.scale;
        let z2 = z * z;
        1.0 / (NORMALIZER * self.scale * (1.0 + z2 * z2))
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = x / self.scale;
        // antiderivative(±∞) = ± (π/(2√2)); shift/scale to [0,1].
        let at_inf = PI / (2.0 * SQRT_2);
        ((Self::antiderivative(z) + at_inf) / NORMALIZER).clamp(0.0, 1.0)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * Self::sample_standard(rng)
    }

    fn mean(&self) -> Option<f64> {
        Some(0.0)
    }

    fn mean_abs(&self) -> Option<f64> {
        // E|Z| = √2/2 for unit scale.
        Some(self.scale * FRAC_1_SQRT_2)
    }

    fn variance(&self) -> Option<f64> {
        // E[Z²] = 1 for unit scale.
        Some(self.scale * self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_scale() {
        assert!(GammaPoly::new(0.0).is_err());
        assert!(GammaPoly::new(-2.0).is_err());
        assert!(GammaPoly::new(f64::NAN).is_err());
    }

    #[test]
    fn pdf_at_zero_is_normalizer_inverse() {
        let d = GammaPoly::standard();
        assert!((d.pdf(0.0) - 1.0 / NORMALIZER).abs() < 1e-14);
        assert!((1.0 / NORMALIZER - 0.450_158_158).abs() < 1e-6);
    }

    #[test]
    fn cdf_limits_and_symmetry() {
        let d = GammaPoly::standard();
        assert!((d.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!(d.cdf(-50.0) < 1e-4);
        assert!(d.cdf(50.0) > 1.0 - 1e-4);
        for z in [0.3, 1.0, 2.5, 7.0] {
            let sym = d.cdf(z) + d.cdf(-z);
            assert!((sym - 1.0).abs() < 1e-10, "z={z}: {sym}");
        }
    }

    #[test]
    fn cdf_is_integral_of_pdf() {
        let d = GammaPoly::new(1.3).unwrap();
        // Numerically integrate pdf from -100 to x and compare with cdf.
        for target in [-2.0, -0.5, 0.0, 0.8, 3.0] {
            let (lo, n) = (-100.0, 400_000);
            let h = (target - lo) / n as f64;
            let mut acc = 0.0;
            for i in 0..n {
                acc += d.pdf(lo + (i as f64 + 0.5) * h) * h;
            }
            let err: f64 = acc - d.cdf(target);
            assert!(err.abs() < 2e-3, "x={target}: {err}");
        }
    }

    #[test]
    fn sample_moments_match_theory() {
        let d = GammaPoly::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let n = 300_000;
        let (mut sum, mut sum_abs, mut sum_sq) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = d.sample(&mut rng);
            sum += x;
            sum_abs += x.abs();
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let mean_abs = sum_abs / n as f64;
        let second = sum_sq / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        // E|X| = 2 * √2/2 = √2
        assert!((mean_abs - SQRT_2).abs() < 0.03, "mean_abs {mean_abs}");
        // E[X²] = 4 (unit second moment, scale²)
        assert!((second - 4.0).abs() < 0.35, "second moment {second}");
    }

    #[test]
    fn sample_distribution_matches_cdf() {
        // Empirical CDF vs analytic CDF at several points (a crude KS check).
        let d = GammaPoly::standard();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 200_000;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [-3.0, -1.0, -0.3, 0.0, 0.3, 1.0, 3.0] {
            let emp = samples.partition_point(|&s| s <= q) as f64 / n as f64;
            let diff: f64 = emp - d.cdf(q);
            assert!(diff.abs() < 0.01, "q={q}: emp={emp}, cdf={}", d.cdf(q));
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = GammaPoly::new(1.7).unwrap();
        for p in [0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999] {
            let z = d.quantile(p);
            let back = d.cdf(z);
            assert!((back - p).abs() < 1e-9, "p={p}: cdf(quantile)={back}");
        }
        // Median is 0 by symmetry.
        assert!(d.quantile(0.5).abs() < 1e-9);
    }

    #[test]
    fn inverse_cdf_sampler_matches_rejection_sampler() {
        let d = GammaPoly::standard();
        let mut rng = StdRng::seed_from_u64(8);
        let n = 60_000;
        let mut inv: Vec<f64> = (0..n).map(|_| d.sample_inverse_cdf(&mut rng)).collect();
        let mut rej: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        inv.sort_by(|a, b| a.partial_cmp(b).unwrap());
        rej.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Compare quantiles of the two samples (two-sample check).
        for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let i = (q * n as f64) as usize;
            assert!(
                (inv[i] - rej[i]).abs() < 0.05,
                "q={q}: inverse {} vs rejection {}",
                inv[i],
                rej[i]
            );
        }
    }

    #[test]
    fn heavy_tail_is_heavier_than_laplace() {
        // 1/(1+z⁴) has polynomial tails: P(|Z|>15) ≈ 9e-5 while the unit
        // Laplace tail e^{-15} ≈ 3e-7 — two orders of magnitude apart.
        let d = GammaPoly::standard();
        let lap = crate::Laplace::new(1.0).unwrap();
        let tail_gp = 1.0 - d.cdf(15.0);
        let tail_lap = 1.0 - lap.cdf(15.0);
        assert!(tail_gp > 50.0 * tail_lap, "gp {tail_gp} vs lap {tail_lap}");
    }
}
