//! The Laplace (double-exponential) distribution.
//!
//! `Laplace(b)` has density `f(x) = exp(-|x|/b) / (2b)` centered at zero.
//! Sampling uses the exact inverse-CDF transform, so a fixed RNG seed yields
//! a fully reproducible noise stream — important for the experiment harness,
//! which reruns every figure with pinned seeds.

use crate::{ContinuousDistribution, NoiseError};
use rand::Rng;

/// Zero-centered Laplace distribution with scale `b > 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Create a Laplace distribution with the given scale.
    ///
    /// # Errors
    /// Returns [`NoiseError::NonPositiveScale`] unless `scale` is finite and
    /// strictly positive.
    pub fn new(scale: f64) -> Result<Self, NoiseError> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err(NoiseError::NonPositiveScale(scale));
        }
        Ok(Self { scale })
    }

    /// The scale parameter `b`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Quantile function (inverse CDF) for `p ∈ (0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1), got {p}");
        if p < 0.5 {
            self.scale * (2.0 * p).ln()
        } else {
            -self.scale * (2.0 * (1.0 - p)).ln()
        }
    }

    /// The moment generating function `E[e^{tX}] = 1/(1 - b²t²)`, finite for
    /// `|t| < 1/b`. Used by the Log-Laplace bias analysis (Lemma 8.2).
    pub fn mgf(&self, t: f64) -> Option<f64> {
        let bt = self.scale * t;
        if bt.abs() < 1.0 {
            Some(1.0 / (1.0 - bt * bt))
        } else {
            None
        }
    }

    /// Two-sided tail bound: `P(|X| > z) = exp(-z/b)` for `z ≥ 0`.
    ///
    /// Section 6 of the paper uses this to show edge-DP noise `Lap(1/ε)` is
    /// at most `ln(1/p)/ε` with probability `1 - p`.
    pub fn tail(&self, z: f64) -> f64 {
        assert!(z >= 0.0, "tail bound requires z >= 0, got {z}");
        (-z / self.scale).exp()
    }
}

impl ContinuousDistribution for Laplace {
    fn pdf(&self, x: f64) -> f64 {
        (-(x.abs()) / self.scale).exp() / (2.0 * self.scale)
    }

    fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.5 * (x / self.scale).exp()
        } else {
            1.0 - 0.5 * (-x / self.scale).exp()
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF transform on u ~ U(-1/2, 1/2):
        //   X = -b * sgn(u) * ln(1 - 2|u|)
        let u: f64 = rng.gen::<f64>() - 0.5;
        let sign = if u < 0.0 { -1.0 } else { 1.0 };
        -self.scale * sign * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln()
    }

    fn mean(&self) -> Option<f64> {
        Some(0.0)
    }

    fn mean_abs(&self) -> Option<f64> {
        Some(self.scale)
    }

    fn variance(&self) -> Option<f64> {
        Some(2.0 * self.scale * self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_scale() {
        assert!(Laplace::new(0.0).is_err());
        assert!(Laplace::new(-1.0).is_err());
        assert!(Laplace::new(f64::NAN).is_err());
        assert!(Laplace::new(f64::INFINITY).is_err());
    }

    #[test]
    fn pdf_is_symmetric_and_peaks_at_zero() {
        let d = Laplace::new(1.5).unwrap();
        for x in [0.1, 0.7, 2.0, 10.0] {
            assert!((d.pdf(x) - d.pdf(-x)).abs() < 1e-15);
            assert!(d.pdf(x) < d.pdf(0.0));
        }
        assert!((d.pdf(0.0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_quantile() {
        let d = Laplace::new(0.8).unwrap();
        for p in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn sample_moments_match_theory() {
        let d = Laplace::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let (mut sum, mut sum_abs, mut sum_sq) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let x = d.sample(&mut rng);
            sum += x;
            sum_abs += x.abs();
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let mean_abs = sum_abs / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((mean_abs - 2.0).abs() < 0.05, "mean_abs {mean_abs}");
        assert!((var - 8.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn mgf_matches_series() {
        let d = Laplace::new(0.5).unwrap();
        // E[e^{tX}] with b*t = 0.25 -> 1/(1-0.0625)
        let m = d.mgf(0.5).unwrap();
        assert!((m - 1.0 / 0.9375).abs() < 1e-12);
        assert!(d.mgf(2.0).is_none(), "bt = 1 must be rejected");
        assert!(d.mgf(-2.0).is_none());
    }

    #[test]
    fn tail_bound_holds_empirically() {
        let d = Laplace::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let z = (1.0f64 / 0.01).ln(); // p = 0.01
        let n = 100_000;
        let exceed = (0..n).filter(|_| d.sample(&mut rng).abs() > z).count();
        let frac = exceed as f64 / n as f64;
        assert!(frac < 0.015, "tail fraction {frac} should be ~= 0.01");
    }

    #[test]
    fn matches_rand_distr_reference_cdf() {
        // Cross-check our sampler against the rand_distr Laplace via a
        // two-sample moment comparison.
        use rand_distr::Distribution;
        let ours = Laplace::new(3.0).unwrap();
        let reference = rand_distr::Exp::new(1.0 / 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let our_abs_mean: f64 = (0..n).map(|_| ours.sample(&mut rng).abs()).sum::<f64>() / n as f64;
        // |Laplace(b)| is Exp(1/b)
        let ref_mean: f64 = (0..n).map(|_| reference.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((our_abs_mean - ref_mean).abs() < 0.06);
    }
}
