//! Noise distributions for formally private release mechanisms.
//!
//! This crate is the probability substrate for the ER-EE privacy mechanisms
//! of Haney et al. (SIGMOD 2017). It provides:
//!
//! * [`Laplace`] — the classic double-exponential distribution with exact
//!   inverse-CDF sampling, used by the Laplace mechanism, the Smooth Laplace
//!   mechanism (Algorithm 3), and — on the log scale — the Log-Laplace
//!   mechanism (Algorithm 1).
//! * [`GammaPoly`] — the polynomial-tail distribution with density
//!   `h(z) ∝ 1/(1 + z⁴)` from Lemma 8.6 of the paper, used by the Smooth
//!   Gamma mechanism (Algorithm 2). Sampling is exact rejection sampling
//!   from a Cauchy envelope; the density, CDF and the first two moments are
//!   available in closed form.
//! * [`LogLaplace`] — the distribution of `e^η` for `η ~ Laplace(λ)`, with
//!   the moment formulas of Lemma 8.2 / Theorem 8.3.
//!
//! All samplers take `&mut impl Rng` so callers control seeding and
//! reproducibility. All densities are exposed so that privacy properties
//! (ε-indistinguishability of mechanism outputs on neighboring inputs) can be
//! verified numerically in tests rather than trusted on faith.

pub mod gamma_poly;
pub mod laplace;
pub mod log_laplace;
pub mod moments;

pub use gamma_poly::GammaPoly;
pub use laplace::Laplace;
pub use log_laplace::LogLaplace;

/// A continuous real-valued distribution with an analytic density.
///
/// The privacy proofs in the paper are statements about ratios of output
/// densities on neighboring databases; exposing `pdf` lets the test-suite
/// check those ratios numerically for every mechanism.
pub trait ContinuousDistribution {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;
    /// Draw one sample.
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> f64;
    /// Mean of the distribution, if finite.
    fn mean(&self) -> Option<f64>;
    /// Expected absolute value `E|X|`, if finite.
    fn mean_abs(&self) -> Option<f64>;
    /// Variance, if finite.
    fn variance(&self) -> Option<f64>;
}

/// Errors constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum NoiseError {
    /// Scale parameters must be strictly positive and finite.
    NonPositiveScale(f64),
    /// Parameter is NaN or infinite.
    NonFinite(&'static str, f64),
}

impl std::fmt::Display for NoiseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NoiseError::NonPositiveScale(s) => {
                write!(f, "scale must be positive and finite, got {s}")
            }
            NoiseError::NonFinite(name, v) => write!(f, "parameter {name} must be finite, got {v}"),
        }
    }
}

impl std::error::Error for NoiseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// All distributions must integrate to 1 (trapezoid check over a wide
    /// truncation window).
    #[test]
    fn densities_integrate_to_one() {
        let lap = Laplace::new(1.7).unwrap();
        let gp = GammaPoly::new(2.3).unwrap();
        for (name, f) in [
            (
                "laplace",
                Box::new(move |x: f64| lap.pdf(x)) as Box<dyn Fn(f64) -> f64>,
            ),
            ("gamma_poly", Box::new(move |x: f64| gp.pdf(x))),
        ] {
            let (lo, hi, n) = (-400.0, 400.0, 800_000);
            let h = (hi - lo) / n as f64;
            let mut total = 0.0;
            for i in 0..n {
                let x = lo + (i as f64 + 0.5) * h;
                total += f(x) * h;
            }
            assert!((total - 1.0).abs() < 1e-3, "{name}: integral {total}");
        }
    }

    #[test]
    fn samplers_are_deterministic_under_fixed_seed() {
        let lap = Laplace::new(2.0).unwrap();
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(lap.sample(&mut a), lap.sample(&mut b));
        }
    }
}
