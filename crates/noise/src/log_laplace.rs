//! The log-Laplace distribution: `e^η` for `η ~ Laplace(λ)`.
//!
//! Algorithm 1 of the paper (the Log-Laplace mechanism) perturbs a count `n`
//! by computing `ñ = e^{ln(n+γ) + η} − γ` with `η ~ Laplace(λ)` and
//! `λ = 2·ln(1+α)/ε`. The output `ñ + γ` therefore follows a log-Laplace
//! distribution with median `n + γ`.
//!
//! Lemma 8.2 of the paper: `E[e^η] = 1/(1−λ²)` when `λ < 1` (unbounded
//! otherwise), so the mechanism carries a multiplicative bias `1/(1−λ²)`.
//! Theorem 8.3 bounds the expected squared relative error when `λ < 1/2`
//! via `E[e^{2η}] = 1/(1−4λ²)`.

use crate::{ContinuousDistribution, Laplace, NoiseError};
use rand::Rng;

/// Distribution of `m·e^η` where `η ~ Laplace(λ)` and `m > 0` is the median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogLaplace {
    median: f64,
    inner: Laplace,
}

impl LogLaplace {
    /// Create a log-Laplace distribution with median `median` and log-scale
    /// `lambda`.
    ///
    /// # Errors
    /// Errors if `lambda` is not positive/finite or `median` is not
    /// positive/finite.
    pub fn new(median: f64, lambda: f64) -> Result<Self, NoiseError> {
        if !median.is_finite() || median <= 0.0 {
            return Err(NoiseError::NonFinite("median", median));
        }
        Ok(Self {
            median,
            inner: Laplace::new(lambda)?,
        })
    }

    /// The median `m` (the point with CDF 1/2).
    #[inline]
    pub fn median(&self) -> f64 {
        self.median
    }

    /// The log-scale parameter `λ`.
    #[inline]
    pub fn lambda(&self) -> f64 {
        self.inner.scale()
    }

    /// Multiplicative bias factor `E[X]/m = 1/(1−λ²)`, finite iff `λ < 1`
    /// (Lemma 8.2).
    pub fn bias_factor(&self) -> Option<f64> {
        self.inner.mgf(1.0)
    }

    /// Second-moment factor `E[X²]/m² = 1/(1−4λ²)`, finite iff `λ < 1/2`
    /// (used in the Theorem 8.3 error bound).
    pub fn second_moment_factor(&self) -> Option<f64> {
        self.inner.mgf(2.0)
    }

    /// Expected squared relative error `E[((X − m)/m)²]`, finite iff
    /// `λ < 1/2`. Equals `(2λ² + 4λ⁴) / ((1−4λ²)(1−λ²))` (Theorem 8.3).
    pub fn expected_squared_rel_error(&self) -> Option<f64> {
        let l = self.lambda();
        if l >= 0.5 {
            return None;
        }
        let l2 = l * l;
        Some((2.0 * l2 + 4.0 * l2 * l2) / ((1.0 - 4.0 * l2) * (1.0 - l2)))
    }
}

impl ContinuousDistribution for LogLaplace {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        // X = m e^η  ⇒  f_X(x) = f_η(ln(x/m)) / x
        self.inner.pdf((x / self.median).ln()) / x
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        self.inner.cdf((x / self.median).ln())
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.median * self.inner.sample(rng).exp()
    }

    fn mean(&self) -> Option<f64> {
        self.bias_factor().map(|b| self.median * b)
    }

    fn mean_abs(&self) -> Option<f64> {
        // Support is (0, ∞), so E|X| = E[X].
        self.mean()
    }

    fn variance(&self) -> Option<f64> {
        let m2 = self.second_moment_factor()?;
        let b = self.bias_factor()?;
        Some(self.median * self.median * (m2 - b * b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogLaplace::new(0.0, 0.5).is_err());
        assert!(LogLaplace::new(-3.0, 0.5).is_err());
        assert!(LogLaplace::new(1.0, 0.0).is_err());
        assert!(LogLaplace::new(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn median_is_preserved() {
        let d = LogLaplace::new(42.0, 0.3).unwrap();
        assert!((d.cdf(42.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bias_factor_matches_lemma_8_2() {
        // λ = 0.4 < 1: bias 1/(1-0.16)
        let d = LogLaplace::new(10.0, 0.4).unwrap();
        assert!((d.bias_factor().unwrap() - 1.0 / 0.84).abs() < 1e-12);
        // λ ≥ 1: unbounded expectation
        let d = LogLaplace::new(10.0, 1.0).unwrap();
        assert!(d.bias_factor().is_none());
        assert!(d.mean().is_none());
    }

    #[test]
    fn empirical_bias_matches_analytic() {
        let d = LogLaplace::new(100.0, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let expect = d.mean().unwrap();
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "empirical {mean} vs analytic {expect}"
        );
    }

    #[test]
    fn squared_rel_error_matches_theorem_8_3() {
        let d = LogLaplace::new(50.0, 0.2).unwrap();
        let analytic = d.expected_squared_rel_error().unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let n = 400_000;
        let emp: f64 = (0..n)
            .map(|_| {
                let x = d.sample(&mut rng);
                let r = (x - 50.0) / 50.0;
                r * r
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (emp - analytic).abs() / analytic < 0.05,
            "empirical {emp} vs analytic {analytic}"
        );
        // λ ≥ 1/2 must report divergence.
        let d = LogLaplace::new(50.0, 0.5).unwrap();
        assert!(d.expected_squared_rel_error().is_none());
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let d = LogLaplace::new(5.0, 0.6).unwrap();
        let (lo, hi, n) = (1e-9, 60.0, 600_000);
        let h = (hi - lo) / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            acc += d.pdf(lo + (i as f64 + 0.5) * h) * h;
        }
        assert!((acc - d.cdf(hi)).abs() < 2e-3, "acc {acc} vs {}", d.cdf(hi));
    }
}
