//! Analytic moment constants and small statistical helpers shared by the
//! error-bound tests across the workspace.

use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// `E|Z|` for the unit-scale gamma-poly distribution `h(z) ∝ 1/(1+z⁴)`.
///
/// The paper's Lemma 8.8 proof evaluates the unnormalized integral
/// `∫ |z|/(1+z⁴) dz = π/2`; dividing by the normalizer `π/√2` gives `√2/2`.
pub const GAMMA_POLY_MEAN_ABS: f64 = FRAC_1_SQRT_2;

/// `E[Z²]` for the unit-scale gamma-poly distribution (exactly 1).
pub const GAMMA_POLY_SECOND_MOMENT: f64 = 1.0;

/// The unnormalized first absolute moment `∫ |z|/(1+z⁴) dz = π/2` quoted in
/// the paper's Lemma 8.8 proof.
pub const GAMMA_POLY_UNNORMALIZED_L1: f64 = PI / 2.0;

/// Normalizing constant of the gamma-poly density, `π/√2`.
pub const GAMMA_POLY_NORMALIZER: f64 = PI * FRAC_1_SQRT_2;

/// Streaming accumulator for sample mean / absolute mean / variance, used by
/// tests and the experiment runner to summarize repeated trials without
/// storing every observation.
#[derive(Debug, Clone, Default)]
pub struct MomentAccumulator {
    n: u64,
    sum: f64,
    sum_abs: f64,
    sum_sq: f64,
}

impl MomentAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sum_abs += x.abs();
        self.sum_sq += x * x;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean. Returns `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum / self.n as f64)
    }

    /// Mean of absolute values.
    pub fn mean_abs(&self) -> Option<f64> {
        (self.n > 0).then(|| self.sum_abs / self.n as f64)
    }

    /// Population variance (biased, `1/n`).
    pub fn variance(&self) -> Option<f64> {
        self.mean().map(|m| self.sum_sq / self.n as f64 - m * m)
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &MomentAccumulator) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_abs += other.sum_abs;
        self.sum_sq += other.sum_sq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::SQRT_2;

    #[test]
    fn constants_are_consistent() {
        // Normalized L1 = unnormalized / normalizer.
        let normalized = GAMMA_POLY_UNNORMALIZED_L1 / GAMMA_POLY_NORMALIZER;
        assert!((normalized - GAMMA_POLY_MEAN_ABS).abs() < 1e-15);
        assert!((GAMMA_POLY_MEAN_ABS - SQRT_2 / 2.0).abs() < 1e-15);
    }

    #[test]
    fn accumulator_basics() {
        let mut acc = MomentAccumulator::new();
        assert!(acc.mean().is_none());
        for x in [1.0, -1.0, 3.0, -3.0] {
            acc.push(x);
        }
        assert_eq!(acc.count(), 4);
        assert!((acc.mean().unwrap() - 0.0).abs() < 1e-15);
        assert!((acc.mean_abs().unwrap() - 2.0).abs() < 1e-15);
        assert!((acc.variance().unwrap() - 5.0).abs() < 1e-15);
    }

    #[test]
    fn accumulator_merge_equals_combined() {
        let xs = [0.5, 1.5, -2.0, 4.0, -0.25];
        let mut all = MomentAccumulator::new();
        let mut a = MomentAccumulator::new();
        let mut b = MomentAccumulator::new();
        for (i, &x) in xs.iter().enumerate() {
            all.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean().unwrap() - all.mean().unwrap()).abs() < 1e-15);
        assert!((a.variance().unwrap() - all.variance().unwrap()).abs() < 1e-15);
    }
}
