//! The Section 5.2 inference attacks against input noise infusion.
//!
//! Two structural properties of the scheme enable all three attacks: the
//! *same* factor `f_w` scales every cell of an establishment's histogram,
//! and exact zeros pass through. Given a workplace-attribute combination
//! matched by exactly one establishment:
//!
//! 1. **Shape attack** — all published worker-attribute cells for that
//!    combination are `f_w·h(w,c)`, so their *ratios* equal the true shape
//!    exactly (whenever every involved count clears the small-cell limit).
//! 2. **Size attack** — an attacker who knows one true cell count
//!    recovers `f_w = published/true` and with it the exact total
//!    employment and every other cell count.
//! 3. **Re-identification attack** — preserved zeros reveal which
//!    attribute combinations are absent; if the attacker knows a target
//!    worker is the only employee matching some published attribute value,
//!    the single nonzero cell under that value discloses the worker's
//!    remaining attributes.
//!
//! Each function returns a structured result so examples/tests can assert
//! both that the attack succeeds against SDL output and that it fails
//! against the formally private mechanisms.

use crate::publish::SdlRelease;
use lodes::histogram::WorkerCell;
use lodes::{Dataset, WorkplaceId};
use std::collections::BTreeMap;
use tabulate::{CellKey, Marginal};

/// Result of the shape-recovery attack on one establishment.
#[derive(Debug, Clone)]
pub struct ShapeAttackResult {
    /// The victim establishment.
    pub workplace: WorkplaceId,
    /// Recovered shape: worker-cell → estimated share of the workforce.
    pub recovered_shape: BTreeMap<u16, f64>,
    /// True shape from the confidential histogram.
    pub true_shape: BTreeMap<u16, f64>,
    /// Maximum absolute deviation between recovered and true shares.
    pub max_share_error: f64,
}

/// Result of the size-recovery attack.
#[derive(Debug, Clone, Copy)]
pub struct SizeAttackResult {
    /// The victim establishment.
    pub workplace: WorkplaceId,
    /// Recovered distortion factor `f_w`.
    pub recovered_factor: f64,
    /// Recovered total employment.
    pub recovered_size: f64,
    /// True total employment.
    pub true_size: u32,
}

/// Result of the zero-based re-identification attack.
#[derive(Debug, Clone)]
pub struct ReidentificationResult {
    /// The victim establishment.
    pub workplace: WorkplaceId,
    /// The worker-cells consistent with the published nonzeros — if exactly
    /// one remains, the target's full attribute combination is disclosed.
    pub candidate_cells: Vec<u16>,
}

/// Find, in a marginal over *workplace attributes only*, the cells matched
/// by exactly one establishment — the precondition of all three attacks.
pub fn singleton_cells(truth: &Marginal) -> Vec<CellKey> {
    truth
        .iter()
        .filter(|(_, stats)| stats.establishments == 1)
        .map(|(key, _)| key)
        .collect()
}

/// Identify the unique establishment matching a workplace-only cell.
pub fn establishment_of_singleton(
    dataset: &Dataset,
    truth: &Marginal,
    key: CellKey,
) -> Option<WorkplaceId> {
    let spec = truth.spec();
    let schema = truth.schema();
    let values = schema.decode(key);
    let mut found = None;
    for wp in dataset.workplaces() {
        let matches = spec
            .workplace_attrs
            .iter()
            .zip(&values)
            .all(|(attr, &v)| attr.value(wp) == v);
        if matches && dataset.establishment_size(wp.id) > 0 {
            if found.is_some() {
                return None; // not a singleton after all
            }
            found = Some(wp.id);
        }
    }
    found
}

/// Shape attack: given the SDL release of a marginal over workplace
/// attributes × worker attributes for a singleton establishment, recover
/// its workforce shape from published ratios.
///
/// `cells` maps a worker-cell index (in the *marginal's* worker-attribute
/// layout — see [`worker_cells_for`]) to `(published value, true count)`.
/// Cells below the small-cell limit are excluded by the caller (their
/// published values are predictive draws, not scaled counts). Because the
/// same factor `f_w` scales every published value, the recovered shares
/// equal the true shares exactly.
pub fn shape_attack(
    workplace: WorkplaceId,
    cells: &BTreeMap<u16, (f64, u64)>,
) -> ShapeAttackResult {
    let published_total: f64 = cells.values().map(|&(p, _)| p).sum();
    let recovered_shape: BTreeMap<u16, f64> = cells
        .iter()
        .map(|(&c, &(p, _))| (c, p / published_total))
        .collect();

    let true_total: f64 = cells.values().map(|&(_, t)| t as f64).sum();
    let true_shape: BTreeMap<u16, f64> = cells
        .iter()
        .map(|(&c, &(_, t))| (c, t as f64 / true_total))
        .collect();

    let max_share_error = recovered_shape
        .iter()
        .map(|(c, &r)| (r - true_shape[c]).abs())
        .fold(0.0, f64::max);

    ShapeAttackResult {
        workplace,
        recovered_shape,
        true_shape,
        max_share_error,
    }
}

/// Size attack: the adversary knows the true count of one worker cell
/// (`known_cell`, `known_true`) of a singleton establishment and observes
/// the published value for that cell plus the published total.
pub fn size_attack_with_known_cell(
    dataset: &Dataset,
    workplace: WorkplaceId,
    known_true: u32,
    published_known: f64,
    published_total: f64,
) -> SizeAttackResult {
    let recovered_factor = published_known / known_true as f64;
    let recovered_size = published_total / recovered_factor;
    SizeAttackResult {
        workplace,
        recovered_factor,
        recovered_size,
        true_size: dataset.establishment_size(workplace),
    }
}

/// Zero-based re-identification: the attacker knows the victim is the only
/// worker at `workplace` matching `known_predicate` (e.g. "has a college
/// degree"). Published zeros eliminate all absent attribute combinations;
/// the surviving candidates are returned.
///
/// `published_nonzero_cells` is the set of worker-cells with positive
/// published counts for the victim establishment's singleton combination.
pub fn reidentification_attack(
    workplace: WorkplaceId,
    published_nonzero_cells: &[u16],
    known_predicate: impl Fn(WorkerCell) -> bool,
) -> ReidentificationResult {
    let candidate_cells = published_nonzero_cells
        .iter()
        .copied()
        .filter(|&c| known_predicate(WorkerCell(c)))
        .collect();
    ReidentificationResult {
        workplace,
        candidate_cells,
    }
}

/// Build the `(published, true)` worker-cell map for one singleton
/// establishment from an SDL release of a workplace×worker marginal,
/// excluding cells below the small-cell limit. Keys are dense indices in
/// the marginal's worker-attribute layout (mixed radix over the spec's
/// worker attributes, e.g. `sex·4 + education` for Workload 3).
pub fn worker_cells_for(
    release: &SdlRelease,
    workplace_values: &[u32],
    small_cell_limit: f64,
) -> BTreeMap<u16, (f64, u64)> {
    let schema = release.truth.schema();
    let n_wp = release.truth.spec().workplace_attrs.len();
    let mut out = BTreeMap::new();
    for (key, stats) in release.truth.iter() {
        let values = schema.decode(key);
        if values[..n_wp] == *workplace_values && stats.count as f64 >= small_cell_limit {
            // Dense worker-part index in spec order.
            let mut idx: u64 = 0;
            for (i, &v) in values[n_wp..].iter().enumerate() {
                idx = idx * schema.cardinality_of(n_wp + i) + v as u64;
            }
            out.insert(idx as u16, (release.published[&key], stats.count));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::publish::{SdlConfig, SdlPublisher};
    use lodes::{Generator, GeneratorConfig};
    use tabulate::{compute_marginal, workload1};

    fn setup() -> (Dataset, SdlPublisher, Marginal) {
        let d = Generator::new(GeneratorConfig::test_small(21)).generate();
        let cfg = SdlConfig {
            round_output: false,
            ..SdlConfig::default()
        };
        let p = SdlPublisher::new(&d, cfg);
        let truth = compute_marginal(&d, &workload1());
        (d, p, truth)
    }

    #[test]
    fn singleton_cells_exist_in_sparse_tabulations() {
        let (_, _, truth) = setup();
        let singles = singleton_cells(&truth);
        assert!(
            !singles.is_empty(),
            "place x naics x ownership must contain singleton-establishment cells"
        );
    }

    #[test]
    fn size_attack_recovers_exact_size() {
        let (d, p, truth) = setup();
        let singles = singleton_cells(&truth);
        // Pick a singleton with a reasonably large establishment.
        let (key, stats) = singles
            .iter()
            .map(|&k| (k, truth.cell(k).unwrap()))
            .max_by_key(|(_, s)| s.count)
            .unwrap();
        let wp = establishment_of_singleton(&d, &truth, key).expect("singleton");
        assert_eq!(stats.count, d.establishment_size(wp) as u64);

        // Attacker observes the published workload-1 value...
        let release = p.publish(&d, &workload1());
        let published_total = release.published[&key];
        // ...and happens to know the establishment's exact total (the
        // "known cell" here is the total itself).
        let result = size_attack_with_known_cell(
            &d,
            wp,
            stats.count as u32,
            published_total,
            published_total,
        );
        assert!(
            (result.recovered_size - result.true_size as f64).abs() < 1e-6,
            "size attack must recover the exact size: {} vs {}",
            result.recovered_size,
            result.true_size
        );
        // The recovered factor matches the assigned confidential factor.
        let f_true = p.factors().factor(wp.0 as usize);
        assert!((result.recovered_factor - f_true).abs() < 1e-9);
    }

    #[test]
    fn reidentification_narrows_to_true_cell() {
        use lodes::histogram::DatasetHistograms;
        let (d, _, truth) = setup();
        let hists = DatasetHistograms::build(&d);
        // Find a singleton establishment with a worker whose cell count is 1
        // and unique under some predicate: use "exact worker cell" known to
        // be singleton within the establishment.
        let singles = singleton_cells(&truth);
        let mut demonstrated = false;
        for key in singles {
            let wp = match establishment_of_singleton(&d, &truth, key) {
                Some(wp) => wp,
                None => continue,
            };
            let hist = hists.of(wp);
            // Pick any worker-cell with count 1 as the victim.
            if let Some((victim_cell, _)) = hist.nonzero().find(|&(_, n)| n == 1) {
                let nonzero: Vec<u16> = hist.nonzero().map(|(c, _)| c.0).collect();
                let (_, _, _, _, victim_edu) = victim_cell.decode();
                // Attacker knows: the victim is the only worker with this
                // education level at the establishment.
                let same_edu: Vec<u16> = nonzero
                    .iter()
                    .copied()
                    .filter(|&c| WorkerCell(c).decode().4 == victim_edu)
                    .collect();
                if same_edu.len() == 1 {
                    let result =
                        reidentification_attack(wp, &nonzero, |c| c.decode().4 == victim_edu);
                    assert_eq!(result.candidate_cells, vec![victim_cell.0]);
                    demonstrated = true;
                    break;
                }
            }
        }
        assert!(demonstrated, "no singleton victim found in test data");
    }
}
