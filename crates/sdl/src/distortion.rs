//! Per-establishment multiplicative distortion factors.
//!
//! Each establishment `w` gets a single confidential factor `f_w` with
//! `|f_w − 1| ∈ [s, t]`, drawn once and reused for every cell of every
//! tabulation (the source of the Sec 5.2 attacks). The magnitude follows a
//! "ramp" density that linearly decreases from `s` to `t` (so most factors
//! distort by close to the minimum `s`), with the sign fair-coin symmetric;
//! a uniform-magnitude option is available for sensitivity analysis.

use lodes::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shape of the fuzz-factor magnitude distribution on `[s, t]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FuzzDistribution {
    /// Density decreasing linearly from `s` to `t`:
    /// `p(m) = 2(t − m)/(t − s)²`. Matches the published description of the
    /// QWI noise system.
    Ramp,
    /// Uniform on `[s, t]`.
    Uniform,
}

/// Parameters of the input-noise-infusion scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistortionParams {
    /// Minimum distortion magnitude (`s` in the paper), `0 < s < t`.
    pub s: f64,
    /// Maximum distortion magnitude (`t`).
    pub t: f64,
    /// Magnitude distribution.
    pub distribution: FuzzDistribution,
}

impl Default for DistortionParams {
    fn default() -> Self {
        Self {
            s: 0.05,
            t: 0.15,
            distribution: FuzzDistribution::Ramp,
        }
    }
}

impl DistortionParams {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics unless `0 < s < t < 1`.
    pub fn new(s: f64, t: f64, distribution: FuzzDistribution) -> Self {
        assert!(
            s > 0.0 && s < t && t < 1.0,
            "distortion parameters require 0 < s < t < 1, got s={s}, t={t}"
        );
        Self { s, t, distribution }
    }

    /// Expected distortion magnitude `E|f − 1|`.
    pub fn expected_magnitude(&self) -> f64 {
        match self.distribution {
            // Ramp p(m) = 2(t−m)/(t−s)² on [s,t]: E[m] = s + (t−s)/3.
            FuzzDistribution::Ramp => self.s + (self.t - self.s) / 3.0,
            FuzzDistribution::Uniform => (self.s + self.t) / 2.0,
        }
    }

    /// Draw one magnitude `m ∈ [s, t]`.
    fn sample_magnitude<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        match self.distribution {
            FuzzDistribution::Ramp => {
                // Inverse CDF of the decreasing ramp: F(m) = 1 − ((t−m)/(t−s))²
                self.t - (self.t - self.s) * (1.0 - u).sqrt()
            }
            FuzzDistribution::Uniform => self.s + (self.t - self.s) * u,
        }
    }

    /// Draw one signed factor `f ∈ [1−t, 1−s] ∪ [1+s, 1+t]`.
    pub fn sample_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let m = self.sample_magnitude(rng);
        if rng.gen::<bool>() {
            1.0 + m
        } else {
            1.0 - m
        }
    }
}

/// The assigned, time-invariant factor table: one `f_w` per establishment.
#[derive(Debug, Clone)]
pub struct DistortionFactors {
    factors: Vec<f64>,
    params: DistortionParams,
}

impl DistortionFactors {
    /// Assign a factor to every establishment of `dataset`, deterministically
    /// from `seed`.
    pub fn assign(dataset: &Dataset, params: DistortionParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let factors = (0..dataset.num_workplaces())
            .map(|_| params.sample_factor(&mut rng))
            .collect();
        Self { factors, params }
    }

    /// The factor of establishment `i` (dense workplace index).
    #[inline]
    pub fn factor(&self, workplace_index: usize) -> f64 {
        self.factors[workplace_index]
    }

    /// All factors.
    pub fn factors(&self) -> &[f64] {
        &self.factors
    }

    /// The generating parameters.
    pub fn params(&self) -> &DistortionParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};

    #[test]
    #[should_panic(expected = "0 < s < t < 1")]
    fn rejects_inverted_params() {
        DistortionParams::new(0.2, 0.1, FuzzDistribution::Ramp);
    }

    #[test]
    fn factors_bounded_away_from_one() {
        let params = DistortionParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = params.sample_factor(&mut rng);
            let m = (f - 1.0).abs();
            assert!(
                (params.s..=params.t).contains(&m),
                "magnitude {m} outside [s,t]"
            );
        }
    }

    #[test]
    fn ramp_mean_matches_formula() {
        let params = DistortionParams::new(0.05, 0.15, FuzzDistribution::Ramp);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| (params.sample_factor(&mut rng) - 1.0).abs())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - params.expected_magnitude()).abs() < 1e-3,
            "mean {mean} vs {}",
            params.expected_magnitude()
        );
        // Ramp concentrates near s: median below midpoint.
        let mut mags: Vec<f64> = (0..n)
            .map(|_| (params.sample_factor(&mut rng) - 1.0).abs())
            .collect();
        mags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(mags[n / 2] < 0.10, "ramp median {}", mags[n / 2]);
    }

    #[test]
    fn uniform_mean_matches_formula() {
        let params = DistortionParams::new(0.02, 0.10, FuzzDistribution::Uniform);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mean: f64 = (0..n)
            .map(|_| (params.sample_factor(&mut rng) - 1.0).abs())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.06).abs() < 1e-3, "mean {mean}");
    }

    #[test]
    fn signs_are_balanced() {
        let params = DistortionParams::default();
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let ups = (0..n)
            .filter(|_| params.sample_factor(&mut rng) > 1.0)
            .count();
        let frac = ups as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "up fraction {frac}");
    }

    #[test]
    fn assignment_is_deterministic_and_per_establishment() {
        let d = Generator::new(GeneratorConfig::test_small(5)).generate();
        let a = DistortionFactors::assign(&d, DistortionParams::default(), 7);
        let b = DistortionFactors::assign(&d, DistortionParams::default(), 7);
        assert_eq!(a.factors(), b.factors());
        assert_eq!(a.factors().len(), d.num_workplaces());
        let c = DistortionFactors::assign(&d, DistortionParams::default(), 8);
        assert_ne!(a.factors(), c.factors());
    }
}
