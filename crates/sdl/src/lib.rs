//! Input noise infusion — the deployed SDL baseline (Sec 5 of the paper).
//!
//! Current LODES/QWI publications protect workplace tabulations with
//! *multiplicative input noise infusion*: every establishment `w` receives a
//! unique, time-invariant, confidential distortion factor
//! `f_w ∈ [1−t, 1−s] ∪ [1+s, 1+t]` (bounded away from 1), every histogram
//! count is published as `h*(w,c) = f_w · h(w,c)`, zero counts pass through
//! exactly, and small positive counts (below the limit `S = 2.5`) are
//! replaced by draws from a posterior-predictive distribution over
//! `{1, …, ⌊S⌋}`.
//!
//! The production parameters `(s, t)` and the exact fuzz distribution are
//! confidential; this crate implements the *published form* of the scheme
//! (ramp-distributed magnitudes, per Abowd–Stephens–Vilhuber, TP-2006-02)
//! with configurable parameters, defaulting to `s = 0.05, t = 0.15`
//! (see DESIGN.md §2 for the substitution argument).
//!
//! The crate also implements the paper's Section 5.2 inference attacks,
//! demonstrating that the scheme — unlike the formally private mechanisms —
//! leaks establishment shape, establishment size (given one known cell),
//! and worker attributes (through preserved zeros).

pub mod attack;
pub mod distortion;
pub mod publish;
pub mod small_cell;
pub mod timeseries;

pub use attack::{
    reidentification_attack, shape_attack, size_attack_with_known_cell, worker_cells_for,
};
pub use distortion::{DistortionFactors, DistortionParams, FuzzDistribution};
pub use publish::{SdlConfig, SdlPublisher, SdlRelease};
pub use small_cell::SmallCellModel;
pub use timeseries::{growth_rate_attack, GrowthAttackResult, PanelPublisher};
