//! SDL publication of marginal queries.
//!
//! For a marginal `q_V`, the published answer of a cell `v` is
//! `q*_V(D, v) = Σ_w f_w · h(w, c_v(w))` — every establishment's
//! contribution scaled by its own confidential factor — except:
//!
//! * cells whose **true** count is zero are not published (implicit exact
//!   zero), and
//! * cells whose true count lies in `(0, S)` are replaced by a
//!   posterior-predictive draw (see [`crate::small_cell`]).
//!
//! Published values are real-valued by default; production systems round,
//! which [`SdlConfig::round_output`] enables.

use crate::distortion::{DistortionFactors, DistortionParams};
use crate::small_cell::SmallCellModel;
use lodes::{Dataset, Worker};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tabulate::{CellKey, FilterExpr, Marginal, MarginalSpec, TabulationIndex};

/// Configuration of the SDL publication pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdlConfig {
    /// Distortion-factor parameters.
    pub distortion: DistortionParams,
    /// Small-cell model.
    pub small_cell: SmallCellModel,
    /// Round published values to the nearest integer.
    pub round_output: bool,
    /// Seed for factor assignment and small-cell draws.
    pub seed: u64,
}

impl Default for SdlConfig {
    fn default() -> Self {
        Self {
            distortion: DistortionParams::default(),
            small_cell: SmallCellModel::default(),
            round_output: true,
            seed: 0x5D15,
        }
    }
}

/// A published SDL tabulation: noisy counts per nonzero-true-count cell,
/// alongside the true marginal for evaluation.
///
/// Serializable since `Marginal` gained its stable serialized form: an
/// evaluation run can persist SDL baselines next to the engine's
/// `ReleaseArtifact`s and replay comparisons without re-publishing.
/// (The `truth` field makes a serialized release *confidential* — it
/// exists for experiments, never for dissemination.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdlRelease {
    /// Published (noisy) value per cell.
    pub published: BTreeMap<CellKey, f64>,
    /// The underlying true marginal (for error computation in experiments;
    /// never released by a real agency).
    pub truth: Marginal,
}

impl SdlRelease {
    /// Total absolute error `‖q − q*‖₁` over published cells.
    pub fn l1_error(&self) -> f64 {
        self.truth
            .iter()
            .map(|(key, stats)| {
                let noisy = self.published.get(&key).copied().unwrap_or(0.0);
                (stats.count as f64 - noisy).abs()
            })
            .sum()
    }

    /// Average absolute per-cell error.
    pub fn mean_l1_error(&self) -> f64 {
        if self.truth.num_cells() == 0 {
            return 0.0;
        }
        self.l1_error() / self.truth.num_cells() as f64
    }
}

/// The SDL publication engine: holds the per-establishment factor table and
/// publishes marginals on demand.
#[derive(Debug, Clone)]
pub struct SdlPublisher {
    config: SdlConfig,
    factors: DistortionFactors,
}

impl SdlPublisher {
    /// Assign distortion factors for `dataset` and build a publisher.
    pub fn new(dataset: &Dataset, config: SdlConfig) -> Self {
        let factors = DistortionFactors::assign(dataset, config.distortion, config.seed);
        Self { config, factors }
    }

    /// The factor table (used by the attack demonstrations).
    pub fn factors(&self) -> &DistortionFactors {
        &self.factors
    }

    /// The configuration.
    pub fn config(&self) -> &SdlConfig {
        &self.config
    }

    /// Publish the marginal `spec` over `dataset`.
    pub fn publish(&self, dataset: &Dataset, spec: &MarginalSpec) -> SdlRelease {
        self.publish_inner(&TabulationIndex::build(dataset), dataset, spec, |_| true)
    }

    /// Publish a marginal restricted to the sub-population matching the
    /// declarative `expr` (e.g. [`tabulate::ranking2_expr`] for Ranking
    /// 2's "female × bachelor's-or-higher" workers). The expression form
    /// keeps the SDL baseline on the same filter definitions — and the
    /// same provenance story — as the formally private engine it is
    /// compared against.
    pub fn publish_expr(
        &self,
        dataset: &Dataset,
        spec: &MarginalSpec,
        expr: &FilterExpr,
    ) -> SdlRelease {
        self.publish_expr_on(&TabulationIndex::build(dataset), dataset, spec, expr)
    }

    /// Publish a filtered marginal through an opaque closure.
    #[deprecated(
        since = "0.1.0",
        note = "use publish_expr(FilterExpr) — declarative filters share definitions with the release engine"
    )]
    pub fn publish_filtered<F>(
        &self,
        dataset: &Dataset,
        spec: &MarginalSpec,
        filter: F,
    ) -> SdlRelease
    where
        F: Fn(&Worker) -> bool + Sync,
    {
        self.publish_inner(&TabulationIndex::build(dataset), dataset, spec, filter)
    }

    /// Like [`publish`](Self::publish), but tabulating the truth over a
    /// caller-provided [`TabulationIndex`] of `dataset`, so repeated
    /// publications share one index build.
    pub fn publish_on(
        &self,
        index: &TabulationIndex,
        dataset: &Dataset,
        spec: &MarginalSpec,
    ) -> SdlRelease {
        self.publish_inner(index, dataset, spec, |_| true)
    }

    /// Declaratively filtered variant of [`publish_on`](Self::publish_on).
    /// `index` must be an index of `dataset`.
    pub fn publish_expr_on(
        &self,
        index: &TabulationIndex,
        dataset: &Dataset,
        spec: &MarginalSpec,
        expr: &FilterExpr,
    ) -> SdlRelease {
        let compiled = expr.compile(index);
        self.publish_inner(index, dataset, spec, |w| compiled.matches(w))
    }

    /// Closure-filtered variant of [`publish_on`](Self::publish_on).
    #[deprecated(
        since = "0.1.0",
        note = "use publish_expr_on(FilterExpr) — declarative filters share definitions with the release engine"
    )]
    pub fn publish_filtered_on<F>(
        &self,
        index: &TabulationIndex,
        dataset: &Dataset,
        spec: &MarginalSpec,
        filter: F,
    ) -> SdlRelease
    where
        F: Fn(&Worker) -> bool + Sync,
    {
        self.publish_inner(index, dataset, spec, filter)
    }

    fn publish_inner<F>(
        &self,
        index: &TabulationIndex,
        dataset: &Dataset,
        spec: &MarginalSpec,
        filter: F,
    ) -> SdlRelease
    where
        F: Fn(&Worker) -> bool + Sync,
    {
        // Noisy per-cell sums: every worker contributes its establishment's
        // factor. (Equivalent to Σ_w f_w·h(w,c) without materializing the
        // per-establishment histograms.)
        let truth = index.marginal_filtered(spec, &filter);
        let schema = truth.schema();

        let mut noisy: BTreeMap<CellKey, f64> = BTreeMap::new();
        let mut values: Vec<u32> = Vec::with_capacity(schema.attrs().len());
        for worker in dataset.workers() {
            if !filter(worker) {
                continue;
            }
            let wp = dataset.workplace(dataset.employer_of(worker.id));
            values.clear();
            for attr in &spec.workplace_attrs {
                values.push(attr.value(wp));
            }
            for attr in &spec.worker_attrs {
                values.push(attr.value(worker));
            }
            let key = schema.encode(&values);
            *noisy.entry(key).or_insert(0.0) += self.factors.factor(wp.id.0 as usize);
        }

        // Small-cell replacement + optional rounding. A fresh RNG seeded
        // from (seed, cell key) makes each cell's draw independent of
        // publication order.
        let mut published = BTreeMap::new();
        for (key, stats) in truth.iter() {
            let raw = noisy.get(&key).copied().unwrap_or(0.0);
            let value = if self.config.small_cell.applies(stats.count) {
                let mut cell_rng = StdRng::seed_from_u64(
                    self.config.seed ^ key.0.wrapping_mul(0x9E3779B97F4A7C15),
                );
                self.config.small_cell.sample(&mut cell_rng) as f64
            } else if self.config.round_output {
                raw.round()
            } else {
                raw
            };
            published.insert(key, value);
        }

        SdlRelease { published, truth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodes::{Generator, GeneratorConfig};
    use tabulate::{workload1, WorkplaceAttr};

    fn setup() -> (Dataset, SdlPublisher) {
        let d = Generator::new(GeneratorConfig::test_small(10)).generate();
        let p = SdlPublisher::new(&d, SdlConfig::default());
        (d, p)
    }

    #[test]
    fn publishes_every_nonzero_cell() {
        let (d, p) = setup();
        let release = p.publish(&d, &workload1());
        assert_eq!(release.published.len(), release.truth.num_cells());
        for (key, _) in release.truth.iter() {
            assert!(release.published.contains_key(&key));
        }
    }

    #[test]
    fn zero_cells_are_absent() {
        let (d, p) = setup();
        let release = p.publish(&d, &workload1());
        // Published keys are exactly truth keys: zero-count cells absent.
        let truth_keys: Vec<_> = release.truth.iter().map(|(k, _)| k).collect();
        let pub_keys: Vec<_> = release.published.keys().copied().collect();
        assert_eq!(truth_keys, pub_keys);
    }

    #[test]
    fn small_cells_replaced_within_support() {
        let (d, p) = setup();
        let release = p.publish(&d, &workload1());
        let model = p.config().small_cell;
        for (key, stats) in release.truth.iter() {
            if model.applies(stats.count) {
                let v = release.published[&key];
                assert!(
                    v == 1.0 || v == 2.0,
                    "small cell {key:?} (true {}) published {v}",
                    stats.count
                );
            }
        }
    }

    #[test]
    fn large_cells_carry_multiplicative_noise() {
        let (d, _p) = setup();
        let cfg = SdlConfig {
            round_output: false,
            ..SdlConfig::default()
        };
        let p_exact = SdlPublisher::new(&d, cfg);
        let release = p_exact.publish(&d, &workload1());
        let (s, t) = (cfg.distortion.s, cfg.distortion.t);
        for (key, stats) in release.truth.iter() {
            if stats.count as f64 >= cfg.small_cell.limit {
                let v = release.published[&key];
                let ratio = v / stats.count as f64;
                // Aggregates of per-establishment factors stay within the
                // factor envelope.
                assert!(
                    ratio >= 1.0 - t - 1e-9 && ratio <= 1.0 + t + 1e-9,
                    "cell {key:?}: ratio {ratio}"
                );
                // Single-establishment cells: ratio must be bounded away
                // from 1 by s — the "no exact disclosure" property.
                if stats.establishments == 1 {
                    assert!(
                        (ratio - 1.0).abs() >= s - 1e-9,
                        "singleton cell ratio {ratio} inside the s-gap"
                    );
                }
            }
        }
    }

    #[test]
    fn l1_error_scales_with_distortion() {
        let d = Generator::new(GeneratorConfig::test_small(11)).generate();
        let small = SdlPublisher::new(
            &d,
            SdlConfig {
                distortion: DistortionParams::new(
                    0.01,
                    0.03,
                    crate::distortion::FuzzDistribution::Ramp,
                ),
                ..SdlConfig::default()
            },
        );
        let large = SdlPublisher::new(
            &d,
            SdlConfig {
                distortion: DistortionParams::new(
                    0.10,
                    0.30,
                    crate::distortion::FuzzDistribution::Ramp,
                ),
                ..SdlConfig::default()
            },
        );
        let spec = MarginalSpec::new(vec![WorkplaceAttr::Naics], vec![]);
        let e_small = small.publish(&d, &spec).l1_error();
        let e_large = large.publish(&d, &spec).l1_error();
        assert!(
            e_large > 3.0 * e_small,
            "10x distortion should raise error: {e_small} vs {e_large}"
        );
    }

    #[test]
    fn release_json_round_trips_bit_identically() {
        let (d, p) = setup();
        let release = p.publish(&d, &workload1());
        let json = serde_json::to_string(&release).unwrap();
        let back: SdlRelease = serde_json::from_str(&json).unwrap();
        assert_eq!(back, release);
        assert_eq!(back.truth.content_digest(), release.truth.content_digest());
        assert_eq!(back.l1_error(), release.l1_error());
    }

    #[test]
    fn expr_publication_matches_closure_publication() {
        let (d, p) = setup();
        let via_expr = p.publish_expr(&d, &workload1(), &tabulate::ranking2_expr());
        #[allow(deprecated)]
        let via_closure = p.publish_filtered(&d, &workload1(), tabulate::ranking2_filter);
        assert_eq!(via_expr.published, via_closure.published);
        assert_eq!(via_expr.truth.num_cells(), via_closure.truth.num_cells());
    }

    #[test]
    fn deterministic_given_seed() {
        let (d, _) = setup();
        let a = SdlPublisher::new(&d, SdlConfig::default()).publish(&d, &workload1());
        let b = SdlPublisher::new(&d, SdlConfig::default()).publish(&d, &workload1());
        assert_eq!(a.published, b.published);
    }
}
