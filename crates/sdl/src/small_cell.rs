//! Small-cell replacement.
//!
//! Section 5.1: when a marginal cell's *true* count lies in `(0, S)` with
//! the small-cell limit `S = 2.5`, the noise-infused answer is replaced by a
//! draw from a posterior-predictive distribution supported on the integers
//! `{1, …, ⌊S⌋}` (so `{1, 2}` at the default limit). Exact zeros pass
//! through unmodified — the property the Sec 5.2 re-identification attack
//! exploits.
//!
//! The Bureau's exact posterior-predictive model is unpublished; we use a
//! truncated-geometric predictive (small counts are a priori more likely)
//! with configurable decay, which preserves the two properties the paper's
//! analysis relies on: the output is always a positive integer below `S`,
//! and it is independent of the establishment's distortion factor.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Posterior-predictive model for small cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmallCellModel {
    /// The small-cell limit `S`; counts in `(0, S)` are replaced.
    pub limit: f64,
    /// Geometric decay of the predictive over `{1, …, ⌊S⌋}`: value `k` has
    /// weight `decay^(k-1)`. `decay = 1` is uniform.
    pub decay: f64,
}

impl Default for SmallCellModel {
    fn default() -> Self {
        Self {
            limit: 2.5,
            decay: 0.6,
        }
    }
}

impl SmallCellModel {
    /// Validated constructor.
    ///
    /// # Panics
    /// Panics unless `limit > 1` and `0 < decay ≤ 1`.
    pub fn new(limit: f64, decay: f64) -> Self {
        assert!(limit > 1.0, "small-cell limit must exceed 1, got {limit}");
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must be in (0, 1], got {decay}"
        );
        Self { limit, decay }
    }

    /// Whether a *true* count triggers replacement.
    #[inline]
    pub fn applies(&self, true_count: u64) -> bool {
        true_count > 0 && (true_count as f64) < self.limit
    }

    /// Support of the predictive distribution, `{1, …, ⌊S⌋}`.
    pub fn support(&self) -> std::ops::RangeInclusive<u64> {
        1..=(self.limit.floor() as u64)
    }

    /// Draw a replacement value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let max = self.limit.floor() as u64;
        // Weights decay^(k-1), k = 1..=max.
        let total: f64 = (0..max).map(|k| self.decay.powi(k as i32)).sum();
        let mut u = rng.gen::<f64>() * total;
        for k in 1..=max {
            let w = self.decay.powi((k - 1) as i32);
            if u < w {
                return k;
            }
            u -= w;
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn applies_only_to_small_positive_counts() {
        let m = SmallCellModel::default();
        assert!(!m.applies(0), "zeros pass through");
        assert!(m.applies(1));
        assert!(m.applies(2));
        assert!(!m.applies(3));
        assert!(!m.applies(1000));
    }

    #[test]
    fn samples_stay_in_support() {
        let m = SmallCellModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = m.sample(&mut rng);
            assert!(m.support().contains(&v), "value {v} outside support");
        }
    }

    #[test]
    fn decay_biases_toward_one() {
        let m = SmallCellModel::new(2.5, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let ones = (0..n).filter(|_| m.sample(&mut rng) == 1).count();
        let frac = ones as f64 / n as f64;
        // weights 1 : 0.5 -> P(1) = 2/3.
        assert!((frac - 2.0 / 3.0).abs() < 0.01, "P(1) = {frac}");
    }

    #[test]
    fn uniform_decay_is_uniform() {
        let m = SmallCellModel::new(3.5, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 90_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[(m.sample(&mut rng) - 1) as usize] += 1;
        }
        for c in counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.01, "frac {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn rejects_tiny_limit() {
        SmallCellModel::new(0.5, 0.6);
    }
}
