//! Dynamically consistent noise infusion over a quarterly panel, and the
//! growth-rate disclosure it entails.
//!
//! QWI-style publications reuse one distortion factor `f_w` per
//! establishment for its *entire lifetime*, so that published time series
//! are "dynamically consistent": the published growth rate of a cell
//! equals the true growth rate whenever the cell is dominated by the same
//! establishments in both quarters. For singleton-establishment cells the
//! consequence is stark — the factor cancels perfectly:
//!
//! ```text
//! published_{t+1} / published_t = (f_w·n_{t+1}) / (f_w·n_t) = n_{t+1}/n_t
//! ```
//!
//! The exact quarterly growth of a single business is a commercially
//! sensitive quantity that the static Sec 5.2 analysis never touches; the
//! panel variant shows the SDL leaks it with *no* background knowledge at
//! all. Formally private releases with fresh per-release noise bound the
//! same inference through composition (Thm 7.3).

use crate::publish::{SdlConfig, SdlPublisher, SdlRelease};
use lodes::{DatasetPanel, WorkplaceId};
use tabulate::{CellKey, Marginal, MarginalSpec};

/// Publisher for a panel: one factor table, reused for every quarter —
/// the "dynamic consistency" property.
#[derive(Debug, Clone)]
pub struct PanelPublisher {
    publisher: SdlPublisher,
}

impl PanelPublisher {
    /// Assign time-invariant factors from the base quarter's frame.
    pub fn new(panel: &DatasetPanel, config: SdlConfig) -> Self {
        // The frame (workplace count and IDs) is quarter-invariant, so the
        // factor table built on quarter 0 applies to every quarter.
        Self {
            publisher: SdlPublisher::new(panel.quarter(0), config),
        }
    }

    /// The underlying single-snapshot publisher.
    pub fn publisher(&self) -> &SdlPublisher {
        &self.publisher
    }

    /// Publish the marginal for every quarter with the shared factors.
    pub fn publish_all(&self, panel: &DatasetPanel, spec: &MarginalSpec) -> Vec<SdlRelease> {
        panel
            .snapshots()
            .iter()
            .map(|snapshot| self.publisher.publish(snapshot, spec))
            .collect()
    }
}

/// Result of the growth-rate disclosure attack on one cell.
#[derive(Debug, Clone, Copy)]
pub struct GrowthAttackResult {
    /// The victim establishment.
    pub workplace: WorkplaceId,
    /// Quarter pair `(q, q+1)`.
    pub quarter: usize,
    /// Growth rate recovered from published values alone.
    pub recovered_growth: f64,
    /// True growth rate.
    pub true_growth: f64,
}

/// Recover quarterly growth rates of singleton-establishment cells from a
/// sequence of published releases. Returns one result per (cell, quarter
/// pair) where the cell is a singleton in both quarters and both published
/// values clear the small-cell limit.
pub fn growth_rate_attack(
    panel: &DatasetPanel,
    releases: &[SdlRelease],
    small_cell_limit: f64,
) -> Vec<GrowthAttackResult> {
    let mut results = Vec::new();
    for q in 0..releases.len().saturating_sub(1) {
        let (a, b) = (&releases[q], &releases[q + 1]);
        for (key, stats_a) in a.truth.iter() {
            if stats_a.establishments != 1 || (stats_a.count as f64) < small_cell_limit {
                continue;
            }
            let Some(stats_b) = b.truth.cell(key) else {
                continue;
            };
            if stats_b.establishments != 1 || (stats_b.count as f64) < small_cell_limit {
                continue;
            }
            let workplace = match singleton_establishment(panel, q, &a.truth, key) {
                Some(wp) => wp,
                None => continue,
            };
            let true_growth = match panel.growth_rate(workplace, q) {
                Some(g) => g,
                None => continue,
            };
            let recovered = b.published[&key] / a.published[&key];
            results.push(GrowthAttackResult {
                workplace,
                quarter: q,
                recovered_growth: recovered,
                true_growth,
            });
        }
    }
    results
}

fn singleton_establishment(
    panel: &DatasetPanel,
    quarter: usize,
    truth: &Marginal,
    key: CellKey,
) -> Option<WorkplaceId> {
    crate::attack::establishment_of_singleton(panel.quarter(quarter), truth, key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lodes::{GeneratorConfig, PanelConfig};
    use tabulate::workload1;

    fn setup() -> (DatasetPanel, PanelPublisher, Vec<SdlRelease>) {
        let panel = DatasetPanel::generate(
            &GeneratorConfig::test_small(61),
            &PanelConfig {
                quarters: 3,
                growth_sigma: 0.08,
                death_rate: 0.0,
                seed: 9,
            },
        );
        let cfg = SdlConfig {
            round_output: false,
            ..SdlConfig::default()
        };
        let publisher = PanelPublisher::new(&panel, cfg);
        let releases = publisher.publish_all(&panel, &workload1());
        (panel, publisher, releases)
    }

    #[test]
    fn factors_are_time_invariant() {
        let (panel, publisher, releases) = setup();
        // For a singleton cell alive in consecutive quarters, the implied
        // factor published/true must be identical across quarters.
        let mut checked = 0;
        for (key, stats) in releases[0].truth.iter() {
            if stats.establishments != 1 || stats.count < 5 {
                continue;
            }
            let Some(later) = releases[1].truth.cell(key) else {
                continue;
            };
            if later.establishments != 1 || later.count < 5 {
                continue;
            }
            let f0 = releases[0].published[&key] / stats.count as f64;
            let f1 = releases[1].published[&key] / later.count as f64;
            assert!((f0 - f1).abs() < 1e-9, "factor changed: {f0} vs {f1}");
            checked += 1;
        }
        assert!(checked > 5, "need singleton cells to check");
        let _ = (panel, publisher);
    }

    #[test]
    fn growth_attack_recovers_exact_rates() {
        let (panel, _, releases) = setup();
        let results = growth_rate_attack(&panel, &releases, 2.5);
        assert!(
            results.len() > 10,
            "panel should expose many singleton growth rates, got {}",
            results.len()
        );
        for r in &results {
            assert!(
                (r.recovered_growth - r.true_growth).abs() < 1e-9,
                "SDL must leak the exact growth: {r:?}"
            );
        }
    }

    #[test]
    fn growth_attack_fails_against_fresh_noise() {
        use eree_like_release::release_quarters;
        let (panel, _, _) = setup();
        let releases = release_quarters(&panel);
        let results = growth_rate_attack(&panel, &releases, 2.5);
        // With fresh additive noise the recovered rates deviate.
        let exact = results
            .iter()
            .filter(|r| (r.recovered_growth - r.true_growth).abs() < 1e-6)
            .count();
        assert!(
            (exact as f64) < 0.05 * results.len().max(1) as f64,
            "fresh noise should almost never cancel: {exact}/{}",
            results.len()
        );
    }

    /// Minimal stand-in for an ER-EE-private quarterly release used by the
    /// test above: per-quarter fresh additive noise on every cell. (The
    /// real mechanisms live in `eree-core`, which depends on this crate —
    /// the full cross-crate version of this test is in the workspace
    /// integration suite.)
    mod eree_like_release {
        use super::*;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use tabulate::compute_marginal;

        pub fn release_quarters(panel: &DatasetPanel) -> Vec<SdlRelease> {
            let mut rng = StdRng::seed_from_u64(77);
            panel
                .snapshots()
                .iter()
                .map(|snap| {
                    let truth = compute_marginal(snap, &workload1());
                    let published = truth
                        .iter()
                        .map(|(k, s)| {
                            // Fresh noise, scale ~ alpha x_v.
                            let scale = (0.1 * s.max_establishment as f64).max(1.0);
                            let noise = (rng.gen::<f64>() - 0.5) * 2.0 * scale;
                            (k, s.count as f64 + noise)
                        })
                        .collect();
                    SdlRelease { published, truth }
                })
                .collect()
        }
    }
}
