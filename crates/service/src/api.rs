//! The service's JSON wire types.
//!
//! Everything a tenant sends or receives is defined here, built from the
//! core layer's serializable vocabulary: [`MarginalSpec`] and
//! [`FilterExpr`] give release submissions a fully declarative identity
//! (there is deliberately no closure escape hatch on the wire — every
//! service release is cacheable and resume-verifiable), and audit
//! responses reuse [`SeasonSummary`] and [`TabulationStats`] verbatim so
//! the HTTP audit view is exactly the library's.

use eree_core::definitions::PrivacyParams;
use eree_core::engine::{ReleaseArtifact, ReleaseRequest, RequestKind, TabulationStats};
use eree_core::mechanisms::MechanismKind;
use eree_core::metrics::MetricsSnapshot;
use eree_core::SeasonSummary;
use serde::{DeError, Deserialize, Serialize};
use tabulate::{FilterExpr, MarginalSpec};

/// `POST /seasons` request body: create a season, reserving its whole
/// budget from the agency cap before it exists.
#[derive(Debug, Clone, Serialize)]
pub struct SeasonCreate {
    /// Season name (1–64 ASCII alphanumerics, `-`, `_`, `.`).
    pub name: String,
    /// The season's whole `(α, ε[, δ])` budget.
    pub budget: PrivacyParams,
    /// Quarterly-panel services only: which quarter of the panel this
    /// season releases (required there, refused on single-snapshot
    /// services).
    pub quarter: Option<u64>,
}

impl Deserialize for SeasonCreate {
    /// Hand-written so `quarter` stays optional on the wire: the
    /// single-snapshot body `{name, budget}` keeps deserializing.
    fn from_value(v: &serde::Value) -> Result<Self, DeError> {
        Ok(Self {
            name: Deserialize::from_value(serde::get_field(v, "name")?)?,
            budget: Deserialize::from_value(serde::get_field(v, "budget")?)?,
            quarter: match v.get("quarter") {
                None | Some(serde::Value::Null) => None,
                Some(value) => Some(u64::from_value(value)?),
            },
        })
    }
}

/// `POST /seasons` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeasonCreated {
    /// The created season's name.
    pub name: String,
    /// The budget durably reserved for it.
    pub budget: PrivacyParams,
    /// ε still unreserved under the agency cap after the reservation.
    pub remaining_epsilon: f64,
}

/// `POST /seasons/{name}/releases` request body: one release, described
/// entirely in serializable terms.
///
/// Deserialization applies defaults for everything but `spec`,
/// `mechanism`, and `budget`: `kind` defaults to `"Marginal"`,
/// `budget_is_per_cell` and `integerize` to `false`, `filter` and
/// `description` to absent, `seed` to `0`.
#[derive(Debug, Clone, Serialize)]
pub struct ReleaseSubmission {
    /// Marginal, shapes, or flows release. Flow submissions are only
    /// accepted by quarterly-panel services, on seasons bound to a
    /// quarter with a predecessor: they tabulate the `(q-1, q)` dataset
    /// pair.
    pub kind: RequestKind,
    /// The marginal spec to tabulate.
    pub spec: MarginalSpec,
    /// The sampling mechanism.
    pub mechanism: MechanismKind,
    /// The requested budget (total, or per-cell when
    /// [`budget_is_per_cell`](Self::budget_is_per_cell)).
    pub budget: PrivacyParams,
    /// Interpret [`budget`](Self::budget) as per-cell parameters.
    pub budget_is_per_cell: bool,
    /// Declarative sub-population filter, if any.
    pub filter: Option<FilterExpr>,
    /// Round published values to non-negative integers.
    pub integerize: bool,
    /// Noise-stream seed; part of the release's identity.
    pub seed: u64,
    /// Free-form label recorded in ledger and provenance (display-only:
    /// not part of the release's cache identity).
    pub description: Option<String>,
}

impl Deserialize for ReleaseSubmission {
    fn from_value(v: &serde::Value) -> Result<Self, DeError> {
        // Optional fields default rather than 400 — the minimal valid
        // submission is {spec, mechanism, budget}.
        fn opt<T: Deserialize>(v: &serde::Value, field: &str) -> Result<Option<T>, DeError> {
            match v.get(field) {
                None | Some(serde::Value::Null) => Ok(None),
                Some(value) => T::from_value(value).map(Some),
            }
        }
        Ok(Self {
            kind: opt(v, "kind")?.unwrap_or(RequestKind::Marginal),
            spec: Deserialize::from_value(serde::get_field(v, "spec")?)?,
            mechanism: Deserialize::from_value(serde::get_field(v, "mechanism")?)?,
            budget: Deserialize::from_value(serde::get_field(v, "budget")?)?,
            budget_is_per_cell: opt(v, "budget_is_per_cell")?.unwrap_or(false),
            filter: opt(v, "filter")?,
            integerize: opt(v, "integerize")?.unwrap_or(false),
            seed: opt(v, "seed")?.unwrap_or(0),
            description: opt(v, "description")?,
        })
    }
}

impl ReleaseSubmission {
    /// The [`ReleaseRequest`] this submission describes.
    pub fn to_request(&self) -> ReleaseRequest {
        let mut request = match self.kind {
            RequestKind::Marginal => ReleaseRequest::marginal(self.spec.clone()),
            RequestKind::Shapes => ReleaseRequest::shapes(self.spec.clone()),
            RequestKind::Flows => ReleaseRequest::flows(self.spec.clone()),
        }
        .mechanism(self.mechanism)
        .integerize(self.integerize)
        .seed(self.seed);
        request = if self.budget_is_per_cell {
            request.budget_per_cell(self.budget)
        } else {
            request.budget(self.budget)
        };
        if let Some(filter) = &self.filter {
            request = request.filter_expr(filter.clone());
        }
        if let Some(description) = &self.description {
            request = request.describe(description.clone());
        }
        request
    }
}

/// `POST /seasons/{name}/releases` response body: a handle to poll.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitReceipt {
    /// The release's id (the `GET /releases/{id}` path segment).
    pub id: u64,
    /// `"queued"` (202) or, for a cache hit, `"complete"` (200).
    pub status: String,
    /// Whether the release was served from the public artifact cache —
    /// in which case it spent zero additional ε and touched nothing
    /// confidential.
    pub cached: bool,
}

/// `GET /releases/{id}` response body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReleaseStatusView {
    /// The release's id.
    pub id: u64,
    /// The season it was submitted to (empty for cache hits, which are
    /// answered on the public side without resolving a season).
    pub season: String,
    /// `"queued"`, `"complete"`, or `"failed"`.
    pub status: String,
    /// Whether it was served from the public artifact cache.
    pub cached: bool,
    /// The refusal, when `status == "failed"` (e.g. over budget).
    pub error: Option<String>,
    /// The released artifact, when `status == "complete"`.
    pub artifact: Option<ReleaseArtifact>,
}

/// `GET /audit` response body: the agency's budget ledger, season by
/// season, plus the service's cache and tabulation counters.
#[derive(Debug, Clone, Serialize)]
pub struct AuditView {
    /// The agency's global `(α, ε[, δ])` cap.
    pub cap: PrivacyParams,
    /// ε reserved across all seasons (spent or not) — never exceeds the
    /// cap's ε.
    pub reserved_epsilon: f64,
    /// ε still unreserved under the cap.
    pub remaining_epsilon: f64,
    /// ε refunded to the cap by sealed season closures
    /// (`POST /seasons/{name}/close`) — already included in
    /// `remaining_epsilon`.
    pub refunded_epsilon: f64,
    /// ε actually charged across all seasons so far.
    pub spent_epsilon: f64,
    /// Live per-season budget summaries, in reservation order.
    pub seasons: Vec<SeasonSummary>,
    /// Releases the service has accepted (queued, completed, or failed —
    /// including cache hits).
    pub releases: u64,
    /// How many of those were served from the public artifact cache.
    pub cache_hits: u64,
    /// Artifacts currently in the public cache directory.
    pub cache_entries: u64,
    /// Cumulative tabulation counters across every season worker:
    /// `computed` full scans, in-memory `hits`, truth-store `disk_hits`.
    pub tabulations: TabulationStats,
    /// The canonical structured snapshot (per-family admissions/denials,
    /// budget gauges, cache and service counters, latency histograms) —
    /// the same payload `GET /metrics` returns.
    pub metrics: MetricsSnapshot,
}

impl Deserialize for AuditView {
    /// Hand-written for wire compatibility: `metrics` postdates the first
    /// audit payloads, so a pre-metrics audit JSON reads with an empty
    /// snapshot instead of refusing.
    fn from_value(v: &serde::Value) -> Result<Self, DeError> {
        Ok(Self {
            cap: Deserialize::from_value(serde::get_field(v, "cap")?)?,
            reserved_epsilon: Deserialize::from_value(serde::get_field(v, "reserved_epsilon")?)?,
            remaining_epsilon: Deserialize::from_value(serde::get_field(v, "remaining_epsilon")?)?,
            refunded_epsilon: Deserialize::from_value(serde::get_field(v, "refunded_epsilon")?)?,
            spent_epsilon: Deserialize::from_value(serde::get_field(v, "spent_epsilon")?)?,
            seasons: Deserialize::from_value(serde::get_field(v, "seasons")?)?,
            releases: Deserialize::from_value(serde::get_field(v, "releases")?)?,
            cache_hits: Deserialize::from_value(serde::get_field(v, "cache_hits")?)?,
            cache_entries: Deserialize::from_value(serde::get_field(v, "cache_entries")?)?,
            tabulations: Deserialize::from_value(serde::get_field(v, "tabulations")?)?,
            metrics: match v.get("metrics") {
                None | Some(serde::Value::Null) => MetricsSnapshot::default(),
                Some(value) => MetricsSnapshot::from_value(value)?,
            },
        })
    }
}
