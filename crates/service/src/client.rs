//! A small blocking loopback client for the release service.
//!
//! One `TcpStream` per call (the server is `Connection: close`), typed
//! request/response bodies from [`crate::api`]. Exists so integration
//! tests and examples can drive the service without hand-rolling HTTP;
//! it is deliberately not a general-purpose HTTP client.

use crate::api::{
    AuditView, ReleaseStatusView, ReleaseSubmission, SeasonCreate, SeasonCreated, SubmitReceipt,
};
use eree_core::definitions::PrivacyParams;
use eree_core::metrics::MetricsSnapshot;
use eree_core::ClosureReceipt;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A failure talking to the service.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, write, read).
    Io(std::io::Error),
    /// The service answered with an error status.
    Api {
        /// The HTTP status code.
        status: u16,
        /// The service's `error` message.
        message: String,
    },
    /// The response could not be parsed as expected.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Api { status, message } => {
                write!(f, "service refused ({status}): {message}")
            }
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A bounded retry schedule for transient failures: exponential backoff
/// with deterministic jitter, capped by both an attempt count and a wall
/// deadline — whichever trips first ends the retrying and surfaces the
/// last error.
///
/// Only *transient* failures retry (see [`RetryPolicy::is_transient`]):
/// connection-level transport errors (the service is restarting) and
/// HTTP 423 (a store lease is briefly held elsewhere). Permanent
/// refusals — 400, 404, 409, protocol errors — surface immediately; in
/// particular a 409 from a closed season or an exhausted budget must
/// never be hammered.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total tries including the first (so `1` means no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry after that.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
    /// Wall-clock budget across all attempts and sleeps: once elapsed,
    /// no further retry is scheduled.
    pub deadline: Duration,
    /// Seed for the deterministic jitter stream, so two clients retrying
    /// the same failure desynchronize while each stays reproducible.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// 5 attempts over at most ~3 s: 25 ms base backoff doubling to a
    /// 400 ms cap — enough to ride out a worker respawn or a service
    /// restart without masking a genuinely down service for long.
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(400),
            deadline: Duration::from_secs(3),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// Is this failure worth retrying? Transport errors that mean "nobody
    /// is listening *right now*" and HTTP 423 (a write lease held by a
    /// concurrent opener or a worker mid-handoff) are transient;
    /// everything else — including every other API status — is a
    /// permanent answer.
    pub fn is_transient(error: &ClientError) -> bool {
        match error {
            ClientError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            ClientError::Api { status, .. } => *status == 423,
            ClientError::Protocol(_) => false,
        }
    }

    /// The sleep before retry number `retry` (0-based): exponential
    /// doubling from the base, capped, then jittered to 50–100% so
    /// synchronized clients spread out. Deterministic in
    /// (`jitter_seed`, `retry`).
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_backoff);
        // splitmix64: a full-avalanche hash of (seed, retry) standing in
        // for a random source — no RNG dependency, reproducible runs.
        let mut z = self
            .jitter_seed
            .wrapping_add(u64::from(retry).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let fraction = 0.5 + 0.5 * ((z >> 11) as f64 / (1u64 << 53) as f64);
        exp.mul_f64(fraction)
    }
}

/// A blocking client bound to one service address, optionally retrying
/// transient failures under a [`RetryPolicy`].
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
    retry: Option<RetryPolicy>,
}

impl Client {
    /// A client for the service at `addr` (see `ReleaseService::addr`).
    /// No retries: every failure surfaces on the first attempt.
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr, retry: None }
    }

    /// The same client with transient failures retried under `policy`.
    pub fn with_retry(self, policy: RetryPolicy) -> Self {
        Self {
            retry: Some(policy),
            ..self
        }
    }

    /// `POST /seasons`: create `name` with `budget` reserved up front.
    /// Single-snapshot services only; panel services refuse unbound
    /// seasons (use [`create_panel_season`](Self::create_panel_season)).
    pub fn create_season(
        &self,
        name: &str,
        budget: PrivacyParams,
    ) -> Result<SeasonCreated, ClientError> {
        self.post(
            "/seasons",
            &SeasonCreate {
                name: name.to_string(),
                budget,
                quarter: None,
            },
        )
    }

    /// `POST /seasons` against a quarterly-panel service: create `name`
    /// with `budget`, bound to `quarter` of the served panel.
    pub fn create_panel_season(
        &self,
        name: &str,
        budget: PrivacyParams,
        quarter: u64,
    ) -> Result<SeasonCreated, ClientError> {
        self.post(
            "/seasons",
            &SeasonCreate {
                name: name.to_string(),
                budget,
                quarter: Some(quarter),
            },
        )
    }

    /// `POST /seasons/{name}/releases`: submit one release.
    pub fn submit(
        &self,
        season: &str,
        submission: &ReleaseSubmission,
    ) -> Result<SubmitReceipt, ClientError> {
        self.post(&format!("/seasons/{season}/releases"), submission)
    }

    /// `GET /releases/{id}`: the release's current status.
    pub fn release(&self, id: u64) -> Result<ReleaseStatusView, ClientError> {
        self.get(&format!("/releases/{id}"))
    }

    /// Poll `GET /releases/{id}` until it leaves `"queued"` or `timeout`
    /// elapses.
    pub fn wait_for(&self, id: u64, timeout: Duration) -> Result<ReleaseStatusView, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let view = self.release(id)?;
            if view.status != "queued" {
                return Ok(view);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Protocol(format!(
                    "release {id} still queued after {timeout:?}"
                )));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// `GET /audit`: the agency-wide budget and cache audit.
    pub fn audit(&self) -> Result<AuditView, ClientError> {
        self.get("/audit")
    }

    /// `GET /metrics`: the canonical structured counters snapshot —
    /// per-family admissions/denials, budget gauges, cache hit counters,
    /// latency histograms, and live per-season queue depths.
    pub fn metrics(&self) -> Result<MetricsSnapshot, ClientError> {
        self.get("/metrics")
    }

    /// `GET /metrics?format=openmetrics`: the same snapshot in the
    /// OpenMetrics (Prometheus) text exposition format, returned raw.
    pub fn metrics_text(&self) -> Result<String, ClientError> {
        self.with_attempts(|| {
            let (status, body) = self.call("GET", "/metrics?format=openmetrics", None)?;
            if (200..300).contains(&status) {
                Ok(body)
            } else {
                Err(ClientError::Api {
                    status,
                    message: body,
                })
            }
        })
    }

    /// `POST /seasons/{name}/close`: drain and seal the season, refunding
    /// its unspent budget to the agency cap. Idempotent — closing a
    /// closed season replays its receipt with `already_closed: true`.
    pub fn close_season(&self, name: &str) -> Result<ClosureReceipt, ClientError> {
        let path = format!("/seasons/{name}/close");
        self.with_attempts(|| {
            let (status, body) = self.call("POST", &path, Some("{}"))?;
            decode(status, &body)
        })
    }

    fn get<T: Deserialize>(&self, path: &str) -> Result<T, ClientError> {
        self.with_attempts(|| {
            let (status, body) = self.call("GET", path, None)?;
            decode(status, &body)
        })
    }

    fn post<B: Serialize, T: Deserialize>(&self, path: &str, body: &B) -> Result<T, ClientError> {
        let payload = serde_json::to_string(body).expect("request serialization is infallible");
        self.with_attempts(|| {
            let (status, body) = self.call("POST", path, Some(&payload))?;
            decode(status, &body)
        })
    }

    /// Run `attempt` under the client's retry policy, if any: transient
    /// failures back off and retry until the policy's attempt or deadline
    /// cap trips; everything else (and the last transient error) surfaces
    /// as-is.
    fn with_attempts<T>(
        &self,
        mut attempt: impl FnMut() -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let Some(policy) = self.retry else {
            return attempt();
        };
        let start = Instant::now();
        let mut retry = 0u32;
        loop {
            match attempt() {
                Ok(value) => return Ok(value),
                Err(error) => {
                    if !RetryPolicy::is_transient(&error) || retry + 1 >= policy.max_attempts {
                        return Err(error);
                    }
                    let sleep = policy.backoff(retry);
                    if start.elapsed() + sleep > policy.deadline {
                        return Err(error);
                    }
                    std::thread::sleep(sleep);
                    retry += 1;
                }
            }
        }
    }

    fn call(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: service\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        let (head, body) = raw
            .split_once("\r\n\r\n")
            .ok_or_else(|| ClientError::Protocol("response has no header/body split".into()))?;
        let status: u16 = head
            .lines()
            .next()
            .and_then(|line| line.split_whitespace().nth(1))
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("unparseable status line in {head:?}")))?;
        Ok((status, body.to_string()))
    }
}

fn decode<T: Deserialize>(status: u16, body: &str) -> Result<T, ClientError> {
    if (200..300).contains(&status) {
        serde_json::from_str(body)
            .map_err(|e| ClientError::Protocol(format!("undecodable success body: {e}")))
    } else {
        #[derive(Deserialize)]
        struct ErrorBody {
            error: String,
        }
        let message = serde_json::from_str::<ErrorBody>(body)
            .map(|e| e.error)
            .unwrap_or_else(|_| body.to_string());
        Err(ClientError::Api { status, message })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::ErrorKind;

    fn io(kind: ErrorKind) -> ClientError {
        ClientError::Io(std::io::Error::new(kind, "synthetic"))
    }

    fn api(status: u16) -> ClientError {
        ClientError::Api {
            status,
            message: "synthetic".to_string(),
        }
    }

    #[test]
    fn transient_classification() {
        // Nobody-listening transport failures and 423 (lease briefly held
        // elsewhere) retry; permanent refusals never do.
        assert!(RetryPolicy::is_transient(&io(ErrorKind::ConnectionRefused)));
        assert!(RetryPolicy::is_transient(&io(ErrorKind::ConnectionReset)));
        assert!(RetryPolicy::is_transient(&io(ErrorKind::TimedOut)));
        assert!(RetryPolicy::is_transient(&api(423)));
        assert!(!RetryPolicy::is_transient(&io(ErrorKind::PermissionDenied)));
        for permanent in [400, 404, 409, 500] {
            assert!(
                !RetryPolicy::is_transient(&api(permanent)),
                "status {permanent} must not retry"
            );
        }
        assert!(!RetryPolicy::is_transient(&ClientError::Protocol(
            "garbled".to_string()
        )));
    }

    #[test]
    fn backoff_doubles_is_capped_and_jitters_deterministically() {
        let policy = RetryPolicy::default();
        for retry in 0..8 {
            let sleep = policy.backoff(retry);
            // Never below half the (capped) exponential step, never above
            // the cap itself.
            let exp = policy
                .base_backoff
                .saturating_mul(1 << retry)
                .min(policy.max_backoff);
            assert!(sleep >= exp.mul_f64(0.5), "retry {retry}: {sleep:?} < half");
            assert!(
                sleep <= policy.max_backoff,
                "retry {retry}: {sleep:?} over cap"
            );
            // Deterministic: the same (seed, retry) always sleeps the same.
            assert_eq!(sleep, policy.backoff(retry));
        }
        // Different seeds desynchronize.
        let other = RetryPolicy {
            jitter_seed: 1,
            ..policy
        };
        assert_ne!(policy.backoff(3), other.backoff(3));
    }

    #[test]
    fn attempts_and_deadline_bound_the_loop() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let client = Client::new(addr).with_retry(RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            deadline: Duration::from_secs(5),
            jitter_seed: 7,
        });
        let mut calls = 0u32;
        let result: Result<(), ClientError> = client.with_attempts(|| {
            calls += 1;
            Err(io(ErrorKind::ConnectionRefused))
        });
        assert!(matches!(result, Err(ClientError::Io(_))));
        assert_eq!(calls, 3, "max_attempts bounds total tries");

        // A permanent error never retries, even under a generous policy.
        let mut calls = 0u32;
        let result: Result<(), ClientError> = client.with_attempts(|| {
            calls += 1;
            Err(api(409))
        });
        assert!(matches!(result, Err(ClientError::Api { status: 409, .. })));
        assert_eq!(calls, 1);

        // An exhausted deadline stops retrying even with attempts left.
        let strict = Client::new(addr).with_retry(RetryPolicy {
            max_attempts: 100,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_millis(50),
            deadline: Duration::from_millis(1),
            jitter_seed: 7,
        });
        let mut calls = 0u32;
        let result: Result<(), ClientError> = strict.with_attempts(|| {
            calls += 1;
            std::thread::sleep(Duration::from_millis(2));
            Err(api(423))
        });
        assert!(matches!(result, Err(ClientError::Api { status: 423, .. })));
        assert_eq!(calls, 1, "deadline already spent before the first sleep");
    }
}
