//! A small blocking loopback client for the release service.
//!
//! One `TcpStream` per call (the server is `Connection: close`), typed
//! request/response bodies from [`crate::api`]. Exists so integration
//! tests and examples can drive the service without hand-rolling HTTP;
//! it is deliberately not a general-purpose HTTP client.

use crate::api::{
    AuditView, ReleaseStatusView, ReleaseSubmission, SeasonCreate, SeasonCreated, SubmitReceipt,
};
use eree_core::definitions::PrivacyParams;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A failure talking to the service.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (connect, write, read).
    Io(std::io::Error),
    /// The service answered with an error status.
    Api {
        /// The HTTP status code.
        status: u16,
        /// The service's `error` message.
        message: String,
    },
    /// The response could not be parsed as expected.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Api { status, message } => {
                write!(f, "service refused ({status}): {message}")
            }
            ClientError::Protocol(detail) => write!(f, "protocol error: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking client bound to one service address.
#[derive(Debug, Clone, Copy)]
pub struct Client {
    addr: SocketAddr,
}

impl Client {
    /// A client for the service at `addr` (see `ReleaseService::addr`).
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr }
    }

    /// `POST /seasons`: create `name` with `budget` reserved up front.
    /// Single-snapshot services only; panel services refuse unbound
    /// seasons (use [`create_panel_season`](Self::create_panel_season)).
    pub fn create_season(
        &self,
        name: &str,
        budget: PrivacyParams,
    ) -> Result<SeasonCreated, ClientError> {
        self.post(
            "/seasons",
            &SeasonCreate {
                name: name.to_string(),
                budget,
                quarter: None,
            },
        )
    }

    /// `POST /seasons` against a quarterly-panel service: create `name`
    /// with `budget`, bound to `quarter` of the served panel.
    pub fn create_panel_season(
        &self,
        name: &str,
        budget: PrivacyParams,
        quarter: u64,
    ) -> Result<SeasonCreated, ClientError> {
        self.post(
            "/seasons",
            &SeasonCreate {
                name: name.to_string(),
                budget,
                quarter: Some(quarter),
            },
        )
    }

    /// `POST /seasons/{name}/releases`: submit one release.
    pub fn submit(
        &self,
        season: &str,
        submission: &ReleaseSubmission,
    ) -> Result<SubmitReceipt, ClientError> {
        self.post(&format!("/seasons/{season}/releases"), submission)
    }

    /// `GET /releases/{id}`: the release's current status.
    pub fn release(&self, id: u64) -> Result<ReleaseStatusView, ClientError> {
        self.get(&format!("/releases/{id}"))
    }

    /// Poll `GET /releases/{id}` until it leaves `"queued"` or `timeout`
    /// elapses.
    pub fn wait_for(&self, id: u64, timeout: Duration) -> Result<ReleaseStatusView, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let view = self.release(id)?;
            if view.status != "queued" {
                return Ok(view);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Protocol(format!(
                    "release {id} still queued after {timeout:?}"
                )));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// `GET /audit`: the agency-wide budget and cache audit.
    pub fn audit(&self) -> Result<AuditView, ClientError> {
        self.get("/audit")
    }

    fn get<T: Deserialize>(&self, path: &str) -> Result<T, ClientError> {
        let (status, body) = self.call("GET", path, None)?;
        decode(status, &body)
    }

    fn post<B: Serialize, T: Deserialize>(&self, path: &str, body: &B) -> Result<T, ClientError> {
        let payload = serde_json::to_string(body).expect("request serialization is infallible");
        let (status, body) = self.call("POST", path, Some(&payload))?;
        decode(status, &body)
    }

    fn call(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ClientError> {
        let mut stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: service\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes())?;
        let mut raw = String::new();
        stream.read_to_string(&mut raw)?;
        let (head, body) = raw
            .split_once("\r\n\r\n")
            .ok_or_else(|| ClientError::Protocol("response has no header/body split".into()))?;
        let status: u16 = head
            .lines()
            .next()
            .and_then(|line| line.split_whitespace().nth(1))
            .and_then(|code| code.parse().ok())
            .ok_or_else(|| ClientError::Protocol(format!("unparseable status line in {head:?}")))?;
        Ok((status, body.to_string()))
    }
}

fn decode<T: Deserialize>(status: u16, body: &str) -> Result<T, ClientError> {
    if (200..300).contains(&status) {
        serde_json::from_str(body)
            .map_err(|e| ClientError::Protocol(format!("undecodable success body: {e}")))
    } else {
        #[derive(Deserialize)]
        struct ErrorBody {
            error: String,
        }
        let message = serde_json::from_str::<ErrorBody>(body)
            .map(|e| e.error)
            .unwrap_or_else(|_| body.to_string());
        Err(ClientError::Api { status, message })
    }
}
