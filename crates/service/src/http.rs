//! A deliberately minimal HTTP/1.1 server: `std::net` + a fixed thread
//! pool, one request per connection, JSON bodies only.
//!
//! The workspace vendors every dependency, and a release frontend needs a
//! tiny, auditable slice of HTTP — not an async runtime. This module
//! implements exactly that slice: parse one request (method, path,
//! `Content-Length`-delimited body) off a connection, hand it to a
//! router, write one response, close. Connections are distributed over a
//! fixed pool of worker threads; the accept loop runs on its own thread
//! and shuts down cooperatively.
//!
//! Hard limits keep a malicious or broken client from tying up a worker:
//! headers are capped at [`MAX_HEAD_BYTES`], bodies at
//! [`MAX_BODY_BYTES`], and every socket read carries a timeout.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum accepted size of the request line + headers, in bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request-body size, in bytes.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Per-read socket timeout: a stalled client costs a worker at most this.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request path, query string stripped.
    pub path: String,
    /// The raw query string (everything after `?`, empty when absent).
    pub query: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// The value of query parameter `name`, if present.
    ///
    /// Parameters are split on `&` and `=` without percent-decoding —
    /// the routing surface only uses plain ASCII tokens.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// One HTTP response: a status code, a content type, and a body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A response with `status` and a pre-serialized JSON `body`.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A response with `status`, an explicit `content_type`, and a plain
    /// text `body` (used by the OpenMetrics exposition).
    pub fn text(status: u16, content_type: &'static str, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type,
            body: body.into(),
        }
    }

    /// An error response: `{"error": <message>}` with `status`.
    pub fn error(status: u16, message: &str) -> Self {
        let body = serde_json::to_string(&serde::Value::Map(vec![(
            "error".to_string(),
            serde::Value::Str(message.to_string()),
        )]))
        .expect("error body serialization is infallible");
        Self {
            status,
            content_type: "application/json",
            body,
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        423 => "Locked",
        _ => "Internal Server Error",
    }
}

/// Read and parse one request off `stream`. Errors are protocol-level
/// (malformed request line, oversized head/body, timeout) and map to a
/// 400/413 response by the caller.
fn read_request(stream: &mut TcpStream) -> Result<Request, Response> {
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    let mut reader = BufReader::new(stream);
    let mut head_bytes = 0usize;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| Response::error(400, &format!("unreadable request line: {e}")))?;
    head_bytes += line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| Response::error(400, "empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| Response::error(400, "request line has no path"))?;
    // The query string is split off the path; routes that care (the
    // metrics exposition format switch) read it from `Request::query`.
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| Response::error(400, &format!("unreadable header: {e}")))?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(Response::error(413, "request head too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| Response::error(400, "unparseable Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(Response::error(413, "request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| Response::error(400, &format!("truncated body: {e}")))?;
    let body = String::from_utf8(body).map_err(|_| Response::error(400, "body is not UTF-8"))?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

fn write_response(stream: &mut TcpStream, response: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    // A peer that hung up mid-response is its own problem; the server
    // must not die for it.
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(response.body.as_bytes()))
        .and_then(|_| stream.flush());
}

/// The router signature: pure request → response.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running HTTP server: an accept thread feeding a fixed worker pool.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serve
    /// `handler` on `threads` pool workers until [`shutdown`](Self::shutdown).
    pub fn serve(addr: &str, threads: usize, handler: Handler) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..threads.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                std::thread::spawn(move || loop {
                    // Hold the receiver lock only for the handoff, not for
                    // the (potentially slow) connection handling.
                    let stream = rx.lock().expect("pool receiver poisoned").recv();
                    match stream {
                        Ok(mut stream) => {
                            let response = match read_request(&mut stream) {
                                Ok(request) => handler(&request),
                                Err(error_response) => error_response,
                            };
                            write_response(&mut stream, &response);
                        }
                        // Sender dropped: the accept loop exited.
                        Err(_) => break,
                    }
                })
            })
            .collect();
        let accept = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // A send can only fail after shutdown started.
                        let _ = tx.send(stream);
                    }
                }
                // `tx` drops here, draining the pool after queued
                // connections are served.
            })
        };
        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, serve everything already queued, and join every
    /// thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.accept.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}
