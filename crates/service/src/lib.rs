//! `eree_service` — a multi-tenant HTTP release service over the
//! [`eree_core`] agency.
//!
//! The library layers give one process programmatic access to a budgeted
//! release pipeline; this crate puts a wire protocol in front of it so
//! many tenants can share one agency:
//!
//! * [`service`] — the [`ReleaseService`]:
//!   owns the `AgencyStore` (and its write lease), runs one worker per
//!   season so tenants serialize within a season and parallelize across
//!   seasons, answers repeat requests from the public released-artifact
//!   cache at zero privacy cost, and publishes the agency's structured
//!   counters (`eree_core::metrics`) at `GET /metrics`.
//! * [`api`] — the JSON wire types, built from the core layer's
//!   serializable vocabulary (`MarginalSpec`, `FilterExpr`,
//!   `PrivacyParams`).
//! * [`http`] — a deliberately minimal `std::net` HTTP/1.1 server
//!   (no async runtime; the workspace vendors every dependency).
//! * [`client`] — a blocking loopback client for tests and examples.
//!
//! ```no_run
//! use eree_service::{Client, ReleaseService, ServiceConfig};
//! use eree_core::definitions::PrivacyParams;
//! # fn demo(dataset: lodes::Dataset) -> Result<(), Box<dyn std::error::Error>> {
//! let cap = PrivacyParams::pure(0.1, 4.0);
//! let service = ReleaseService::start("/tmp/agency", dataset, ServiceConfig::new(cap))?;
//! let client = Client::new(service.addr());
//! client.create_season("s2024q1", PrivacyParams::pure(0.1, 1.0))?;
//! # service.shutdown();
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod http;
pub mod service;

pub use api::{
    AuditView, ReleaseStatusView, ReleaseSubmission, SeasonCreate, SeasonCreated, SubmitReceipt,
};
pub use client::{Client, ClientError, RetryPolicy};
pub use service::{ReleaseService, ServiceConfig, ServiceError};
